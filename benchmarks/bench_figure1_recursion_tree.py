"""E2 -- Figure 1: the recursion tree with (first-reached, finished) labels.

Figure 1 of the paper draws a four-level recursion tree where each vertex
carries the time it is first reached and the time computation finishes
there, and the root satisfies ``M(G) = M(A) u M(B)``.  We rerun Algorithm 1,
rebuild the tree from the execution trace, verify every label against
``T(k) = 3 (2^k - 1)`` (Lemma 10), and verify the figure's structural
claims: children nested in their parent's window, left child before right
child, and members partitioned into A (left), B (right), and pruned nodes.
"""

import networkx as nx
from conftest import once, record

from repro.analysis import (
    aggregate_calls,
    build_tree,
    render_tree,
    tree_stats,
    verify_schedule,
)
from repro.api import solve_mis
from repro.core import schedule


def test_figure1_labels_and_structure(benchmark):
    graph = nx.gnp_random_graph(48, 0.1, seed=12)

    result = once(
        benchmark, lambda: solve_mis(graph, algorithm="sleeping", seed=12)
    )

    # Every realized call's (start, end) labels match the exact schedule.
    assert verify_schedule(result, schedule.call_duration) == []

    root = build_tree(result)
    print()
    print(render_tree(root, max_depth=3))
    stats = tree_stats(root)

    calls = aggregate_calls(result)
    # Figure-1 structure: children windows nest, left strictly before right.
    for path, agg in calls.items():
        left = calls.get(path + "L")
        right = calls.get(path + "R")
        if left is not None:
            assert left.start_round == agg.start_round + 1
        if left is not None and right is not None:
            assert left.end_round < right.start_round
        if right is not None:
            assert right.end_round == agg.end_round

    # M(G) = M(A) u M(B) u {isolated/second-isolated joiners at this level}:
    # every MIS member decided True somewhere, never via elimination.
    for v in result.mis:
        protocol = result.protocols[v]
        decided = [r.decided for r in protocol.calls if r.decided]
        assert decided[0] != "eliminated"

    record(
        benchmark,
        realized_calls=stats["calls"],
        max_depth=stats["max_depth"],
        total_rounds=result.rounds,
        t_of_k=schedule.call_duration(schedule.recursion_depth(48)),
    )
    assert result.rounds == schedule.call_duration(
        schedule.recursion_depth(48)
    )

"""E20 -- scale: breaking the 10^6-node barrier.

ROADMAP named three constraints that stopped the sweeps at 10^5..10^6:
the Python skip loop in the v1 gnp sampler, engine compute, and memory.
This file pins the state after removing all three (the v2 ``"batched"``
graph-sampling stream of :mod:`repro.graphs.arrays` plus the
allocation-free engine hot paths), in two stages:

* ``test_gnp_1e6_sampler_smoke`` -- the sampler alone: a 10^6-node
  gnp-sparse graph sampled straight into CSR arrays on the v2 stream in
  a couple of seconds (structure-checked; the deterministic edge count
  is the tracked series).  Cheap enough for the per-PR CI smoke.
* ``test_sleeping_1e6_pipeline_speedup`` -- the headline: one 10^6-node
  sleeping-MIS (Algorithm 1) trial end-to-end -- sample, simulate,
  validate, flatten -- in single-digit seconds on the fully batched
  pipeline (``graph_rng="batched"`` + ``rng="batched"``), with an
  asserted >= 2x floor against the same pipeline on the v1 sampler at
  the same n.  The samplers draw *different* seeded graphs by design
  (the v1/v2 break is versioned), so both sides' measured values are
  recorded, each deterministic under its own stream.  (Excluded from
  the CI smoke budget via ``-k "not pipeline"``; the weekly scale job
  refreshes the committed ``BENCH_scale_1e6.json``.)
"""

from conftest import record, timed_once, write_artifact

from repro.analysis.complexity import sweep
from repro.graphs.arrays import make_family_arrays
from repro.plan import RunPlan
from repro.profiling import profile_phases

N = 1_000_000
SEED0 = 11

#: Acceptance floor for the batched-sampler pipeline vs the v1-sampler
#: pipeline, end to end at n = 10^6.  Measured ~4x on the reference
#: container (the v1 Python skip loop alone costs more than the whole v2
#: trial); the gate sits well below that to absorb runner variance while
#: keeping the ROADMAP win un-regressable.
SPEEDUP_FLOOR = 2.0


def test_gnp_1e6_sampler_smoke(benchmark):
    def measure():
        with profile_phases(trace=True) as prof:
            ga = make_family_arrays(
                "gnp-sparse", N, seed=SEED0, graph_rng="batched"
            )
        return ga, prof

    (ga, prof), elapsed = timed_once(benchmark, measure)

    assert ga.n == N
    assert (ga.src[ga.grev] == ga.dst).all()
    assert int(ga.deg.sum()) == ga.m
    print()
    record(
        benchmark,
        directed_edges=ga.m,
        mean_degree=round(ga.m / N, 3),
        wall_clock_s=round(elapsed, 2),
    )
    write_artifact(
        "scale_1e6_sampler",
        config={
            "family": "gnp-sparse", "n": N, "seed": SEED0,
            "graph_rng": "batched",
        },
        plan=RunPlan(
            family="gnp-sparse", n=N, seed=SEED0,
            graph_rng="batched", graph_source="arrays",
        ),
        wall_clock_s=elapsed,
        directed_edges=ga.m,
        phases=prof.report(),
    )


def test_sleeping_1e6_pipeline_speedup(benchmark):
    """10^6 nodes: batched-sampler pipeline >= 2x the v1-sampler one."""
    import time

    def plan_for(graph_rng):
        return RunPlan(
            algorithm="sleeping", family="gnp-sparse",
            engine="vectorized", rng="batched", graph_rng=graph_rng,
            graph_source="arrays", result="arrays",
        )

    def run(graph_rng):
        start = time.perf_counter()
        rows = sweep(
            plan=plan_for(graph_rng), sizes=(N,), trials=1, seed0=SEED0,
        )
        return rows, time.perf_counter() - start

    def measure():
        legacy_rows, legacy_s = run("legacy")
        batched_rows, batched_s = run("batched")
        return legacy_rows, legacy_s, batched_rows, batched_s

    (legacy_rows, legacy_s, batched_rows, batched_s), _ = timed_once(
        benchmark, measure
    )

    # Different seeded graphs by design (versioned v1/v2 sampler break),
    # but both trials must be healthy and exhibit the paper's O(1)
    # node-averaged awake complexity at 10^6.
    for row in (legacy_rows[0], batched_rows[0]):
        assert (row.valid, row.undecided) == (True, 0)
        assert row.node_averaged_awake < 12.0

    speedup = legacy_s / batched_s
    print()
    record(
        benchmark,
        legacy_sampler_pipeline_s=round(legacy_s, 2),
        batched_sampler_pipeline_s=round(batched_s, 2),
        speedup=round(speedup, 2),
        node_avg_awake_batched=round(batched_rows[0].node_averaged_awake, 3),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched-sampler 10^6 trial only {speedup:.2f}x vs the v1-sampler "
        f"pipeline (floor {SPEEDUP_FLOOR}x)"
    )
    write_artifact(
        "scale_1e6",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": [N], "trials": 1, "seed0": SEED0,
            "engine": "vectorized", "rng": "batched",
            "graph_source": "arrays", "result": "arrays",
            "compared": {
                "legacy_sampler": {"graph_rng": "legacy"},
                "batched_sampler": {"graph_rng": "batched"},
            },
        },
        plan={
            "legacy_sampler": plan_for("legacy"),
            "batched_sampler": plan_for("batched"),
        },
        wall_clock_s=batched_s,
        legacy_sampler_pipeline_s=round(legacy_s, 3),
        batched_sampler_pipeline_s=round(batched_s, 3),
        speedup=round(speedup, 3),
        speedup_floor=SPEEDUP_FLOOR,
        node_avg_awake={
            "legacy_sampler": round(legacy_rows[0].node_averaged_awake, 3),
            "batched_sampler": round(batched_rows[0].node_averaged_awake, 3),
        },
    )

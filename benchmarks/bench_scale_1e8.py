"""E24 -- scale: breaking the 10^8-node barrier (profiled sampler).

One more decade past E21's 10^7 pin, with the memory discipline that
makes it possible held by tests instead of folklore:

* ``test_streaming_build_memory_scale_check`` -- the CI-sized memory
  pin: a ~10^6-edge family forced through tiny streaming chunks under
  :func:`repro.profiling.profile_phases`, asserting the two-pass CSR
  build's *transient* traced memory stays chunk-bounded (O(n) node
  arrays + in-flight chunk temporaries) and that the profiler books the
  ``sample``/``csr_build`` phases the artifacts commit.  Runs in the
  per-PR benchmark smoke.
* ``test_gnp_1e8_sampler_pipeline`` -- a 10^8-node gnp-sparse graph
  sampled straight into CSR arrays through the streaming two-pass build,
  phase-profiled end to end, with the traced peak asserted under the
  documented envelope (docs/performance.md, "Scaling to 10^8": ~12 GB
  measured, 16 GB gate).  Writes ``BENCH_scale_1e8_sampler.json``
  with the per-phase ``phases`` block and both memory peaks.  (Excluded
  from the CI smoke budget via ``-k "not pipeline"``; the weekly scale
  job refreshes the committed artifact.)

The full 10^8 *trial* (engine + result on top of the sampler) needs
~27-36 GB and stays an extrapolated, documented envelope rather than a
CI artifact -- see docs/performance.md for the per-layer table.
"""

import tracemalloc

import numpy as np
from conftest import record, timed_once, write_artifact

from repro.graphs.arrays import make_family_arrays
from repro.plan import RunPlan
from repro.profiling import profile_phases

N = 100_000_000
SEED0 = 11

#: The documented traced-memory envelope for the 10^8 sampler (GB).
#: Measured ~12 GB on the reference container (persistent CSR ~10.4 GB
#: plus chunk-bounded transients); the envelope leaves room for
#: allocator/runner variance while staying far under the 24 GB target
#: the full-pipeline extrapolation in docs/performance.md budgets from.
MEMORY_ENVELOPE_GB = 16.0

#: Spot-check size for the CSR involution/symmetry invariants: a full
#: ``src[grev] == dst`` pass at 10^8 fancy-indexes two ~3.2 GB arrays,
#: which roughly doubles the peak the test is trying to pin.
PROBE = 4096


def test_streaming_build_memory_scale_check(benchmark, monkeypatch):
    """Chunk-bounded transients + phase attribution, CI-sized."""
    import repro.graphs.arrays as arrays_mod

    n, p = 2000, 0.5  # ~10^6 undirected pairs
    chunk = 1 << 11
    monkeypatch.setattr(arrays_mod, "GNP_V2_STREAM_CHUNK", chunk)

    def measure():
        with profile_phases(trace=True) as prof:
            ga = arrays_mod.gnp_arrays_v2(n, p, seed=5, stream=True)
            current, peak = tracemalloc.get_traced_memory()
        return ga, prof, current, peak

    (ga, prof, current, peak), _ = timed_once(benchmark, measure)

    assert ga.m > 1_500_000  # really a dense 10^6-edge family
    # Same bound tier-1 pins in tests/test_engine_memory.py: O(n) node
    # arrays plus a generous multiple of the in-flight chunk.
    transient_bound = 8 * 64 * n + 256 * chunk
    assert peak - current <= transient_bound, (
        f"streaming build transient {peak - current} exceeds "
        f"{transient_bound} (peak {peak}, persistent {current})"
    )
    report = prof.report()
    assert {"sample", "csr_build"} <= set(report)
    assert report["sample"]["calls"] >= 2  # two passes over the stream
    print()
    record(
        benchmark,
        directed_edges=ga.m,
        transient_bytes=peak - current,
        sample_calls=report["sample"]["calls"],
    )


def test_gnp_1e8_sampler_pipeline(benchmark):
    def measure():
        with profile_phases(trace=True) as prof:
            ga = make_family_arrays(
                "gnp-sparse", N, seed=SEED0, graph_rng="batched"
            )
        return ga, prof

    (ga, prof), elapsed = timed_once(benchmark, measure)

    assert ga.n == N
    assert int(ga.deg.sum()) == ga.m
    # CSR invariants, spot-checked (see PROBE): grev is the reverse-edge
    # involution, so src[grev[i]] == dst[i] at every probed edge.
    probe = np.linspace(0, ga.m - 1, PROBE).astype(np.int64)
    assert (ga.src[ga.grev[probe]] == ga.dst[probe]).all()
    assert (ga.dst[ga.grev[probe]] == ga.src[probe]).all()

    summary = prof.summary()
    peak_traced_mb = max(
        entry.get("peak_traced_mb", 0.0) for entry in summary["phases"].values()
    )
    assert peak_traced_mb <= MEMORY_ENVELOPE_GB * 1024.0, (
        f"10^8 sampler peak {peak_traced_mb:.0f} MB exceeds the "
        f"{MEMORY_ENVELOPE_GB} GB documented envelope"
    )
    print()
    record(
        benchmark,
        directed_edges=ga.m,
        mean_degree=round(ga.m / N, 3),
        peak_traced_mb=round(peak_traced_mb, 1),
        peak_rss_mb=summary.get("peak_rss_mb"),
        wall_clock_s=round(elapsed, 2),
    )
    write_artifact(
        "scale_1e8_sampler",
        config={
            "family": "gnp-sparse", "n": N, "seed": SEED0,
            "graph_rng": "batched",
            "memory_envelope_gb": MEMORY_ENVELOPE_GB,
        },
        plan=RunPlan(
            family="gnp-sparse", n=N, seed=SEED0,
            graph_rng="batched", graph_source="arrays",
        ),
        wall_clock_s=elapsed,
        directed_edges=ga.m,
        mean_degree=round(ga.m / N, 3),
        phases=prof.report(),
        peak_traced_mb=round(peak_traced_mb, 1),
        peak_rss_mb=summary.get("peak_rss_mb"),
    )

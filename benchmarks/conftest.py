"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  Benchmarks run their measurement exactly
once via ``once(benchmark, fn)`` -- the interesting output is the *measured
numbers* (stored in ``benchmark.extra_info`` and printed), not the timing
statistics, though those come for free.

The CI entry points additionally write machine-readable
``benchmarks/artifacts/BENCH_<name>.json`` files (config, wall-clock,
measured series) via :func:`write_artifact`, so the perf trajectory is
tracked across PRs; ``benchmarks/perf_smoke.py --check`` compares a fixed
config against the committed baselines and fails CI on a >2x slowdown.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

#: Where the committed machine-readable benchmark artifacts live.
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def once(benchmark, fn: Callable[[], Any]) -> Any:
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed_once(benchmark, fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Like :func:`once`, also returning the measured wall-clock seconds."""
    start = time.perf_counter()
    result = once(benchmark, fn)
    return result, time.perf_counter() - start


def record(benchmark, **info: Any) -> None:
    """Attach measured values to the benchmark JSON and print them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
        print(f"  {key} = {value}")


def write_artifact(
    name: str,
    *,
    config: Dict[str, Any],
    plan: Any = None,
    wall_clock_s: Optional[float] = None,
    **data: Any,
) -> Optional[Path]:
    """Write ``benchmarks/artifacts/BENCH_<name>.json`` (committed to git).

    One artifact per benchmark entry point: the exact config that was
    measured, the wall-clock it took, and whatever measured series the
    benchmark wants tracked across PRs.

    ``plan`` is the :class:`repro.plan.RunPlan` the benchmark measured
    (or a dict of several, keyed by measurement name, for benches that
    measure more than one configuration); its canonical serialization is
    embedded as ``config["plan"]`` / ``config["plans"]``, so the
    committed artifact states the *complete* validated knob
    configuration and ``benchmarks/check_artifacts.py`` can re-validate
    it against the current registries.

    The committed files are only rewritten when ``BENCH_UPDATE_ARTIFACTS``
    is set (CI sets it; refresh locally with
    ``BENCH_UPDATE_ARTIFACTS=1 pytest benchmarks/... --benchmark-disable``).
    Otherwise wall-clock noise from every local benchmark run would dirty
    the working tree.
    """
    if not os.environ.get("BENCH_UPDATE_ARTIFACTS"):
        print(f"  artifact skipped (BENCH_UPDATE_ARTIFACTS unset): {name}")
        return None
    ARTIFACT_DIR.mkdir(exist_ok=True)
    if plan is not None:
        config = dict(config)
        if isinstance(plan, dict):
            config["plans"] = {
                key: one.to_dict() for key, one in sorted(plan.items())
            }
        else:
            config["plan"] = plan.to_dict()
    payload: Dict[str, Any] = {"bench": name, "config": config}
    if wall_clock_s is not None:
        payload["wall_clock_s"] = round(wall_clock_s, 3)
    payload.update(data)
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  artifact -> {path}")
    return path

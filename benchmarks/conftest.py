"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  Benchmarks run their measurement exactly
once via ``once(benchmark, fn)`` -- the interesting output is the *measured
numbers* (stored in ``benchmark.extra_info`` and printed), not the timing
statistics, though those come for free.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Any, Callable


def once(benchmark, fn: Callable[[], Any]) -> Any:
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def record(benchmark, **info: Any) -> None:
    """Attach measured values to the benchmark JSON and print them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
        print(f"  {key} = {value}")

"""E19 -- the complete engine matrix: the six-algorithm Table 1, vectorized.

PR 4 closes the engine matrix: ``ghaffari`` and ``abi`` gain
phase-lockstep vectorized engines (``repro.sim.fast_phased``), so every
algorithm the paper's Table 1 compares now runs vectorized under
``engine="auto"``.  Acceptance bar: the *full* six-algorithm Table 1
pipeline at n = 300 must run at least 3x faster end-to-end on ``auto``
than with every algorithm forced onto the generator engine -- while
producing *identical* table values (the engines are bit-for-bit
equivalent).  Before this PR the two marking baselines dragged any table
or sweep that included them back to generator-era wall clocks; this
benchmark is the committed witness that the fallback is gone.
"""

import time

from conftest import once, record, write_artifact

from repro.analysis.tables import build_table1
from repro.plan import RunPlan

N = 300
TRIALS = 6
SEED0 = 1
#: The full Table 1 baseline set -- every registered algorithm.
ALGORITHMS = (
    "luby", "abi", "greedy", "ghaffari", "sleeping", "fast-sleeping"
)


def _time_table1(**kwargs) -> tuple:
    """Build the table twice, keep the faster time (damps scheduler
    noise, which otherwise dwarfs the sub-second vectorized side)."""
    table, best = None, float("inf")
    for _ in range(2):
        start = time.perf_counter()
        table = build_table1(
            sizes=(N,), trials=TRIALS, seed0=SEED0, algorithms=ALGORITHMS,
            **kwargs,
        )
        best = min(best, time.perf_counter() - start)
    return table, best


def test_table1_all6_speedup_at_n300(benchmark):
    def measure():
        # Warm imports/caches with a tiny run so the generator side does
        # not pay first-call costs the vectorized side then skips.
        build_table1(sizes=(64,), trials=1, algorithms=("luby",))
        reference, generators_s = _time_table1(engine="generators")
        vectorized, auto_s = _time_table1(engine="auto")
        _, batched_s = _time_table1(engine="auto", rng="batched")
        return reference, vectorized, generators_s, auto_s, batched_s

    reference, vectorized, generators_s, auto_s, batched_s = once(
        benchmark, measure
    )

    # Identical values: completing the engine matrix must not move a
    # single cell of the table.
    assert reference.rows == vectorized.rows

    speedup = generators_s / auto_s
    speedup_batched = generators_s / batched_s
    print()
    record(
        benchmark,
        generators_s=round(generators_s, 3),
        auto_s=round(auto_s, 3),
        batched_s=round(batched_s, 3),
        speedup=round(speedup, 2),
        speedup_batched=round(speedup_batched, 2),
    )
    write_artifact(
        "table1_all6",
        config={
            "n": N, "trials": TRIALS, "seed0": SEED0,
            "algorithms": list(ALGORITHMS),
        },
        plan={
            "generators": RunPlan(family="gnp-sparse", engine="generators"),
            "auto": RunPlan(family="gnp-sparse", engine="auto"),
            "auto_batched": RunPlan(
                family="gnp-sparse", engine="auto", rng="batched"
            ),
        },
        wall_clock_s=generators_s + auto_s + batched_s,
        generators_s=round(generators_s, 3),
        auto_s=round(auto_s, 3),
        batched_s=round(batched_s, 3),
        speedup=round(speedup, 2),
        speedup_batched=round(speedup_batched, 2),
    )
    # The PR 4 acceptance bar: >= 3x end-to-end with all six algorithms
    # vectorized.  (Measured well above the bar on the reference
    # container -- the artifact records the exact value; the two marking
    # baselines alone were >10x slower on the generator engine.)
    assert speedup >= 3.0, f"all-6 Table 1 speedup regressed to {speedup:.2f}x"

"""E11 -- Section 1.1: the energy story on sensor-like topologies.

The sleeping model's premise: idle listening costs nearly as much as
receiving, sleeping costs almost nothing.  We run the MIS algorithms on
random geometric graphs (the standard sensor-network model) and account
energy two ways:

* **ideal** (the paper's abstraction): sleep is free -- energy == total
  awake rounds;
* **measured-shape weights** (Feeney--Nilsson): sleep costs 5% of
  receiving -- which exposes Algorithm 1's Theta(n^3) schedule as
  impractical and motivates Algorithm 2.
"""

from conftest import once, record

from repro.api import solve_mis
from repro.graphs import assert_valid_mis, random_geometric
from repro.sim.energy import DEFAULT_MODEL, IDEAL_MODEL

N = 512


def test_energy_accounting(benchmark):
    def measure():
        graph = random_geometric(N, seed=19)
        out = {}
        for algorithm in ("luby", "ghaffari", "sleeping", "fast-sleeping"):
            result = solve_mis(graph, algorithm=algorithm, seed=19)
            assert_valid_mis(graph, result.mis)
            out[algorithm] = (
                IDEAL_MODEL.total_energy(result),
                DEFAULT_MODEL.total_energy(result),
                result.node_averaged_awake_complexity,
            )
        return out

    data = once(benchmark, measure)
    print()
    for algorithm, (ideal, weighted, avg_awake) in data.items():
        print(
            f"  {algorithm:14s} ideal={ideal:10.0f} "
            f"weighted={weighted:14.0f} avg_awake={avg_awake:6.2f}"
        )
        record_key = algorithm.replace("-", "_")
        benchmark.extra_info[f"{record_key}_ideal"] = round(ideal, 1)
        benchmark.extra_info[f"{record_key}_weighted"] = round(weighted, 1)

    # Ideal model: sleeping algorithms spend O(n) total awake energy.
    assert data["sleeping"][0] <= 12 * N
    assert data["fast-sleeping"][0] <= 12 * N
    # Ghaffari (the node-centric traditional baseline) pays more total
    # awake time than the sleeping algorithms on these graphs.
    assert data["ghaffari"][0] > data["fast-sleeping"][0]

    # Non-zero sleep current: Algorithm 1's n^3 schedule dominates
    # everything -- the practical argument for Algorithm 2.
    assert data["sleeping"][1] > 100 * data["fast-sleeping"][1]


def test_energy_scales_linearly_for_sleeping(benchmark):
    """Total ideal energy of the sleeping algorithms is Theta(n)."""

    def measure():
        totals = []
        sizes = (128, 256, 512, 1024)
        for n in sizes:
            graph = random_geometric(n, seed=n)
            result = solve_mis(graph, algorithm="fast-sleeping", seed=n)
            totals.append(IDEAL_MODEL.total_energy(result) / n)
        return sizes, totals

    sizes, per_node = once(benchmark, measure)
    print()
    record(benchmark, per_node_energy=[round(t, 2) for t in per_node])
    # Per-node energy flat => total linear.
    assert max(per_node) <= 1.8 * min(per_node)

"""E7 -- Lemmas 9 and 15: O(log n) worst-case awake complexity.

Algorithm 1: a node is awake at most 3 rounds per recursion level, so at
most ``3 (K + 1) = O(log n)`` rounds, deterministically.

Algorithm 2: depth contributes ``O(log log n)`` and the greedy base window
``O(log n)`` w.h.p.

We fit ``a + b log2 n`` to the measured maxima and assert a good fit with a
sane slope, plus the deterministic per-level cap for Algorithm 1.
"""

from conftest import once, record

from repro.analysis import fit_logarithmic, mean_by_size, sweep
from repro.core import schedule

SIZES = (64, 128, 256, 512, 1024)
TRIALS = 3


def test_algorithm1_worst_awake_logarithmic(benchmark):
    rows = once(
        benchmark,
        lambda: sweep("sleeping", "gnp-sparse", sizes=SIZES, trials=TRIALS, seed0=31),
    )
    ns, means = mean_by_size(rows, "worst_case_awake")
    fit = fit_logarithmic(ns, means)
    print()
    record(
        benchmark,
        means=[round(m, 1) for m in means],
        fit=str(fit),
    )
    assert fit.r_squared > 0.7
    assert 0 < fit.params[1] < 15  # slope: a few awake rounds per log2 n

    # The deterministic cap: 3 awake rounds per level.
    for row in rows:
        assert row.worst_case_awake <= 3 * (
            schedule.recursion_depth(row.n) + 1
        )


def test_algorithm2_worst_awake_logarithmic(benchmark):
    rows = once(
        benchmark,
        lambda: sweep(
            "fast-sleeping", "gnp-sparse", sizes=SIZES, trials=TRIALS, seed0=31
        ),
    )
    ns, means = mean_by_size(rows, "worst_case_awake")
    fit = fit_logarithmic(ns, means)
    print()
    record(benchmark, means=[round(m, 1) for m in means], fit=str(fit))
    assert fit.r_squared > 0.7
    # Cap: 3 per truncated level + the greedy window (c log n).
    for row in rows:
        cap = 3 * (schedule.truncated_depth(row.n) + 1) + schedule.greedy_rounds(
            row.n
        )
        assert row.worst_case_awake <= cap

"""E21 -- scale: breaking the 10^7-node barrier.

ROADMAP named the three constraints left after the 10^6 push: v1
``"pernode"`` seeding cost, per-phase O(n) scans in the phased marking
engines, and the CSR-build argsort plus unbounded pair buffering in the
sampler.  This file pins the state after removing all three (memoized
bulk seeding in :mod:`repro.sim.rng`, the node-frontier phased engine,
and the direct O(m) / streaming two-pass CSR build of
:meth:`GraphArrays.from_distinct_pairs` /
:meth:`GraphArrays.from_distinct_pair_chunks`), in two stages:

* ``test_gnp_1e7_sampler_smoke`` -- the sampler alone: a 10^7-node
  gnp-sparse graph sampled straight into CSR arrays on the v2 stream
  through the **streaming** build (``stream="auto"`` crosses the
  threshold at this size), re-sampling the counter stream on the second
  pass instead of buffering 4x10^7 pairs.  Cheap enough for the per-PR
  CI smoke; the deterministic edge count is the tracked series.
* ``test_sleeping_1e7_pipeline`` -- the headline: one 10^7-node
  sleeping-MIS (Algorithm 1) trial end-to-end -- sample, simulate,
  validate, flatten -- on the fully batched pipeline
  (``graph_rng="batched"`` + ``rng="batched"``), in bounded memory,
  with the paper's O(1) node-averaged awake complexity asserted at
  10^7.  Alongside it, the v1 ``"pernode"`` seeding floor: building
  every node stream via :func:`repro.sim.rng.node_rng_bulk` must stay
  >= 2x faster than the historical per-node constructor loop at 10^6
  nodes, values bit-for-bit identical.  (Excluded from the CI smoke
  budget via ``-k "not pipeline"``; the weekly scale job refreshes the
  committed ``BENCH_scale_1e7.json``.)
"""

import gc
import time

from conftest import record, timed_once, write_artifact

from repro.analysis.complexity import sweep
from repro.graphs.arrays import make_family_arrays
from repro.plan import RunPlan
from repro.profiling import profile_phases
from repro.sim.rng import node_rng, node_rng_bulk

N = 10_000_000
SEED0 = 11

#: Size and acceptance floor for the v1 seeding micro-bench: the bulk
#: path (shared prefix bytes, GC paused, C-level ``_random.Random``)
#: vs the historical one-``random.Random``-per-node loop.  The old
#: loop's cost is superlinear (every gc-tracked ``random.Random``
#: accumulates into the generational scans that fire while the next
#: ones are built), so the gap widens with n; 2x10^6 nodes is where the
#: ratio clears ~2.6x on the reference container with enough margin to
#: gate at 2x under runner variance.
SEEDING_N = 2_000_000
SEEDING_FLOOR = 2.0


def test_gnp_1e7_sampler_smoke(benchmark):
    def measure():
        with profile_phases(trace=True) as prof:
            ga = make_family_arrays(
                "gnp-sparse", N, seed=SEED0, graph_rng="batched"
            )
        return ga, prof

    (ga, prof), elapsed = timed_once(benchmark, measure)

    assert ga.n == N
    assert (ga.src[ga.grev] == ga.dst).all()
    assert int(ga.deg.sum()) == ga.m
    print()
    record(
        benchmark,
        directed_edges=ga.m,
        mean_degree=round(ga.m / N, 3),
        wall_clock_s=round(elapsed, 2),
    )
    write_artifact(
        "scale_1e7_sampler",
        config={
            "family": "gnp-sparse", "n": N, "seed": SEED0,
            "graph_rng": "batched",
        },
        plan=RunPlan(
            family="gnp-sparse", n=N, seed=SEED0,
            graph_rng="batched", graph_source="arrays",
        ),
        wall_clock_s=elapsed,
        directed_edges=ga.m,
        phases=prof.report(),
    )


def test_sleeping_1e7_pipeline(benchmark):
    """10^7 nodes end-to-end, plus the >= 2x v1 seeding floor at 10^6."""

    plan = RunPlan(
        algorithm="sleeping", family="gnp-sparse",
        engine="vectorized", rng="batched", graph_rng="batched",
        graph_source="arrays", result="arrays",
    )

    def measure():
        # v1 "pernode" seeding first, on a clean heap (the 10^7 trial
        # leaves gigabytes of allocator churn behind that taints the
        # comparison): old per-node loop once, then -- with the old
        # objects freed so allocator pressure cannot taint the new side
        # -- the bulk path, min of two.  A draw-sample pins bit-for-bit
        # equality of the streams.
        seed = SEED0
        probe = (0, 1, SEEDING_N // 2, SEEDING_N - 1)
        gc.collect()
        start = time.perf_counter()
        old = [node_rng(seed, i) for i in range(SEEDING_N)]
        old_s = time.perf_counter() - start
        old_draws = [old[i].random() for i in probe]
        del old
        gc.collect()
        bulk_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            rngs = node_rng_bulk(seed, range(SEEDING_N))
            bulk_s = min(bulk_s, time.perf_counter() - start)
            new_draws = [rngs[i].random() for i in probe]
            assert new_draws == old_draws, "bulk seeding changed v1 values"
            del rngs
            gc.collect()

        # The 10^7 trial itself: the whole pipeline on the batched
        # streams (a v1-sampler comparison at this size would take
        # minutes in the Python skip loop; the v1 floors live in the
        # 10^6 artifact and the seeding micro-bench above).
        start = time.perf_counter()
        rows = sweep(plan=plan, sizes=(N,), trials=1, seed0=SEED0)
        pipeline_s = time.perf_counter() - start
        return rows, pipeline_s, old_s, bulk_s

    (rows, pipeline_s, old_s, bulk_s), _ = timed_once(benchmark, measure)

    row = rows[0]
    assert (row.valid, row.undecided) == (True, 0)
    # The paper's claim, visible at 10^7: O(1) node-averaged awake.
    assert row.node_averaged_awake < 12.0

    seeding_speedup = old_s / bulk_s
    print()
    record(
        benchmark,
        pipeline_s=round(pipeline_s, 2),
        node_avg_awake=round(row.node_averaged_awake, 3),
        seeding_old_s=round(old_s, 2),
        seeding_bulk_s=round(bulk_s, 2),
        speedup=round(seeding_speedup, 2),
    )
    assert seeding_speedup >= SEEDING_FLOOR, (
        f"bulk v1 seeding only {seeding_speedup:.2f}x vs the per-node "
        f"constructor loop at n={SEEDING_N} (floor {SEEDING_FLOOR}x)"
    )
    write_artifact(
        "scale_1e7",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": [N], "trials": 1, "seed0": SEED0,
            "engine": "vectorized", "rng": "batched",
            "graph_rng": "batched", "graph_source": "arrays",
            "result": "arrays",
            "seeding": {"n": SEEDING_N, "rng": "pernode"},
        },
        plan=plan,
        wall_clock_s=pipeline_s,
        node_avg_awake=round(row.node_averaged_awake, 3),
        seeding={
            "old_s": round(old_s, 3),
            "bulk_s": round(bulk_s, 3),
            "speedup": round(seeding_speedup, 3),
            "speedup_floor": SEEDING_FLOOR,
        },
    )

"""E1 -- Table 1: all four complexity measures, all algorithms.

Paper claim (Table 1):

================  ===========  ============  ==================
measure           prior algos  Algorithm 1   Algorithm 2
================  ===========  ============  ==================
node-avg awake    n/a          O(1)          O(1)
worst awake       n/a          O(log n)      O(log n)
worst rounds      O(log n)     O(n^3)        O(log^3.41 n)
node-avg rounds   O(log n)     O(n^3)        O(log^3.41 n)
================  ===========  ============  ==================

We regenerate the table with measured values on sparse G(n, p) graphs and
assert the qualitative shape: the sleeping algorithms' node-averaged awake
complexity stays flat while their wall clocks split by orders of magnitude.
"""

from conftest import record, timed_once, write_artifact

from repro.analysis.complexity import mean_by_size, sweep
from repro.analysis.tables import build_table1
from repro.plan import RunPlan

SIZES = (64, 128, 256)
TRIALS = 2
#: The knob configuration Table 1 is measured under; build_table1 derives
#: the per-algorithm variants via plan.replace(algorithm=...).
TABLE_PLAN = RunPlan(family="gnp-sparse", engine="auto", result="auto")


def test_table1_full(benchmark):
    """Regenerate Table 1 and check who wins on each measure."""

    def measure():
        # engine="auto" routes every algorithm in the table through the
        # vectorized engines (see bench_table1_all6.py for the measured
        # auto-vs-generators ratio of the full six-algorithm table).
        return build_table1(sizes=SIZES, plan=TABLE_PLAN, trials=TRIALS, seed0=1)

    table, elapsed = timed_once(benchmark, measure)
    print()
    print(table.to_text())

    data = {}
    for algorithm in ("luby", "sleeping", "fast-sleeping"):
        rows = sweep(
            plan=TABLE_PLAN.replace(algorithm=algorithm),
            sizes=SIZES, trials=TRIALS, seed0=1,
        )
        for measure_name in ("node_averaged_awake", "worst_case_rounds"):
            _, means = mean_by_size(rows, measure_name)
            data[(algorithm, measure_name)] = means

    # Shape 1: sleeping algorithms' node-averaged awake is flat in n.
    for algorithm in ("sleeping", "fast-sleeping"):
        means = data[(algorithm, "node_averaged_awake")]
        assert max(means) <= 2.0 * min(means)

    # Shape 2: Algorithm 1's rounds are cubic (x8 per doubling).
    slow = data[("sleeping", "worst_case_rounds")]
    assert 6.0 <= slow[1] / slow[0] <= 10.0
    assert 6.0 <= slow[2] / slow[1] <= 10.0

    # Shape 3: Algorithm 2's rounds are orders of magnitude below Alg 1
    # but above Luby's.
    fast = data[("fast-sleeping", "worst_case_rounds")]
    luby = data[("luby", "worst_case_rounds")]
    assert fast[-1] * 100 < slow[-1]
    assert luby[-1] < fast[-1]

    record(
        benchmark,
        sleeping_awake=data[("sleeping", "node_averaged_awake")],
        fast_awake=data[("fast-sleeping", "node_averaged_awake")],
        sleeping_rounds=slow,
        fast_rounds=fast,
        luby_rounds=luby,
    )
    write_artifact(
        "table1",
        config={
            "sizes": list(SIZES), "trials": TRIALS, "seed0": 1,
            "engine": "auto",
        },
        plan=TABLE_PLAN,
        wall_clock_s=elapsed,
        sleeping_awake=data[("sleeping", "node_averaged_awake")],
        fast_awake=data[("fast-sleeping", "node_averaged_awake")],
        sleeping_rounds=slow,
        fast_rounds=fast,
        luby_rounds=luby,
    )

"""E12 -- Ablations of the design constants.

Three knobs the paper fixes by analysis; we sweep each:

1. **Coin bias p** (paper: fair coins).  The pruning constant is
   ``E|R|/|U| <= p^2 + (1-p)/2`` -- minimized near p = 1/2; biasing coins
   degrades pruning and hence the node-averaged cost.
2. **Truncation depth** around ``ell * log log n`` (paper: ell = 2.41).
   Shallower trees push more nodes into the greedy base (more awake time in
   the window); deeper trees lengthen the wall clock; the paper's depth
   balances them.
3. **Greedy window constant c** (paper: "some large fixed constant").
   Too small truncates base cases (Monte Carlo failures); larger c only
   stretches the wall clock linearly.
"""

import statistics

import networkx as nx
from conftest import once

from repro.analysis import pruning_summary
from repro.api import solve_mis
from repro.core import FastSleepingMIS, schedule
from repro.graphs import is_maximal_independent_set
from repro.sim import Simulator

N = 256


def test_coin_bias_ablation(benchmark):
    biases = (0.3, 0.5, 0.7)

    def measure():
        out = {}
        for bias in biases:
            fractions = []
            awake = []
            for seed in range(3):
                graph = nx.gnp_random_graph(N, 8.0 / N, seed=seed)
                result = solve_mis(
                    graph, algorithm="sleeping", seed=seed, coin_bias=bias
                )
                fractions.append(pruning_summary([result]).recursion_fraction)
                awake.append(result.node_averaged_awake_complexity)
            out[bias] = (
                statistics.fmean(fractions),
                statistics.fmean(awake),
            )
        return out

    data = once(benchmark, measure)
    print()
    for bias, (fraction, awake) in data.items():
        print(
            f"  p={bias}: recursion fraction={fraction:.3f} "
            f"avg awake={awake:.2f}"
        )
        benchmark.extra_info[f"bias_{bias}"] = round(fraction, 4)
    # Fair coins should not be worse than the biased settings on the
    # combined recursion fraction (the paper's 3/4 envelope).
    assert data[0.5][0] <= max(data[0.3][0], data[0.7][0]) + 0.02


def test_truncation_depth_ablation(benchmark):
    paper_depth = schedule.truncated_depth(N)
    depths = (
        max(1, paper_depth - 2),
        paper_depth,
        paper_depth + 2,
    )

    def measure():
        out = {}
        for depth in depths:
            graph = nx.gnp_random_graph(N, 8.0 / N, seed=5)
            result = Simulator(
                graph, lambda v, d=depth: FastSleepingMIS(depth=d), seed=5
            ).run()
            assert is_maximal_independent_set(graph, result.mis)
            out[depth] = (
                result.rounds,
                result.node_averaged_awake_complexity,
            )
        return out

    data = once(benchmark, measure)
    print()
    for depth, (rounds, awake) in data.items():
        marker = " <- paper" if depth == paper_depth else ""
        print(f"  depth={depth}: rounds={rounds} avg_awake={awake:.2f}{marker}")
        benchmark.extra_info[f"depth_{depth}_rounds"] = rounds
    # Wall clock doubles per extra level (schedule), so deeper > paper.
    assert data[depths[2]][0] > data[depths[1]][0] > data[depths[0]][0]
    # Node-averaged awake stays O(1) at every depth in this range.
    assert all(awake < 15 for _, awake in data.values())


def test_greedy_constant_ablation(benchmark):
    constants = (1, 4, 8, 16)

    def measure():
        out = {}
        for c in constants:
            truncated = 0
            undecided = 0
            rounds = 0
            for seed in range(3):
                graph = nx.gnp_random_graph(N, 8.0 / N, seed=seed)
                result = Simulator(
                    graph,
                    lambda v, c=c: FastSleepingMIS(greedy_constant=c),
                    seed=seed,
                ).run()
                truncated += sum(
                    1
                    for p in result.protocols.values()
                    if p.base_truncated
                )
                undecided += len(result.undecided)
                rounds = result.rounds
            out[c] = (truncated, undecided, rounds)
        return out

    data = once(benchmark, measure)
    print()
    for c, (truncated, undecided, rounds) in data.items():
        print(
            f"  c={c:2d}: truncated_nodes={truncated} "
            f"undecided={undecided} rounds={rounds}"
        )
        benchmark.extra_info[f"c_{c}_truncated"] = truncated
    # Generous constants never truncate; rounds grow monotonically in c.
    assert data[8][0] == 0 and data[8][1] == 0
    assert data[16][0] == 0
    assert data[16][2] > data[8][2] > data[4][2]

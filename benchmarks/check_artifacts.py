#!/usr/bin/env python
"""Fail when a regenerated benchmark artifact's *series* drifts from git.

The benchmark entry points write machine-readable
``benchmarks/artifacts/BENCH_<name>.json`` files that are committed to
git.  Their measured *series* (table cells, per-size means, round counts,
...) are deterministic -- fixed seeds, versioned RNG streams, bit-for-bit
equivalent engines -- so on a healthy tree a CI re-run reproduces every
committed value exactly; only wall clocks and wall-clock-derived ratios
may move between machines.  Historically a series drift (an engine change
that silently moved measured values) only surfaced when someone re-ran
the benches locally and noticed a dirty diff; CI now runs this check
right after the benchmark smoke regenerates the artifacts in place.

Usage (compares the working tree against ``HEAD``)::

    python benchmarks/check_artifacts.py           # check, exit 1 on drift
    python benchmarks/check_artifacts.py --list    # show compared files

Every ``benchmarks/artifacts/BENCH_*.json`` in the tree is compared --
new artifacts (e.g. ``BENCH_scale_1e6.json`` and
``BENCH_scale_1e6_sampler.json``, the 10^6-node scale pins) are picked up
by the glob automatically; a file with no committed counterpart is
reported as NEW rather than failed, since there is nothing to drift from
yet (it still has to be committed with its PR).

Wall-clock-key ignore list
--------------------------
Timing-dependent fields are stripped before comparison, and nothing
else is:

* any key ending in ``_s`` -- raw wall-clock seconds, wherever they
  appear (``wall_clock_s``, ``legacy_pipeline_s``,
  ``batched_sampler_pipeline_s``, ``calibration_s``, ...);
* any key ending in ``_mb`` -- measured memory peaks
  (``peak_traced_mb``, ``peak_rss_mb``, the per-phase peaks inside a
  ``phases`` block): allocator behaviour and interpreter version move
  them between machines even though the series they sit beside are
  deterministic;
* the wall-clock *ratio* keys named in :data:`TIMING_KEYS`
  (``speedup``, ``speedup_batched``) -- ratios of two wall clocks move
  with the machine even though each side is measured honestly (the
  asserted floors like ``speedup_floor`` are config constants and stay
  compared);
* per-bench keys in :data:`BENCH_TIMING_KEYS`: ``perf_smoke``'s
  calibrated ``measurements`` are machine-relative units by design (its
  regression gate is ``perf_smoke.py --check``, not this script).

Everything else -- configs and measured series (table cells, edge
counts, per-size means, round counts) -- must match the committed JSON
exactly.

Plan validation
---------------
Every artifact's ``config`` block must carry the canonical serialized
:class:`repro.plan.RunPlan` it was measured with -- ``config.plan`` for
single-configuration benches, ``config.plans`` (one plan per measurement
name) for multi-configuration ones.  Each embedded plan is re-parsed via
``RunPlan.from_dict`` against the *current* registries, so an artifact
whose recorded configuration is no longer constructible (renamed
algorithm, dropped knob value, unsupported combination) fails the check
instead of silently rotting.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Iterator, List, Tuple

REPO = Path(__file__).resolve().parents[1]
ARTIFACT_DIR = REPO / "benchmarks" / "artifacts"

#: Exact key names whose values are wall-clock-derived in any artifact.
TIMING_KEYS = {"speedup", "speedup_batched"}

#: Per-bench keys that are machine-relative by design, not a series.
#: perf_smoke's calibrated units are gated by `perf_smoke.py --check`
#: against its own tolerance, not by exact equality here.
BENCH_TIMING_KEYS = {"perf_smoke": {"measurements"}}


def _is_timing_key(key: str, extra: frozenset) -> bool:
    return (
        key in TIMING_KEYS
        or key in extra
        or key.endswith("_s")
        or key.endswith("_mb")
    )


def _strip_timing(value: Any, extra: frozenset = frozenset()) -> Any:
    """Drop timing-dependent fields, recursively, keeping everything else."""
    if isinstance(value, dict):
        return {
            k: _strip_timing(v, extra)
            for k, v in value.items()
            if not _is_timing_key(k, extra)
        }
    if isinstance(value, list):
        return [_strip_timing(v, extra) for v in value]
    return value


def _embedded_plans(artifact: Any) -> List[Tuple[str, Any]]:
    """``(label, plan dict)`` pairs found in the artifact's config block."""
    config = artifact.get("config") if isinstance(artifact, dict) else None
    if not isinstance(config, dict):
        return []
    found: List[Tuple[str, Any]] = []
    if "plan" in config:
        found.append(("config.plan", config["plan"]))
    for key, value in sorted(config.get("plans", {}).items()):
        found.append((f"config.plans.{key}", value))
    return found


def _plan_errors(artifact: Any) -> List[str]:
    """Validate every embedded serialized plan; return error strings."""
    try:
        from repro.plan import RunPlan
    except ImportError:
        sys.path.insert(0, str(REPO / "src"))
        from repro.plan import RunPlan
    plans = _embedded_plans(artifact)
    if not plans:
        return [
            "config block carries no serialized RunPlan "
            "(config.plan / config.plans); regenerate with "
            "BENCH_UPDATE_ARTIFACTS=1"
        ]
    errors = []
    for label, data in plans:
        try:
            RunPlan.from_dict(data)
        except (TypeError, ValueError) as exc:
            errors.append(f"{label}: {exc}")
    return errors


def _phases_errors(artifact: Any) -> List[str]:
    """Validate an artifact's ``phases`` block, when it carries one.

    The block is written by :class:`repro.profiling.PhaseProfiler`
    (``report()``): one entry per profiled phase with a deterministic
    positive-int ``calls`` (the compared series), a ``wall_s`` float,
    and optionally a ``peak_traced_mb`` float (both stripped before the
    drift comparison).  A malformed block means a benchmark bypassed
    the profiler and hand-rolled the dict -- fail it here rather than
    committing an artifact the drift check silently half-ignores.
    """
    phases = artifact.get("phases") if isinstance(artifact, dict) else None
    if phases is None:
        return []
    if not isinstance(phases, dict) or not phases:
        return ["phases: must be a non-empty {phase: entry} object"]
    errors = []
    for name, entry in sorted(phases.items()):
        if not isinstance(entry, dict):
            errors.append(f"phases.{name}: entry is not an object")
            continue
        calls = entry.get("calls")
        if not isinstance(calls, int) or isinstance(calls, bool) or calls < 1:
            errors.append(
                f"phases.{name}.calls: expected a positive int, "
                f"got {calls!r}"
            )
        wall = entry.get("wall_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            errors.append(
                f"phases.{name}.wall_s: expected a number, got {wall!r}"
            )
        peak = entry.get("peak_traced_mb")
        if peak is not None and (
            not isinstance(peak, (int, float)) or isinstance(peak, bool)
        ):
            errors.append(
                f"phases.{name}.peak_traced_mb: expected a number, "
                f"got {peak!r}"
            )
        unknown = set(entry) - {"calls", "wall_s", "peak_traced_mb"}
        if unknown:
            errors.append(
                f"phases.{name}: unknown key(s) {sorted(unknown)}"
            )
    return errors


def _committed(path: Path) -> Any:
    """The committed (HEAD) version of ``path``, or None if new in tree."""
    rel = path.relative_to(REPO).as_posix()
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel}"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def _diff_paths(
    committed: Any, regenerated: Any, prefix: str = ""
) -> Iterator[Tuple[str, Any, Any]]:
    """Yield ``(json path, committed, regenerated)`` for every mismatch."""
    if isinstance(committed, dict) and isinstance(regenerated, dict):
        for key in sorted(set(committed) | set(regenerated)):
            where = f"{prefix}.{key}" if prefix else key
            if key not in committed:
                yield where, "<absent>", regenerated[key]
            elif key not in regenerated:
                yield where, committed[key], "<absent>"
            else:
                yield from _diff_paths(
                    committed[key], regenerated[key], where
                )
    elif isinstance(committed, list) and isinstance(regenerated, list):
        if len(committed) != len(regenerated):
            yield prefix, f"len {len(committed)}", f"len {len(regenerated)}"
        else:
            for i, (a, b) in enumerate(zip(committed, regenerated)):
                yield from _diff_paths(a, b, f"{prefix}[{i}]")
    elif committed != regenerated:
        yield prefix, committed, regenerated


def check_artifacts(list_only: bool = False) -> int:
    artifacts: List[Path] = sorted(ARTIFACT_DIR.glob("BENCH_*.json"))
    if not artifacts:
        print("error: no artifacts under benchmarks/artifacts", file=sys.stderr)
        return 2
    failed = False
    for path in artifacts:
        name = path.name
        if list_only:
            print(name)
            continue
        regenerated = json.loads(path.read_text())
        plan_errors = _plan_errors(regenerated)
        if plan_errors:
            failed = True
            print(f"{name:40s} PLAN INVALID")
            for err in plan_errors:
                print(f"    {err}")
            continue
        phases_errors = _phases_errors(regenerated)
        if phases_errors:
            failed = True
            print(f"{name:40s} PHASES INVALID")
            for err in phases_errors:
                print(f"    {err}")
            continue
        committed = _committed(path)
        if committed is None:
            # Brand-new artifact: nothing committed to drift from.  The
            # file itself still has to be committed with the PR.
            print(f"{name:40s} NEW (no committed baseline; commit it)")
            continue
        extra = frozenset(
            BENCH_TIMING_KEYS.get(regenerated.get("bench"), ())
        )
        drift = list(
            _diff_paths(
                _strip_timing(committed, extra),
                _strip_timing(regenerated, extra),
            )
        )
        if drift:
            failed = True
            print(f"{name:40s} SERIES DRIFT")
            for where, a, b in drift:
                print(f"    {where}: committed {a!r} != regenerated {b!r}")
        else:
            print(f"{name:40s} OK")
    if failed:
        print(
            "\nseries drift detected: a benchmark now measures different "
            "values than the committed artifact.  If the change is "
            "intentional, regenerate with BENCH_UPDATE_ARTIFACTS=1 and "
            "commit the refreshed JSON; otherwise an engine change has "
            "silently altered measured results.",
            file=sys.stderr,
        )
    return 1 if failed else 0


def merge_sweep(directories: List[str], output: str = None) -> int:
    """Merge-verify partial sweep result shards (``--merge-sweep``).

    Each directory is a sweep frontier directory (or bare ``results/``
    shard) written by :mod:`repro.sweeps`; overlapping trials must agree
    bit-for-bit modulo the wall-clock/provenance keys this script already
    ignores, and every embedded plan is re-validated against the current
    registries -- the same discipline applied to committed
    ``BENCH_*.json`` artifacts.
    """
    try:
        from repro.sweeps.merge import TrialConflict, merge_shard_dirs
    except ImportError:
        sys.path.insert(0, str(REPO / "src"))
        from repro.sweeps.merge import TrialConflict, merge_shard_dirs
    from repro.plan import RunPlan
    try:
        merged = merge_shard_dirs(directories)
    except TrialConflict as exc:
        print(f"MERGE CONFLICT: {exc}", file=sys.stderr)
        return 1
    failed = False
    for key, payload in sorted(merged.items()):
        plan_data = payload.get("plan")
        if plan_data is None:
            failed = True
            print(f"{key:32s} PLAN MISSING (artifact carries no plan)")
            continue
        try:
            RunPlan.from_dict(plan_data)
        except (TypeError, ValueError) as exc:
            failed = True
            print(f"{key:32s} PLAN INVALID: {exc}")
    if failed:
        return 1
    print(
        f"merged {len(merged)} trial(s) from {len(directories)} shard(s): "
        f"no conflicts, all plans valid"
    )
    if output:
        with open(output, "w") as handle:
            json.dump(
                {key: merged[key] for key in sorted(merged)},
                handle, sort_keys=True, indent=1,
            )
            handle.write("\n")
        print(f"canonical merged result set written to {output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--list", action="store_true", help="list the compared artifacts"
    )
    parser.add_argument(
        "--merge-sweep", nargs="+", metavar="DIR", default=None,
        help=(
            "merge-verify partial sweep result directories (frontier "
            "dirs or bare results/ shards) instead of checking committed "
            "benchmark artifacts; exit 1 on conflicting series"
        ),
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="with --merge-sweep: write the canonical merged JSON here",
    )
    args = parser.parse_args(argv)
    if args.merge_sweep:
        return merge_sweep(args.merge_sweep, output=args.output)
    return check_artifacts(list_only=args.list)


if __name__ == "__main__":
    sys.exit(main())

"""E9 -- Corollary 1: the algorithm computes the lexicographically-first MIS.

``SleepingMISRecursive`` and the randomized greedy MIS produce the *same*
set once the rank order is fixed -- the property that lets Algorithm 2 swap
greedy into the base cases without changing the tree above.  We check exact
set equality between the simulation and the centralized sequential greedy on
the recovered priorities, across families and seeds, for both algorithms.
"""

from conftest import once, record

from repro.analysis import check_lexicographically_first
from repro.api import solve_mis
from repro.graphs import make_family_graph

FAMILIES = ("gnp-sparse", "gnp-dense", "cycle", "star", "tree")
SEEDS = range(5)
N = 96


def _check_all(algorithm):
    checked = 0
    for family in FAMILIES:
        for seed in SEEDS:
            graph = make_family_graph(family, N, seed=seed)
            result = solve_mis(graph, algorithm=algorithm, seed=seed)
            assert check_lexicographically_first(result), (
                algorithm,
                family,
                seed,
            )
            checked += 1
    return checked


def test_algorithm1_equals_greedy(benchmark):
    checked = once(benchmark, lambda: _check_all("sleeping"))
    print()
    record(benchmark, exact_matches=checked, mismatches=0)


def test_algorithm2_equals_greedy(benchmark):
    checked = once(benchmark, lambda: _check_all("fast-sleeping"))
    print()
    record(benchmark, exact_matches=checked, mismatches=0)

"""E3 -- Figure 2: the truncated recursion tree of Algorithm 2.

Figure 2 shows Algorithm 2 cutting the recursion at depth
``ell * log log n`` (ell = 1/log2(4/3)), where -- by Lemma 7 -- only about
``n / log n`` nodes survive to run the greedy base cases, and the tree has
``(log n)^ell`` leaves.  We measure both quantities over several runs and
check they track the predictions (these are expectations, so we assert
generous envelopes rather than tight equality).
"""

import statistics

import networkx as nx
from conftest import once, record

from repro.analysis import base_level_participants, tree_stats, build_tree
from repro.api import solve_mis
from repro.core import schedule

N = 2048
TRIALS = 5


def test_truncation_depth_survivors(benchmark):
    def measure():
        survivors = []
        leaves = []
        for seed in range(TRIALS):
            graph = nx.gnp_random_graph(N, 8.0 / N, seed=seed)
            result = solve_mis(graph, algorithm="fast-sleeping", seed=seed)
            survivors.append(base_level_participants(result))
            leaves.append(tree_stats(build_tree(result))["base_calls"])
        return survivors, leaves

    survivors, leaves = once(benchmark, measure)

    predicted_survivors = schedule.expected_base_participants(N)  # n / log n
    max_leaves = schedule.expected_leaf_count(N)  # (log n)^ell
    mean_survivors = statistics.fmean(survivors)

    print()
    record(
        benchmark,
        n=N,
        truncation_depth=schedule.truncated_depth(N),
        mean_base_participants=mean_survivors,
        predicted_n_over_log_n=round(predicted_survivors, 1),
        mean_realized_base_calls=statistics.fmean(leaves),
        max_possible_leaves=round(max_leaves, 1),
    )

    # Lemma 7 bounds the expectation from above; the truncation depth is a
    # ceiling so the realized decay can overshoot (fewer survivors).  Check
    # the order of magnitude: within [0, ~3x] of n / log n.
    assert mean_survivors <= 3.0 * predicted_survivors
    # Realized base calls cannot exceed the tree's leaf budget.
    assert max(leaves) <= max_leaves

    # The whole run's wall clock is the truncated schedule exactly.
    graph = nx.gnp_random_graph(N, 8.0 / N, seed=0)
    result = solve_mis(graph, algorithm="fast-sleeping", seed=0)
    window = schedule.greedy_rounds(N)
    assert result.rounds == schedule.fast_call_duration(
        schedule.truncated_depth(N), window
    )

"""E4 -- Lemmas 2 and 3 (the Pruning Lemma), measured.

Lemma 2: ``E[|L| | U] <= |U| / 2`` -- at most half of a call's participants
enter the left recursion (fair coins, minus isolated nodes).

Lemma 3: ``E[|R| | U] <= |U| / 4`` -- at most a quarter enter the right
recursion, because with probability >= 1/2 a sleeping node is adjacent to a
sequence-fixed left participant that joins the MIS.

We pool |L|/|U| and |R|/|U| over every internal call of many runs across
three graph families and check the empirical fractions sit at or below the
bounds.
"""

import networkx as nx
from conftest import once, record

from repro.analysis import pruning_summary
from repro.api import solve_mis
from repro.graphs import make_family_graph

FAMILIES = ("gnp-sparse", "regular-4", "tree")
SIZES = (128, 256)
TRIALS = 3


def test_pruning_fractions(benchmark):
    def measure():
        results = []
        for family in FAMILIES:
            for n in SIZES:
                for t in range(TRIALS):
                    seed = 100 * t + n
                    graph = make_family_graph(family, n, seed=seed)
                    results.append(
                        solve_mis(graph, algorithm="sleeping", seed=seed)
                    )
        return pruning_summary(results)

    summary = once(benchmark, measure)

    print()
    record(
        benchmark,
        calls=summary.calls,
        pooled_left_fraction=round(summary.left_fraction, 4),
        lemma2_bound=0.5,
        pooled_right_fraction=round(summary.right_fraction, 4),
        lemma3_bound=0.25,
        pooled_recursion_fraction=round(summary.recursion_fraction, 4),
        lemma7_envelope=0.75,
    )

    # The bounds are on expectations; pooled over hundreds of calls the
    # sample means should respect them with a small noise margin.
    assert summary.calls >= 100
    assert summary.left_fraction <= 0.52
    assert summary.right_fraction <= 0.26
    assert summary.recursion_fraction <= 0.76


def test_pruning_holds_on_dense_graphs(benchmark):
    """The Pruning Lemma is worst-case over graphs: check the dense regime."""

    def measure():
        results = []
        for seed in range(4):
            graph = nx.gnp_random_graph(128, 0.5, seed=seed)
            results.append(solve_mis(graph, algorithm="sleeping", seed=seed))
        return pruning_summary(results)

    summary = once(benchmark, measure)
    print()
    record(
        benchmark,
        dense_left_fraction=round(summary.left_fraction, 4),
        dense_right_fraction=round(summary.right_fraction, 4),
    )
    assert summary.left_fraction <= 0.55
    assert summary.right_fraction <= 0.26

#!/usr/bin/env python
"""Regenerate ``weekly_sweep.json`` -- the weekly CI sweep manifest.

The weekly ``sweep-frontier`` CI job resumes this manifest's disk-backed
frontier for a fixed 50-minute budget (the frontier directory is cached
between runs, so a sweep larger than one budget window completes across
weeks without re-measuring a single trial).  The manifest is committed:
its ``manifest_key`` is the cache identity, so editing the grid here --
and re-running this script -- naturally starts a fresh frontier while
the old cache ages out.

    PYTHONPATH=src python benchmarks/manifests/make_weekly_sweep.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro.plan import RunPlan  # noqa: E402
from repro.sweeps import SweepManifest  # noqa: E402

OUT = Path(__file__).parent / "weekly_sweep.json"

#: The measured grid: the paper's algorithm and the Luby baseline, on the
#: fully batched array pipeline, across three decades-ish of n.  ~1 s per
#: 10^5 trial on a CI runner puts the whole manifest well inside one
#: budget window; the job's value is exercising resume-with-cache weekly
#: (and giving the grid headroom to grow without CI surgery).
PLANS = [
    RunPlan(
        algorithm=algorithm, family="gnp-sparse", engine="vectorized",
        rng="batched", graph_rng="batched", graph_source="arrays",
        result="arrays",
    )
    for algorithm in ("sleeping", "luby")
]
SIZES = (10_000, 31_623, 100_000)
TRIALS = 25


def main() -> int:
    manifest = SweepManifest.expand(
        PLANS, sizes=SIZES, trials=TRIALS, name="weekly-sweep",
    )
    manifest.save(OUT)
    print(
        f"wrote {OUT.relative_to(REPO)}: {len(manifest)} trials, "
        f"manifest_key {manifest.manifest_key()[:12]}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

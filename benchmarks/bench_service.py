"""E23 -- the solve service: cache-warm latency >= 10x better than cold.

The service redesign's headline claim is the *perfect cache*: a solve is
a pure function of ``(plan, seed)``, so a repeated request must be
served from the LRU as stored bytes -- no worker dispatch, no engine
run, no re-serialization.  This bench pins that claim as a latency
ratio on a live server:

* **cold phase** -- three distinct ``(plan, seed)`` solves against a
  fresh server, each a cache miss that crosses the process-pool and
  runs the engine end to end (sample, simulate, validate, flatten);
* **warm phase** -- the same three keys requested five times each,
  concurrently, from thread clients.  Every one must be a cache hit:
  the pool's ``executed`` spy counter stays at 3 and the measured p50
  must beat the cold p50 by ``SPEEDUP_FLOOR`` (the ISSUE acceptance
  criterion; measured two orders of magnitude on the reference
  container, the floor absorbs runner variance).

The tracked series are the deterministic ones: per-seed MIS size and
node-averaged awake complexity (bit-identical to a local
``execute_trial``), cache hit/miss counts, and the executed-solve
count.  Latencies and req/s end in ``_s`` so ``check_artifacts.py``
strips them from drift comparison.
"""

import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import record, timed_once, write_artifact

from repro.plan import RunPlan
from repro.service import ServiceClient, start_service_thread

N = 20_000
SEEDS = (0, 1, 2)
WARM_REPEATS = 5

#: Acceptance floor: cache-warm p50 solve latency vs cold p50 for the
#: same ``(plan, seed)`` keys.  A warm hit is a dict lookup plus an HTTP
#: round-trip (~1 ms); a cold solve at n = 20k crosses the worker pool
#: and runs the full pipeline (~100 ms+), so the measured ratio sits far
#: above this gate.
SPEEDUP_FLOOR = 10.0

PLAN = RunPlan(
    algorithm="fast-sleeping", family="gnp-sparse", n=N, engine="auto"
)


def _timed_solve(client, seed):
    start = time.perf_counter()
    response = client.solve(PLAN.to_dict(), seed=seed)
    return response, time.perf_counter() - start


def _p50_p99(latencies):
    ordered = sorted(latencies)
    p99_index = min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))
    return statistics.median(ordered), ordered[p99_index]


def test_service_cache_warm_vs_cold(benchmark):
    """Warm p50 >= SPEEDUP_FLOOR x better than cold on a live server."""

    def measure():
        with start_service_thread(workers=2, max_queue=64) as handle:
            client = ServiceClient(handle.base_url)

            cold_start = time.perf_counter()
            cold = [_timed_solve(client, seed) for seed in SEEDS]
            cold_elapsed = time.perf_counter() - cold_start

            warm_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(_timed_solve, ServiceClient(handle.base_url), s)
                    for s in SEEDS
                    for _ in range(WARM_REPEATS)
                ]
                warm = [f.result() for f in futures]
            warm_elapsed = time.perf_counter() - warm_start

            counters = handle.service.pool.counters()
            stats = handle.service.cache.stats()
        return cold, cold_elapsed, warm, warm_elapsed, counters, stats

    (cold, cold_elapsed, warm, warm_elapsed, counters, stats), _ = timed_once(
        benchmark, measure
    )

    # Perfect cache: exactly one engine run per distinct key, every warm
    # request a hit, and warm responses byte-level equal to cold ones.
    assert counters["executed"] == len(SEEDS)
    assert stats["misses"] == len(SEEDS)
    assert stats["hits"] == len(SEEDS) * WARM_REPEATS
    by_seed = {resp.seed: resp for resp, _ in cold}
    for resp, _ in warm:
        assert resp == by_seed[resp.seed]
    for resp in by_seed.values():
        assert resp.row["valid"] is True and resp.row["undecided"] == 0

    cold_p50, cold_p99 = _p50_p99([s for _, s in cold])
    warm_p50, warm_p99 = _p50_p99([s for _, s in warm])
    speedup = cold_p50 / warm_p50
    print()
    record(
        benchmark,
        cold_p50_ms=round(cold_p50 * 1e3, 2),
        cold_p99_ms=round(cold_p99 * 1e3, 2),
        warm_p50_ms=round(warm_p50 * 1e3, 3),
        warm_p99_ms=round(warm_p99 * 1e3, 3),
        warm_speedup=round(speedup, 1),
        cache=stats,
    )
    assert warm_p50 * SPEEDUP_FLOOR <= cold_p50, (
        f"cache-warm p50 only {speedup:.1f}x better than cold "
        f"(floor {SPEEDUP_FLOOR}x): warm {warm_p50 * 1e3:.2f} ms vs "
        f"cold {cold_p50 * 1e3:.2f} ms"
    )
    write_artifact(
        "service_smoke",
        config={
            "algorithm": PLAN.algorithm, "family": PLAN.family, "n": N,
            "seeds": list(SEEDS), "warm_repeats": WARM_REPEATS,
            "workers": 2, "max_queue": 64,
        },
        plan=PLAN,
        wall_clock_s=cold_elapsed + warm_elapsed,
        cold_p50_s=round(cold_p50, 4),
        cold_p99_s=round(cold_p99, 4),
        warm_p50_s=round(warm_p50, 5),
        warm_p99_s=round(warm_p99, 5),
        cold_req_per_s=round(len(cold) / cold_elapsed, 2),
        warm_req_per_s=round(len(warm) / warm_elapsed, 2),
        speedup=round(speedup, 1),
        speedup_floor=SPEEDUP_FLOOR,
        executed_solves=counters["executed"],
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
        n_requests=len(cold) + len(warm),
        mis_size={
            str(seed): by_seed[seed].mis_size for seed in SEEDS
        },
        node_avg_awake={
            str(seed): round(by_seed[seed].row["node_averaged_awake"], 3)
            for seed in SEEDS
        },
    )

"""E6 -- Theorem 1 / Lemma 8 & Theorem 2 / Lemma 12: O(1) node-averaged awake.

The headline result: both sleeping algorithms finish with an expected
*constant* number of awake rounds per node, independent of n and of the
graph family.  We sweep three families across a 16x size range and assert
flatness (growth factor near 1, classified as constant by the estimators).
"""

from conftest import record, timed_once, write_artifact

from repro.analysis import classify_growth, growth_factor, mean_by_size, sweep
from repro.plan import RunPlan

SIZES = (64, 128, 256, 512, 1024)
FAMILIES = ("gnp-sparse", "tree", "regular-4")
TRIALS = 3
CONFIG = {
    "sizes": list(SIZES),
    "families": list(FAMILIES),
    "trials": TRIALS,
    "seed0": 23,
    "engine": "vectorized",
}


def _plans(algorithm):
    """One validated plan per measured family (embedded in the artifact)."""
    return {
        family: RunPlan(
            algorithm=algorithm, family=family, engine="vectorized"
        )
        for family in FAMILIES
    }


def _measure(algorithm):
    # Runs through the batch runner on the vectorized engine: identical
    # trial rows to the generator engine, at a fraction of the wall clock.
    series = {}
    for family, plan in _plans(algorithm).items():
        rows = sweep(plan=plan, sizes=SIZES, trials=TRIALS, seed0=23)
        assert all(r.valid for r in rows)
        series[family] = mean_by_size(rows, "node_averaged_awake")
    return series


def test_algorithm1_node_avg_awake_constant(benchmark):
    series, elapsed = timed_once(benchmark, lambda: _measure("sleeping"))
    print()
    for family, (ns, means) in series.items():
        print(f"  {family:12s} " + " ".join(f"{m:6.2f}" for m in means))
        assert growth_factor(ns, means) <= 1.6
        assert classify_growth(ns, means) == "constant"
        assert max(means) < 12.0  # small absolute constant
    means_by_family = {
        f"{family}_means": [round(m, 2) for m in series[family][1]]
        for family in FAMILIES
    }
    record(benchmark, **means_by_family)
    write_artifact(
        "node_avg_awake_alg1",
        config={**CONFIG, "algorithm": "sleeping"},
        plan=_plans("sleeping"),
        wall_clock_s=elapsed,
        **means_by_family,
    )


def test_algorithm2_node_avg_awake_constant(benchmark):
    series, elapsed = timed_once(benchmark, lambda: _measure("fast-sleeping"))
    print()
    for family, (ns, means) in series.items():
        print(f"  {family:12s} " + " ".join(f"{m:6.2f}" for m in means))
        assert growth_factor(ns, means) <= 1.6
        assert classify_growth(ns, means) == "constant"
        assert max(means) < 14.0
    means_by_family = {
        f"{family}_means": [round(m, 2) for m in series[family][1]]
        for family in FAMILIES
    }
    record(benchmark, **means_by_family)
    write_artifact(
        "node_avg_awake_alg2",
        config={**CONFIG, "algorithm": "fast-sleeping"},
        plan=_plans("fast-sleeping"),
        wall_clock_s=elapsed,
        **means_by_family,
    )

"""E10 -- Section 1.5: coloring has O(1) node-averaged complexity; MIS is open.

The paper notes that Luby's (Delta+1)-coloring finishes a constant fraction
of the nodes per phase, giving O(1) node-averaged round complexity in the
*traditional* model -- while no MIS algorithm is known to do the same
(which is exactly the gap the sleeping model closes).  We measure the
node-averaged finish round of the coloring against the MIS baselines on
dense random graphs, where per-phase node progress is hardest.
"""

from conftest import once, record

from repro.analysis import classify_growth, growth_factor
from repro.api import solve_mis
from repro.baselines import LubyColoring
from repro.graphs import is_proper_coloring, make_family_graph
from repro.sim import Simulator

SIZES = (64, 128, 256, 512)


def test_coloring_node_averaged_constant(benchmark):
    def measure():
        means = []
        for n in SIZES:
            graph = make_family_graph("gnp-dense", n, seed=n)
            result = Simulator(graph, lambda v: LubyColoring(), seed=n).run()
            assert is_proper_coloring(graph, result.outputs)
            means.append(result.node_averaged_round_complexity)
        return means

    means = once(benchmark, measure)
    print()
    record(benchmark, coloring_means=[round(m, 2) for m in means])
    assert growth_factor(SIZES, means) <= 1.6
    assert classify_growth(SIZES, means) == "constant"


def test_ghaffari_node_averaged_grows(benchmark):
    """Ghaffari's node-centric bound is Theta(log deg): it must grow on
    dense graphs, in contrast with the coloring."""

    def measure():
        means = []
        for n in SIZES:
            graph = make_family_graph("gnp-dense", n, seed=n)
            result = solve_mis(graph, algorithm="ghaffari", seed=n)
            means.append(result.node_averaged_round_complexity)
        return means

    means = once(benchmark, measure)
    print()
    record(benchmark, ghaffari_means=[round(m, 2) for m in means])
    assert means[-1] > 1.3 * means[0]


def test_sleeping_matches_coloring_guarantee(benchmark):
    """The paper's point: in the sleeping model, MIS gets the same O(1)
    per-node average that coloring enjoys traditionally."""

    def measure():
        means = []
        for n in SIZES:
            graph = make_family_graph("gnp-dense", n, seed=n)
            result = solve_mis(graph, algorithm="fast-sleeping", seed=n)
            means.append(result.node_averaged_awake_complexity)
        return means

    means = once(benchmark, measure)
    print()
    record(benchmark, sleeping_awake_means=[round(m, 2) for m in means])
    assert growth_factor(SIZES, means) <= 1.6

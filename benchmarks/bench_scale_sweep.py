"""E17 -- scale: 10^4..10^5-node sweeps on the array-native pipeline.

ROADMAP's scale target made executable, in two stages:

* ``test_sleeping_mis_scale_sweep_batched`` -- a sleeping-MIS
  (Algorithm 1) sweep at n = 10^4 completes in about a second under
  ``rng="batched"`` on the (default) array-native pipeline: graphs are
  sampled straight into CSR edge arrays (``graph_source="auto"``) and
  trial statistics stay numpy columns (``result="auto"``), while the
  headline O(1) node-averaged awake measure stays flat and every output
  is a valid MIS.
* ``test_sleeping_1e5_array_native_speedup`` -- the 10^5-node
  demonstration: the same seeded trial measured end-to-end on the PR 2
  pipeline (networkx graph build + per-node ``NodeStats`` dicts + dict
  validation) and on the array-native pipeline (direct-to-CSR sampling +
  ``ArrayRunResult`` + O(m) numpy validation).  Identical measured
  values, >= 1.7x end-to-end -- the committed ``BENCH_scale_1e5.json``
  records both wall clocks.  (Excluded from the CI smoke ``-k`` filter;
  run it locally or via the repro command in EXPERIMENTS.md.)
"""

from conftest import record, timed_once, write_artifact

from repro.analysis.complexity import sweep
from repro.plan import RunPlan

SIZES = (1_000, 10_000)
TRIALS = 3
SEED0 = 11

N_LARGE = 100_000

#: The acceptance floor for the 10^5 array-native path vs the PR 2
#: pipeline, end to end.  Measured ~3.5x on the reference container; the
#: gate sits far below that to absorb runner variance without ever letting
#: the win regress beneath the ROADMAP target.
SPEEDUP_FLOOR = 1.7


SWEEP_PLAN = RunPlan(
    algorithm="sleeping", family="gnp-sparse",
    engine="vectorized", rng="batched", result="auto",
)


def test_sleeping_mis_scale_sweep_batched(benchmark):
    def measure():
        return sweep(plan=SWEEP_PLAN, sizes=SIZES, trials=TRIALS, seed0=SEED0)

    rows, elapsed = timed_once(benchmark, measure)

    assert all(row.valid for row in rows)
    assert all(row.undecided == 0 for row in rows)
    by_size = {
        n: [r.node_averaged_awake for r in rows if r.n == n] for n in SIZES
    }
    means = {n: sum(v) / len(v) for n, v in by_size.items()}
    print()
    record(
        benchmark,
        node_avg_awake={n: round(m, 2) for n, m in means.items()},
        total_trials=len(rows),
        wall_clock_s=round(elapsed, 2),
    )
    # O(1) node-averaged awake holds out to 10^4: a 10x size jump moves
    # the mean by far less than any growing function would.
    assert means[10_000] <= 1.5 * means[1_000]
    assert means[10_000] < 12.0
    write_artifact(
        "scale_sweep",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": list(SIZES), "trials": TRIALS, "seed0": SEED0,
            "engine": "vectorized", "rng": "batched",
            "graph_source": "auto", "result": "auto",
        },
        plan=SWEEP_PLAN,
        wall_clock_s=elapsed,
        node_avg_awake={str(n): round(m, 3) for n, m in means.items()},
    )


def test_sleeping_1e5_array_native_speedup(benchmark):
    """10^5 nodes: array-native pipeline >= 1.7x the PR 2 pipeline."""
    import time

    def run(graph_source, result):
        start = time.perf_counter()
        rows = sweep(
            plan=SWEEP_PLAN.replace(graph_source=graph_source, result=result),
            sizes=(N_LARGE,), trials=1, seed0=SEED0,
        )
        return rows, time.perf_counter() - start

    def measure():
        legacy_rows, legacy_s = run("networkx", "legacy")
        arrays_rows, arrays_s = run("arrays", "arrays")
        return legacy_rows, legacy_s, arrays_rows, arrays_s

    (legacy_rows, legacy_s, arrays_rows, arrays_s), _ = timed_once(
        benchmark, measure
    )

    # Same seeded trial, measured identically on both pipelines.
    a, b = legacy_rows[0], arrays_rows[0]
    assert (a.valid, a.undecided) == (True, 0)
    assert (
        a.node_averaged_awake, a.worst_case_awake, a.node_averaged_rounds,
        a.worst_case_rounds, a.total_messages, a.total_bits, a.valid,
    ) == (
        b.node_averaged_awake, b.worst_case_awake, b.node_averaged_rounds,
        b.worst_case_rounds, b.total_messages, b.total_bits, b.valid,
    )

    speedup = legacy_s / arrays_s
    print()
    record(
        benchmark,
        legacy_pipeline_s=round(legacy_s, 2),
        array_native_s=round(arrays_s, 2),
        speedup=round(speedup, 2),
        node_avg_awake=round(b.node_averaged_awake, 3),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"array-native 10^5 sweep only {speedup:.2f}x vs the legacy "
        f"pipeline (floor {SPEEDUP_FLOOR}x)"
    )
    write_artifact(
        "scale_1e5",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": [N_LARGE], "trials": 1, "seed0": SEED0,
            "engine": "vectorized", "rng": "batched",
            "compared": {
                "legacy": {"graph_source": "networkx", "result": "legacy"},
                "array_native": {"graph_source": "arrays", "result": "arrays"},
            },
        },
        plan={
            "legacy": SWEEP_PLAN.replace(
                graph_source="networkx", result="legacy"
            ),
            "array_native": SWEEP_PLAN.replace(
                graph_source="arrays", result="arrays"
            ),
        },
        wall_clock_s=arrays_s,
        legacy_pipeline_s=round(legacy_s, 3),
        array_native_s=round(arrays_s, 3),
        speedup=round(speedup, 3),
        speedup_floor=SPEEDUP_FLOOR,
        node_avg_awake=round(b.node_averaged_awake, 3),
    )

"""E17 -- scale: 10^4-node sweeps on the vectorized engine + batched RNG.

ROADMAP's scale target made executable: a sleeping-MIS (Algorithm 1)
sweep at n = 10^4 completes in seconds under ``rng="batched"`` -- the
counter-based v2 stream whose whole-array draws remove the per-node
``random.Random`` construction that bounded the v1 path -- while the
headline O(1) node-averaged awake measure stays flat and every output is
a valid MIS.  (10^5-node single trials run in a few seconds each; see
EXPERIMENTS.md for the repro command.)
"""

from conftest import record, timed_once, write_artifact

from repro.analysis.complexity import sweep

SIZES = (1_000, 10_000)
TRIALS = 3
SEED0 = 11


def test_sleeping_mis_scale_sweep_batched(benchmark):
    def measure():
        return sweep(
            "sleeping", "gnp-sparse", SIZES, trials=TRIALS, seed0=SEED0,
            engine="vectorized", rng="batched",
        )

    rows, elapsed = timed_once(benchmark, measure)

    assert all(row.valid for row in rows)
    assert all(row.undecided == 0 for row in rows)
    by_size = {
        n: [r.node_averaged_awake for r in rows if r.n == n] for n in SIZES
    }
    means = {n: sum(v) / len(v) for n, v in by_size.items()}
    print()
    record(
        benchmark,
        node_avg_awake={n: round(m, 2) for n, m in means.items()},
        total_trials=len(rows),
        wall_clock_s=round(elapsed, 2),
    )
    # O(1) node-averaged awake holds out to 10^4: a 10x size jump moves
    # the mean by far less than any growing function would.
    assert means[10_000] <= 1.5 * means[1_000]
    assert means[10_000] < 12.0
    write_artifact(
        "scale_sweep",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": list(SIZES), "trials": TRIALS, "seed0": SEED0,
            "engine": "vectorized", "rng": "batched",
        },
        wall_clock_s=elapsed,
        node_avg_awake={str(n): round(m, 3) for n, m in means.items()},
    )

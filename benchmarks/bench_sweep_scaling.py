"""E24 (part) -- multi-core sweep scaling on the frontier runner.

Measures what the resumable sweep machinery (PR 9) actually buys when
workers are added: the same seeded manifest drained with ``run_sweep``
at ``n_jobs`` in {1, 2, 4}, wall clocks recorded, merged result sets
required byte-identical across worker counts (parallelism is a
scheduling knob, never a measurement knob).  Alongside it, the
per-claim lease overhead of the disk-backed frontier -- the number the
claim-TTL default has to dominate.

The measured wall clocks size two defaults in :mod:`repro.sweeps`:

* ``runner.CLAIM_WINDOW_PER_WORKER`` -- the bounded submission window
  (claims held in flight per worker).  Trial execution dominates
  submission latency by orders of magnitude, so a window of 2 (one
  running, one queued per worker) already keeps every worker fed.
* ``frontier.DEFAULT_CLAIM_TTL`` -- a claim's lease is ~1 ms of disk
  bookkeeping, while the TTL is 15 minutes: expiry can never race the
  lease machinery itself, only a genuinely dead worker.

The committed ``BENCH_sweep_scaling.json`` tracks the deterministic
series (trial counts, per-worker-count completions, the cross-count
result-identity bit); wall clocks and speedups are machine-dependent
and stripped by ``check_artifacts.py``.
"""

import time

from conftest import record, timed_once, write_artifact

from repro.plan import RunPlan
from repro.sweeps import SweepManifest, TrialFrontier, run_sweep
from repro.sweeps.runner import merged_result_json

BASE_PLAN = RunPlan(
    algorithm="sleeping", family="gnp-sparse",
    engine="vectorized", rng="batched",
    graph_rng="batched", graph_source="arrays", result="arrays",
)
SIZES = (1_000, 2_000)
TRIALS = 6
SEED0 = 11
JOB_COUNTS = (1, 2, 4)

#: Claim/release cycles timed for the per-claim lease overhead figure.
CLAIM_CYCLES = 50


def test_sweep_scale_n_jobs(benchmark, tmp_path):
    manifest = SweepManifest.expand(
        BASE_PLAN, sizes=SIZES, trials=TRIALS, seed0=SEED0,
        name="bench-sweep-scaling",
    )

    def measure():
        walls, completed, merged = {}, {}, {}
        for jobs in JOB_COUNTS:
            frontier = TrialFrontier.create(
                tmp_path / f"jobs{jobs}", manifest
            )
            start = time.perf_counter()
            report = run_sweep(frontier, n_jobs=jobs)
            walls[jobs] = time.perf_counter() - start
            assert report.all_done and report.failed == 0, report.errors
            completed[jobs] = report.completed
            merged[jobs] = merged_result_json(frontier)

        # The frontier's lease overhead: claim + release cycles on a
        # fresh frontier (pure disk bookkeeping, no trial execution).
        lease = TrialFrontier.create(tmp_path / "lease", manifest)
        start = time.perf_counter()
        for _ in range(CLAIM_CYCLES):
            spec = lease.claim("bench")
            lease.release(spec.key)
        per_claim_s = (time.perf_counter() - start) / CLAIM_CYCLES
        return walls, completed, merged, per_claim_s

    (walls, completed, merged, per_claim_s), _ = timed_once(
        benchmark, measure
    )

    # Parallelism must not change a single measured byte.
    results_identical = all(
        merged[jobs] == merged[1] for jobs in JOB_COUNTS
    )
    assert results_identical

    speedup = {
        str(jobs): round(walls[1] / walls[jobs], 2) for jobs in JOB_COUNTS
    }
    print()
    record(
        benchmark,
        trials_total=len(manifest),
        completed={str(j): c for j, c in completed.items()},
        wall_clock_by_jobs_s={
            str(j): round(w, 2) for j, w in walls.items()
        },
        speedup=speedup,
        per_claim_s=round(per_claim_s, 5),
    )
    write_artifact(
        "sweep_scaling",
        config={
            "algorithm": "sleeping", "family": "gnp-sparse",
            "sizes": list(SIZES), "trials": TRIALS, "seed0": SEED0,
            "n_jobs": list(JOB_COUNTS), "claim_cycles": CLAIM_CYCLES,
        },
        plan=BASE_PLAN,
        wall_clock_s=sum(walls.values()),
        trials_total=len(manifest),
        completed={str(j): c for j, c in completed.items()},
        results_identical=results_identical,
        wall_clock_by_jobs_s={
            str(j): round(w, 3) for j, w in walls.items()
        },
        speedup=speedup,
        per_claim_s=round(per_claim_s, 5),
    )

"""E5 -- Lemma 7: geometric decay of per-level participation.

Lemma 7: ``E[Z_{K-i}] <= (3/4)^i * n`` -- the total number of nodes
participating in calls ``i`` levels below the root decays geometrically.
This is the engine behind the O(1) node-averaged bound (Lemma 8: total cost
``O(1) * sum_k Z_k = O(n)``).

We measure the realized ``Z`` per depth against the envelope and also check
the Lemma 8 consequence directly: total awake rounds across all nodes is
linear in n with a small constant.
"""

import networkx as nx
from conftest import once, record

from repro.analysis import level_decay_table
from repro.api import solve_mis

N = 512
TRIALS = 5


def test_level_decay_envelope(benchmark):
    def measure():
        results = []
        for seed in range(TRIALS):
            graph = nx.gnp_random_graph(N, 8.0 / N, seed=seed)
            results.append(solve_mis(graph, algorithm="sleeping", seed=seed))
        return results

    results = once(benchmark, measure)
    rows = level_decay_table(results)

    print()
    print("  depth   mean Z   (3/4)^i * n")
    for row in rows[:12]:
        print(
            f"  {row['depth']:5d}  {row['mean_z']:8.1f}  {row['envelope']:10.1f}"
        )

    for row in rows:
        if row["envelope"] >= 10:
            assert row["mean_z"] <= 1.2 * row["envelope"], row

    # Lemma 8 consequence: total awake rounds = O(n).  The per-node
    # constant here is ~3 rounds per participated level x a geometric
    # series, comfortably below 12n.
    total_awake = [r.total_awake_rounds for r in results]
    record(
        benchmark,
        mean_total_awake=sum(total_awake) / len(total_awake),
        linear_budget=12 * N,
        depth0=rows[0]["mean_z"],
        depth4=next((r["mean_z"] for r in rows if r["depth"] == 4), None),
        depth8=next((r["mean_z"] for r in rows if r["depth"] == 8), None),
    )
    assert all(t <= 12 * N for t in total_awake)

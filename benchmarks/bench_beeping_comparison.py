"""E15 -- extension: sleeping vs. beeping (Section 1.5's model contrast).

The beeping model restricts communication to carrier sense (1 bit, OR of
neighbors); the sleeping model restricts *availability*.  Both are
energy-motivated.  Running both on the same graphs quantifies the paper's
"orthogonality" remark: beeping pays Theta(log n) awake rounds per phase
per live node, while the sleeping algorithms keep the per-node average
constant.
"""

import networkx as nx
from conftest import once

from repro.api import solve_mis
from repro.extensions.beeping import BeepingMIS
from repro.graphs import assert_valid_mis
from repro.sim import Simulator

SIZES = (64, 128, 256, 512)


def test_sleeping_versus_beeping_awake(benchmark):
    def measure():
        rows = {}
        for n in SIZES:
            graph = nx.gnp_random_graph(n, 8.0 / n, seed=n)
            beeping = Simulator(
                graph, lambda v: BeepingMIS(), seed=n
            ).run()
            assert_valid_mis(graph, beeping.mis)
            sleeping = solve_mis(graph, algorithm="fast-sleeping", seed=n)
            rows[n] = (
                beeping.node_averaged_awake_complexity,
                sleeping.node_averaged_awake_complexity,
                beeping.rounds,
                sleeping.rounds,
            )
        return rows

    rows = once(benchmark, measure)
    print()
    print("  n     beep avg-awake  sleep avg-awake  beep rounds  sleep rounds")
    for n, (beep_awake, sleep_awake, beep_rounds, sleep_rounds) in rows.items():
        print(
            f"  {n:5d} {beep_awake:14.1f} {sleep_awake:16.2f} "
            f"{beep_rounds:12d} {sleep_rounds:13d}"
        )
        benchmark.extra_info[f"n{n}_beeping_awake"] = round(beep_awake, 2)
        benchmark.extra_info[f"n{n}_sleeping_awake"] = round(sleep_awake, 2)

    # The contrast: beeping's per-node awake average grows with log n
    # (one Theta(log n) phase is already the floor), the sleeping
    # algorithms' stays constant.
    beep_series = [rows[n][0] for n in SIZES]
    sleep_series = [rows[n][1] for n in SIZES]
    assert beep_series[-1] > beep_series[0]
    assert max(sleep_series) <= 2.0 * min(sleep_series)
    assert all(b > s for b, s in zip(beep_series, sleep_series))

"""E8 -- Lemmas 10/11 and 13/14: worst-case round complexity.

Algorithm 1 runs for exactly ``T(K) = 3 (2^{ceil(3 log2 n)} - 1) = Theta(n^3)``
wall-clock rounds.  Algorithm 2 runs for exactly the truncated schedule,
``O(log^{ell+1} n) = O(log^3.41 n)``.  Luby needs ``O(log n)``.  We verify
the exact schedules, fit the growth exponents, and locate the ordering
Luby << Algorithm 2 << Algorithm 1 that Table 1 reports.
"""

import math

from conftest import once, record, timed_once, write_artifact

from repro.analysis import fit_power, mean_by_size, sweep
from repro.plan import RunPlan
from repro.core import schedule

SIZES = (64, 128, 256, 512, 1024)


def test_algorithm1_rounds_cubic(benchmark):
    rows = once(
        benchmark,
        lambda: sweep(
            "sleeping", "gnp-sparse", sizes=SIZES, trials=1, seed0=7,
            engine="vectorized",
        ),
    )
    ns, means = mean_by_size(rows, "worst_case_rounds")

    # Exact: every run equals T(K(n)).
    for row in rows:
        expected = schedule.call_duration(schedule.recursion_depth(row.n))
        assert row.worst_case_rounds == expected

    fit = fit_power(ns, means)
    print()
    record(benchmark, rounds=means, exponent=round(fit.params[1], 3))
    # ceil(3 log2 n) makes the exponent exactly 3 on power-of-two sizes.
    assert 2.7 <= fit.params[1] <= 3.3


def test_algorithm2_rounds_polylog(benchmark):
    rows = once(
        benchmark,
        lambda: sweep(
            "fast-sleeping", "gnp-sparse", sizes=SIZES, trials=1, seed0=7,
            engine="vectorized",
        ),
    )
    ns, means = mean_by_size(rows, "worst_case_rounds")

    for row in rows:
        window = schedule.greedy_rounds(row.n)
        expected = schedule.fast_call_duration(
            schedule.truncated_depth(row.n), window
        )
        assert row.worst_case_rounds == expected

    # Polylog: bounded multiple of log^3.41 n, and hugely below n^3.
    ratios = [
        m / math.log2(n) ** (schedule.ELL + 1) for n, m in zip(ns, means)
    ]
    print()
    record(
        benchmark,
        rounds=means,
        polylog_ratios=[round(r, 2) for r in ratios],
    )
    assert max(ratios) / min(ratios) < 12
    for n, m in zip(ns, means):
        # Far below Algorithm 1's exact cubic schedule at every size.
        assert m * 20 < schedule.call_duration(schedule.recursion_depth(n))


def test_crossover_ordering(benchmark):
    """Who wins on wall clock: Luby < Algorithm 2 < Algorithm 1, at every n."""

    def measure():
        out = {}
        for algorithm in ("luby", "fast-sleeping", "sleeping"):
            # auto: every one of these three runs on a vectorized engine
            # (Luby included since the phased engine landed) -- same batch
            # runner either way.
            rows = sweep(
                algorithm, "gnp-sparse", sizes=SIZES, trials=1, seed0=7,
                engine="auto",
            )
            out[algorithm] = mean_by_size(rows, "worst_case_rounds")[1]
        return out

    data, elapsed = timed_once(benchmark, measure)
    print()
    record(benchmark, **{k: v for k, v in data.items()})
    for i in range(len(SIZES)):
        assert data["luby"][i] < data["fast-sleeping"][i] < data["sleeping"][i]
    write_artifact(
        "round_complexity_crossover",
        config={
            "sizes": list(SIZES), "trials": 1, "seed0": 7, "engine": "auto",
        },
        plan={
            algorithm: RunPlan(
                algorithm=algorithm, family="gnp-sparse", engine="auto"
            )
            for algorithm in ("luby", "fast-sleeping", "sleeping")
        },
        wall_clock_s=elapsed,
        **data,
    )

#!/usr/bin/env python
"""Perf-regression smoke: a fixed config vs the committed baseline.

Runs a pinned set of measurements (~10s wall-clock total) and compares
each against the committed ``benchmarks/artifacts/BENCH_perf_smoke.json``:

* ``table1_auto`` -- the historical 4-algorithm Table 1 (n = 300,
  10 trials) on ``engine="auto"`` (vectorized sleeping algorithms +
  rank baselines);
* ``sleeping_1e4_batched`` -- a 10^4-node Algorithm 1 sweep under the
  batched (v2) RNG stream;
* ``luby_1e4_batched`` -- the same scale on the vectorized Luby engine;
* ``ghaffari_1e4_batched`` -- the same scale on the vectorized marking
  engine (ghaffari/abi, new in PR 4), guarding the last two rows of the
  engine matrix against a silent fallback to the generator path;
* ``sleeping_1e5_arrays`` -- a single 10^5-node Algorithm 1 trial on the
  fully array-native pipeline (``graph_source="arrays"`` +
  ``result="arrays"``), guarding the direct-to-CSR sampling and
  struct-of-arrays result wins;
* ``gnp_1e6_sampler_batched`` -- a 10^6-node gnp-sparse sample on the v2
  (``graph_rng="batched"``) vectorized sampling stream, guarding the
  whole-array geometric-skip sampler and the ``from_distinct_pairs``
  CSR build that break the 10^6 barrier (the full 10^6 *pipeline*
  comparison lives in ``bench_scale_1e6.py``, outside the smoke budget).

(The sweep-based measurements run on the sweep defaults --
``graph_source="auto"``/``result="auto"`` -- so a change that silently
knocks sweeps off the array-native path shows up here too.)

Raw wall-clock is not comparable across machines (the baseline is written
on whatever machine last ran ``--write``; CI runners are slower and
noisier), so the gate compares **calibrated units**: each measurement is
divided by the time a fixed CPU workload (Python-loop + numpy passes,
mirroring the engines' profile) takes in the same process.  Each
measurement is best-of-3.

Usage::

    python benchmarks/perf_smoke.py --write   # refresh the baseline
    python benchmarks/perf_smoke.py --check   # CI: fail on >2x slowdown

The 2x tolerance on calibrated units absorbs residual variance; a real
regression (e.g. un-vectorizing a baseline is >5x) still trips it.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

ARTIFACT = Path(__file__).resolve().parent / "artifacts" / "BENCH_perf_smoke.json"

#: Fail --check when a calibrated measurement exceeds baseline * TOLERANCE.
TOLERANCE = 2.0

#: Repeat each measurement and keep the fastest, damping scheduler noise.
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _calibrate() -> float:
    """Seconds for a fixed CPU workload shaped like the engines' profile
    (Python-level RNG loop + numpy index/bincount passes)."""

    def workload():
        rng = random.Random(0)
        acc = 0.0
        for _ in range(150_000):
            acc += rng.random()
        a = np.arange(1_000_000, dtype=np.int64) % 4096
        for _ in range(8):
            np.bincount(a).cumsum()
        return acc

    return _best_of(workload)


def _plans() -> dict:
    """The validated :class:`RunPlan` behind each pinned measurement.

    One plan per measurement name; the canonical serializations are
    embedded as the artifact's ``config.plans`` block, so the committed
    baseline states exactly which knob configuration each calibrated
    unit was measured under (and ``check_artifacts.py`` re-validates
    them against the current registries).
    """
    from repro.plan import RunPlan

    sweep_1e4 = RunPlan(
        family="gnp-sparse", engine="vectorized", rng="batched",
        result="auto",
    )
    return {
        "table1_auto": RunPlan(family="gnp-sparse", engine="auto"),
        "sleeping_1e4_batched": sweep_1e4.replace(algorithm="sleeping"),
        "luby_1e4_batched": sweep_1e4.replace(algorithm="luby"),
        "ghaffari_1e4_batched": sweep_1e4.replace(algorithm="ghaffari"),
        "sleeping_1e5_arrays": sweep_1e4.replace(
            algorithm="sleeping", graph_source="arrays", result="arrays",
        ),
        "gnp_1e6_sampler_batched": RunPlan(
            family="gnp-sparse", n=1_000_000, seed=11,
            graph_source="arrays", graph_rng="batched",
        ),
    }


def _measurements(plans: dict) -> dict:
    from repro.analysis.complexity import sweep
    from repro.analysis.tables import build_table1

    # Warm imports and caches before timing anything.
    build_table1(sizes=(64,), trials=1, algorithms=("luby",))

    return {
        "table1_auto": _best_of(
            lambda: build_table1(
                sizes=(300,), plan=plans["table1_auto"], trials=10, seed0=1,
                algorithms=("luby", "greedy", "sleeping", "fast-sleeping"),
            )
        ),
        "sleeping_1e4_batched": _best_of(
            lambda: sweep(
                plan=plans["sleeping_1e4_batched"],
                sizes=(10_000,), trials=2, seed0=11,
            )
        ),
        "luby_1e4_batched": _best_of(
            lambda: sweep(
                plan=plans["luby_1e4_batched"],
                sizes=(10_000,), trials=2, seed0=11,
            )
        ),
        "ghaffari_1e4_batched": _best_of(
            lambda: sweep(
                plan=plans["ghaffari_1e4_batched"],
                sizes=(10_000,), trials=2, seed0=11,
            )
        ),
        "sleeping_1e5_arrays": _best_of(
            lambda: sweep(
                plan=plans["sleeping_1e5_arrays"],
                sizes=(100_000,), trials=1, seed0=11,
            )
        ),
        "gnp_1e6_sampler_batched": _best_of(
            lambda: plans["gnp_1e6_sampler_batched"].build_graph()
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="measure and write the baseline"
    )
    mode.add_argument(
        "--check", action="store_true",
        help="measure and fail (exit 1) on >2x slowdown vs the baseline",
    )
    args = parser.parse_args(argv)

    plans = _plans()
    calibration = _calibrate()
    print(f"{'calibration':24s} {calibration:8.3f}s")
    raw = {k: round(v, 3) for k, v in _measurements(plans).items()}
    units = {k: round(v / calibration, 3) for k, v in raw.items()}
    for key in raw:
        print(f"{key:24s} {raw[key]:8.3f}s  = {units[key]:7.3f} units")

    if args.write:
        ARTIFACT.parent.mkdir(exist_ok=True)
        ARTIFACT.write_text(
            json.dumps(
                {
                    "bench": "perf_smoke",
                    "config": {
                        "plans": {
                            key: plan.to_dict()
                            for key, plan in sorted(plans.items())
                        },
                    },
                    "tolerance": TOLERANCE,
                    "calibration_s": round(calibration, 3),
                    "wall_clock_s": raw,
                    "measurements": units,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"baseline written -> {ARTIFACT}")
        return 0

    if not ARTIFACT.exists():
        print(f"error: no committed baseline at {ARTIFACT}", file=sys.stderr)
        return 2
    baseline = json.loads(ARTIFACT.read_text())["measurements"]
    failed = False
    for key, value in units.items():
        base = baseline.get(key)
        if base is None:
            print(f"{key}: no baseline entry (run --write)", file=sys.stderr)
            failed = True
            continue
        ratio = value / base
        verdict = "OK" if ratio <= TOLERANCE else "REGRESSION"
        print(f"{key:24s} {value:8.3f} units vs baseline {base:8.3f} "
              f"({ratio:.2f}x)  {verdict}")
        if ratio > TOLERANCE:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""E14 -- extension: maximal matching in the sleeping model.

The paper's conclusion proposes applying the sleeping model to further
problems.  Maximal matching = MIS of the line graph, so Algorithm 2 run
over edge agents inherits the O(1) node-averaged awake bound per *edge*.
We measure validity and the per-edge awake average across sizes.
"""

import networkx as nx
from conftest import once, record

from repro.extensions.matching import (
    is_maximal_matching,
    solve_maximal_matching,
)

SIZES = (64, 128, 256, 512)


def test_matching_edge_averaged_awake_constant(benchmark):
    def measure():
        means = []
        for n in SIZES:
            graph = nx.gnp_random_graph(n, 6.0 / n, seed=n)
            matching, result = solve_maximal_matching(
                graph, algorithm="fast-sleeping", seed=n
            )
            assert is_maximal_matching(graph, matching)
            means.append(result.node_averaged_awake_complexity)
        return means

    means = once(benchmark, measure)
    print()
    record(benchmark, edge_avg_awake=[round(m, 2) for m in means])
    assert max(means) <= 2.0 * min(means)
    assert max(means) < 14.0

"""E16 -- engine speedup: vectorized baselines make Table 1 fast.

PR 2's acceptance bar: with the Luby/greedy baselines vectorized (they
used to dominate Table 1 wall-clock on the generator engine), the full
Table 1 pipeline at n = 300 must run at least 3x faster end-to-end under
``engine="auto"`` than when every algorithm is forced onto the generator
engine -- while producing *identical* table values (the vectorized
engines are bit-for-bit equivalent).  The batched (v2) RNG stream is
measured alongside; it removes the per-node ``random.Random``
construction floor the two streams' shared v1 format pays.
"""

import time

from conftest import once, record, write_artifact

from repro.analysis.tables import build_table1
from repro.plan import RunPlan

N = 300
TRIALS = 6
SEED0 = 1
#: Pinned to the historical PR 2 four-algorithm config so the committed
#: artifact series stays comparable across PRs; the full six-algorithm
#: ratio (ghaffari/abi now vectorized too) is measured by
#: bench_table1_all6.py.
ALGORITHMS = ("luby", "greedy", "sleeping", "fast-sleeping")


def _time_table1(**kwargs) -> tuple:
    """Build the table twice, keep the faster time (damps scheduler
    noise, which otherwise dwarfs the sub-second vectorized side)."""
    table, best = None, float("inf")
    for _ in range(2):
        start = time.perf_counter()
        table = build_table1(
            sizes=(N,), trials=TRIALS, seed0=SEED0, algorithms=ALGORITHMS,
            **kwargs,
        )
        best = min(best, time.perf_counter() - start)
    return table, best


def test_table1_speedup_at_n300(benchmark):
    def measure():
        # Warm imports/caches with a tiny run so the generator side does
        # not pay first-call costs the vectorized side then skips.
        build_table1(sizes=(64,), trials=1, algorithms=("luby",))
        reference, generators_s = _time_table1(engine="generators")
        vectorized, auto_s = _time_table1(engine="auto")
        _, batched_s = _time_table1(engine="auto", rng="batched")
        return reference, vectorized, generators_s, auto_s, batched_s

    reference, vectorized, generators_s, auto_s, batched_s = once(
        benchmark, measure
    )

    # Identical values: vectorizing the baselines must not move a single
    # cell of the table.
    assert reference.rows == vectorized.rows

    speedup = generators_s / auto_s
    speedup_batched = generators_s / batched_s
    print()
    record(
        benchmark,
        generators_s=round(generators_s, 3),
        auto_s=round(auto_s, 3),
        batched_s=round(batched_s, 3),
        speedup=round(speedup, 2),
        speedup_batched=round(speedup_batched, 2),
    )
    write_artifact(
        "vectorized_speedup",
        config={
            "n": N, "trials": TRIALS, "seed0": SEED0,
            "algorithms": list(ALGORITHMS),
        },
        plan={
            "generators": RunPlan(family="gnp-sparse", engine="generators"),
            "auto": RunPlan(family="gnp-sparse", engine="auto"),
            "auto_batched": RunPlan(
                family="gnp-sparse", engine="auto", rng="batched"
            ),
        },
        wall_clock_s=generators_s + auto_s + batched_s,
        generators_s=round(generators_s, 3),
        auto_s=round(auto_s, 3),
        batched_s=round(batched_s, 3),
        speedup=round(speedup, 2),
        speedup_batched=round(speedup_batched, 2),
    )
    # Measured 3.1-3.4x across runs on the reference container (>= 3x, the
    # PR 2 acceptance bar; the artifact records the exact value).  The hard
    # gate sits at 2.5x so slower/noisier CI runners -- where the fixed
    # graph-generation share of the ratio differs -- cannot flake a pass,
    # while any real regression (un-vectorizing one baseline alone is >5x)
    # still trips it.
    assert speedup >= 2.5, f"Table 1 speedup regressed to {speedup:.2f}x"

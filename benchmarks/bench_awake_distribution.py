"""E13 -- distributional properties of A_v (Section 1.2 remark).

Beyond E[A] = O(1), the paper remarks that "one can also study other
properties of A, e.g., high probability bounds on A".  We measure:

* the full distribution of per-node awake time A_v for Algorithm 1 --
  median, P90, P99, max -- and its survival curve, whose decay reflects
  Lemma 7's (3/4)^i participation bound (a node awake >= 3(i+1) rounds
  participated in i+1 levels);
* the concentration of the per-run average A across independent runs
  (tight around its constant expectation).
"""

import networkx as nx
from conftest import once, record

from repro.analysis.distribution import (
    average_concentration,
    awake_quantiles,
    survival_curve,
    tail_fraction,
)
from repro.api import solve_mis

N = 1024
TRIALS = 5


def test_awake_time_distribution(benchmark):
    def measure():
        results = []
        for seed in range(TRIALS):
            graph = nx.gnp_random_graph(N, 8.0 / N, seed=seed)
            results.append(solve_mis(graph, algorithm="sleeping", seed=seed))
        return results

    results = once(benchmark, measure)

    quantiles = awake_quantiles(results[0], qs=(0.5, 0.9, 0.99, 1.0))
    curve = survival_curve(results, thresholds=[3, 6, 9, 12, 15, 21, 30])
    concentration = average_concentration(results)

    print()
    record(
        benchmark,
        median=quantiles[0.5],
        p90=quantiles[0.9],
        p99=quantiles[0.99],
        max=quantiles[1.0],
        mean_of_averages=round(concentration["mean"], 3),
        stdev_of_averages=round(concentration["stdev"], 3),
        tail_beyond_3x_mean=round(tail_fraction(results, 3.0), 4),
    )
    print("  survival P[A_v >= t]:")
    for t, fraction in curve:
        print(f"    t={t:3d}  {fraction:.4f}")

    # High-probability shape: the median is a small constant, P99 is a
    # modest multiple of it, the maximum is O(log n), and the survival
    # curve halves (at least) every two levels deep into the recursion.
    assert quantiles[0.5] <= 9
    assert quantiles[0.99] <= 10 * max(quantiles[0.5], 1.0)
    by_t = dict(curve)
    assert by_t[9] < by_t[3]
    assert by_t[15] < 0.5 * by_t[9]
    assert by_t[30] < 0.1

    # Concentration of the run average around its constant expectation.
    assert concentration["stdev"] < 0.25 * concentration["mean"]
    assert concentration["max"] - concentration["min"] < 2.0

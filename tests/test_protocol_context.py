"""Unit tests for NodeContext bookkeeping and the MISProtocol base."""

import pytest

from repro.sim import SendAndReceive, simulate
from repro.sim.protocol import MISProtocol, Protocol


class TestReportDecision:
    def test_first_decision_recorded(self):
        class Decider(Protocol):
            def run(self, ctx):
                yield SendAndReceive({})
                ctx.report_decision("value")
                yield SendAndReceive({})

        result = simulate({0: []}, lambda v: Decider())
        stats = result.node_stats[0]
        assert stats.decision_round == 1
        assert stats.awake_at_decision == 1
        assert stats.finish_round == 2

    def test_second_decision_ignored(self):
        class DoubleDecider(Protocol):
            def run(self, ctx):
                ctx.report_decision("first")
                yield SendAndReceive({})
                ctx.report_decision("second")

        result = simulate({0: []}, lambda v: DoubleDecider())
        assert result.node_stats[0].decision_round == 0

    def test_decided_flag(self):
        class Checker(Protocol):
            def __init__(self):
                self.states = []

            def run(self, ctx):
                self.states.append(ctx.decided)
                ctx.report_decision(1)
                self.states.append(ctx.decided)
                return
                yield  # pragma: no cover

            def output(self):
                return self.states

        result = simulate({0: []}, lambda v: Checker())
        assert result.outputs[0] == [False, True]


class TestContextBasics:
    def test_degree_and_neighbors(self):
        class Inspect(Protocol):
            def __init__(self):
                self.info = None

            def run(self, ctx):
                self.info = (ctx.node_id, ctx.degree, ctx.neighbors, ctx.n)
                return
                yield  # pragma: no cover

            def output(self):
                return self.info

        result = simulate({0: [1, 2], 1: [0], 2: [0]}, lambda v: Inspect())
        assert result.outputs[0] == (0, 2, (1, 2), 3)
        assert result.outputs[1] == (1, 1, (0,), 3)


class TestMISProtocolBase:
    def test_default_output_is_in_mis(self):
        class Trivial(MISProtocol):
            def run(self, ctx):
                self._decide(ctx, True, "test")
                return
                yield  # pragma: no cover

        result = simulate({0: []}, lambda v: Trivial())
        assert result.outputs[0] is True
        assert result.mis == frozenset({0})

    def test_double_decide_raises(self):
        class Doubler(MISProtocol):
            def run(self, ctx):
                self._decide(ctx, True, "a")
                self._decide(ctx, False, "b")
                return
                yield  # pragma: no cover

        with pytest.raises(AssertionError):
            simulate({0: []}, lambda v: Doubler())

    def test_undecided_output_is_none(self):
        class Undecided(MISProtocol):
            def run(self, ctx):
                return
                yield  # pragma: no cover

        result = simulate({0: []}, lambda v: Undecided())
        assert result.outputs[0] is None
        assert result.undecided == frozenset({0})

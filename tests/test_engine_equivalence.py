"""Cross-backend equivalence: vectorized engine == generator engine.

The vectorized engine's contract is not "produces a valid MIS" but
"reproduces the generator engine's execution exactly" -- same per-node
decisions, same round numbers, same statistics down to message, bit, and
tx/rx/idle counters, for identical ``(graph, seed)``.  These tests diff
complete :class:`NodeStats` across every corner-case graph, both sleeping
algorithms, and several seeds, plus the protocol knobs and the engine
selection logic in the API.
"""

from dataclasses import asdict

import pytest

from helpers import GRAPH_CASES, run_mis

from repro.sim.batch import resolve_engine
from repro.sim.fast_engine import supports
from repro.sim.trace import make_trace

ALGORITHMS = ("sleeping", "fast-sleeping")
SEEDS = (0, 1, 2)


def assert_equivalent(reference, vectorized):
    """Diff two RunResults field by field with a readable failure."""
    assert reference.n == vectorized.n
    assert reference.rounds == vectorized.rounds
    assert reference.outputs == vectorized.outputs
    assert reference.mis == vectorized.mis
    assert reference.undecided == vectorized.undecided
    assert reference.adjacency == vectorized.adjacency
    assert set(reference.node_stats) == set(vectorized.node_stats)
    for v in reference.node_stats:
        ref = asdict(reference.node_stats[v])
        vec = asdict(vectorized.node_stats[v])
        diff = {key: (ref[key], vec[key]) for key in ref if ref[key] != vec[key]}
        assert not diff, f"node {v!r} stats diverge (ref, vec): {diff}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "builder", [b for _, b in GRAPH_CASES], ids=[name for name, _ in GRAPH_CASES]
)
def test_engines_agree_exactly(builder, algorithm, seed):
    graph = builder()
    reference = run_mis(graph, algorithm, seed=seed, engine="generators")
    vectorized = run_mis(graph, algorithm, seed=seed, engine="vectorized")
    assert_equivalent(reference, vectorized)


class TestProtocolKnobs:
    """The knobs the ablation study sweeps must stay equivalent too."""

    @pytest.mark.parametrize("coin_bias", [0.25, 0.75])
    def test_coin_bias(self, gnp60, coin_bias):
        for algorithm in ALGORITHMS:
            assert_equivalent(
                run_mis(gnp60, algorithm, seed=3, coin_bias=coin_bias),
                run_mis(
                    gnp60, algorithm, seed=3, coin_bias=coin_bias,
                    engine="vectorized",
                ),
            )

    @pytest.mark.parametrize("constant", [2, 4, 16])
    def test_greedy_constant(self, gnp60, constant):
        assert_equivalent(
            run_mis(gnp60, "fast-sleeping", seed=5, greedy_constant=constant),
            run_mis(
                gnp60, "fast-sleeping", seed=5, greedy_constant=constant,
                engine="vectorized",
            ),
        )

    @pytest.mark.parametrize("depth", [0, 1, 3])
    def test_depth_override(self, gnp60, depth):
        for algorithm in ALGORITHMS:
            assert_equivalent(
                run_mis(gnp60, algorithm, seed=7, depth=depth),
                run_mis(
                    gnp60, algorithm, seed=7, depth=depth, engine="vectorized"
                ),
            )


class TestEngineSelection:
    def test_supports_sleeping_algorithms_only(self):
        assert supports("sleeping")
        assert supports("fast-sleeping")
        assert not supports("luby")
        assert not supports("greedy")

    def test_supports_rejects_tracing_and_congest(self):
        assert not supports("sleeping", trace=make_trace(enabled=True))
        assert not supports("sleeping", congest_bit_limit=32)
        assert not supports("sleeping", loss_rate=0.5)
        assert not supports("sleeping", unknown_knob=1)

    def test_auto_resolves_per_configuration(self):
        assert resolve_engine("auto", "fast-sleeping") == "vectorized"
        assert resolve_engine("auto", "luby") == "generators"
        assert (
            resolve_engine("auto", "sleeping", congest_bit_limit=16)
            == "generators"
        )
        assert resolve_engine("generators", "sleeping") == "generators"

    def test_vectorized_request_fails_loudly_when_unsupported(self):
        with pytest.raises(ValueError):
            resolve_engine("vectorized", "luby")
        with pytest.raises(ValueError):
            resolve_engine("bogus", "sleeping")

    def test_auto_engine_through_api_matches_reference(self, gnp60):
        assert_equivalent(
            run_mis(gnp60, "fast-sleeping", seed=11),
            run_mis(gnp60, "fast-sleeping", seed=11, engine="auto"),
        )

    def test_vectorized_has_no_protocols(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=0, engine="vectorized")
        assert result.protocols == {}
        reference = run_mis(gnp60, "sleeping", seed=0)
        assert reference.protocols  # the generator engine keeps them

"""Cross-backend equivalence: vectorized engines == generator engine.

The vectorized engines' contract is not "produces a valid MIS" but
"reproduces the generator engine's execution exactly" -- same per-node
decisions, same round numbers, same statistics down to message, bit, and
tx/rx/idle counters, for identical ``(graph, seed, rng)``.  These tests
diff complete :class:`NodeStats` across every corner-case graph, all six
vectorized algorithms (the two sleeping algorithms plus the four phased
baselines: Luby, greedy, Ghaffari, ABI), several seeds, and both RNG
stream formats, plus the protocol knobs and the engine selection logic in
the API.
"""

from dataclasses import asdict

import pytest

from helpers import GRAPH_CASES, run_mis

from repro.sim.batch import resolve_engine
from repro.sim.fast_engine import supports
from repro.sim.trace import make_trace

ALGORITHMS = ("sleeping", "fast-sleeping")
PHASED = ("luby", "greedy", "ghaffari", "abi")
ALL_VECTORIZED = ALGORITHMS + PHASED
SEEDS = (0, 1, 2)


def assert_equivalent(reference, vectorized):
    """Diff two RunResults field by field with a readable failure."""
    assert reference.n == vectorized.n
    assert reference.rounds == vectorized.rounds
    assert reference.outputs == vectorized.outputs
    assert reference.mis == vectorized.mis
    assert reference.undecided == vectorized.undecided
    assert reference.adjacency == vectorized.adjacency
    assert set(reference.node_stats) == set(vectorized.node_stats)
    for v in reference.node_stats:
        ref = asdict(reference.node_stats[v])
        vec = asdict(vectorized.node_stats[v])
        diff = {key: (ref[key], vec[key]) for key in ref if ref[key] != vec[key]}
        assert not diff, f"node {v!r} stats diverge (ref, vec): {diff}"


@pytest.mark.parametrize("algorithm", ALL_VECTORIZED)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "builder", [b for _, b in GRAPH_CASES], ids=[name for name, _ in GRAPH_CASES]
)
def test_engines_agree_exactly(builder, algorithm, seed):
    graph = builder()
    reference = run_mis(graph, algorithm, seed=seed, engine="generators")
    vectorized = run_mis(graph, algorithm, seed=seed, engine="vectorized")
    assert_equivalent(reference, vectorized)


@pytest.mark.parametrize("algorithm", ALL_VECTORIZED)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "builder", [b for _, b in GRAPH_CASES], ids=[name for name, _ in GRAPH_CASES]
)
def test_engines_agree_exactly_batched_stream(builder, algorithm, seed):
    """The v2 (batched) stream keeps the same cross-engine contract."""
    graph = builder()
    reference = run_mis(
        graph, algorithm, seed=seed, engine="generators", rng="batched"
    )
    vectorized = run_mis(
        graph, algorithm, seed=seed, engine="vectorized", rng="batched"
    )
    assert_equivalent(reference, vectorized)


class TestPhasedKnobs:
    """max_phases (the baselines' give-up knob) must stay equivalent."""

    @pytest.mark.parametrize("algorithm", PHASED)
    @pytest.mark.parametrize("max_phases", [1, 2, 50])
    def test_max_phases(self, gnp60, algorithm, max_phases):
        assert_equivalent(
            run_mis(gnp60, algorithm, seed=5, max_phases=max_phases),
            run_mis(
                gnp60, algorithm, seed=5, max_phases=max_phases,
                engine="vectorized",
            ),
        )

    @pytest.mark.parametrize("algorithm", PHASED)
    def test_max_phases_validation(self, gnp60, algorithm):
        with pytest.raises(ValueError):
            run_mis(gnp60, algorithm, max_phases=0, engine="vectorized")


class TestProtocolKnobs:
    """The knobs the ablation study sweeps must stay equivalent too."""

    @pytest.mark.parametrize("coin_bias", [0.25, 0.75])
    def test_coin_bias(self, gnp60, coin_bias):
        for algorithm in ALGORITHMS:
            assert_equivalent(
                run_mis(gnp60, algorithm, seed=3, coin_bias=coin_bias),
                run_mis(
                    gnp60, algorithm, seed=3, coin_bias=coin_bias,
                    engine="vectorized",
                ),
            )

    @pytest.mark.parametrize("constant", [2, 4, 16])
    def test_greedy_constant(self, gnp60, constant):
        assert_equivalent(
            run_mis(gnp60, "fast-sleeping", seed=5, greedy_constant=constant),
            run_mis(
                gnp60, "fast-sleeping", seed=5, greedy_constant=constant,
                engine="vectorized",
            ),
        )

    @pytest.mark.parametrize("depth", [0, 1, 3])
    def test_depth_override(self, gnp60, depth):
        for algorithm in ALGORITHMS:
            assert_equivalent(
                run_mis(gnp60, algorithm, seed=7, depth=depth),
                run_mis(
                    gnp60, algorithm, seed=7, depth=depth, engine="vectorized"
                ),
            )


class TestEngineSelection:
    def test_supports_vectorized_algorithms(self):
        for algorithm in ALL_VECTORIZED:
            assert supports(algorithm), algorithm
        assert not supports("seq-greedy")  # not a vectorized (or solve_mis)
        assert not supports("coloring")  # algorithm at all

    def test_supports_rejects_tracing_and_congest(self):
        assert not supports("sleeping", trace=make_trace(enabled=True))
        assert not supports("sleeping", congest_bit_limit=32)
        assert not supports("sleeping", loss_rate=0.5)
        assert not supports("sleeping", unknown_knob=1)
        assert not supports("luby", congest_bit_limit=32)

    def test_supports_checks_per_algorithm_kwargs(self):
        for algorithm in PHASED:
            assert supports(algorithm, max_phases=10)
            assert not supports(algorithm, coin_bias=0.4)  # sleeping-only
        assert supports("fast-sleeping", greedy_constant=8)
        assert not supports("fast-sleeping", max_phases=10)  # phased-only

    def test_auto_resolves_per_configuration(self):
        for algorithm in ALL_VECTORIZED:
            assert resolve_engine("auto", algorithm) == "vectorized"
        assert (
            resolve_engine("auto", "sleeping", congest_bit_limit=16)
            == "generators"
        )
        assert (
            resolve_engine("auto", "luby", congest_bit_limit=16)
            == "generators"
        )
        assert (
            resolve_engine("auto", "ghaffari", congest_bit_limit=16)
            == "generators"
        )
        assert resolve_engine("generators", "sleeping") == "generators"
        assert resolve_engine("generators", "ghaffari") == "generators"

    def test_auto_never_silently_falls_back_when_vectorizable(self):
        """Regression: every algorithm with a vectorized path must take it.

        The capability registry is the source of truth; if an algorithm
        is registered there, ``engine="auto"`` resolving to the generator
        engine is a dispatch bug (the PR 3 era shipped exactly that state
        for ghaffari/abi).  ``result="auto"`` doubles as the witness at
        the API level: it yields :class:`ArrayRunResult` exactly when a
        vectorized engine actually ran the trial.
        """
        from repro.api import algorithm_names
        from repro.sim.array_result import ArrayRunResult
        from repro.sim.fast_engine import ENGINE_CAPABILITIES

        assert set(algorithm_names()) == set(ENGINE_CAPABILITIES)
        graph = {0: (1,), 1: (0, 2), 2: (1,)}
        for algorithm in algorithm_names():
            assert resolve_engine("auto", algorithm) == "vectorized"
            ran = run_mis(graph, algorithm, engine="auto", result="auto")
            assert isinstance(ran, ArrayRunResult), algorithm

    def test_vectorized_request_fails_loudly_when_unsupported(self):
        with pytest.raises(ValueError):
            resolve_engine("vectorized", "seq-greedy")
        with pytest.raises(ValueError):
            resolve_engine("vectorized", "luby", congest_bit_limit=16)
        with pytest.raises(ValueError):
            resolve_engine("vectorized", "ghaffari", loss_rate=0.5)
        with pytest.raises(ValueError):
            resolve_engine("bogus", "sleeping")

    def test_auto_engine_through_api_matches_reference(self, gnp60):
        assert_equivalent(
            run_mis(gnp60, "fast-sleeping", seed=11),
            run_mis(gnp60, "fast-sleeping", seed=11, engine="auto"),
        )

    def test_vectorized_has_no_protocols(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=0, engine="vectorized")
        assert result.protocols == {}
        reference = run_mis(gnp60, "sleeping", seed=0)
        assert reference.protocols  # the generator engine keeps them

"""Randomized/property-style invariants of the simulation engines.

On seeded G(n, p) graphs, both engines must (a) output valid MIS's per the
validation oracles, (b) be bit-for-bit deterministic under equal seeds,
and (c) account for every wall-clock round exactly -- the fast-forward
trick may skip simulating sleep, but ``awake + sleep`` per node and the
schedule formulas must come out exact.  The batch runner must be a pure
reordering-free convenience over single runs.
"""

import networkx as nx
import pytest
from dataclasses import asdict

from helpers import run_mis

from repro.core import schedule
from repro.graphs.validation import assert_valid_mis
from repro.sim.batch import run_trials

ENGINES = ("generators", "vectorized")
ALGORITHMS = ("sleeping", "fast-sleeping")

#: (n, p, graph_seed) cases spanning sparse to fairly dense.
GNP_CASES = [(20, 0.3, 0), (40, 0.1, 1), (60, 0.05, 2), (80, 0.15, 3)]


def gnp(n, p, graph_seed):
    return nx.gnp_random_graph(n, p, seed=graph_seed)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("case", GNP_CASES, ids=lambda c: f"gnp{c[0]}-{c[2]}")
def test_mis_validity_on_random_graphs(case, algorithm, engine):
    n, p, graph_seed = case
    graph = gnp(n, p, graph_seed)
    for run_seed in (0, 1):
        result = run_mis(graph, algorithm, seed=run_seed, engine=engine)
        # fast-sleeping is Monte Carlo: undecided nodes are allowed in
        # principle, but must never break independence/maximality of the
        # decided part when absent.
        if not result.undecided:
            assert_valid_mis(graph, result.mis)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_equal_seeds_reproduce_bit_for_bit(algorithm, engine):
    graph = gnp(50, 0.1, 5)
    first = run_mis(graph, algorithm, seed=9, engine=engine)
    second = run_mis(graph, algorithm, seed=9, engine=engine)
    assert first.outputs == second.outputs
    assert first.rounds == second.rounds
    for v in first.node_stats:
        assert asdict(first.node_stats[v]) == asdict(second.node_stats[v])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_different_seeds_usually_differ(algorithm):
    graph = gnp(50, 0.1, 5)
    outputs = {
        tuple(sorted(run_mis(graph, algorithm, seed=s).mis)) for s in range(6)
    }
    assert len(outputs) > 1, "six seeds produced identical MIS's"


class TestFastForwardAccounting:
    """Round accounting is exact even though sleep is never simulated."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("case", GNP_CASES[:2], ids=str)
    def test_algorithm1_wall_clock_is_exact_schedule(self, case, engine):
        n, p, graph_seed = case
        result = run_mis(
            gnp(n, p, graph_seed), "sleeping", seed=1, engine=engine
        )
        expected = schedule.call_duration(schedule.recursion_depth(n))
        assert result.rounds == expected

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("case", GNP_CASES[:2], ids=str)
    def test_algorithm2_wall_clock_is_exact_schedule(self, case, engine):
        n, p, graph_seed = case
        result = run_mis(
            gnp(n, p, graph_seed), "fast-sleeping", seed=1, engine=engine
        )
        expected = schedule.fast_call_duration(
            schedule.truncated_depth(n), schedule.greedy_rounds(n)
        )
        assert result.rounds == expected

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_round_is_awake_or_asleep(self, algorithm, engine):
        result = run_mis(gnp(40, 0.1, 1), algorithm, seed=2, engine=engine)
        for stats in result.node_stats.values():
            assert stats.finish_round == result.rounds
            assert stats.awake_rounds + stats.sleep_rounds == result.rounds
            assert (
                stats.tx_rounds + stats.rx_rounds + stats.idle_rounds
                == stats.awake_rounds
            )


class TestBatchRunner:
    def test_results_in_seed_order_and_equal_to_single_runs(self):
        graph = gnp(30, 0.15, 4)
        seeds = [3, 1, 4, 1, 5]  # duplicates allowed
        batch = run_trials(graph, "fast-sleeping", seeds=seeds, engine="auto")
        assert len(batch) == len(seeds)
        for seed, result in zip(seeds, batch):
            single = run_mis(graph, "fast-sleeping", seed=seed)
            assert result.seed == seed
            assert result.outputs == single.outputs
            for v in single.node_stats:
                assert asdict(result.node_stats[v]) == asdict(
                    single.node_stats[v]
                )

    def test_graph_factory_builds_per_seed_graphs(self):
        results = run_trials(
            lambda seed: nx.path_graph(5 + seed), "sleeping", seeds=[0, 2],
        )
        assert [r.n for r in results] == [5, 7]

    def test_engines_agree_through_batch(self):
        graph = gnp(25, 0.2, 6)
        seeds = range(4)
        vec = run_trials(graph, "sleeping", seeds=seeds, engine="vectorized")
        gen = run_trials(graph, "sleeping", seeds=seeds, engine="generators")
        for a, b in zip(vec, gen):
            assert a.outputs == b.outputs and a.rounds == b.rounds

    def test_empty_seed_list(self):
        assert run_trials(nx.path_graph(3), "sleeping", seeds=[]) == []

    def test_parallel_matches_sequential(self):
        # On a 1-CPU container this exercises the pool plumbing rather
        # than any speedup; the contract is identical results in order.
        graph = gnp(20, 0.2, 8)
        seeds = list(range(6))
        seq = run_trials(graph, "fast-sleeping", seeds=seeds)
        par = run_trials(graph, "fast-sleeping", seeds=seeds, n_jobs=2)
        assert [r.outputs for r in par] == [r.outputs for r in seq]


class TestBatchCongestEnforcement:
    def test_congest_limit_threads_through_batch_and_sweep(self):
        # Regression: congest_bit_limit must reach the generator Simulator
        # through the batch path (it is not a protocol kwarg), and must
        # force the vectorized engine out of "auto".
        from repro.analysis.complexity import sweep
        from repro.sim.errors import CongestViolationError

        rows = sweep(
            "sleeping", "cycle", sizes=[8], trials=1, seed0=0,
            congest_bit_limit=64,
        )
        assert rows and rows[0].valid

        with pytest.raises(CongestViolationError):
            run_trials(
                nx.path_graph(3), "sleeping", seeds=[0], congest_bit_limit=1
            )

"""Tests for the sequential greedy / lexicographically-first MIS oracle."""

import random

import networkx as nx
import pytest

from repro.baselines.seq_greedy import (
    greedy_mis,
    lexicographically_first_mis,
    random_order_mis,
)
from repro.graphs import assert_valid_mis


class TestGreedyMIS:
    def test_path_forward_order(self):
        graph = nx.path_graph(5)
        assert greedy_mis(graph, [0, 1, 2, 3, 4]) == {0, 2, 4}

    def test_path_middle_first(self):
        graph = nx.path_graph(5)
        assert greedy_mis(graph, [2, 0, 1, 3, 4]) == {2, 0, 4}

    def test_always_valid(self):
        graph = nx.gnp_random_graph(40, 0.2, seed=7)
        rng = random.Random(1)
        for _ in range(10):
            order = list(graph.nodes())
            rng.shuffle(order)
            assert_valid_mis(graph, greedy_mis(graph, order))

    def test_order_must_be_permutation(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            greedy_mis(graph, [0, 1])
        with pytest.raises(ValueError):
            greedy_mis(graph, [0, 1, 1])

    def test_empty_graph(self):
        assert greedy_mis(nx.empty_graph(0), []) == set()

    def test_deterministic_given_order(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=3)
        order = sorted(graph.nodes())
        assert greedy_mis(graph, order) == greedy_mis(graph, order)


class TestLexicographicallyFirst:
    def test_highest_priority_always_in(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=5)
        priority = {v: v for v in graph.nodes()}
        mis = lexicographically_first_mis(graph, priority)
        assert 29 in mis  # the max-priority node is never blocked

    def test_matches_explicit_order(self):
        graph = nx.cycle_graph(6)
        priority = {0: 10, 1: 9, 2: 8, 3: 7, 4: 6, 5: 5}
        assert lexicographically_first_mis(graph, priority) == greedy_mis(
            graph, [0, 1, 2, 3, 4, 5]
        )

    def test_missing_priority_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            lexicographically_first_mis(graph, {0: 1, 1: 2})

    def test_tuple_priorities(self):
        graph = nx.path_graph(4)
        priority = {0: (1, 0), 1: (0, 1), 2: (1, 1), 3: (0, 0)}
        mis = lexicographically_first_mis(graph, priority)
        assert_valid_mis(graph, mis)
        assert 2 in mis  # highest tuple


class TestRandomOrder:
    def test_valid_and_seed_deterministic(self):
        graph = nx.gnp_random_graph(25, 0.2, seed=2)
        a = random_order_mis(graph, random.Random(9))
        b = random_order_mis(graph, random.Random(9))
        assert a == b
        assert_valid_mis(graph, a)

"""Unit tests for the energy model."""

import pytest

from repro.sim.energy import DEFAULT_MODEL, IDEAL_MODEL, EnergyModel
from repro.sim.metrics import NodeStats, RunResult


def make_result(stats_list):
    stats = {s.node_id: s for s in stats_list}
    return RunResult(
        n=len(stats), rounds=0, seed=0, node_stats=stats, outputs={}
    )


class TestEnergyModel:
    def test_node_energy_weighted_sum(self):
        model = EnergyModel(tx=2.0, rx=1.0, idle=0.5, sleep=0.1)
        stats = NodeStats(
            0, tx_rounds=3, rx_rounds=2, idle_rounds=4, sleep_rounds=10
        )
        assert model.node_energy(stats) == pytest.approx(
            2.0 * 3 + 1.0 * 2 + 0.5 * 4 + 0.1 * 10
        )

    def test_total_energy_sums_nodes(self):
        model = EnergyModel(tx=1, rx=1, idle=1, sleep=0)
        result = make_result(
            [
                NodeStats(0, tx_rounds=1, rx_rounds=1),
                NodeStats(1, idle_rounds=3),
            ]
        )
        assert model.total_energy(result) == pytest.approx(5.0)

    def test_average_energy(self):
        model = EnergyModel(tx=1, rx=1, idle=1, sleep=0)
        result = make_result(
            [NodeStats(0, tx_rounds=2), NodeStats(1, tx_rounds=4)]
        )
        assert model.average_energy(result) == pytest.approx(3.0)

    def test_average_energy_empty(self):
        assert DEFAULT_MODEL.average_energy(make_result([])) == 0.0

    def test_per_node_energy(self):
        model = EnergyModel(tx=1, rx=0, idle=0, sleep=0)
        result = make_result(
            [NodeStats(0, tx_rounds=1), NodeStats(1, tx_rounds=2)]
        )
        assert model.per_node_energy(result) == {0: 1.0, 1: 2.0}

    def test_ideal_model_makes_sleep_free(self):
        stats = NodeStats(0, sleep_rounds=10**9, tx_rounds=1)
        assert IDEAL_MODEL.node_energy(stats) == pytest.approx(1.0)

    def test_default_weights_shape(self):
        # Idle listening nearly as expensive as receiving; sleeping cheap.
        assert DEFAULT_MODEL.tx > DEFAULT_MODEL.rx
        assert 0.5 < DEFAULT_MODEL.idle / DEFAULT_MODEL.rx < 1.0
        assert DEFAULT_MODEL.sleep < 0.1 * DEFAULT_MODEL.idle

"""Tests for message-loss fault injection.

The paper's model assumes reliable delivery; these tests document what the
algorithms rely on: with injected loss the protocols mis-detect their
neighborhoods and the validators catch the resulting non-MIS outputs.
"""

import networkx as nx
import pytest

from repro.baselines import LubyMIS
from repro.core import SleepingMIS
from repro.graphs import is_maximal_independent_set
from repro.sim import Simulator


class TestLossRateParameter:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Simulator(nx.path_graph(2), lambda v: SleepingMIS(), loss_rate=1.5)
        with pytest.raises(ValueError):
            Simulator(nx.path_graph(2), lambda v: SleepingMIS(), loss_rate=-0.1)

    def test_zero_loss_is_default_behaviour(self):
        graph = nx.gnp_random_graph(40, 0.1, seed=2)
        plain = Simulator(graph, lambda v: SleepingMIS(), seed=2).run()
        injected = Simulator(
            graph, lambda v: SleepingMIS(), seed=2, loss_rate=0.0
        ).run()
        assert plain.mis == injected.mis

    def test_loss_counter(self):
        graph = nx.complete_graph(10)
        sim = Simulator(
            graph, lambda v: SleepingMIS(), seed=1, loss_rate=0.5
        )
        sim.run()
        assert sim.messages_lost > 0

    def test_loss_deterministic_per_seed(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=3)
        runs = [
            Simulator(
                graph, lambda v: SleepingMIS(), seed=7, loss_rate=0.3
            ).run()
            for _ in range(2)
        ]
        assert runs[0].mis == runs[1].mis


class TestFailureModes:
    def test_total_loss_makes_everyone_look_isolated(self):
        # With every message dropped, each node's first isolated-node
        # detection hears nothing, so every node joins -- an invalid MIS
        # on any graph with an edge, which the validator must flag.
        graph = nx.complete_graph(8)
        result = Simulator(
            graph, lambda v: SleepingMIS(), seed=1, loss_rate=1.0
        ).run()
        assert result.mis == frozenset(range(8))
        assert not is_maximal_independent_set(graph, result.mis)

    def test_total_loss_stalls_luby(self):
        # Luby's phases make no progress without rank exchanges; the
        # phase budget ends the run with everyone undecided.
        graph = nx.complete_graph(8)
        result = Simulator(
            graph,
            lambda v: LubyMIS(max_phases=5),
            seed=1,
            loss_rate=1.0,
        ).run()
        assert len(result.undecided) == 8

    def test_moderate_loss_sometimes_corrupts_sleeping_mis(self):
        # At 20% loss some run within a few seeds must produce a non-MIS
        # output -- demonstrating that the model's reliability assumption
        # is load-bearing and that validation catches violations.
        graph = nx.gnp_random_graph(40, 0.2, seed=5)
        outcomes = []
        for seed in range(8):
            result = Simulator(
                graph, lambda v: SleepingMIS(), seed=seed, loss_rate=0.2
            ).run()
            outcomes.append(is_maximal_independent_set(graph, result.mis))
        assert not all(outcomes)

    def test_loss_never_crashes(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=4)
        for rate in (0.1, 0.5, 0.9):
            result = Simulator(
                graph, lambda v: SleepingMIS(), seed=4, loss_rate=rate
            ).run()
            assert result.all_finished

"""Tests for Luby's (Delta+1)-coloring baseline."""

import networkx as nx
import pytest

from repro.baselines import LubyColoring
from repro.graphs import coloring_palette_size, is_proper_coloring
from repro.sim import Simulator


def run_coloring(graph, seed=0, **kwargs):
    return Simulator(graph, lambda v: LubyColoring(**kwargs), seed=seed).run()


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: nx.empty_graph(5),
            lambda: nx.path_graph(10),
            lambda: nx.cycle_graph(9),
            lambda: nx.complete_graph(12),
            lambda: nx.star_graph(14),
            lambda: nx.gnp_random_graph(50, 0.1, seed=2),
        ],
        ids=["empty", "path", "cycle", "complete", "star", "gnp"],
    )
    def test_proper_coloring(self, graph_builder):
        graph = graph_builder()
        result = run_coloring(graph, seed=3)
        assert is_proper_coloring(graph, result.outputs)

    def test_palette_bound_per_node(self):
        # Node v's color is drawn from {0..deg(v)}: a (Delta+1)-coloring
        # with the stronger per-node (deg+1) bound.
        graph = nx.gnp_random_graph(40, 0.15, seed=5)
        result = run_coloring(graph, seed=5)
        for v, color in result.outputs.items():
            assert 0 <= color <= graph.degree(v)

    def test_complete_graph_uses_all_colors(self):
        graph = nx.complete_graph(8)
        result = run_coloring(graph, seed=1)
        assert coloring_palette_size(result.outputs) == 8

    def test_isolated_node_gets_color_zero(self):
        result = run_coloring(nx.empty_graph(3), seed=0)
        assert all(c == 0 for c in result.outputs.values())


class TestNodeAveragedBehaviour:
    def test_constant_fraction_finishes_per_phase(self):
        # The Section 6.2 property from Barenboim--Tzur's account of
        # Luby's coloring: node-averaged finish time stays small while
        # n quadruples.
        small = run_coloring(nx.gnp_random_graph(64, 0.5, seed=1), seed=1)
        large = run_coloring(nx.gnp_random_graph(256, 0.5, seed=1), seed=1)
        assert (
            large.node_averaged_round_complexity
            <= 2.0 * small.node_averaged_round_complexity + 2.0
        )

    def test_max_phases_gives_up(self):
        graph = nx.complete_graph(30)
        result = run_coloring(graph, seed=0, max_phases=1)
        assert any(c is None for c in result.outputs.values())

    def test_phases_counted(self):
        graph = nx.cycle_graph(12)
        result = run_coloring(graph, seed=2)
        assert all(p.phases_run >= 1 for p in result.protocols.values())

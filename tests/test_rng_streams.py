"""The versioned RNG stream formats (repro.sim.rng).

Three contracts pinned here:

* **determinism** -- same ``(graph, seed, rng)`` always replays the same
  execution, on either engine and either stream format;
* **deliberate incompatibility** -- v1 (``pernode``) and v2 (``batched``)
  produce *different* executions for the same seed, and the formats are
  explicitly versioned so results can be pinned;
* **scalar/vector agreement** -- the :class:`CounterRNG` facade (what the
  generator engine consumes) and the numpy array draws (what the
  vectorized engines consume) compute the identical v2 stream.
"""

import numpy as np
import pytest

from helpers import run_mis

from repro.sim import rng as rng_mod
from repro.sim.rng import (
    DEFAULT_STREAM,
    RNG_STREAMS,
    STREAM_VERSIONS,
    CounterRNG,
    draw_u64,
    draw_u64_array,
    node_rng,
    node_rng_factory,
    stream_key,
    u64_mod_bound,
    u64_to_unit_float,
    validate_stream,
)


class TestVersioning:
    def test_streams_are_versioned(self):
        assert RNG_STREAMS == ("pernode", "batched")
        assert STREAM_VERSIONS == {"pernode": 1, "batched": 2}

    def test_default_stays_v1(self):
        """Seed compatibility: the default stream must remain ``pernode``
        so seeds recorded before v2 existed keep replaying identically."""
        assert DEFAULT_STREAM == "pernode"

    def test_validate_rejects_unknown_streams(self):
        assert validate_stream("batched") == "batched"
        with pytest.raises(ValueError):
            validate_stream("v3")

    def test_api_rejects_unknown_streams(self, gnp60):
        with pytest.raises(ValueError):
            run_mis(gnp60, "sleeping", rng="bogus")
        with pytest.raises(ValueError):
            run_mis(gnp60, "sleeping", rng="bogus", engine="vectorized")
        with pytest.raises(ValueError):
            run_mis(gnp60, "luby", rng="bogus", engine="vectorized")


class TestV1Factory:
    def test_prefix_factory_matches_node_rng(self):
        """The prefix-precomputing factory is a pure optimization: the
        streams must be bit-identical to ``node_rng``'s."""
        for seed in (0, 17, None):
            make = node_rng_factory(seed)
            for node_id in (0, 5, "v3"):
                a = node_rng(seed, node_id)
                b = make(node_id)
                assert [a.random() for _ in range(5)] == [
                    b.random() for _ in range(5)
                ]
                assert a.randrange(10**30) == b.randrange(10**30)


class TestDeterminism:
    @pytest.mark.parametrize("rng", RNG_STREAMS)
    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby", "greedy"]
    )
    def test_same_seed_same_mis(self, gnp60, algorithm, rng):
        first = run_mis(gnp60, algorithm, seed=9, engine="vectorized", rng=rng)
        second = run_mis(gnp60, algorithm, seed=9, engine="vectorized", rng=rng)
        assert first.mis == second.mis
        assert first.outputs == second.outputs
        assert first.rounds == second.rounds

    @pytest.mark.parametrize("rng", RNG_STREAMS)
    def test_different_seeds_differ(self, gnp60, rng):
        a = run_mis(gnp60, "fast-sleeping", seed=0, engine="vectorized", rng=rng)
        b = run_mis(gnp60, "fast-sleeping", seed=1, engine="vectorized", rng=rng)
        assert a.mis != b.mis  # holds for this fixed graph and seed pair


class TestStreamsAreDistinct:
    def test_v1_v2_draws_differ(self):
        """The formats share no draw values: v2 is a clean break."""
        v1 = node_rng(0, 0)
        v2 = CounterRNG(stream_key(0), 0)
        assert [v1.random() for _ in range(4)] != [
            v2.random() for _ in range(4)
        ]

    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby", "greedy"]
    )
    def test_v1_v2_executions_differ(self, gnp60, algorithm):
        v1 = run_mis(gnp60, algorithm, seed=0, engine="vectorized")
        v2 = run_mis(
            gnp60, algorithm, seed=0, engine="vectorized", rng="batched"
        )
        # Same graph, same seed, different stream format: the executions
        # diverge (pinned on this fixed graph; both sides deterministic).
        assert v1.mis != v2.mis or v1.summary() != v2.summary()


class TestScalarVectorAgreement:
    def test_array_draws_match_scalar_draws(self):
        key = stream_key(123)
        nodes = np.array([0, 1, 7, 1000], dtype=np.int64)
        counters = np.array([0, 3, 2, 41], dtype=np.int64)
        array = draw_u64_array(key, nodes, counters)
        scalar = [draw_u64(key, int(i), int(j)) for i, j in zip(nodes, counters)]
        assert array.tolist() == scalar

    def test_counter_rng_consumes_the_array_stream(self):
        key = stream_key(7)
        r = CounterRNG(key, 5)
        expected_u = [draw_u64(key, 5, j) for j in range(6)]
        assert r.random() == (expected_u[0] >> 11) * 2.0**-53
        assert r.randrange(1000) == expected_u[1] % 1000
        huge = 10**40  # above 2^64: modulo is the identity
        assert r.randrange(huge) == expected_u[2]
        assert r.getrandbits(64) == expected_u[3]
        assert r.getrandbits(8) == expected_u[4] >> 56
        assert r.random() == (expected_u[5] >> 11) * 2.0**-53

    def test_u64_mod_bound_matches_python_mod(self):
        u = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        for bound in (7, 2**62 + 3, 2**63 + 11, 10**40):
            got = u64_mod_bound(u, bound)
            assert got.tolist() == [int(x) % bound for x in u.tolist()]

    def test_unit_floats_match_counter_rng(self):
        key = stream_key(99)
        u = draw_u64_array(
            key, np.arange(4, dtype=np.int64), np.zeros(4, dtype=np.int64)
        )
        floats = u64_to_unit_float(u)
        for i in range(4):
            assert floats[i] == CounterRNG(key, i).random()
        assert (floats >= 0).all() and (floats < 1).all()

    def test_bit_length_u64_exact(self):
        values = [0, 1, 2, 3, 2**52 - 1, 2**53, 2**53 + 1, 2**63, 2**64 - 1]
        arr = np.array(values, dtype=np.uint64)
        assert rng_mod.bit_length_u64(arr).tolist() == [
            v.bit_length() for v in values
        ]

    def test_derived_random_methods_work(self):
        """Inherited random.Random machinery routes through the stream."""
        r = CounterRNG(stream_key(1), 0)
        items = list(range(10))
        r.shuffle(items)
        assert sorted(items) == list(range(10))
        assert 0 <= r.randint(0, 9) <= 9
        assert r.choice([1, 2, 3]) in (1, 2, 3)

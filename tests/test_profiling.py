"""Unit tests for the phase-profiling layer (:mod:`repro.profiling`).

The profiler's contract has three load-bearing clauses the pipeline
instrumentation depends on:

* **zero cost / zero effect when disabled** -- the module-level
  :func:`~repro.profiling.phase` hands back one shared null object, and
  :func:`~repro.profiling.profiled_pulls` returns its iterable untouched;
* **self-time attribution** -- nested spans pause their parent, so the
  reported per-phase wall clocks *partition* the measured window instead
  of double-counting (the streaming CSR build pulls sampler chunks from
  inside its own phase);
* **artifact-shaped reporting** -- ``report()`` is the ``phases`` block
  committed into ``BENCH_scale_*`` artifacts, with deterministic
  ``calls`` counts and machine-varying ``_s``/``_mb`` keys.
"""

import time

import pytest

import repro.profiling as prof_mod
from repro.profiling import (
    PIPELINE_PHASES,
    PhaseProfiler,
    active,
    peak_rss_mb,
    phase,
    profile_phases,
    profiled_pulls,
)


class TestDisabledPath:
    def test_phase_returns_the_shared_null_object(self):
        assert active() is None
        first = phase("engine")
        second = phase("sample")
        assert first is second  # one preallocated null span, no per-call
        with first:
            pass  # usable as a context manager, records nothing

    def test_profiled_pulls_returns_iterable_unchanged(self):
        items = [1, 2, 3]
        assert profiled_pulls("sample", items) is items

    def test_instrumented_code_runs_without_a_profiler(self):
        with phase("engine"):
            with phase("result_build"):
                pass  # nesting through the null object is fine


class TestActivation:
    def test_profile_phases_activates_and_clears(self):
        with profile_phases() as prof:
            assert active() is prof
        assert active() is None

    def test_activation_clears_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with profile_phases():
                raise RuntimeError("boom")
        assert active() is None

    def test_nested_activation_is_an_error(self):
        with profile_phases():
            with pytest.raises(RuntimeError, match="does not nest"):
                with profile_phases():
                    pass
        assert active() is None

    def test_out_of_order_end_is_an_error(self):
        prof = PhaseProfiler()
        prof.start_phase("a")
        prof.start_phase("b")
        with pytest.raises(RuntimeError, match="out of order"):
            prof.end_phase("a")


class TestSelfTimeAttribution:
    def test_nested_phase_pauses_the_parent(self):
        """Outer wall time excludes the inner span: self times partition."""
        with profile_phases() as prof:
            with phase("engine"):
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < 0.01:
                    pass
                with phase("result_build"):
                    t0 = time.perf_counter()
                    while time.perf_counter() - t0 < 0.03:
                        pass
        assert prof.calls == {"engine": 1, "result_build": 1}
        # The inner 30 ms must be attributed to result_build alone; a
        # double-counting stopwatch would give engine >= 40 ms.
        assert prof.wall_s["result_build"] >= 0.03
        assert prof.wall_s["engine"] < 0.03

    def test_profiled_pulls_books_pull_time_to_the_named_phase(self):
        def slow_chunks():
            for _ in range(3):
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < 0.01:
                    pass
                yield 1

        with profile_phases() as prof:
            with phase("csr_build"):
                total = sum(profiled_pulls("sample", slow_chunks()))
        assert total == 3
        assert prof.calls["sample"] == 4  # 3 items + the StopIteration pull
        assert prof.wall_s["sample"] >= 0.03
        assert prof.wall_s["csr_build"] < 0.03

    def test_calls_and_wall_accumulate_across_spans(self):
        with profile_phases() as prof:
            for _ in range(5):
                with phase("engine"):
                    pass
        assert prof.calls["engine"] == 5
        assert prof.wall_s["engine"] >= 0.0


class TestReporting:
    def test_report_shape_matches_the_artifact_phases_block(self):
        with profile_phases() as prof:
            with phase("csr_build"):
                with phase("sample"):
                    pass
            with phase("engine"):
                pass
        report = prof.report()
        # Pipeline order first, regardless of execution order.
        assert list(report) == ["sample", "csr_build", "engine"]
        for entry in report.values():
            assert entry["calls"] >= 1
            assert isinstance(entry["wall_s"], float)

    def test_extra_phase_names_sort_after_pipeline_ones(self):
        with profile_phases() as prof:
            with phase("zeta"):
                pass
            with phase("engine"):
                pass
        assert prof.phase_names() == ["engine", "zeta"]

    def test_trace_records_per_phase_peaks(self):
        with profile_phases(trace=True) as prof:
            with phase("engine"):
                blob = bytearray(4 * 1024 * 1024)
                del blob
        entry = prof.report()["engine"]
        assert entry["peak_traced_mb"] >= 4.0
        summary = prof.summary()
        assert set(summary) >= {"phases", "profiled_wall_s"}
        assert summary["phases"]["engine"]["peak_traced_mb"] >= 4.0

    def test_summary_carries_process_rss(self):
        rss = peak_rss_mb()
        if rss is None:
            pytest.skip("no resource module on this platform")
        assert rss > 0
        with profile_phases() as prof:
            with phase("engine"):
                pass
        assert prof.summary()["peak_rss_mb"] >= rss

    def test_format_renders_one_row_per_phase(self):
        with profile_phases(trace=True) as prof:
            with phase("sample"):
                pass
            with phase("engine"):
                pass
        text = prof.format()
        lines = text.splitlines()
        assert "phase" in lines[0] and "wall_s" in lines[0]
        assert any(line.startswith("sample") for line in lines)
        assert any(line.startswith("engine") for line in lines)
        assert lines[-1].startswith("total")

    def test_pipeline_phase_constant_is_the_documented_order(self):
        assert PIPELINE_PHASES == (
            "sample", "csr_build", "engine", "result_build"
        )


class TestPipelineIntegration:
    def test_streamed_trial_populates_all_four_phases(self, monkeypatch):
        """One profiled end-to-end trial on the streaming v2 sampler
        books time to every pipeline phase with deterministic call
        counts (the artifact drift check compares ``calls``)."""
        import repro.graphs.arrays as arrays_mod
        from repro.api import solve_mis
        from repro.plan import RunPlan

        monkeypatch.setattr(arrays_mod, "GNP_V2_STREAM_CHUNK", 1 << 11)
        plan = RunPlan(
            algorithm="fast-sleeping", family="gnp-dense", n=400, seed=3,
            engine="vectorized", rng="batched", graph_rng="batched",
            graph_source="arrays", result="arrays",
        )
        with profile_phases(trace=True) as prof:
            graph = arrays_mod.gnp_arrays_v2(400, 0.5, seed=3, stream=True)
            result = solve_mis(graph, plan=plan)
        assert result.is_valid_mis()
        report = prof.report()
        assert set(PIPELINE_PHASES) <= set(report)
        # Streaming makes two passes over the same chunk stream: pass 2
        # re-samples, so sample calls double relative to one pass.
        assert report["sample"]["calls"] >= 2
        assert report["result_build"]["calls"] == 1

    def test_rerunning_the_same_plan_gives_identical_calls(self):
        """``calls`` is the deterministic half of the phases block."""
        from repro.api import solve_mis
        from repro.graphs.arrays import gnp_arrays_v2

        def one_run():
            with profile_phases() as prof:
                graph = gnp_arrays_v2(300, 0.1, seed=5)
                solve_mis(
                    graph, "fast-sleeping", engine="vectorized",
                    rng="batched", result="arrays",
                )
            return prof.calls

        assert one_run() == one_run()

    def test_module_state_is_clean_for_other_tests(self):
        assert prof_mod._ACTIVE is None

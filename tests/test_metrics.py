"""Unit tests for NodeStats / RunResult measure computation, plus the
pinned tx/rx/idle classification spec of ``Simulator._exchange``."""

from repro.sim import Protocol, SendAndReceive, Simulator, Sleep
from repro.sim.metrics import NodeStats, RunResult


def make_result(stats_list, outputs=None, rounds=None):
    stats = {s.node_id: s for s in stats_list}
    if rounds is None:
        rounds = max(
            (s.finish_round or 0 for s in stats_list), default=0
        )
    return RunResult(
        n=len(stats),
        rounds=rounds,
        seed=0,
        node_stats=stats,
        outputs=outputs or {},
    )


class TestMeasures:
    def test_node_averaged_awake(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=2, finish_round=5),
                NodeStats(1, awake_rounds=6, finish_round=5),
            ]
        )
        assert result.node_averaged_awake_complexity == 4.0

    def test_worst_case_awake(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=2, finish_round=5),
                NodeStats(1, awake_rounds=6, finish_round=5),
            ]
        )
        assert result.worst_case_awake_complexity == 6

    def test_worst_case_rounds_is_wall_clock(self):
        result = make_result(
            [NodeStats(0, finish_round=9)], rounds=9
        )
        assert result.worst_case_round_complexity == 9

    def test_node_averaged_rounds(self):
        result = make_result(
            [
                NodeStats(0, finish_round=2),
                NodeStats(1, finish_round=10),
            ]
        )
        assert result.node_averaged_round_complexity == 6.0

    def test_unfinished_node_counts_as_finishing_at_end(self):
        result = make_result(
            [NodeStats(0, finish_round=None), NodeStats(1, finish_round=4)],
            rounds=10,
        )
        assert result.node_averaged_round_complexity == 7.0
        assert not result.all_finished

    def test_empty_result(self):
        result = make_result([])
        assert result.node_averaged_awake_complexity == 0.0
        assert result.worst_case_awake_complexity == 0
        assert result.node_averaged_round_complexity == 0.0


class TestTotals:
    def test_message_totals(self):
        result = make_result(
            [
                NodeStats(0, messages_sent=3, bits_sent=6, finish_round=1),
                NodeStats(1, messages_sent=1, bits_sent=2, finish_round=1),
            ]
        )
        assert result.total_messages == 4
        assert result.total_bits == 8

    def test_total_awake_rounds(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=5, finish_round=1),
                NodeStats(1, awake_rounds=7, finish_round=1),
            ]
        )
        assert result.total_awake_rounds == 12


class TestOutputs:
    def test_mis_property_selects_true(self):
        result = make_result(
            [NodeStats(0, finish_round=0), NodeStats(1, finish_round=0)],
            outputs={0: True, 1: False},
        )
        assert result.mis == frozenset({0})

    def test_undecided_property(self):
        result = make_result(
            [NodeStats(0, finish_round=0), NodeStats(1, finish_round=0)],
            outputs={0: True, 1: None},
        )
        assert result.undecided == frozenset({1})

    def test_decision_round_average(self):
        result = make_result(
            [
                NodeStats(0, decision_round=2, finish_round=4),
                NodeStats(1, decision_round=None, finish_round=4),
            ],
            rounds=4,
        )
        assert result.node_averaged_decision_round == 3.0


class TestSummary:
    def test_summary_keys(self):
        result = make_result([NodeStats(0, awake_rounds=1, finish_round=2)])
        summary = result.summary()
        assert summary["n"] == 1
        assert summary["node_averaged_awake"] == 1.0
        assert summary["worst_case_rounds"] == 2
        assert "total_messages" in summary


# ----------------------------------------------------------------------
# The tx/rx/idle round-classification spec, pinned on a 2-node path.
#
# Exactly one label per awake round, derived from a single source of
# truth in Simulator._exchange:
#
#   tx   -- the node sent at least one message this round, whether or not
#           it also received (and even if every copy was dropped);
#   rx   -- it sent nothing and at least one message was delivered to it;
#   idle -- it sent nothing and received nothing.
#
# The vectorized engine replicates these counters, so this is the contract
# its accounting is verified against.
# ----------------------------------------------------------------------


class _OneRound(Protocol):
    """Awake for one round; optionally sends to every neighbor."""

    def __init__(self, send):
        self.send = send
        self.inbox = None

    def run(self, ctx):
        messages = {u: "ping" for u in ctx.neighbors} if self.send else {}
        self.inbox = yield SendAndReceive(messages)

    def output(self):
        return sorted(self.inbox) if self.inbox is not None else None


class _SleepFirst(Protocol):
    """Asleep in round 0, silent listen in round 1."""

    def run(self, ctx):
        yield Sleep(1)
        yield SendAndReceive({})


def _path2(left, right):
    result = Simulator(
        {0: [1], 1: [0]},
        lambda v: left if v == 0 else right,
    ).run()
    return result.node_stats[0], result.node_stats[1]


class TestExchangeAccounting:
    def test_sender_with_silent_peer_is_tx_even_without_inbox(self):
        # The pinned corner: node 0 sends but receives nothing back.
        sender, listener = _path2(_OneRound(send=True), _OneRound(send=False))
        assert (sender.tx_rounds, sender.rx_rounds, sender.idle_rounds) == (
            1, 0, 0,
        )
        assert sender.messages_received == 0

    def test_silent_receiver_is_rx(self):
        _, listener = _path2(_OneRound(send=True), _OneRound(send=False))
        assert (
            listener.tx_rounds, listener.rx_rounds, listener.idle_rounds
        ) == (0, 1, 0)
        assert listener.messages_received == 1

    def test_sender_into_sleeping_peer_is_tx_and_message_counted(self):
        sender, sleeper = _path2(_OneRound(send=True), _SleepFirst())
        assert (sender.tx_rounds, sender.rx_rounds, sender.idle_rounds) == (
            1, 0, 0,
        )
        # The message to the sleeping node is sent (and paid for) but never
        # delivered.
        assert sender.messages_sent == 1
        assert sleeper.messages_received == 0
        # The sleeper's own awake round hears nothing: idle.
        assert (
            sleeper.tx_rounds, sleeper.rx_rounds, sleeper.idle_rounds
        ) == (0, 0, 1)

    def test_mutual_senders_are_tx_not_rx(self):
        a, b = _path2(_OneRound(send=True), _OneRound(send=True))
        for stats in (a, b):
            assert (
                stats.tx_rounds, stats.rx_rounds, stats.idle_rounds
            ) == (1, 0, 0)
            assert stats.messages_received == 1

    def test_mutual_silence_is_idle(self):
        a, b = _path2(_OneRound(send=False), _OneRound(send=False))
        for stats in (a, b):
            assert (
                stats.tx_rounds, stats.rx_rounds, stats.idle_rounds
            ) == (0, 0, 1)

    def test_labels_partition_awake_rounds(self):
        for left in (True, False):
            for right in (True, False):
                a, b = _path2(_OneRound(send=left), _OneRound(send=right))
                for stats in (a, b):
                    assert (
                        stats.tx_rounds + stats.rx_rounds + stats.idle_rounds
                        == stats.awake_rounds
                    )

    def test_lost_messages_still_count_as_tx(self):
        result = Simulator(
            {0: [1], 1: [0]},
            lambda v: _OneRound(send=(v == 0)),
            loss_rate=1.0,
        ).run()
        sender = result.node_stats[0]
        listener = result.node_stats[1]
        assert sender.tx_rounds == 1
        assert sender.messages_sent == 1
        # Nothing was delivered: the listener's round is idle, not rx.
        assert listener.messages_received == 0
        assert (
            listener.tx_rounds, listener.rx_rounds, listener.idle_rounds
        ) == (0, 0, 1)

"""Unit tests for NodeStats / RunResult measure computation."""

from repro.sim.metrics import NodeStats, RunResult


def make_result(stats_list, outputs=None, rounds=None):
    stats = {s.node_id: s for s in stats_list}
    if rounds is None:
        rounds = max(
            (s.finish_round or 0 for s in stats_list), default=0
        )
    return RunResult(
        n=len(stats),
        rounds=rounds,
        seed=0,
        node_stats=stats,
        outputs=outputs or {},
    )


class TestMeasures:
    def test_node_averaged_awake(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=2, finish_round=5),
                NodeStats(1, awake_rounds=6, finish_round=5),
            ]
        )
        assert result.node_averaged_awake_complexity == 4.0

    def test_worst_case_awake(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=2, finish_round=5),
                NodeStats(1, awake_rounds=6, finish_round=5),
            ]
        )
        assert result.worst_case_awake_complexity == 6

    def test_worst_case_rounds_is_wall_clock(self):
        result = make_result(
            [NodeStats(0, finish_round=9)], rounds=9
        )
        assert result.worst_case_round_complexity == 9

    def test_node_averaged_rounds(self):
        result = make_result(
            [
                NodeStats(0, finish_round=2),
                NodeStats(1, finish_round=10),
            ]
        )
        assert result.node_averaged_round_complexity == 6.0

    def test_unfinished_node_counts_as_finishing_at_end(self):
        result = make_result(
            [NodeStats(0, finish_round=None), NodeStats(1, finish_round=4)],
            rounds=10,
        )
        assert result.node_averaged_round_complexity == 7.0
        assert not result.all_finished

    def test_empty_result(self):
        result = make_result([])
        assert result.node_averaged_awake_complexity == 0.0
        assert result.worst_case_awake_complexity == 0
        assert result.node_averaged_round_complexity == 0.0


class TestTotals:
    def test_message_totals(self):
        result = make_result(
            [
                NodeStats(0, messages_sent=3, bits_sent=6, finish_round=1),
                NodeStats(1, messages_sent=1, bits_sent=2, finish_round=1),
            ]
        )
        assert result.total_messages == 4
        assert result.total_bits == 8

    def test_total_awake_rounds(self):
        result = make_result(
            [
                NodeStats(0, awake_rounds=5, finish_round=1),
                NodeStats(1, awake_rounds=7, finish_round=1),
            ]
        )
        assert result.total_awake_rounds == 12


class TestOutputs:
    def test_mis_property_selects_true(self):
        result = make_result(
            [NodeStats(0, finish_round=0), NodeStats(1, finish_round=0)],
            outputs={0: True, 1: False},
        )
        assert result.mis == frozenset({0})

    def test_undecided_property(self):
        result = make_result(
            [NodeStats(0, finish_round=0), NodeStats(1, finish_round=0)],
            outputs={0: True, 1: None},
        )
        assert result.undecided == frozenset({1})

    def test_decision_round_average(self):
        result = make_result(
            [
                NodeStats(0, decision_round=2, finish_round=4),
                NodeStats(1, decision_round=None, finish_round=4),
            ],
            rounds=4,
        )
        assert result.node_averaged_decision_round == 3.0


class TestSummary:
    def test_summary_keys(self):
        result = make_result([NodeStats(0, awake_rounds=1, finish_round=2)])
        summary = result.summary()
        assert summary["n"] == 1
        assert summary["node_averaged_awake"] == 1.0
        assert summary["worst_case_rounds"] == 2
        assert "total_messages" in summary

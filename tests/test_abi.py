"""Tests for the Alon--Babai--Itai MIS baseline."""

import networkx as nx
import pytest

from repro.baselines import ABIMIS
from repro.graphs import assert_valid_mis
from repro.sim import Simulator

from helpers import run_mis


class TestCorrectness:
    def test_valid_mis_on_corner_cases(self, small_graph):
        result = run_mis(small_graph, "abi", seed=1)
        assert_valid_mis(small_graph, result.mis)

    @pytest.mark.parametrize("seed", range(6))
    def test_valid_mis_many_seeds(self, gnp60, seed):
        result = run_mis(gnp60, "abi", seed=seed)
        assert_valid_mis(gnp60, result.mis)

    def test_isolated_nodes_join_for_free(self):
        result = run_mis(nx.empty_graph(4), "abi", seed=0)
        assert result.mis == frozenset(range(4))
        assert result.rounds == 0

    def test_complete_graph(self):
        result = run_mis(nx.complete_graph(20), "abi", seed=3)
        assert len(result.mis) == 1


class TestDegreeWeighting:
    def test_marking_favors_low_probability_on_high_degree(self):
        # A star: the hub marks with prob 1/(2(n-1)), leaves with 1/2.
        # Over many seeds the leaves should win the vast majority of runs.
        hub_wins = 0
        for seed in range(20):
            result = run_mis(nx.star_graph(30), "abi", seed=seed)
            if 0 in result.mis:
                hub_wins += 1
        assert hub_wins < 10

    def test_conflicts_resolve_toward_higher_degree(self):
        # Whenever two adjacent nodes mark, the higher-degree one keeps
        # the mark -- implied by validity plus progress; check validity on
        # a degree-skewed graph.
        graph = nx.barbell_graph(8, 2)
        for seed in range(5):
            result = run_mis(graph, "abi", seed=seed)
            assert_valid_mis(graph, result.mis)


class TestTraditionalModel:
    def test_never_sleeps(self, gnp60):
        result = run_mis(gnp60, "abi", seed=2)
        assert all(s.sleep_rounds == 0 for s in result.node_stats.values())

    def test_rounds_logarithmic_scale(self):
        small = run_mis(nx.gnp_random_graph(50, 8 / 50, seed=1), "abi", seed=1)
        large = run_mis(
            nx.gnp_random_graph(400, 8 / 400, seed=1), "abi", seed=1
        )
        assert large.rounds <= max(3, 4 * small.rounds)

    def test_max_phases(self):
        result = Simulator(
            nx.complete_graph(30), lambda v: ABIMIS(max_phases=1), seed=0
        ).run()
        # One phase of 1/(2d) marking on a clique usually leaves most
        # nodes undecided.
        assert len(result.undecided) >= 0  # just must not crash

    def test_max_phases_validation(self):
        with pytest.raises(ValueError):
            ABIMIS(max_phases=0)

    def test_congest_budget(self, gnp60):
        import math

        limit = 64 * math.ceil(math.log2(60))
        result = run_mis(gnp60, "abi", seed=2, congest_bit_limit=limit)
        assert_valid_mis(gnp60, result.mis)

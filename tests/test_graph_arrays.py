"""The array-native graph sources (repro.graphs.arrays).

The whole point of ``graph_source="arrays"`` is that it is a *pure
performance* choice: for the same family, size, and seed the direct-to-CSR
samplers must produce exactly the edge set the networkx generators
produce.  These tests pin that parity edge-for-edge, the structural
invariants of :meth:`GraphArrays.from_edges`, the ``to_networkx()``
round-trip, and the source-resolution rules.
"""

import math

import networkx as nx
import numpy as np
import pytest

import repro.graphs.arrays
from repro.graphs.arrays import (
    ARRAY_FAMILIES,
    DEFAULT_GRAPH_RNG,
    GRAPH_RNG_VERSIONS,
    GRAPH_RNGS,
    GRAPH_SOURCES,
    RANDOMIZED_ARRAY_FAMILIES,
    array_family_names,
    gnp_arrays,
    gnp_arrays_v2,
    grid_arrays,
    make_family,
    make_family_arrays,
    path_arrays,
    resolve_graph_source,
    ring_arrays,
    star_arrays,
    validate_graph_rng,
)
from repro.graphs.generators import (
    FAMILIES,
    GNP_FAST_THRESHOLD,
    cycle_graph,
    gnp,
    grid_graph,
    make_family_graph,
    path_graph,
    star_graph,
)
from repro.sim.fast_engine import GraphArrays
from repro.sim.network import normalize_graph

from helpers import GRAPH_BUILDERS, GRAPH_IDS


def assert_same_graph(arrays: GraphArrays, graph) -> None:
    """Edge-for-edge equality with a networkx-built reference."""
    reference = GraphArrays(graph)
    assert arrays.n == reference.n
    assert list(arrays.node_ids) == list(reference.node_ids)
    np.testing.assert_array_equal(arrays.src, reference.src)
    np.testing.assert_array_equal(arrays.dst, reference.dst)
    np.testing.assert_array_equal(arrays.deg, reference.deg)
    np.testing.assert_array_equal(arrays.grev, reference.grev)


class TestGnpParity:
    @pytest.mark.parametrize(
        "n,p,seed",
        [
            (1, 0.5, 0),
            (2, 0.5, 3),
            (30, 0.15, 4),
            (300, 0.05, 7),
            (50, 0.9, 2),
            (40, 0.0, 1),
            (12, 1.0, 9),
        ],
    )
    def test_pair_loop_regime(self, n, p, seed):
        assert_same_graph(gnp_arrays(n, p, seed), gnp(n, p, seed=seed))

    def test_skip_sampler_regime(self):
        # Above the threshold and sparse: the O(n + m) geometric-skip
        # path, still edge-for-edge equal to networkx's.
        n = GNP_FAST_THRESHOLD + 100
        p = 8.0 / (n - 1)
        for seed in (0, 11, 12345):
            assert_same_graph(gnp_arrays(n, p, seed), gnp(n, p, seed=seed))

    def test_dense_above_threshold_stays_pair_loop(self):
        # p >= 0.25 never takes the skip sampler, matching generators.gnp.
        n = GNP_FAST_THRESHOLD + 10
        seed = 5
        assert_same_graph(gnp_arrays(n, 0.3, seed), gnp(n, 0.3, seed=seed))


class TestDeterministicTopologies:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 37])
    def test_ring(self, n):
        assert_same_graph(ring_arrays(n), cycle_graph(n))

    @pytest.mark.parametrize("n", [1, 2, 9, 40])
    def test_path(self, n):
        assert_same_graph(path_arrays(n), path_graph(n))

    @pytest.mark.parametrize("n", [1, 2, 12, 33])
    def test_star(self, n):
        assert_same_graph(star_arrays(n), star_graph(n))

    def test_star_rejects_empty(self):
        with pytest.raises(ValueError):
            star_arrays(0)

    @pytest.mark.parametrize("rows,cols", [(1, 1), (2, 3), (4, 4), (2, 11)])
    def test_grid_including_string_sorted_relabeling(self, rows, cols):
        # grid_graph relabels (i, j) nodes sorted *by str*, which is not
        # row-major once an index reaches 10 -- the 2x11 case would catch
        # a numeric-order shortcut.
        assert_same_graph(grid_arrays(rows, cols), grid_graph(rows, cols))


class TestFromEdges:
    def test_self_loops_and_duplicates_collapse(self):
        ga = GraphArrays.from_edges(
            4, np.array([0, 1, 1, 2, 3]), np.array([1, 0, 2, 1, 3])
        )
        # 3--3 dropped, 0--1 deduped across orientations, 1--2 deduped.
        assert ga.adjacency == normalize_graph({0: [1], 1: [0, 2], 2: [1], 3: []})

    def test_endpoint_bounds_checked(self):
        with pytest.raises(ValueError):
            GraphArrays.from_edges(3, np.array([0]), np.array([3]))
        with pytest.raises(ValueError):
            GraphArrays.from_edges(3, np.array([-1]), np.array([1]))
        with pytest.raises(ValueError):
            GraphArrays.from_edges(3, np.array([0, 1]), np.array([1]))

    def test_grev_is_reverse_edge_permutation(self):
        ga = gnp_arrays(80, 0.1, seed=6)
        np.testing.assert_array_equal(ga.src[ga.grev], ga.dst)
        np.testing.assert_array_equal(ga.dst[ga.grev], ga.src)

    def test_lazy_adjacency_not_built_until_asked(self):
        ga = gnp_arrays(50, 0.1, seed=1)
        assert ga._adjacency is None
        adjacency = ga.adjacency  # materializes and caches
        assert ga._adjacency is adjacency
        assert adjacency == normalize_graph(gnp(50, 0.1, seed=1))

    def test_empty_graph(self):
        ga = GraphArrays.from_edges(0, np.empty(0), np.empty(0))
        assert ga.n == 0 and ga.m == 0 and ga.adjacency == {}


class TestToNetworkx:
    def test_round_trip(self):
        ga = gnp_arrays(60, 0.1, seed=8)
        back = ga.to_networkx()
        assert isinstance(back, nx.Graph)
        assert_same_graph(GraphArrays(back), gnp(60, 0.1, seed=8))

    def test_preserves_isolated_nodes(self):
        ga = make_family_arrays("empty", 5)
        assert sorted(ga.to_networkx().nodes()) == [0, 1, 2, 3, 4]
        assert ga.to_networkx().number_of_edges() == 0


class TestFamilyRegistry:
    def test_array_families_subset_of_families(self):
        assert set(ARRAY_FAMILIES) <= set(FAMILIES)

    @pytest.mark.parametrize("family", sorted(ARRAY_FAMILIES))
    @pytest.mark.parametrize("n", [1, 2, 17, 64])
    def test_family_parity(self, family, n):
        for seed in (0, 3):
            assert_same_graph(
                make_family_arrays(family, n, seed=seed),
                make_family_graph(family, n, seed=seed),
            )

    def test_unknown_family_rejected(self):
        # Known family, but no array-native sampler.
        with pytest.raises(ValueError, match="no array-native sampler"):
            make_family_arrays("tree", 10)
        # Unknown everywhere: the shared suggestion-bearing error path.
        with pytest.raises(ValueError, match="'gnp-dense', 'gnp-sparse'"):
            make_family_arrays("gnp", 10)

    def test_names_sorted(self):
        assert array_family_names() == sorted(ARRAY_FAMILIES)


class TestSourceResolution:
    def test_auto_prefers_arrays_when_available(self):
        assert resolve_graph_source("auto", "gnp-sparse") == "arrays"
        assert resolve_graph_source("auto", "tree") == "networkx"

    def test_explicit_sources(self):
        assert resolve_graph_source("networkx", "gnp-sparse") == "networkx"
        assert resolve_graph_source("arrays", "cycle") == "arrays"

    def test_arrays_for_unsupported_family_is_an_error(self):
        with pytest.raises(ValueError, match="no array-native sampler"):
            resolve_graph_source("arrays", "tree")

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown graph source"):
            resolve_graph_source("csr", "cycle")
        assert GRAPH_SOURCES == ("auto", "networkx", "arrays")


def _gnp_v2_reference_pairs(n, p, seed):
    """Scalar reimplementation of the normative v2 sampling format.

    Independent of the vectorized code path: one draw at a time through
    the scalar ``mix64``, Python ``math.log1p`` skips, exact int
    positions.  The vectorized sampler must reproduce it bit-for-bit.
    """
    from repro.sim.rng import graph_stream_key, mix64

    key = graph_stream_key(seed)
    total = n * (n - 1) // 2
    log1mp = math.log1p(-p)
    pos, j, pairs = -1, 0, []
    while True:
        u = (mix64((key + j) % (1 << 64)) >> 11) * 2.0**-53
        j += 1
        pos += 1 + int(math.log1p(-u) / log1mp)
        if pos >= total:
            return pairs
        v = (1 + math.isqrt(1 + 8 * pos)) // 2
        while v * (v - 1) // 2 > pos:
            v -= 1
        while (v + 1) * v // 2 <= pos:
            v += 1
        pairs.append((pos - v * (v - 1) // 2, v))


class TestGraphRngV2:
    """The versioned v2 (``"batched"``) sampling stream.

    Same three contracts as the node-stream tests in
    ``tests/test_rng_streams.py``: determinism, deliberate v1/v2
    incompatibility, and scalar/vector agreement on the normative format.
    """

    def test_streams_are_versioned(self):
        assert GRAPH_RNGS == ("legacy", "batched")
        assert GRAPH_RNG_VERSIONS == {"legacy": 1, "batched": 2}

    def test_default_stays_v1(self):
        """Seed compatibility: the default sampling stream must remain
        ``legacy`` so graph seeds recorded before v2 existed keep
        replaying identically."""
        assert DEFAULT_GRAPH_RNG == "legacy"

    def test_validate_rejects_unknown_streams(self):
        assert validate_graph_rng("batched") == "batched"
        with pytest.raises(ValueError, match="unknown graph_rng"):
            validate_graph_rng("v3")
        with pytest.raises(ValueError, match="unknown graph_rng"):
            make_family_arrays("gnp-sparse", 10, graph_rng="v3")

    @pytest.mark.parametrize("n,p", [(40, 0.1), (200, 0.03), (64, 0.5)])
    def test_deterministic(self, n, p):
        for seed in (0, 7):
            a = gnp_arrays_v2(n, p, seed=seed)
            b = gnp_arrays_v2(n, p, seed=seed)
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = gnp_arrays_v2(200, 0.05, seed=0)
        b = gnp_arrays_v2(200, 0.05, seed=1)
        assert a.m != b.m or not np.array_equal(a.src, b.src)

    def test_v1_v2_graphs_differ(self):
        """The formats are deliberately incompatible: same (n, p, seed),
        different sampled graphs (pinned on these fixed parameters)."""
        v1 = gnp_arrays(300, 0.05, seed=7)
        v2 = gnp_arrays_v2(300, 0.05, seed=7)
        assert v1.m != v2.m or not np.array_equal(v1.src, v2.src)

    @pytest.mark.parametrize("n,p,seed", [(30, 0.2, 0), (120, 0.05, 3),
                                          (50, 0.7, 9)])
    def test_matches_scalar_reference(self, n, p, seed):
        """Vector/scalar agreement on the normative skip format."""
        expected = _gnp_v2_reference_pairs(n, p, seed)
        got = gnp_arrays_v2(n, p, seed=seed)
        half = got.src < got.dst
        pairs = sorted(
            zip(got.src[half].tolist(), got.dst[half].tolist())
        )
        assert pairs == sorted(expected)

    def test_format_anchor(self):
        """A hardcoded anchor so any formula drift (key derivation, skip
        law, decode order) fails loudly, not just differently."""
        got = gnp_arrays_v2(12, 0.3, seed=0)
        half = got.src < got.dst
        pairs = list(zip(got.src[half].tolist(), got.dst[half].tolist()))
        assert pairs == sorted(_gnp_v2_reference_pairs(12, 0.3, 0))
        # Frozen output of the v2 format for (12, 0.3, 0); must never
        # change -- the format is versioned.
        assert pairs[:4] == [(0, 1), (0, 7), (1, 4), (1, 6)]
        assert got.m == 2 * 21

    def test_chunk_size_is_not_part_of_the_format(self, monkeypatch):
        reference = gnp_arrays_v2(150, 0.08, seed=5)
        monkeypatch.setattr(repro.graphs.arrays, "GNP_V2_CHUNK", 1024)
        chunked = gnp_arrays_v2(150, 0.08, seed=5)
        np.testing.assert_array_equal(chunked.src, reference.src)
        np.testing.assert_array_equal(chunked.dst, reference.dst)

    def test_structure_invariants(self):
        ga = gnp_arrays_v2(400, 0.03, seed=2)
        np.testing.assert_array_equal(ga.src[ga.grev], ga.dst)
        np.testing.assert_array_equal(ga.dst[ga.grev], ga.src)
        np.testing.assert_array_equal(
            ga.deg, np.bincount(ga.src, minlength=ga.n)
        )
        assert (ga.src != ga.dst).all()

    def test_edge_cases(self):
        assert gnp_arrays_v2(0, 0.5).n == 0
        assert gnp_arrays_v2(1, 0.5).m == 0
        assert gnp_arrays_v2(10, 0.0).m == 0
        assert gnp_arrays_v2(10, 1.0).m == 90  # complete, same as v1
        assert gnp_arrays_v2(2, 0.9999, seed=3).n == 2

    def test_distribution_sanity(self):
        """Edge counts concentrate around p * n(n-1)/2 across seeds."""
        n, p = 300, 0.05
        expect = p * n * (n - 1) / 2
        counts = [gnp_arrays_v2(n, p, seed=s).m // 2 for s in range(20)]
        mean = sum(counts) / len(counts)
        assert abs(mean - expect) < 0.05 * expect

    @pytest.mark.parametrize("family", sorted(ARRAY_FAMILIES))
    def test_family_registry_plumbs_graph_rng(self, family):
        a = make_family_arrays(family, 60, seed=3, graph_rng="batched")
        b = make_family_arrays(family, 60, seed=3, graph_rng="batched")
        np.testing.assert_array_equal(a.src, b.src)
        legacy = make_family_arrays(family, 60, seed=3, graph_rng="legacy")
        if family in RANDOMIZED_ARRAY_FAMILIES:
            assert a.m != legacy.m or not np.array_equal(a.src, legacy.src)
        else:
            # Deterministic topologies carry no randomness: identical
            # graphs under either stream.
            np.testing.assert_array_equal(a.src, legacy.src)
            np.testing.assert_array_equal(a.dst, legacy.dst)

    def test_make_family_routes_batched_to_arrays(self):
        from repro.sim.fast_engine import GraphArrays

        built = make_family("gnp-sparse", 80, seed=1, graph_source="auto",
                            graph_rng="batched")
        assert isinstance(built, GraphArrays)


class TestGraphRngResolution:
    """Unsupported graph_rng combinations fail with actionable text."""

    def test_batched_resolves_to_arrays(self):
        assert resolve_graph_source("auto", "gnp-sparse", "batched") == "arrays"
        assert (
            resolve_graph_source("arrays", "gnp-dense", "batched") == "arrays"
        )

    def test_batched_with_networkx_source_names_the_fix(self):
        with pytest.raises(ValueError) as err:
            resolve_graph_source("networkx", "gnp-sparse", "batched")
        message = str(err.value)
        assert "graph_rng='batched'" in message
        assert "graph_source='arrays'" in message
        assert "graph_rng='legacy'" in message

    def test_batched_with_non_array_family_names_the_fix(self):
        with pytest.raises(ValueError) as err:
            resolve_graph_source("auto", "tree", "batched")
        message = str(err.value)
        assert "graph_rng='batched'" in message
        assert "tree" in message
        assert "graph_rng='legacy'" in message

    def test_sweep_surfaces_the_actionable_error(self):
        from repro.analysis.complexity import sweep

        with pytest.raises(ValueError, match="graph_rng='batched'"):
            sweep("luby", "tree", sizes=(16,), trials=1, graph_rng="batched")
        with pytest.raises(ValueError, match="graph_rng='batched'"):
            sweep("luby", "gnp-sparse", sizes=(16,), trials=1,
                  graph_source="networkx", graph_rng="batched")

    def test_legacy_resolution_unchanged(self):
        assert resolve_graph_source("auto", "gnp-sparse", "legacy") == "arrays"
        assert resolve_graph_source("auto", "tree", "legacy") == "networkx"


class TestEndToEnd:
    """The array pipeline must be invisible in measured results."""

    @pytest.mark.parametrize(
        "algorithm",
        ["sleeping", "fast-sleeping", "luby", "greedy", "ghaffari", "abi"],
    )
    @pytest.mark.parametrize("rng", ["pernode", "batched"])
    def test_identical_runs_on_either_source(self, algorithm, rng):
        from repro.api import solve_mis

        seed = 5
        via_nx = solve_mis(
            make_family_graph("gnp-sparse", 150, seed=seed),
            algorithm, seed=seed, engine="vectorized", rng=rng,
        )
        via_arrays = solve_mis(
            make_family_arrays("gnp-sparse", 150, seed=seed),
            algorithm, seed=seed, engine="vectorized", rng=rng,
        )
        assert via_nx.mis == via_arrays.mis
        assert via_nx.rounds == via_arrays.rounds
        assert via_nx.summary() == via_arrays.summary()

    def test_generator_engine_reads_arrays_through_lazy_view(self):
        from repro.api import solve_mis

        ga = make_family_arrays("cycle", 12)
        assert ga._adjacency is None
        result = solve_mis(ga, "luby", seed=2, engine="generators")
        assert ga._adjacency is not None  # generator engine forced the view
        reference = solve_mis(cycle_graph(12), "luby", seed=2, engine="generators")
        assert result.mis == reference.mis


# ----------------------------------------------------------------------
# The direct O(m) CSR build (sorted fast path, argsort fallback, and the
# two-pass streaming builder).
# ----------------------------------------------------------------------


def _distinct_pairs_of(graph):
    """The (lo, hi)-sorted distinct pair arrays of a networkx graph."""
    ga = GraphArrays(normalize_graph(graph))
    fwd = ga.src < ga.dst
    return ga.n, ga.src[fwd].astype(np.int64), ga.dst[fwd].astype(np.int64)


def _assert_same_arrays(a: GraphArrays, b: GraphArrays) -> None:
    assert a.n == b.n
    for field in ("src", "dst", "grev", "deg"):
        np.testing.assert_array_equal(getattr(a, field), getattr(b, field))


def _assert_csr_invariants(ga: GraphArrays) -> None:
    """The structural contract every build path must satisfy."""
    m = len(ga.src)
    assert int(ga.deg.sum()) == m
    if not m:
        return
    # (src, dst) strictly ascending: sorted, no duplicate directed edges.
    key = ga.src.astype(np.int64) * ga.n + ga.dst
    assert (key[1:] > key[:-1]).all()
    # grev is the reverse-edge involution.
    np.testing.assert_array_equal(ga.src[ga.grev], ga.dst)
    np.testing.assert_array_equal(ga.dst[ga.grev], ga.src)
    np.testing.assert_array_equal(ga.grev[ga.grev], np.arange(m))


class TestDirectCsrBuild:
    """`from_distinct_pairs`' sorted fast path vs the argsort reference."""

    @pytest.mark.parametrize("builder", GRAPH_BUILDERS, ids=GRAPH_IDS)
    def test_parity_with_argsort_path_across_graph_cases(self, builder):
        n, lo, hi = _distinct_pairs_of(builder())
        built = GraphArrays.from_distinct_pairs(n, lo, hi)
        reference = GraphArrays._from_pairs_argsort(n, lo, hi)
        _assert_same_arrays(built, reference)
        _assert_csr_invariants(built)

    @pytest.mark.parametrize("builder", GRAPH_BUILDERS, ids=GRAPH_IDS)
    def test_parity_on_hi_major_order(self, builder):
        """The v2 sampler's native (hi, lo)-lex order, same graphs."""
        n, lo, hi = _distinct_pairs_of(builder())
        order = np.lexsort((lo, hi))
        lo, hi = lo[order], hi[order]
        built = GraphArrays.from_distinct_pairs(n, lo, hi)
        reference = GraphArrays._from_pairs_argsort(n, lo, hi)
        _assert_same_arrays(built, reference)

    @pytest.mark.parametrize("builder", GRAPH_BUILDERS, ids=GRAPH_IDS)
    def test_unsorted_input_falls_back_to_argsort_parity(self, builder):
        import random

        n, lo, hi = _distinct_pairs_of(builder())
        idx = list(range(len(lo)))
        random.Random(7).shuffle(idx)
        lo, hi = lo[idx], hi[idx]
        built = GraphArrays.from_distinct_pairs(n, lo, hi)
        reference = GraphArrays._from_pairs_argsort(n, lo, hi)
        _assert_same_arrays(built, reference)
        _assert_csr_invariants(built)

    def test_empty_graph(self):
        ga = GraphArrays.from_distinct_pairs(7, [], [])
        assert (len(ga.src), len(ga.dst), len(ga.grev)) == (0, 0, 0)
        np.testing.assert_array_equal(ga.deg, np.zeros(7, dtype=np.int64))

    def test_isolated_high_id_nodes(self):
        """Trailing nodes past every edge keep zero-degree CSR rows."""
        n = 5000
        lo = np.arange(10, dtype=np.int64)
        hi = lo + 1
        ga = GraphArrays.from_distinct_pairs(n, lo, hi)
        _assert_same_arrays(ga, GraphArrays._from_pairs_argsort(n, lo, hi))
        assert (ga.deg[12:] == 0).all()
        assert int(ga.deg.sum()) == 20

    def test_ids_at_the_top_of_a_large_id_space(self):
        """Node ids right under n at a multi-million-node n: the int64
        composite keys and int32 slot arithmetic must stay exact."""
        n = 1 << 24
        hi = np.array([n - 1, n - 1, n - 2], dtype=np.int64)
        lo = np.array([0, n - 3, n - 3], dtype=np.int64)
        order = np.lexsort((lo, hi))
        ga = GraphArrays.from_distinct_pairs(n, lo[order], hi[order])
        reference = GraphArrays._from_pairs_argsort(n, lo[order], hi[order])
        _assert_same_arrays(ga, reference)
        _assert_csr_invariants(ga)

    def test_composite_key_headroom_at_int32_id_bound(self):
        """Document the arithmetic ceiling: even at the int32 id bound
        (the format's hard limit -- src/dst/grev are int32), the (hi, lo)
        composite key stays inside int64."""
        n = 2**31 - 1
        assert (n - 1) * n + (n - 2) < 2**63 - 1

    def test_duplicate_pairs_violate_the_contract_identically(self):
        """Duplicates break the strictly-increasing-key certificate, so
        the fast path can never take them: they land on the argsort
        reference and misbehave exactly as they always did."""
        lo = np.array([0, 0, 1], dtype=np.int64)
        hi = np.array([1, 1, 2], dtype=np.int64)
        built = GraphArrays.from_distinct_pairs(4, lo, hi)
        _assert_same_arrays(built, GraphArrays._from_pairs_argsort(4, lo, hi))

    def test_bounds_and_orientation_still_checked(self):
        with pytest.raises(ValueError, match=r"lie in \[0, 3\)"):
            GraphArrays.from_distinct_pairs(3, [0], [3])
        with pytest.raises(ValueError, match="lo < hi"):
            GraphArrays.from_distinct_pairs(3, [2], [1])

    def test_randomized_cross_check(self):
        """Hypothesis-style sweep, deterministic: random sizes, densities
        and input orders, every build pinned to the argsort reference."""
        import random

        pyrng = random.Random(0)
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = pyrng.randrange(2, 300)
            m_want = pyrng.randrange(0, 2 * n)
            u = rng.integers(0, n, size=m_want)
            v = rng.integers(0, n, size=m_want)
            lo, hi = np.minimum(u, v), np.maximum(u, v)
            keep = lo != hi
            key = np.unique(lo[keep] * np.int64(n) + hi[keep])
            lo, hi = key // n, key % n
            variants = [(lo, hi)]
            order = np.lexsort((lo, hi))
            variants.append((lo[order], hi[order]))
            shuffled = rng.permutation(len(lo))
            variants.append((lo[shuffled], hi[shuffled]))
            for vlo, vhi in variants:
                built = GraphArrays.from_distinct_pairs(n, vlo, vhi)
                _assert_same_arrays(
                    built, GraphArrays._from_pairs_argsort(n, vlo, vhi)
                )
                _assert_csr_invariants(built)


class TestChunkedCsrBuild:
    """`from_distinct_pair_chunks`: the two-pass streaming builder."""

    @staticmethod
    def _chunked(lo, hi, size):
        def make():
            for i in range(0, max(len(lo), 1), size):
                yield lo[i : i + size], hi[i : i + size]

        return make

    @pytest.mark.parametrize("size", [1, 3, 7, 10_000])
    def test_equals_one_shot_across_chunk_splits(self, size):
        ga = gnp_arrays_v2(400, 0.05, seed=3, stream=False)
        fwd = ga.src < ga.dst
        lo64 = ga.src[fwd].astype(np.int64)
        hi64 = ga.dst[fwd].astype(np.int64)
        order = np.lexsort((lo64, hi64))  # the required (hi, lo) order
        lo64, hi64 = lo64[order], hi64[order]
        chunked = GraphArrays.from_distinct_pair_chunks(
            400, self._chunked(lo64, hi64, size)
        )
        _assert_same_arrays(chunked, ga)
        _assert_csr_invariants(chunked)

    def test_empty_stream(self):
        ga = GraphArrays.from_distinct_pair_chunks(5, lambda: iter(()))
        assert len(ga.src) == 0
        np.testing.assert_array_equal(ga.deg, np.zeros(5, dtype=np.int64))

    def test_empty_chunks_are_skipped(self):
        lo = np.array([0, 0], dtype=np.int64)
        hi = np.array([1, 2], dtype=np.int64)

        def make():
            yield lo[:0], hi[:0]
            yield lo[:1], hi[:1]
            yield lo[:0], hi[:0]
            yield lo[1:], hi[1:]

        ga = GraphArrays.from_distinct_pair_chunks(3, make)
        _assert_same_arrays(ga, GraphArrays.from_distinct_pairs(3, lo, hi))

    def test_out_of_order_chunks_rejected(self):
        lo = np.array([0, 0], dtype=np.int64)
        hi = np.array([2, 1], dtype=np.int64)  # (hi, lo) keys decrease
        with pytest.raises(ValueError, match="strictly increasing"):
            GraphArrays.from_distinct_pair_chunks(3, self._chunked(lo, hi, 1))

    def test_duplicate_pairs_rejected(self):
        lo = np.array([0, 0], dtype=np.int64)
        hi = np.array([1, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="strictly increasing"):
            GraphArrays.from_distinct_pair_chunks(3, self._chunked(lo, hi, 2))

    def test_contract_violations_rejected(self):
        with pytest.raises(ValueError, match="lo < hi"):
            GraphArrays.from_distinct_pair_chunks(
                3,
                self._chunked(
                    np.array([2], dtype=np.int64),
                    np.array([1], dtype=np.int64),
                    1,
                ),
            )
        with pytest.raises(ValueError, match=r"lie in \[0, 3\)"):
            GraphArrays.from_distinct_pair_chunks(
                3,
                self._chunked(
                    np.array([0], dtype=np.int64),
                    np.array([5], dtype=np.int64),
                    1,
                ),
            )

    def test_non_replayable_factory_detected(self):
        lo = np.array([0, 0], dtype=np.int64)
        hi = np.array([1, 2], dtype=np.int64)
        passes = iter([2, 1])  # second pass yields fewer pairs

        def make():
            k = next(passes)
            yield lo[:k], hi[:k]

        with pytest.raises(ValueError, match="not replayable"):
            GraphArrays.from_distinct_pair_chunks(3, make)

    def test_consumed_iterator_reuse_names_the_fix(self):
        """Passing the *same* generator object for both passes is the
        classic mistake (``chunks=gen()`` instead of ``chunks=gen``); the
        builder must say what went wrong instead of reporting a confusing
        pair-count mismatch on the empty second pass."""
        lo = np.array([0, 0], dtype=np.int64)
        hi = np.array([1, 2], dtype=np.int64)
        gen = self._chunked(lo, hi, 1)()  # one generator, not a factory

        with pytest.raises(
            ValueError,
            match=r"not replayable.*same \(already consumed\) iterator",
        ):
            GraphArrays.from_distinct_pair_chunks(3, lambda: gen)

    def test_reiterable_factory_may_return_the_same_object(self):
        """A list-backed (re-iterable) chunk source is fine to hand out
        twice -- only a consumed one-shot iterator is an error."""
        lo = np.array([0, 1], dtype=np.int64)
        hi = np.array([1, 2], dtype=np.int64)
        chunks = [(lo[:1], hi[:1]), (lo[1:], hi[1:])]
        ga = GraphArrays.from_distinct_pair_chunks(3, lambda: chunks)
        _assert_same_arrays(ga, GraphArrays.from_distinct_pairs(3, lo, hi))

    def test_gnp_v2_stream_knob_is_not_part_of_the_format(self):
        """Every stream mode samples the identical seeded graph."""
        expected = gnp_arrays_v2(200, 0.1, seed=6, stream=False)
        _assert_same_arrays(
            expected, gnp_arrays_v2(200, 0.1, seed=6, stream=True)
        )
        _assert_same_arrays(
            expected, gnp_arrays_v2(200, 0.1, seed=6, stream="auto")
        )

    def test_unknown_stream_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown stream mode"):
            gnp_arrays_v2(10, 0.1, stream="yes")

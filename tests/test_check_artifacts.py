"""``benchmarks/check_artifacts.py``: merge-verify of partial sweep shards.

The script's benchmark-drift path runs against git state, so it is CI
territory; what tier-1 pins here is the ``--merge-sweep`` mode and the
shared stripping discipline it rides on: overlapping shards merge
cleanly, conflicting series for the same ``(cache_key, seed)`` fail
loudly, and wall-clock/provenance keys never participate in either
decision.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.plan import RunPlan
from repro.sweeps import (
    SweepManifest,
    TrialConflict,
    TrialFrontier,
    merge_shard_dirs,
    run_sweep,
)

REPO = Path(__file__).resolve().parents[1]


def _load_script():
    spec = importlib.util.spec_from_file_location(
        "check_artifacts", REPO / "benchmarks" / "check_artifacts.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def script():
    return _load_script()


@pytest.fixture(scope="module")
def manifest():
    return SweepManifest.expand(
        RunPlan(
            algorithm="luby", family="gnp-sparse", rng="batched",
            graph_rng="batched", result="arrays",
        ),
        sizes=(24,), trials=3, name="merge-test",
    )


@pytest.fixture
def completed_dir(manifest, tmp_path):
    """A fully-swept frontier directory."""
    frontier = TrialFrontier.create(tmp_path / "full", manifest)
    assert run_sweep(frontier).all_done
    return tmp_path / "full"


def _partial_copy(source: Path, target: Path, keys):
    """A shard holding only ``keys``' result artifacts."""
    (target / "results").mkdir(parents=True)
    for key in keys:
        artifact = source / "results" / f"{key}.json"
        (target / "results" / f"{key}.json").write_text(
            artifact.read_text()
        )


class TestMergeSemantics:
    def test_overlapping_shards_merge_cleanly(
        self, manifest, completed_dir, tmp_path
    ):
        keys = manifest.keys()
        a, b = tmp_path / "shard-a", tmp_path / "shard-b"
        _partial_copy(completed_dir, a, keys[:2])
        _partial_copy(completed_dir, b, keys[1:])  # keys[1] overlaps
        merged = merge_shard_dirs([a, b])
        assert sorted(merged) == sorted(keys)

    def test_wall_clock_and_provenance_divergence_ignored(
        self, manifest, completed_dir, tmp_path
    ):
        keys = manifest.keys()
        a, b = tmp_path / "shard-a", tmp_path / "shard-b"
        _partial_copy(completed_dir, a, keys)
        _partial_copy(completed_dir, b, keys)
        # Perturb every volatile field in shard b; the merge must not care.
        for key in keys:
            path = b / "results" / f"{key}.json"
            payload = json.loads(path.read_text())
            payload["wall_clock_s"] = 1e9
            payload["worker"] = "mars-rover:1"
            path.write_text(json.dumps(payload))
        merged = merge_shard_dirs([a, b])
        assert sorted(merged) == sorted(keys)
        # ...and strips them from the merged output entirely.
        for payload in merged.values():
            assert "wall_clock_s" not in payload
            assert "worker" not in payload

    def test_conflicting_series_fail_loudly(
        self, manifest, completed_dir, tmp_path
    ):
        keys = manifest.keys()
        a, b = tmp_path / "shard-a", tmp_path / "shard-b"
        _partial_copy(completed_dir, a, keys)
        _partial_copy(completed_dir, b, keys[:1])
        path = b / "results" / f"{keys[0]}.json"
        payload = json.loads(path.read_text())
        payload["row"]["node_averaged_awake"] = -1.0  # a measured series
        path.write_text(json.dumps(payload))
        with pytest.raises(TrialConflict, match="conflicting series"):
            merge_shard_dirs([a, b])


class TestMergeSweepCli:
    def test_merge_sweep_ok(self, script, completed_dir, tmp_path, capsys):
        out = tmp_path / "merged.json"
        rc = script.main(
            ["--merge-sweep", str(completed_dir), "--output", str(out)]
        )
        captured = capsys.readouterr().out
        assert rc == 0
        assert "no conflicts, all plans valid" in captured
        merged = json.loads(out.read_text())
        assert len(merged) == 3
        for payload in merged.values():
            RunPlan.from_dict(payload["plan"])  # embedded plans survive

    def test_merge_sweep_conflict_exits_nonzero(
        self, script, manifest, completed_dir, tmp_path, capsys
    ):
        keys = manifest.keys()
        b = tmp_path / "shard-b"
        _partial_copy(completed_dir, b, keys[:1])
        path = b / "results" / f"{keys[0]}.json"
        payload = json.loads(path.read_text())
        payload["row"]["total_messages"] = 10**9
        path.write_text(json.dumps(payload))
        rc = script.main(["--merge-sweep", str(completed_dir), str(b)])
        assert rc == 1
        assert "MERGE CONFLICT" in capsys.readouterr().err

    def test_merge_sweep_invalid_plan_fails(
        self, script, completed_dir, capsys
    ):
        victim = next((completed_dir / "results").glob("*.json"))
        payload = json.loads(victim.read_text())
        payload["plan"]["algorithm"] = "no-such-algorithm"
        victim.write_text(json.dumps(payload))
        rc = script.main(["--merge-sweep", str(completed_dir)])
        assert rc == 1
        assert "PLAN INVALID" in capsys.readouterr().out

    def test_merge_sweep_missing_plan_fails(
        self, script, completed_dir, capsys
    ):
        victim = next((completed_dir / "results").glob("*.json"))
        payload = json.loads(victim.read_text())
        del payload["plan"]
        victim.write_text(json.dumps(payload))
        rc = script.main(["--merge-sweep", str(completed_dir)])
        assert rc == 1
        assert "PLAN MISSING" in capsys.readouterr().out


class TestStrippingParity:
    def test_script_and_sweep_stripping_agree(self, script):
        """One discipline, two implementations: ``_strip_timing`` and
        ``strip_volatile`` must drop the same wall-clock keys."""
        from repro.sweeps import strip_volatile

        payload = {
            "wall_clock_s": 1.0, "legacy_pipeline_s": 2.0,
            "rows": [{"calibration_s": 3.0, "mean": 4.5}],
            "n": 100,
        }
        assert script._strip_timing(payload) == strip_volatile(payload) == {
            "rows": [{"mean": 4.5}], "n": 100,
        }

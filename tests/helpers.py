"""Importable test helpers shared across the suite.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import run_mis`` -- which silently resolved to
``benchmarks/conftest.py`` whenever pytest collected the benchmarks
directory first, breaking the whole suite.  Keeping the helpers in a module
whose name exists exactly once in the repository makes that shadowing
structurally impossible.  ``tests/conftest.py`` re-exports the fixtures.
"""

from __future__ import annotations

import networkx as nx

from repro.api import solve_mis

#: Small graphs covering the structural corner cases: empty, singleton,
#: disconnected, dense, sparse, bipartite, hub-and-spoke.
GRAPH_CASES = [
    ("single", lambda: nx.empty_graph(1)),
    ("two-isolated", lambda: nx.empty_graph(2)),
    ("edge", lambda: nx.path_graph(2)),
    ("triangle", lambda: nx.complete_graph(3)),
    ("path-9", lambda: nx.path_graph(9)),
    ("cycle-10", lambda: nx.cycle_graph(10)),
    ("star-12", lambda: nx.star_graph(11)),
    ("complete-8", lambda: nx.complete_graph(8)),
    ("bipartite-4-5", lambda: nx.complete_bipartite_graph(4, 5)),
    ("grid-4x4", lambda: nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))),
    ("gnp-30", lambda: nx.gnp_random_graph(30, 0.15, seed=4)),
    ("gnp-60-sparse", lambda: nx.gnp_random_graph(60, 0.05, seed=8)),
    ("two-components",
     lambda: nx.disjoint_union(nx.cycle_graph(5), nx.complete_graph(4))),
    ("isolated-plus-clique",
     lambda: nx.disjoint_union(nx.empty_graph(3), nx.complete_graph(5))),
]

GRAPH_IDS = [name for name, _ in GRAPH_CASES]
GRAPH_BUILDERS = [builder for _, builder in GRAPH_CASES]


def run_mis(graph, algorithm, seed=0, **kwargs):
    """Thin wrapper so tests read uniformly."""
    return solve_mis(graph, algorithm=algorithm, seed=seed, **kwargs)

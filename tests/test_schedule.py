"""Unit tests for the recursion schedule (Lemma 10, Equation 2)."""

import math

import pytest

from repro.core import schedule


class TestCallDuration:
    def test_base_case_is_zero(self):
        assert schedule.call_duration(0) == 0

    def test_closed_form(self):
        for k in range(12):
            assert schedule.call_duration(k) == 3 * (2**k - 1)

    def test_recurrence(self):
        # T(k) = 2 T(k-1) + 3 (proof of Lemma 10).
        for k in range(1, 12):
            assert (
                schedule.call_duration(k)
                == 2 * schedule.call_duration(k - 1) + 3
            )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            schedule.call_duration(-1)


class TestRecursionDepth:
    def test_single_node(self):
        assert schedule.recursion_depth(1) == 0

    def test_matches_formula(self):
        for n in [2, 3, 10, 64, 100, 1024]:
            assert schedule.recursion_depth(n) == math.ceil(
                3 * math.log2(n)
            )

    def test_power_of_two(self):
        assert schedule.recursion_depth(8) == 9
        assert schedule.recursion_depth(1024) == 30

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            schedule.recursion_depth(0)


class TestTruncatedDepth:
    def test_tiny_networks_degenerate_to_greedy(self):
        assert schedule.truncated_depth(1) == 0
        assert schedule.truncated_depth(2) == 0

    def test_formula(self):
        for n in [16, 100, 1024, 10**6]:
            expected = math.ceil(schedule.ELL * math.log2(math.log2(n)))
            assert schedule.truncated_depth(n) == expected

    def test_much_smaller_than_full_depth(self):
        for n in [64, 1024, 10**6]:
            assert schedule.truncated_depth(n) < schedule.recursion_depth(n)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            schedule.truncated_depth(0)


class TestEll:
    def test_value(self):
        # Equation 2: ell = 1 / log2(4/3) ~= 2.4094;
        # ell + 1 ~= 3.41, the exponent in Theorem 2.
        assert schedule.ELL == pytest.approx(2.4094, abs=1e-3)
        assert schedule.ELL + 1 == pytest.approx(3.41, abs=0.01)

    def test_defining_property(self):
        # (3/4)^ell = 1/2: one "ell block" of levels halves the work.
        assert 0.75**schedule.ELL == pytest.approx(0.5)


class TestGreedyRounds:
    def test_formula(self):
        assert schedule.greedy_rounds(1024, constant=8) == 80

    def test_non_power_of_two_rounds_up(self):
        assert schedule.greedy_rounds(1000, constant=8) == 80

    def test_tiny_network(self):
        assert schedule.greedy_rounds(1) == schedule.greedy_rounds(2)

    def test_constant_validated(self):
        with pytest.raises(ValueError):
            schedule.greedy_rounds(64, constant=0)

    def test_size_validated(self):
        with pytest.raises(ValueError):
            schedule.greedy_rounds(0)


class TestFastCallDuration:
    def test_base_is_window(self):
        assert schedule.fast_call_duration(0, 80) == 80

    def test_recurrence(self):
        # T2(k) = 2 T2(k-1) + 3.
        for k in range(1, 10):
            assert (
                schedule.fast_call_duration(k, 80)
                == 2 * schedule.fast_call_duration(k - 1, 80) + 3
            )

    def test_closed_form(self):
        for k in range(8):
            assert schedule.fast_call_duration(k, 80) == 3 * (
                2**k - 1
            ) + (2**k) * 80

    def test_zero_base_equals_algorithm1(self):
        for k in range(8):
            assert schedule.fast_call_duration(
                k, 0
            ) == schedule.call_duration(k)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule.fast_call_duration(-1, 80)
        with pytest.raises(ValueError):
            schedule.fast_call_duration(2, -1)


class TestTheoryPredictions:
    def test_leaf_count(self):
        n = 1024
        assert schedule.expected_leaf_count(n) == pytest.approx(
            math.log2(n) ** schedule.ELL
        )

    def test_base_participants(self):
        n = 1024
        assert schedule.expected_base_participants(n) == pytest.approx(
            n / math.log2(n)
        )

    def test_trivial_sizes(self):
        assert schedule.expected_leaf_count(2) == 1.0
        assert schedule.expected_base_participants(2) == 2.0

    def test_total_rounds_polylog(self):
        # T2(K2) with window c log n is O(log^{ell+1} n): check the ratio
        # to log^3.41 n stays bounded across 6 orders of magnitude.
        ratios = []
        for n in [10**3, 10**6, 10**9]:
            k2 = schedule.truncated_depth(n)
            window = schedule.greedy_rounds(n)
            total = schedule.fast_call_duration(k2, window)
            ratios.append(total / math.log2(n) ** 3.41)
        assert max(ratios) / min(ratios) < 25

"""Tests for CSV export of sweep trials."""

from repro.analysis.complexity import (
    CSV_FIELDS,
    sweep,
    trials_to_csv,
    write_csv,
)


class TestCsvExport:
    def test_header_and_rows(self):
        rows = sweep("luby", "cycle", sizes=[10], trials=2, seed0=1)
        csv = trials_to_csv(rows)
        lines = csv.splitlines()
        assert lines[0] == ",".join(CSV_FIELDS)
        assert len(lines) == 3
        assert lines[1].startswith("luby,cycle,10,")

    def test_field_count_consistent(self):
        rows = sweep("greedy", "cycle", sizes=[10], trials=1, seed0=1)
        for line in trials_to_csv(rows).splitlines():
            assert len(line.split(",")) == len(CSV_FIELDS)

    def test_write_csv(self, tmp_path):
        rows = sweep("luby", "cycle", sizes=[10], trials=1, seed0=1)
        target = tmp_path / "trials.csv"
        write_csv(rows, str(target))
        content = target.read_text()
        assert content.startswith(",".join(CSV_FIELDS))
        assert content.endswith("\n")

    def test_empty_rows(self):
        assert trials_to_csv([]) == ",".join(CSV_FIELDS)

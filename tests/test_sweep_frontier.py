"""Fault-injection suite for the resumable sweep orchestration layer.

The headline guarantee under test: a sweep interrupted *any* way -- an
exception inside a trial, a SIGKILLed worker process, a SIGKILLed
driver, a truncated or corrupted frontier journal -- resumes to
completion with a merged result set **bit-identical** to an
uninterrupted run, and re-running a completed manifest executes zero
trials.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.complexity import sweep
from repro.plan import RunPlan
from repro.sweeps import (
    CLAIMED,
    DONE,
    FAILED,
    FAULT_ENV,
    PENDING,
    FrontierCorruption,
    SweepManifest,
    TrialConflict,
    TrialFrontier,
    merged_result_json,
    run_sweep,
    strip_volatile,
    trial_key,
)

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")

BASE_PLAN = RunPlan(
    algorithm="luby", family="gnp-sparse", rng="batched",
    graph_rng="batched", result="arrays",
)
SIZES = (24, 48)
TRIALS = 2


def small_manifest(name="test-sweep"):
    return SweepManifest.expand(
        BASE_PLAN, sizes=SIZES, trials=TRIALS, name=name
    )


@pytest.fixture
def manifest():
    return small_manifest()


@pytest.fixture
def baseline_json(manifest, tmp_path):
    """The uninterrupted run's canonical merged result set."""
    frontier = TrialFrontier.create(tmp_path / "baseline", manifest)
    report = run_sweep(frontier)
    assert report.all_done and report.failed == 0
    assert frontier.is_complete
    return merged_result_json(frontier)


def test_uninterrupted_sweep_matches_plain_sweep(manifest, tmp_path):
    """A manifest sweep measures the exact trials ``sweep()`` measures."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    report = run_sweep(frontier)
    assert report.executed == len(manifest) == report.completed
    reference = {
        (row.n, row.seed): strip_volatile(dataclasses.asdict(row))
        for row in sweep(
            sizes=SIZES, plan=BASE_PLAN, trials=TRIALS, seed0=0
        )
    }
    seen = 0
    for _, payload in frontier.iter_results():
        row = strip_volatile(payload["row"])
        assert row == reference[(row["n"], row["seed"])]
        seen += 1
    assert seen == len(manifest) == len(reference)


def test_injected_exception_then_resume_bit_identical(
    manifest, baseline_json, tmp_path
):
    """A trial that raises is recorded failed, re-issued, and resumes."""
    victim = manifest.keys()[1]

    def explode(spec):
        if spec.key == victim:
            raise RuntimeError("injected mid-trial failure")

    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    report = run_sweep(frontier, fault_hook=explode)
    assert report.failed == 1 and report.completed == len(manifest) - 1
    assert frontier.state(victim) == FAILED
    assert victim in report.errors[0]

    resumed = TrialFrontier.open(tmp_path / "s", manifest)
    report2 = run_sweep(resumed)
    assert report2.reissued_failed == 1
    assert report2.executed == 1 and report2.all_done
    assert merged_result_json(resumed) == baseline_json


def test_env_raise_fault_then_resume_bit_identical(
    manifest, baseline_json, tmp_path, monkeypatch
):
    """The ``REPRO_SWEEP_FAULT=raise:`` hook works through execute_trial."""
    victim = manifest.keys()[0]
    monkeypatch.setenv(FAULT_ENV, f"raise:{victim}")
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    report = run_sweep(frontier)
    assert report.failed == 1
    assert "SweepFaultInjected" in report.errors[0]

    monkeypatch.delenv(FAULT_ENV)
    report2 = run_sweep(TrialFrontier.open(tmp_path / "s"))
    assert report2.all_done and report2.executed == 1
    assert (
        merged_result_json(TrialFrontier.open(tmp_path / "s"))
        == baseline_json
    )


DRIVER_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    from test_sweep_frontier import small_manifest
    from repro.sweeps import TrialFrontier, run_sweep
    frontier = TrialFrontier.attach({sweep_dir!r}, small_manifest())
    run_sweep(frontier, n_jobs={n_jobs})
    print("DRIVER-SURVIVED")
    """
)


def _run_driver(sweep_dir, fault, n_jobs=None):
    """Run a sweep driver in a subprocess with ``REPRO_SWEEP_FAULT`` armed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + str(REPO / "tests")
    env[FAULT_ENV] = fault
    return subprocess.run(
        [
            sys.executable, "-c",
            DRIVER_SCRIPT.format(
                src=SRC, sweep_dir=str(sweep_dir), n_jobs=n_jobs
            ),
        ],
        env=env, capture_output=True, text=True, timeout=120,
    )


def test_sigkilled_driver_resumes_bit_identical(
    manifest, baseline_json, tmp_path
):
    """SIGKILL the driver after 2 completions; resume is bit-identical."""
    sweep_dir = tmp_path / "s"
    proc = _run_driver(sweep_dir, "driver-sigkill:2")
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "DRIVER-SURVIVED" not in proc.stdout

    partial = TrialFrontier.open(sweep_dir, manifest)
    done_before = [k for k, s in partial.states().items() if s == DONE]
    assert 0 < len(done_before) < len(manifest)

    report = run_sweep(partial)
    assert report.all_done
    assert report.executed == len(manifest) - len(done_before)
    assert merged_result_json(partial) == baseline_json


def test_sigkilled_pool_worker_resumes_bit_identical(
    manifest, baseline_json, tmp_path
):
    """SIGKILL a pool worker process mid-trial; resume is bit-identical.

    The killed worker breaks the whole ``ProcessPoolExecutor``; the
    driver releases the in-flight claims and degrades to sequential --
    where the armed fault then SIGKILLs the driver itself on the same
    trial, leaving a stale claim behind.  The resume (with an expired
    lease) must still complete to the uninterrupted byte-for-byte result.
    """
    victim = manifest.keys()[2]
    sweep_dir = tmp_path / "s"
    proc = _run_driver(sweep_dir, f"sigkill:{victim}", n_jobs=2)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "DRIVER-SURVIVED" not in proc.stdout

    # The dead driver's claim on the victim trial is still on disk;
    # a zero-TTL resume expires the lease and re-issues the trial.
    resumed = TrialFrontier.open(sweep_dir, manifest, claim_ttl=0.0)
    assert resumed.state(victim) in (PENDING, CLAIMED, DONE)
    report = run_sweep(resumed)
    assert report.all_done, resumed.status()
    assert merged_result_json(resumed) == baseline_json


def test_rerunning_completed_manifest_executes_nothing(manifest, tmp_path):
    """The zero-recompute guarantee, spy-verified."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    executions = []
    run_sweep(frontier, fault_hook=executions.append)
    assert len(executions) == len(manifest)

    reopened = TrialFrontier.open(tmp_path / "s", manifest)
    report = run_sweep(reopened, fault_hook=executions.append)
    assert report.executed == 0
    assert report.skipped_done == len(manifest)
    assert len(executions) == len(manifest)  # spy untouched by rerun


def test_torn_journal_tail_repaired_in_place(manifest, tmp_path):
    """A crash mid-append leaves a partial final line; reload drops it."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier, max_trials=2)
    log = tmp_path / "s" / "frontier.log"
    intact = log.read_text()
    log.write_text(intact + '{"event": "done", "trial": "2fc')
    with pytest.warns(RuntimeWarning, match="torn"):
        reopened = TrialFrontier.open(tmp_path / "s", manifest)
    assert log.read_text() == intact
    done = [k for k, s in reopened.states().items() if s == DONE]
    assert len(done) == 2
    assert run_sweep(reopened).all_done


def test_journal_missing_final_newline_restored(manifest, tmp_path):
    """A crash between the line and its newline must not corrupt the next
    append."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier, max_trials=1)
    log = tmp_path / "s" / "frontier.log"
    intact = log.read_text()
    log.write_text(intact.rstrip("\n"))
    reopened = TrialFrontier.open(tmp_path / "s", manifest)
    assert log.read_text() == intact
    assert run_sweep(reopened).all_done
    assert not list((tmp_path / "s").glob("frontier.log.corrupt-*"))


def test_corrupt_journal_quarantined_and_rebuilt_from_artifacts(
    manifest, baseline_json, tmp_path
):
    """Garbage mid-journal: quarantine the file, rebuild from results/."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier, max_trials=3)
    log = tmp_path / "s" / "frontier.log"
    lines = log.read_text().splitlines()
    lines[1] = "\x00\x00 this is not JSON \x00"
    log.write_text("\n".join(lines) + "\n")

    with pytest.warns(RuntimeWarning, match="quarantined"):
        reopened = TrialFrontier.open(tmp_path / "s", manifest)
    quarantined = list((tmp_path / "s").glob("frontier.log.corrupt-*"))
    assert len(quarantined) == 1
    # The rebuilt journal recovers every done trial from its artifact.
    done = [k for k, s in reopened.states().items() if s == DONE]
    assert len(done) == 3
    assert all(json.loads(line)["rebuilt"]
               for line in log.read_text().splitlines())
    report = run_sweep(reopened)
    assert report.all_done and report.executed == len(manifest) - 3
    assert merged_result_json(reopened) == baseline_json


def test_deleted_journal_rebuilt_from_artifacts(
    manifest, baseline_json, tmp_path
):
    """Even with no journal at all, the artifacts are the truth."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier, max_trials=2)
    (tmp_path / "s" / "frontier.log").unlink()
    reopened = TrialFrontier.open(tmp_path / "s", manifest)
    report = run_sweep(reopened)
    assert report.all_done and report.executed == len(manifest) - 2
    assert merged_result_json(reopened) == baseline_json


def test_lost_artifact_reissues_trial(manifest, tmp_path):
    """A journal 'done' whose artifact is gone is not done."""
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier)
    victim = manifest.keys()[0]
    (tmp_path / "s" / "results" / f"{victim}.json").unlink()
    reopened = TrialFrontier.open(tmp_path / "s", manifest)
    assert reopened.state(victim) == PENDING
    report = run_sweep(reopened)
    assert report.executed == 1 and report.all_done


def test_foreign_artifact_is_corruption(manifest, tmp_path):
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    run_sweep(frontier, max_trials=1)
    (tmp_path / "s" / "results" / "deadbeef-7.json").write_text("{}\n")
    with pytest.raises(FrontierCorruption, match="not in this manifest"):
        TrialFrontier.open(tmp_path / "s", manifest)


def test_double_claim_is_idempotent(manifest, tmp_path):
    """Two workers executing one trial (expired lease) merge to a no-op."""
    from repro.sweeps import execute_trial

    a = TrialFrontier.create(tmp_path / "s", manifest, claim_ttl=0.0)
    b = TrialFrontier.open(tmp_path / "s", manifest, claim_ttl=0.0)
    spec_a = a.claim("worker-a")
    # TTL 0: worker b immediately breaks a's lease on the same trial.
    spec_b = b.claim("worker-b", now=time.time() + 1.0)
    assert spec_a.key == spec_b.key
    payload_a = execute_trial(spec_a.plan, spec_a.seed)
    payload_b = execute_trial(spec_b.plan, spec_b.seed)
    assert a.done(spec_a.key, payload_a, worker="worker-a") is True
    # Identical series (modulo wall clocks): silently merged.
    assert b.done(spec_b.key, payload_b, worker="worker-b") is False
    assert a.state(spec_a.key) == DONE


def test_conflicting_double_completion_raises(manifest, tmp_path):
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    spec = frontier.claim("worker-a")
    frontier.done(spec.key, {"trial_key": spec.key, "row": {"x": 1}})
    with pytest.raises(TrialConflict, match="conflicting result"):
        frontier.done(spec.key, {"trial_key": spec.key, "row": {"x": 2}})
    # Wall-clock / provenance divergence alone is NOT a conflict.
    assert frontier.done(
        spec.key,
        {"trial_key": spec.key, "row": {"x": 1}, "wall_clock_s": 99.0,
         "worker": "elsewhere"},
    ) is False


def test_claim_lease_expires_and_reissues(manifest, tmp_path):
    frontier = TrialFrontier.create(
        tmp_path / "s", manifest, claim_ttl=10.0
    )
    spec = frontier.claim("doomed-worker")
    assert frontier.state(spec.key) == CLAIMED
    # Within the TTL the claim holds...
    assert frontier.expire_stale(now=time.time() + 5.0) == []
    # ...after it, any worker may break it.
    expired = frontier.expire_stale(now=time.time() + 11.0)
    assert expired == [spec.key]
    assert frontier.state(spec.key) == PENDING


def test_create_refuses_existing_frontier(manifest, tmp_path):
    TrialFrontier.create(tmp_path / "s", manifest)
    with pytest.raises(FrontierCorruption, match="already contains"):
        TrialFrontier.create(tmp_path / "s", manifest)


def test_open_refuses_different_manifest(manifest, tmp_path):
    TrialFrontier.create(tmp_path / "s", manifest)
    other = SweepManifest.expand(
        BASE_PLAN, sizes=(24,), trials=1, name="other"
    )
    with pytest.raises(FrontierCorruption, match="manifest mismatch"):
        TrialFrontier.open(tmp_path / "s", other)


def test_manifest_expand_matches_sweep_seed_grid():
    """Manifest trials carry exactly sweep()'s (n, seed) grid."""
    from repro.analysis.complexity import trial_seeds

    manifest = small_manifest()
    got = [(t.plan.n, t.seed) for t in manifest]
    expected = [
        (n, s) for n in SIZES for s in trial_seeds(0, n, TRIALS)
    ]
    assert got == expected
    # Keys are stable across processes: pure function of (plan, seed).
    assert manifest.keys() == [
        trial_key(BASE_PLAN.replace(n=n, seed=0), s) for n, s in expected
    ]


def test_manifest_round_trip_and_version_gate(manifest, tmp_path):
    path = tmp_path / "m.json"
    manifest.save(path)
    loaded = SweepManifest.load(path)
    assert loaded.manifest_key() == manifest.manifest_key()
    assert loaded.keys() == manifest.keys()

    data = json.loads(path.read_text())
    data["manifest_version"] = 99
    with pytest.raises(ValueError, match="manifest_version"):
        SweepManifest.from_dict(data)
    data["manifest_version"] = 1
    data["trials"][0]["plan"] = 17
    with pytest.raises(ValueError, match="unknown plan index"):
        SweepManifest.from_dict(data)


def test_budget_stops_claiming_and_resume_finishes(manifest, tmp_path):
    frontier = TrialFrontier.create(tmp_path / "s", manifest)
    report = run_sweep(frontier, budget_s=0.0)
    assert report.budget_exhausted and report.executed == 0
    assert not frontier.is_complete
    report2 = run_sweep(TrialFrontier.open(tmp_path / "s"))
    assert report2.all_done and report2.executed == len(manifest)


# ---------------------------------------------------------------------------
# Property test: the frontier state machine never loses or duplicates a
# trial under any interleaving of claim/done/fail/expire/reissue/resume.
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

OPS = st.lists(
    st.sampled_from(
        ["claim", "done", "fail", "release", "expire", "reissue",
         "reload", "reopen"]
    ),
    max_size=40,
)


def _payload_for(key):
    # Deterministic per trial, so double completions are the no-op case.
    return {"trial_key": key, "row": {"value": sum(map(ord, key))}}


@given(ops=OPS)
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_frontier_state_machine_partitions_manifest(ops, tmp_path_factory):
    """After every op: states partition the manifest; done is monotone."""
    import tempfile

    manifest = small_manifest("property")
    keys = set(manifest.keys())
    with tempfile.TemporaryDirectory(
        dir=tmp_path_factory.getbasetemp()
    ) as tmp:
        frontier = TrialFrontier.create(
            Path(tmp) / "s", manifest, claim_ttl=1000.0
        )
        claimed = []
        done_so_far = set()
        base = time.time()
        for op in ops:
            if op == "claim":
                spec = frontier.claim("prop-worker", now=base)
                if spec is not None:
                    claimed.append(spec.key)
            elif op == "done" and claimed:
                key = claimed.pop()
                frontier.done(key, _payload_for(key))
            elif op == "fail" and claimed:
                key = claimed.pop()
                frontier.fail(key, "injected")
            elif op == "release" and claimed:
                frontier.release(claimed.pop())
            elif op == "expire":
                for key in frontier.expire_stale(now=base + 2000.0):
                    claimed.remove(key)
            elif op == "reissue":
                frontier.reissue_failed()
            elif op == "reload":
                frontier.reload()
            elif op == "reopen":
                frontier = TrialFrontier.open(
                    Path(tmp) / "s", manifest, claim_ttl=1000.0
                )
            states = frontier.states(now=base)
            # Partition: every manifest trial in exactly one state,
            # nothing lost, nothing invented.
            assert set(states) == keys
            counts = frontier.status(now=base)
            assert (
                counts[PENDING] + counts[CLAIMED]
                + counts[DONE] + counts[FAILED]
            ) == len(manifest) == counts["total"]
            # Done trials are never lost, and always have an artifact.
            now_done = {k for k, s in states.items() if s == DONE}
            assert done_so_far <= now_done
            done_so_far = now_done
            for key in now_done:
                assert frontier.result(key)["trial_key"] == key
        # Whatever the interleaving, the frontier remains drainable.
        for key in frontier.expire_stale(now=base + 2000.0):
            claimed.remove(key)
        frontier.reissue_failed()
        while True:
            spec = frontier.claim("drain", now=base)
            if spec is None:
                break
            frontier.done(spec.key, _payload_for(spec.key))
        assert frontier.is_complete

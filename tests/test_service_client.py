"""The CLI as a thin client: ``--server`` routing, fallback, exit codes.

The redesign's contract: ``run``/``sweep``/``table1`` behind ``--server``
print **byte-identical** output to their local paths (same rows, same
rendering -- the server is a transparent accelerator, not a different
tool), unreachable servers degrade to local execution with a warning
(or exit 4 under ``--no-fallback``), and the sweep error paths return
distinct, documented exit codes so the client mode is scriptable:
0 success, 1 trial failure, 2 configuration error, 3 frontier
corruption, 4 server unreachable.
"""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import (
    EXIT_CONFIG,
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_UNREACHABLE,
    build_parser,
    main,
)
from repro.service import start_service_thread

#: A port nothing listens on (port 1 needs root to bind).
DEAD_URL = "http://127.0.0.1:1"


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture(scope="module")
def server():
    handle = start_service_thread(workers=1, max_queue=16, cache_size=64)
    yield handle
    handle.stop()


class TestByteIdentity:
    """Local and remote output compare as bytes, not just semantics."""

    def test_run(self, server):
        argv = [
            "run", "--algorithm", "fast-sleeping", "--family", "gnp-sparse",
            "--n", "200", "--seed", "3", "--engine", "auto",
        ]
        local = run_cli(argv)
        remote = run_cli(argv + ["--server", server.base_url])
        assert local[0] == remote[0] == EXIT_OK
        assert local[1] == remote[1]

    def test_sweep(self, server):
        argv = [
            "sweep", "--algorithm", "fast-sleeping", "--family",
            "gnp-sparse", "--sizes", "24,32", "--trials", "2",
        ]
        local = run_cli(argv)
        remote = run_cli(argv + ["--server", server.base_url])
        assert local[0] == remote[0] == EXIT_OK
        assert local[1] == remote[1]

    def test_sweep_from_manifest(self, server, tmp_path):
        path = str(tmp_path / "m.json")
        code, _, _ = run_cli(
            ["sweep", "--sizes", "16,24", "--trials", "1",
             "--emit-manifest", path]
        )
        assert code == EXIT_OK
        argv = ["sweep", "--manifest", path]
        local = run_cli(argv)
        remote = run_cli(argv + ["--server", server.base_url])
        assert local[0] == remote[0] == EXIT_OK
        assert local[1] == remote[1]

    def test_table1_text_and_markdown(self, server):
        for extra in ([], ["--markdown"]):
            argv = ["table1", "--sizes", "16,24", "--trials", "1"] + extra
            local = run_cli(argv)
            remote = run_cli(argv + ["--server", server.base_url])
            assert local[0] == remote[0] == EXIT_OK
            assert local[1] == remote[1]

    def test_remote_run_hits_the_cache(self, server):
        argv = [
            "run", "--family", "gnp-sparse", "--n", "180", "--seed", "11",
            "--engine", "auto", "--server", server.base_url,
        ]
        first = run_cli(argv)
        executed = server.service.pool.executed
        second = run_cli(argv)
        assert first[1] == second[1]
        assert server.service.pool.executed == executed  # warm: no solve


class TestFallback:
    def test_unreachable_warns_and_runs_locally(self):
        code, out, err = run_cli(
            ["run", "--family", "gnp-sparse", "--n", "64",
             "--engine", "auto", "--server", DEAD_URL]
        )
        assert code == EXIT_OK
        assert "MIS size" in out  # the local path actually ran
        assert "falling back to local execution" in err

    def test_no_fallback_exits_4(self):
        code, out, err = run_cli(
            ["run", "--family", "gnp-sparse", "--n", "64",
             "--server", DEAD_URL, "--no-fallback"]
        )
        assert code == EXIT_UNREACHABLE
        assert out == ""
        assert "no repro service reachable" in err

    def test_fallback_output_matches_pure_local(self):
        argv = ["run", "--family", "gnp-sparse", "--n", "64",
                "--engine", "auto"]
        local = run_cli(argv)
        degraded = run_cli(argv + ["--server", DEAD_URL])
        assert local[1] == degraded[1]

    def test_server_side_config_error_exits_2(self, server):
        # tree has no --server flag; send a plan the server must reject
        # (family-less) through the client API instead.
        from repro.plan import RunPlan
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(server.base_url)
        with pytest.raises(ServiceError) as info:
            client.solve(RunPlan(algorithm="luby").to_dict(), seed=0)
        assert info.value.code == "invalid_plan"


class TestSweepExitCodes:
    def test_server_conflicts_with_frontier_flags(self, server, tmp_path):
        for extra in (
            ["--sweep-dir", str(tmp_path / "d")],
            ["--resume", "--sweep-dir", str(tmp_path / "d")],
            ["--budget-s", "5", "--sweep-dir", str(tmp_path / "d")],
        ):
            code, _, err = run_cli(
                ["sweep", "--server", server.base_url] + extra
            )
            assert code == EXIT_CONFIG
            assert "--server" in err

    def test_frontier_corruption_exits_3(self, tmp_path):
        sweep_dir = str(tmp_path / "s")
        code, _, _ = run_cli(
            ["sweep", "--sizes", "16", "--trials", "1",
             "--sweep-dir", sweep_dir]
        )
        assert code == EXIT_OK
        # A result artifact no manifest trial owns: integrity checks trip.
        (tmp_path / "s" / "results" / "deadbeef-7.json").write_text("{}\n")
        code, _, err = run_cli(
            ["sweep", "--sizes", "16", "--trials", "1",
             "--sweep-dir", sweep_dir, "--resume"]
        )
        assert code == EXIT_CORRUPT
        assert "error:" in err

    def test_config_error_exits_2(self):
        code, _, err = run_cli(["sweep", "--resume"])
        assert code == EXIT_CONFIG
        assert "--sweep-dir" in err

    def test_exit_codes_documented_in_help(self):
        parser = build_parser()
        sweep_parser = parser._subparsers._group_actions[0].choices["sweep"]
        text = sweep_parser.format_help()
        assert "exit codes:" in text
        for line in (
            "0  success",
            "1  trial failure",
            "2  configuration error",
            "3  sweep frontier corruption",
            "4  --server unreachable",
        ):
            assert line in text, f"sweep --help must document: {line}"

    def test_exit_code_constants_are_distinct(self):
        codes = [EXIT_OK, 1, EXIT_CONFIG, EXIT_CORRUPT, EXIT_UNREACHABLE]
        assert len(set(codes)) == len(codes)
        assert codes == [0, 1, 2, 3, 4]

"""Direct unit tests for the NodeRuntime state machine."""

import random

import pytest

from repro.sim.actions import SendAndReceive, Sleep
from repro.sim.context import NodeContext
from repro.sim.errors import ProtocolError
from repro.sim.metrics import NodeStats
from repro.sim.node import NodeRuntime, NodeState
from repro.sim.protocol import Protocol
from repro.sim.trace import NULL_TRACE


def make_runtime(protocol):
    stats = NodeStats(node_id=0)
    ctx = NodeContext(
        node_id=0,
        neighbors=(),
        n=1,
        rng=random.Random(0),
        stats=stats,
        trace=NULL_TRACE,
        clock=lambda: 0,
    )
    return NodeRuntime(0, protocol, ctx, stats, NULL_TRACE)


class TestLifecycle:
    def test_starts_awake_with_pending_action(self):
        class Sender(Protocol):
            def run(self, ctx):
                yield SendAndReceive({})

        rt = make_runtime(Sender())
        rt.start()
        assert rt.state is NodeState.AWAKE
        assert isinstance(rt.pending, SendAndReceive)

    def test_sleep_sets_wake_round(self):
        class Sleeper(Protocol):
            def run(self, ctx):
                yield Sleep(5)

        rt = make_runtime(Sleeper())
        rt.start()
        assert rt.state is NodeState.SLEEPING
        assert rt.wake_round == 5
        assert rt.stats.sleep_rounds == 5

    def test_chained_zero_sleeps_resolve_immediately(self):
        class ZeroChain(Protocol):
            def run(self, ctx):
                yield Sleep(0)
                yield Sleep(0)
                yield SendAndReceive({})

        rt = make_runtime(ZeroChain())
        rt.start()
        assert rt.state is NodeState.AWAKE
        assert rt.stats.sleep_rounds == 0

    def test_immediate_return_terminates(self):
        class Quitter(Protocol):
            def run(self, ctx):
                return
                yield  # pragma: no cover

        rt = make_runtime(Quitter())
        rt.start()
        assert rt.state is NodeState.TERMINATED
        assert rt.stats.finish_round == 0

    def test_consecutive_sleeps_accumulate(self):
        class DoubleSleeper(Protocol):
            def run(self, ctx):
                yield Sleep(3)
                yield Sleep(4)

        rt = make_runtime(DoubleSleeper())
        rt.start()
        assert rt.wake_round == 3
        rt.advance(None, 3)
        assert rt.wake_round == 7
        assert rt.stats.sleep_rounds == 7
        rt.advance(None, 7)
        assert rt.state is NodeState.TERMINATED
        assert rt.stats.finish_round == 7


class TestValidation:
    def test_bool_sleep_duration_allowed_as_int(self):
        # bool is an int subclass; Sleep(True) is a 1-round sleep.
        class BoolSleeper(Protocol):
            def run(self, ctx):
                yield Sleep(True)

        rt = make_runtime(BoolSleeper())
        rt.start()
        assert rt.wake_round == 1

    def test_string_action_rejected(self):
        class Bad(Protocol):
            def run(self, ctx):
                yield "nope"

        rt = make_runtime(Bad())
        with pytest.raises(ProtocolError):
            rt.start()

    def test_float_sleep_rejected(self):
        class Bad(Protocol):
            def run(self, ctx):
                yield Sleep(2.5)

        rt = make_runtime(Bad())
        with pytest.raises(ProtocolError):
            rt.start()

    def test_advance_before_start_asserts(self):
        class Sender(Protocol):
            def run(self, ctx):
                yield SendAndReceive({})

        rt = make_runtime(Sender())
        with pytest.raises(AssertionError):
            rt.advance(None, 0)

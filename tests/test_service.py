"""Service semantics: cache, backpressure, reaper, kill isolation.

The acceptance properties of the solve server, each proven against a
real server (background thread, real sockets, real worker processes):

* a cache hit returns **byte-identical** payload without re-execution
  (the pool's ``executed`` counter is the spy, mirroring
  ``test_sweep_frontier.py``'s zero-recompute proof);
* queue saturation answers **429 backpressure** instead of queueing
  unboundedly;
* the **reaper** kills a deliberately-hung job at its deadline while
  concurrent requests complete;
* a **SIGKILLed worker** mid-solve fails that one request with a stable
  error envelope, the pool respawns, and ``/v1/health`` is healthy
  after;
* remote rows are **bit-identical** to the local sweep path for the
  same ``(plan, seed)``.

Fault injection rides ``REPRO_SERVICE_FAULT`` (set before the server
starts, so forked workers inherit it): ``hang:<match>`` wedges the
matching trial, ``sigkill:<match>`` kills its worker.
"""

import concurrent.futures
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.plan import RunPlan
from repro.service import (
    ServiceClient,
    ServiceError,
    start_service_thread,
)
from repro.service.executor import FAULT_ENV
from repro.sweeps import SweepManifest, execute_trial, trial_key

PLAN = RunPlan(
    algorithm="fast-sleeping", family="gnp-sparse", n=300, seed=0,
    engine="auto",
)


def _raw(base_url, method, path, payload=None):
    """One HTTP exchange, returning ``(status, headers, body bytes)``
    (the client hides headers and bytes; these tests need both)."""
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base_url + path, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _solve_body(seed, **extra):
    return {"plan": PLAN.to_dict(), "seed": seed, **extra}


@pytest.fixture(scope="module")
def server():
    handle = start_service_thread(workers=1, max_queue=8, cache_size=64)
    yield handle
    handle.stop()


class TestEndpoints:
    def test_health(self, server):
        status, _, body = _raw(server.base_url, "GET", "/v1/health")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["service_version"] == 1
        assert health["pool"]["alive_workers"] == 1
        assert health["uptime_s"] > 0

    def test_solve_row_matches_local_sweep_path(self, server):
        client = ServiceClient(server.base_url)
        response = client.solve(PLAN.to_dict(), seed=5)
        local = execute_trial(PLAN, 5)
        assert response.trial_key == local["trial_key"] == trial_key(PLAN, 5)
        assert dict(response.row) == local["row"]
        assert dict(response.plan) == local["plan"]

    def test_cache_hit_is_byte_identical_and_never_reexecutes(self, server):
        pool = server.service.pool
        before = pool.executed
        status1, head1, body1 = _raw(
            server.base_url, "POST", "/v1/solve", _solve_body(42)
        )
        status2, head2, body2 = _raw(
            server.base_url, "POST", "/v1/solve", _solve_body(42)
        )
        assert status1 == status2 == 200
        assert head1["X-Repro-Cache"] == "miss"
        assert head2["X-Repro-Cache"] == "hit"
        assert body1 == body2  # byte-identical, not merely equal
        # The spy: exactly one execution reached a worker.
        assert pool.executed == before + 1
        assert server.service.cache.hits >= 1

    def test_seed_defaults_to_the_plans_seed(self, server):
        client = ServiceClient(server.base_url)
        response = client.solve(PLAN.to_dict())
        assert response.seed == PLAN.seed

    def test_async_solve_job_lifecycle(self, server):
        status, _, body = _raw(
            server.base_url, "POST", "/v1/solve",
            _solve_body(43, mode="async"),
        )
        assert status == 202
        job = json.loads(body)
        assert job["kind"] == "solve"
        client = ServiceClient(server.base_url)
        finished = client.wait_job(job["job_id"], timeout=60)
        assert finished.state == "done"
        assert finished.result["trial_key"] == trial_key(PLAN, 43)
        # The async result equals a sync solve of the same request.
        sync = client.solve(PLAN.to_dict(), seed=43)
        assert finished.result == sync.to_dict()

    def test_sweep_rows_match_local_and_resubmission_is_free(self, server):
        manifest = SweepManifest.expand(
            PLAN, sizes=(24, 32), trials=2, name="svc-sweep"
        )
        client = ServiceClient(server.base_url)
        response = client.sweep(manifest.to_dict(), timeout=120)
        assert response.manifest_key == manifest.manifest_key()
        assert list(response.trial_keys) == manifest.keys()
        local_rows = [
            execute_trial(spec.plan, spec.seed)["row"] for spec in manifest
        ]
        assert [dict(row) for row in response.rows] == local_rows
        # Every (plan, seed) is now cached: a resubmission executes nothing.
        before = server.service.pool.executed
        again = client.sweep(manifest.to_dict(), timeout=120)
        assert [dict(r) for r in again.rows] == local_rows
        assert server.service.pool.executed == before

    def test_table1_matches_local_rendering(self, server):
        from repro.analysis.tables import Table, build_table1

        plan = RunPlan(algorithm="fast-sleeping", family="gnp-sparse")
        client = ServiceClient(server.base_url)
        response = client.table1(plan.to_dict(), sizes=(16, 24), trials=1)
        local = build_table1(sizes=[16, 24], plan=plan, trials=1, seed0=0)
        remote = Table(
            title=response.title,
            headers=list(response.headers),
            rows=[list(row) for row in response.rows],
        )
        assert remote.to_text() == local.to_text()
        assert remote.to_markdown() == local.to_markdown()


class TestErrorEnvelopes:
    @pytest.mark.parametrize(
        "method, path, payload, status, code",
        [
            ("POST", "/v1/solve", "not json", 400, "bad_request"),
            (
                "POST", "/v1/solve",
                {"plan": {}, "bogus_field": 1}, 400, "unknown_field",
            ),
            (
                "POST", "/v1/solve",
                {"plan": {}, "request_version": 9}, 400,
                "unsupported_version",
            ),
            (
                "POST", "/v1/solve",
                {"plan": {"plan_version": 1, "algorithm": "nope"}},
                400, "invalid_plan",
            ),
            (
                "POST", "/v1/solve",
                {"plan": {"plan_version": 1, "algorithm": "luby"}},
                400, "invalid_plan",  # no family/n: nothing to sample
            ),
            (
                "POST", "/v1/sweep",
                {"manifest": {"manifest_version": 9}},
                400, "invalid_manifest",
            ),
            ("GET", "/v1/jobs/job-999999", None, 404, "not_found"),
            ("GET", "/v1/nope", None, 404, "not_found"),
        ],
    )
    def test_stable_error_codes(
        self, server, method, path, payload, status, code
    ):
        if payload == "not json":
            request = urllib.request.Request(
                server.base_url + path, data=b"{nope", method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    got_status, body = response.status, response.read()
            except urllib.error.HTTPError as exc:
                got_status, body = exc.code, exc.read()
        else:
            got_status, _, body = _raw(server.base_url, method, path, payload)
        envelope = json.loads(body)
        assert got_status == status
        assert envelope["error"]["code"] == code
        assert envelope["service_version"] == 1

    def test_malformed_http_request_line(self, server):
        import socket

        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            data = sock.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]


class TestFaults:
    def test_sigkilled_worker_yields_envelope_and_server_survives(
        self, monkeypatch
    ):
        victim = trial_key(PLAN, 7)
        monkeypatch.setenv(FAULT_ENV, f"sigkill:{victim}")
        handle = start_service_thread(workers=1, max_queue=8)
        try:
            client = ServiceClient(handle.base_url)
            with pytest.raises(ServiceError) as info:
                client.solve(PLAN.to_dict(), seed=7)
            assert info.value.status == 502
            assert info.value.code == "worker_killed"
            assert "respawned" in str(info.value)
            # The pool respawned; an untainted seed solves fine.
            response = client.solve(PLAN.to_dict(), seed=8)
            assert response.seed == 8
            health = client.health()
            assert health["status"] == "ok"
            assert health["pool"]["alive_workers"] == 1
            assert health["pool"]["respawns"] == 1
            assert health["pool"]["killed"] == 1
        finally:
            handle.stop()

    def test_reaper_kills_hung_job_while_concurrent_requests_complete(
        self, monkeypatch
    ):
        victim = trial_key(PLAN, 7)
        monkeypatch.setenv(FAULT_ENV, f"hang:{victim}")
        handle = start_service_thread(workers=2, max_queue=8)
        try:
            client = ServiceClient(handle.base_url)
            outcome = {}

            def hung():
                try:
                    client.solve(PLAN.to_dict(), seed=7, deadline_s=0.8)
                    outcome["error"] = None
                except ServiceError as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=hung)
            thread.start()
            time.sleep(0.1)  # let the hung job occupy its worker
            response = client.solve(PLAN.to_dict(), seed=9)
            assert response.seed == 9  # served *while* seed 7 hangs
            thread.join(timeout=30)
            assert not thread.is_alive()
            error = outcome["error"]
            assert error is not None, "hung job was not reaped"
            assert error.status == 504
            assert error.code == "deadline_exceeded"
            health = client.health()
            assert health["reaped"] == 1
            assert health["pool"]["respawns"] == 1
            assert health["pool"]["alive_workers"] == 2
        finally:
            handle.stop()

    def test_backpressure_429_under_saturation(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "hang:-")  # every trial key matches
        handle = start_service_thread(
            workers=1, max_queue=1, default_deadline_s=2.0
        )
        try:
            client = ServiceClient(handle.base_url)

            def fire(seed):
                try:
                    client.solve(PLAN.to_dict(), seed=seed)
                    return "ok"
                except ServiceError as exc:
                    return exc
            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                outcomes = list(pool.map(fire, range(60, 64)))
            codes = sorted(
                o.code for o in outcomes if isinstance(o, ServiceError)
            )
            assert "backpressure" in codes
            rejected = [
                o for o in outcomes
                if isinstance(o, ServiceError) and o.code == "backpressure"
            ]
            assert all(o.status == 429 for o in rejected)
            # 429 is shed load, not a failure: the server stays healthy
            # and the reaper clears the wedged job.
            health = client.health()
            assert health["status"] == "ok"
            assert health["reaped"] >= 1
        finally:
            handle.stop()

    def test_backpressure_sets_retry_after(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "hang:-")
        handle = start_service_thread(
            workers=1, max_queue=1, default_deadline_s=1.5
        )
        try:
            saw_retry_after = []

            def fire(seed):
                status, headers, _ = _raw(
                    handle.base_url, "POST", "/v1/solve", _solve_body(seed)
                )
                if status == 429:
                    saw_retry_after.append(headers.get("Retry-After"))
                return status
            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                statuses = list(pool.map(fire, range(70, 74)))
            assert 429 in statuses
            assert all(value == "1" for value in saw_retry_after)
        finally:
            handle.stop()

    def test_expired_queued_job_fails_without_executing(self, monkeypatch):
        victim = trial_key(PLAN, 7)
        monkeypatch.setenv(FAULT_ENV, f"hang:{victim}")
        handle = start_service_thread(workers=1, max_queue=4)
        try:
            client = ServiceClient(handle.base_url)
            executed_before = handle.service.pool.executed
            results = {}

            def hung():
                try:
                    client.solve(PLAN.to_dict(), seed=7, deadline_s=1.0)
                except ServiceError as exc:
                    results["hung"] = exc.code

            def queued():
                try:
                    client.solve(PLAN.to_dict(), seed=77, deadline_s=0.2)
                except ServiceError as exc:
                    results["queued"] = exc.code

            a = threading.Thread(target=hung)
            a.start()
            time.sleep(0.1)
            b = threading.Thread(target=queued)
            b.start()
            a.join(timeout=30)
            b.join(timeout=30)
            assert results["hung"] == "deadline_exceeded"
            assert results["queued"] == "deadline_exceeded"
            # The queued job died *in the queue*: only the hung one
            # ever reached a worker.
            assert handle.service.pool.executed == executed_before + 1
        finally:
            handle.stop()

"""Peak-memory regressions: EngineScratch reuse across batched trials.

The batch runner's scaling story rests on one claim: running many
sequential trials costs the buffers of *one* trial, because every engine
construction borrows its node- and edge-sized state arrays from the same
:class:`repro.sim.fast_engine.EngineScratch` pool.  These tests pin that
claim two ways -- by object identity (consecutive engines literally hold
the same numpy buffers) and by ``tracemalloc`` (the traced heap does not
grow trial over trial inside ``iter_trials``), so a refactor that quietly
starts allocating per trial fails here instead of surfacing as an OOM at
n = 10^6.
"""

import gc
import tracemalloc

import pytest

from repro.graphs.arrays import make_family_arrays
from repro.sim.batch import iter_trials
from repro.sim.fast_engine import EngineScratch, GraphArrays, VectorizedEngine
from repro.sim.fast_phased import PhasedVectorizedEngine

#: The scratch-borrowed per-node state buffers of the sleeping engine.
SLEEPING_BUFFERS = (
    "in_mis", "awake", "sleep", "tx", "rx", "idle", "msent", "bits",
    "mrecv", "decision_round", "awake_at_decision", "base_truncated",
    "_sub_mask", "_nbr_mask", "_live_edges", "_edge_rounds",
    "_local_index", "_ctr",
)

#: The scratch-borrowed per-node state buffers of the phased engine,
#: including the node-frontier localization buffers (deferred per-edge
#: round-A receipt counters and the global-to-local index map).
PHASED_BUFFERS = (
    "in_mis", "awake", "tx", "rx", "idle", "msent", "bits", "mrecv",
    "decision_round", "awake_at_decision", "finish", "_combined",
    "_prio_bits", "_ctr", "_edge_rounds", "_local_index",
)

#: Additional scratch buffers of the marking (ghaffari) phased engine.
GHAFFARI_BUFFERS = ("_marked", "_exponent")


class TestBufferIdentity:
    def test_sleeping_engine_reuses_scratch_buffers(self):
        scratch = EngineScratch()
        ga = make_family_arrays("gnp-sparse", 400, seed=1)
        first = VectorizedEngine(
            ga, "fast-sleeping", seed=0, rng="batched", scratch=scratch
        )
        buffers = {name: getattr(first, name) for name in SLEEPING_BUFFERS}
        first.run()
        second = VectorizedEngine(
            ga, "fast-sleeping", seed=1, rng="batched", scratch=scratch
        )
        for name, buf in buffers.items():
            assert getattr(second, name) is buf, (
                f"{name} was reallocated instead of reused from scratch"
            )

    @pytest.mark.parametrize(
        "algorithm,names",
        [
            ("luby", PHASED_BUFFERS),
            ("ghaffari", PHASED_BUFFERS + GHAFFARI_BUFFERS),
        ],
    )
    def test_phased_engine_reuses_scratch_buffers(self, algorithm, names):
        scratch = EngineScratch()
        ga = make_family_arrays("gnp-sparse", 400, seed=1)
        first = PhasedVectorizedEngine(
            ga, algorithm, seed=0, rng="batched", scratch=scratch
        )
        buffers = {name: getattr(first, name) for name in names}
        first.run()
        second = PhasedVectorizedEngine(
            ga, algorithm, seed=1, rng="batched", scratch=scratch
        )
        for name, buf in buffers.items():
            assert getattr(second, name) is buf, (
                f"{name} was reallocated instead of reused from scratch"
            )

    def test_shape_change_reallocates(self):
        """A different graph size genuinely needs fresh buffers."""
        scratch = EngineScratch()
        small = VectorizedEngine(
            make_family_arrays("gnp-sparse", 50, seed=1),
            "fast-sleeping", seed=0, rng="batched", scratch=scratch,
        )
        big = VectorizedEngine(
            make_family_arrays("gnp-sparse", 80, seed=1),
            "fast-sleeping", seed=0, rng="batched", scratch=scratch,
        )
        assert small.awake is not big.awake
        assert len(big.awake) == 80

    def test_reused_buffers_still_give_correct_results(self):
        """Reuse must be invisible: a trial after a dirty run equals a
        trial on a fresh scratch, bit for bit."""
        ga = make_family_arrays("gnp-sparse", 300, seed=2)
        shared = EngineScratch()
        VectorizedEngine(
            ga, "fast-sleeping", seed=0, rng="batched", scratch=shared,
            result="arrays",
        ).run()
        reused = VectorizedEngine(
            ga, "fast-sleeping", seed=5, rng="batched", scratch=shared,
            result="arrays",
        ).run()
        fresh = VectorizedEngine(
            ga, "fast-sleeping", seed=5, rng="batched",
            scratch=EngineScratch(), result="arrays",
        ).run()
        assert reused.summary() == fresh.summary()
        assert reused.mis == fresh.mis


class TestTracedMemory:
    @pytest.mark.parametrize("algorithm", ["fast-sleeping", "luby"])
    def test_iter_trials_allocations_flat_per_trial(self, algorithm):
        """Streaming trials through one scratch must not grow the heap.

        Measures the traced allocation level after each of 8 trials on a
        shared 2000-node graph; beyond the first trial (which populates
        the scratch pool and lazy per-graph caches) the level must stay
        flat to within a small slack, i.e. no per-trial buffer leaks.
        """
        ga = make_family_arrays("gnp-sparse", 2000, seed=3)
        ga.id_bits  # warm the per-graph lazy caches outside the window

        def consume(count):
            for result in iter_trials(
                ga, algorithm, seeds=range(count),
                engine="vectorized", rng="batched", result="arrays",
            ):
                assert result.n == 2000

        consume(2)  # warm imports and code paths
        gc.collect()
        tracemalloc.start()
        try:
            levels = []
            for result in iter_trials(
                ga, algorithm, seeds=range(8),
                engine="vectorized", rng="batched", result="arrays",
            ):
                assert result.n == 2000
                del result  # the sweep pattern: aggregate, then drop
                gc.collect()
                levels.append(tracemalloc.get_traced_memory()[0])
        finally:
            tracemalloc.stop()
        slack = 128 * 1024
        assert levels[-1] <= levels[1] + slack, (
            f"traced memory grew across trials: {levels}"
        )


class TestLazyNodeIds:
    def test_array_native_node_ids_is_a_range(self):
        """Array-native graphs serve ``node_ids`` as a range, not a list."""
        ga = make_family_arrays("gnp-sparse", 500, seed=1)
        assert ga._ids_are_range
        assert isinstance(ga.node_ids, range)
        assert list(ga.node_ids) == list(range(500))
        assert ga.node_ids[499] == 499 and len(ga.node_ids) == 500
        # Graphs with arbitrary labels keep the real sorted list.
        labeled = GraphArrays({"b": ("a",), "a": ("b",)})
        assert not labeled._ids_are_range
        assert labeled.node_ids == ["a", "b"]

    def test_node_ids_not_materialized_at_scale(self):
        """The legacy-compat id list must never be allocated eagerly.

        At n = 10^7 a materialized ``list(range(n))`` costs ~400 MB --
        roughly 5x the graph's own int64 degree array.  Pin the build of
        an (edgeless) 10^6-node array-native graph to the ballpark of its
        numpy buffers: the 8 MB ``deg`` array plus slack, an order of
        magnitude below what any eager id list would add (~40 MB).
        """
        n = 10**6
        gc.collect()
        tracemalloc.start()
        try:
            ga = GraphArrays.from_distinct_pairs(n, [], [])
            ids = ga.node_ids  # serving the view must stay allocation-free
            assert len(ids) == n
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        deg_bytes = ga.deg.nbytes  # the one O(n) buffer this graph holds
        assert deg_bytes == 8 * n
        slack = 2 * 1024 * 1024
        assert peak <= deg_bytes + slack, (
            f"building a {n}-node array-native graph traced {peak} bytes "
            f"(expected ~{deg_bytes}): node_ids is materialized again?"
        )

    def test_lazy_ids_survive_pickling(self):
        """The pool wire format ships no id list for range-id graphs."""
        import pickle

        ga = make_family_arrays("gnp-sparse", 300, seed=4)
        clone = pickle.loads(pickle.dumps(ga))
        assert clone._node_ids is None and clone._ids_are_range
        assert isinstance(clone.node_ids, range)
        assert list(clone.node_ids) == list(ga.node_ids)
        import numpy as np

        for field in ("src", "dst", "grev", "deg"):
            assert np.array_equal(getattr(clone, field), getattr(ga, field))


class TestChunkedCsrBuild:
    def test_streaming_build_transient_memory_is_chunk_bounded(
        self, monkeypatch
    ):
        """The two-pass streaming CSR build must hold chunk-sized (plus
        O(n) node-array) transients, never pair-count-sized ones.

        A dense ~10^6-edge family forced through tiny chunks: with
        ~2x10^3 pairs in flight at a time, the peak traced memory above
        the persistent CSR arrays has to stay orders of magnitude below
        the ~50 MB the one-shot build transiently holds for this graph
        (pair buffers, composite keys, argsort).  The documented bound
        (docs/performance.md, "Scaling to 10^7"): O(n) node arrays plus
        ~64 bytes per in-flight pair.
        """
        import repro.graphs.arrays as arrays_mod

        n, p = 2000, 0.5  # ~10^6 undirected pairs
        chunk = 1 << 11
        monkeypatch.setattr(arrays_mod, "GNP_V2_STREAM_CHUNK", chunk)
        gc.collect()
        tracemalloc.start()
        try:
            ga = arrays_mod.gnp_arrays_v2(n, p, seed=5, stream=True)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert ga.m > 1_500_000  # really a dense 10^6-edge family
        # O(n) node arrays (degree splits, prefix starts, carry) plus a
        # generous multiple of the in-flight chunk temporaries.
        node_arrays = 8 * 64 * n
        transient_bound = node_arrays + 256 * chunk
        assert peak - current <= transient_bound, (
            f"streaming build transient {peak - current} exceeds "
            f"{transient_bound} (peak {peak}, persistent {current})"
        )

    def test_streaming_build_equals_one_shot(self, monkeypatch):
        """stream=True is a build strategy, never a different graph."""
        import numpy as np

        import repro.graphs.arrays as arrays_mod

        monkeypatch.setattr(arrays_mod, "GNP_V2_STREAM_CHUNK", 1 << 11)
        one_shot = arrays_mod.gnp_arrays_v2(500, 0.3, seed=9, stream=False)
        streamed = arrays_mod.gnp_arrays_v2(500, 0.3, seed=9, stream=True)
        for field in ("src", "dst", "grev", "deg"):
            assert np.array_equal(
                getattr(one_shot, field), getattr(streamed, field)
            ), field


class TestNoCopyEngineHandoff:
    """The engines consume a prebuilt CSR *in place*: streaming a graph
    through the bounded-memory build only pays off if the engine then
    rides the builder's arrays instead of copying them."""

    def test_sleeping_engine_holds_the_builders_arrays(self):
        ga = make_family_arrays("gnp-sparse", 400, seed=7)
        eng = VectorizedEngine(ga, "fast-sleeping", seed=0, rng="batched")
        assert eng.arrays is ga
        for field in ("src", "dst", "grev", "deg"):
            assert getattr(eng, field) is getattr(ga, field), (
                f"engine copied {field} instead of consuming it in place"
            )

    def test_phased_engine_holds_the_builders_arrays(self):
        ga = make_family_arrays("gnp-sparse", 400, seed=7)
        eng = PhasedVectorizedEngine(ga, "luby", seed=0, rng="batched")
        assert eng.arrays is ga
        for field in ("src", "dst", "grev", "deg"):
            assert getattr(eng.arrays, field) is getattr(ga, field)

    def test_engine_construction_does_not_duplicate_the_csr(self):
        """tracemalloc pin: constructing the sleeping engine on a dense
        prebuilt graph allocates its *own* per-edge state (the bool live
        mask and the int64 deferred-receipt counters, 9 bytes/directed
        edge) plus O(n) node buffers -- but never a second copy of the
        ~12 bytes/edge int32 CSR triplet, which would show up as ~12m
        extra traced bytes."""
        n, p = 2000, 0.5
        ga = make_family_arrays("gnp-dense", n, seed=7)
        assert ga.m > 1_500_000
        ga.id_bits  # warm per-graph lazy caches outside the window
        gc.collect()
        tracemalloc.start()
        try:
            eng = VectorizedEngine(
                ga, "fast-sleeping", seed=0, rng="batched", result="arrays"
            )
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        del eng
        per_edge_state = 9 * ga.m  # live mask + edge_rounds, legitimate
        node_buffers = 32 * 8 * n  # generous: every per-node scratch array
        bound = per_edge_state + node_buffers + 2 * 1024 * 1024
        assert peak <= bound, (
            f"engine construction traced {peak} bytes (bound {bound}): "
            f"is the CSR being copied instead of consumed in place?"
        )

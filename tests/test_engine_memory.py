"""Peak-memory regressions: EngineScratch reuse across batched trials.

The batch runner's scaling story rests on one claim: running many
sequential trials costs the buffers of *one* trial, because every engine
construction borrows its node- and edge-sized state arrays from the same
:class:`repro.sim.fast_engine.EngineScratch` pool.  These tests pin that
claim two ways -- by object identity (consecutive engines literally hold
the same numpy buffers) and by ``tracemalloc`` (the traced heap does not
grow trial over trial inside ``iter_trials``), so a refactor that quietly
starts allocating per trial fails here instead of surfacing as an OOM at
n = 10^6.
"""

import gc
import tracemalloc

import pytest

from repro.graphs.arrays import make_family_arrays
from repro.sim.batch import iter_trials
from repro.sim.fast_engine import EngineScratch, VectorizedEngine
from repro.sim.fast_phased import PhasedVectorizedEngine

#: The scratch-borrowed per-node state buffers of the sleeping engine.
SLEEPING_BUFFERS = (
    "in_mis", "awake", "sleep", "tx", "rx", "idle", "msent", "bits",
    "mrecv", "decision_round", "awake_at_decision", "base_truncated",
    "_sub_mask", "_nbr_mask", "_live_edges", "_edge_rounds",
    "_local_index", "_ctr",
)

#: The scratch-borrowed per-node state buffers of the phased engine.
PHASED_BUFFERS = (
    "in_mis", "awake", "tx", "rx", "idle", "msent", "bits", "mrecv",
    "decision_round", "awake_at_decision", "finish", "_combined",
    "_prio_bits", "_ctr",
)


class TestBufferIdentity:
    def test_sleeping_engine_reuses_scratch_buffers(self):
        scratch = EngineScratch()
        ga = make_family_arrays("gnp-sparse", 400, seed=1)
        first = VectorizedEngine(
            ga, "fast-sleeping", seed=0, rng="batched", scratch=scratch
        )
        buffers = {name: getattr(first, name) for name in SLEEPING_BUFFERS}
        first.run()
        second = VectorizedEngine(
            ga, "fast-sleeping", seed=1, rng="batched", scratch=scratch
        )
        for name, buf in buffers.items():
            assert getattr(second, name) is buf, (
                f"{name} was reallocated instead of reused from scratch"
            )

    def test_phased_engine_reuses_scratch_buffers(self):
        scratch = EngineScratch()
        ga = make_family_arrays("gnp-sparse", 400, seed=1)
        first = PhasedVectorizedEngine(
            ga, "luby", seed=0, rng="batched", scratch=scratch
        )
        buffers = {name: getattr(first, name) for name in PHASED_BUFFERS}
        first.run()
        second = PhasedVectorizedEngine(
            ga, "luby", seed=1, rng="batched", scratch=scratch
        )
        for name, buf in buffers.items():
            assert getattr(second, name) is buf, (
                f"{name} was reallocated instead of reused from scratch"
            )

    def test_shape_change_reallocates(self):
        """A different graph size genuinely needs fresh buffers."""
        scratch = EngineScratch()
        small = VectorizedEngine(
            make_family_arrays("gnp-sparse", 50, seed=1),
            "fast-sleeping", seed=0, rng="batched", scratch=scratch,
        )
        big = VectorizedEngine(
            make_family_arrays("gnp-sparse", 80, seed=1),
            "fast-sleeping", seed=0, rng="batched", scratch=scratch,
        )
        assert small.awake is not big.awake
        assert len(big.awake) == 80

    def test_reused_buffers_still_give_correct_results(self):
        """Reuse must be invisible: a trial after a dirty run equals a
        trial on a fresh scratch, bit for bit."""
        ga = make_family_arrays("gnp-sparse", 300, seed=2)
        shared = EngineScratch()
        VectorizedEngine(
            ga, "fast-sleeping", seed=0, rng="batched", scratch=shared,
            result="arrays",
        ).run()
        reused = VectorizedEngine(
            ga, "fast-sleeping", seed=5, rng="batched", scratch=shared,
            result="arrays",
        ).run()
        fresh = VectorizedEngine(
            ga, "fast-sleeping", seed=5, rng="batched",
            scratch=EngineScratch(), result="arrays",
        ).run()
        assert reused.summary() == fresh.summary()
        assert reused.mis == fresh.mis


class TestTracedMemory:
    @pytest.mark.parametrize("algorithm", ["fast-sleeping", "luby"])
    def test_iter_trials_allocations_flat_per_trial(self, algorithm):
        """Streaming trials through one scratch must not grow the heap.

        Measures the traced allocation level after each of 8 trials on a
        shared 2000-node graph; beyond the first trial (which populates
        the scratch pool and lazy per-graph caches) the level must stay
        flat to within a small slack, i.e. no per-trial buffer leaks.
        """
        ga = make_family_arrays("gnp-sparse", 2000, seed=3)
        ga.id_bits  # warm the per-graph lazy caches outside the window

        def consume(count):
            for result in iter_trials(
                ga, algorithm, seeds=range(count),
                engine="vectorized", rng="batched", result="arrays",
            ):
                assert result.n == 2000

        consume(2)  # warm imports and code paths
        gc.collect()
        tracemalloc.start()
        try:
            levels = []
            for result in iter_trials(
                ga, algorithm, seeds=range(8),
                engine="vectorized", rng="batched", result="arrays",
            ):
                assert result.n == 2000
                del result  # the sweep pattern: aggregate, then drop
                gc.collect()
                levels.append(tracemalloc.get_traced_memory()[0])
        finally:
            tracemalloc.stop()
        slack = 128 * 1024
        assert levels[-1] <= levels[1] + slack, (
            f"traced memory grew across trials: {levels}"
        )

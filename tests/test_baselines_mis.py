"""Tests for the traditional-model MIS baselines: Luby, greedy, Ghaffari."""

import networkx as nx
import pytest

from repro.baselines import GhaffariMIS, LubyMIS
from repro.graphs import assert_valid_mis
from repro.sim import Simulator

from helpers import run_mis

ALGORITHMS = ["luby", "greedy", "ghaffari"]


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_valid_mis_on_corner_cases(self, small_graph, algorithm):
        result = run_mis(small_graph, algorithm, seed=1)
        assert_valid_mis(small_graph, result.mis)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_mis_many_seeds(self, gnp60, algorithm, seed):
        result = run_mis(gnp60, algorithm, seed=seed)
        assert_valid_mis(gnp60, result.mis)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_isolated_nodes_join_immediately(self, algorithm):
        result = run_mis(nx.empty_graph(5), algorithm, seed=0)
        assert result.mis == frozenset(range(5))
        assert result.rounds == 0  # decided before any communication

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_complete_graph_one_winner(self, algorithm):
        result = run_mis(nx.complete_graph(25), algorithm, seed=2)
        assert len(result.mis) == 1


class TestTraditionalModel:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_nodes_never_sleep(self, gnp60, algorithm):
        result = run_mis(gnp60, algorithm, seed=3)
        assert all(
            s.sleep_rounds == 0 for s in result.node_stats.values()
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_awake_equals_finish_round(self, gnp60, algorithm):
        # In the traditional model awake time IS the finish time.
        result = run_mis(gnp60, algorithm, seed=3)
        for stats in result.node_stats.values():
            assert stats.awake_rounds == stats.finish_round

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_terminate_after_announcing(self, gnp60, algorithm):
        # Barenboim--Tzur convention: decide, announce, terminate; so the
        # finish round trails the decision round by at most the announce
        # rounds of one phase.
        result = run_mis(gnp60, algorithm, seed=3)
        for stats in result.node_stats.values():
            assert stats.decision_round is not None
            assert stats.finish_round - stats.decision_round <= 2


class TestPhaseStructure:
    def test_luby_redraws_priorities(self, gnp60):
        # Two Luby runs from the same seed agree; but the per-phase values
        # differ across phases (statistically certain on 60 nodes).
        result = run_mis(gnp60, "luby", seed=4)
        assert_valid_mis(gnp60, result.mis)
        max_phases = max(
            p.phases_run for p in result.protocols.values()
        )
        assert max_phases >= 1
        assert result.rounds == 3 * max_phases or result.rounds == 0

    def test_greedy_rank_fixed(self, gnp60):
        result = run_mis(gnp60, "greedy", seed=4)
        for protocol in result.protocols.values():
            if protocol.phases_run:
                assert protocol.rank is not None

    def test_greedy_is_lexicographically_first(self, gnp60):
        # The distributed greedy must equal sequential greedy on its ranks.
        from repro.baselines.seq_greedy import lexicographically_first_mis

        result = run_mis(gnp60, "greedy", seed=4)
        priorities = {
            v: p.rank if p.rank is not None else (-1, v)
            for v, p in result.protocols.items()
        }
        expected = lexicographically_first_mis(gnp60, priorities)
        assert set(result.mis) == expected

    def test_rounds_are_three_per_phase(self, gnp60):
        result = run_mis(gnp60, "greedy", seed=5)
        assert result.rounds % 3 == 0

    def test_ghaffari_desire_levels_move(self):
        # On a clique, effective degrees exceed 2 so desire levels drop;
        # the algorithm must still finish.
        graph = nx.complete_graph(30)
        result = run_mis(graph, "ghaffari", seed=1)
        assert_valid_mis(graph, result.mis)


class TestMaxPhases:
    def test_give_up_leaves_undecided(self):
        graph = nx.complete_graph(40)
        result = Simulator(
            graph, lambda v: GhaffariMIS(max_phases=1), seed=0
        ).run()
        assert len(result.undecided) > 0

    def test_max_phases_validation(self):
        with pytest.raises(ValueError):
            LubyMIS(max_phases=0)
        with pytest.raises(ValueError):
            GhaffariMIS(max_phases=0)

    def test_luby_with_generous_budget_finishes(self, gnp60):
        result = Simulator(
            gnp60, lambda v: LubyMIS(max_phases=200), seed=1
        ).run()
        assert result.undecided == frozenset()


class TestScaling:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rounds_grow_slowly(self, algorithm):
        # O(log n) phases w.h.p.: going from n=50 to n=400 should not even
        # double the round count on sparse random graphs.
        small = run_mis(
            nx.gnp_random_graph(50, 8 / 50, seed=1), algorithm, seed=1
        )
        large = run_mis(
            nx.gnp_random_graph(400, 8 / 400, seed=1), algorithm, seed=1
        )
        assert large.rounds <= max(3, 3 * small.rounds)

    def test_congest_budget(self, gnp60):
        import math

        limit = 64 * math.ceil(math.log2(60))
        for algorithm in ALGORITHMS:
            result = run_mis(
                gnp60, algorithm, seed=2, congest_bit_limit=limit
            )
            assert_valid_mis(gnp60, result.mis)

"""Tests for the one-command reproduction report."""

import pytest

from repro.analysis.report import build_report
from repro.cli import main


@pytest.fixture(scope="module")
def small_report():
    return build_report(sizes=(12, 24), family="cycle", trials=1, seed0=2)


class TestBuildReport:
    def test_contains_all_sections(self, small_report):
        assert "# Reproduction report" in small_report
        assert "Table 1 (measured)" in small_report
        assert "Node-averaged awake complexity" in small_report
        assert "Worst-case awake complexity" in small_report
        assert "Pruning Lemma" in small_report
        assert "Corollary 1" in small_report
        assert "Awake-time distribution" in small_report

    def test_mentions_paper_claims(self, small_report):
        assert "O(1)" in small_report
        assert "O(log^3.41 n)" in small_report

    def test_lexfirst_full_marks(self, small_report):
        # On the cycle family every configuration matches exactly.
        assert "sleeping: 3/3 exact matches" in small_report
        assert "fast-sleeping: 3/3 exact matches" in small_report

    def test_markdown_table_syntax(self, small_report):
        assert "| algorithm | measure |" in small_report


class TestCliReport:
    def test_stdout(self, capsys):
        code = main(
            ["report", "--sizes", "12", "--trials", "1", "--family", "cycle"]
        )
        assert code == 0
        assert "# Reproduction report" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--sizes",
                "12",
                "--trials",
                "1",
                "--family",
                "cycle",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        assert "# Reproduction report" in target.read_text()
        assert "report written" in capsys.readouterr().out

"""Structural tests of Algorithm 2's greedy base case.

Forcing ``depth=0`` makes the entire run a single greedy base call, so the
base-case machinery can be examined in isolation: phase progress, decision
kinds, window padding, and per-pair exclusivity.
"""

import networkx as nx
import pytest

from repro.analysis.lemmas import decision_site
from repro.core import FastSleepingMIS, schedule
from repro.graphs import assert_valid_mis
from repro.sim import Simulator


def run_pure_greedy(graph, seed=0, constant=8):
    return Simulator(
        graph,
        lambda v: FastSleepingMIS(depth=0, greedy_constant=constant),
        seed=seed,
    ).run()


class TestBaseCaseDecisions:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_decide_with_default_window(self, seed):
        graph = nx.gnp_random_graph(40, 0.15, seed=seed)
        result = run_pure_greedy(graph, seed=seed)
        assert result.undecided == frozenset()
        assert_valid_mis(graph, result.mis)

    def test_decision_kinds_are_base_variants(self):
        graph = nx.gnp_random_graph(40, 0.15, seed=2)
        result = run_pure_greedy(graph, seed=2)
        kinds = {
            decision_site(p)[1] for p in result.protocols.values()
        }
        allowed = {
            "base_isolated",
            "base_greedy_isolated",
            "base_greedy_join",
            "base_greedy_eliminated",
        }
        assert kinds <= allowed

    def test_eliminated_nodes_have_joined_neighbor(self):
        graph = nx.gnp_random_graph(40, 0.15, seed=3)
        result = run_pure_greedy(graph, seed=3)
        for v, protocol in result.protocols.items():
            if decision_site(protocol)[1] == "base_greedy_eliminated":
                assert any(
                    result.outputs[u] is True for u in graph.adj[v]
                ), v

    def test_isolated_in_graph_decides_first_round(self):
        graph = nx.disjoint_union(nx.empty_graph(1), nx.complete_graph(4))
        result = run_pure_greedy(graph, seed=1)
        assert decision_site(result.protocols[0])[1] == "base_greedy_isolated"
        assert result.node_stats[0].awake_rounds == 1  # one probe round


class TestWindowDiscipline:
    def test_everyone_occupies_exactly_the_window(self):
        # All nodes finish at the same round: the window's end.
        graph = nx.gnp_random_graph(30, 0.2, seed=4)
        result = run_pure_greedy(graph, seed=4)
        window = schedule.greedy_rounds(30)
        finishes = {s.finish_round for s in result.node_stats.values()}
        assert finishes == {window}

    def test_awake_far_below_window_for_early_deciders(self):
        graph = nx.complete_graph(40)  # one phase decides everyone
        result = run_pure_greedy(graph, seed=5)
        window = schedule.greedy_rounds(40)
        for stats in result.node_stats.values():
            assert stats.awake_rounds <= 4  # probe + one 3-round phase
            assert stats.sleep_rounds >= window - 4

    def test_larger_constant_stretches_wall_clock_only(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=4)
        small = run_pure_greedy(graph, seed=4, constant=8)
        large = run_pure_greedy(graph, seed=4, constant=16)
        assert large.rounds == 2 * small.rounds
        assert (
            large.node_averaged_awake_complexity
            == small.node_averaged_awake_complexity
        )
        assert large.mis == small.mis  # same ranks, same greedy outcome


class TestProgressGuarantee:
    def test_max_rank_node_joins_in_first_phase(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=6)
        result = run_pure_greedy(graph, seed=6)
        ranks = {
            v: p.base_rank
            for v, p in result.protocols.items()
            if p.base_rank is not None
        }
        top = max(ranks, key=ranks.get)
        assert result.outputs[top] is True
        # Probe round + phase round A, joined announced in B: decided at
        # round 2 (0-indexed round counting: decision during processing
        # of round 1's inbox or round 2's).
        assert result.node_stats[top].decision_round <= 3

    def test_phases_strictly_shrink_live_sets(self):
        # After each phase the undecided subgraph loses at least its
        # maximum-rank node: #phases <= #nodes; on random ranks it is
        # O(log n) w.h.p. -- sanity-check a generous bound.
        graph = nx.gnp_random_graph(60, 0.1, seed=7)
        result = run_pure_greedy(graph, seed=7)
        max_awake = result.worst_case_awake_complexity
        assert max_awake <= 1 + 3 * 20  # probe + at most 20 phases at n=60

"""Property-based tests of the simulator's accounting invariants.

Random protocol scripts (arbitrary interleavings of sends and sleeps) are
generated per node; whatever the schedule, the simulator's books must
balance: awake + sleep rounds partition each node's lifetime, the run
length equals the last finisher, message totals match across senders, and
fast-forwarding never changes semantics (it is a pure optimization).
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import SendAndReceive, Simulator, Sleep
from repro.sim.protocol import Protocol

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class Scripted(Protocol):
    """Execute a fixed script of ('send' | duration) steps."""

    def __init__(self, script):
        self.script = script
        self.received = 0

    def run(self, ctx):
        for step in self.script:
            if step == "send":
                inbox = yield SendAndReceive(
                    {u: 1 for u in ctx.neighbors}
                )
                self.received += len(inbox)
            else:
                yield Sleep(step)

    def output(self):
        return self.received


def scripts_strategy():
    step = st.one_of(
        st.just("send"), st.integers(min_value=0, max_value=12)
    )
    return st.lists(step, max_size=12)


@st.composite
def scripted_networks(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    graph = nx.complete_graph(n)
    scripts = {v: draw(scripts_strategy()) for v in range(n)}
    return graph, scripts


class TestAccountingInvariants:
    @SLOW
    @given(scripted_networks())
    def test_books_balance(self, case):
        graph, scripts = case
        result = Simulator(graph, lambda v: Scripted(scripts[v])).run()

        for v, stats in result.node_stats.items():
            sends = sum(1 for s in scripts[v] if s == "send")
            sleeps = sum(s for s in scripts[v] if s != "send")
            # Awake rounds == number of SendAndReceive actions.
            assert stats.awake_rounds == sends
            # Sleep rounds == total requested sleep.
            assert stats.sleep_rounds == sleeps
            # The node's lifetime is exactly awake + sleep.
            assert stats.finish_round == sends + sleeps
            # tx/rx/idle partition the awake rounds.
            assert (
                stats.tx_rounds + stats.rx_rounds + stats.idle_rounds
                == stats.awake_rounds
            )

        # The run ends when the last node finishes.
        assert result.rounds == max(
            (s.finish_round for s in result.node_stats.values()), default=0
        )

    @SLOW
    @given(scripted_networks())
    def test_messages_sent_counted_exactly(self, case):
        graph, scripts = case
        result = Simulator(graph, lambda v: Scripted(scripts[v])).run()
        degree = graph.number_of_nodes() - 1
        for v, stats in result.node_stats.items():
            sends = sum(1 for s in scripts[v] if s == "send")
            assert stats.messages_sent == sends * degree

    @SLOW
    @given(scripted_networks())
    def test_delivery_is_symmetric_simultaneity(self, case):
        # u receives from v in round r iff both executed a send at r; so
        # total received == number of coincident (round, ordered pair).
        graph, scripts = case
        result = Simulator(graph, lambda v: Scripted(scripts[v])).run()

        def send_rounds(script):
            rounds = []
            t = 0
            for step in script:
                if step == "send":
                    rounds.append(t)
                    t += 1
                else:
                    t += step
            return set(rounds)

        rounds_of = {v: send_rounds(scripts[v]) for v in scripts}
        expected = {
            v: sum(
                len(rounds_of[v] & rounds_of[u])
                for u in graph.adj[v]
            )
            for v in scripts
        }
        for v in scripts:
            assert result.outputs[v] == expected[v]

    @SLOW
    @given(scripted_networks(), st.integers(min_value=0, max_value=10**6))
    def test_determinism_under_seed(self, case, seed):
        graph, scripts = case
        a = Simulator(graph, lambda v: Scripted(scripts[v]), seed=seed).run()
        b = Simulator(graph, lambda v: Scripted(scripts[v]), seed=seed).run()
        assert a.outputs == b.outputs
        assert a.rounds == b.rounds

"""Unit tests for the sleeping-model simulator core.

These tests pin down the model semantics the algorithms rely on:
synchronous delivery, message dropping to sleeping/terminated nodes,
exact sleep durations, fast-forward over all-asleep windows, and the
awake/round accounting.
"""

import pytest

from repro.sim import (
    CongestViolationError,
    MaxRoundsExceededError,
    Protocol,
    ProtocolError,
    SendAndReceive,
    Simulator,
    Sleep,
    node_rng,
    normalize_graph,
    simulate,
)

PATH3 = {0: [1], 1: [0, 2], 2: [1]}


class Echo(Protocol):
    """Awake one round, record the inbox, terminate."""

    def __init__(self, payload="hello"):
        self.payload = payload
        self.inbox = None

    def run(self, ctx):
        self.inbox = yield SendAndReceive(
            {u: self.payload for u in ctx.neighbors}
        )

    def output(self):
        return self.inbox


class SleepThenListen(Protocol):
    """Sleep some rounds, then listen one round."""

    def __init__(self, duration):
        self.duration = duration
        self.inbox = None
        self.woke_at = None

    def run(self, ctx):
        yield Sleep(self.duration)
        self.woke_at = ctx.current_round()
        self.inbox = yield SendAndReceive({})

    def output(self):
        return self.inbox


class TestNormalizeGraph:
    def test_networkx_graph(self):
        import networkx as nx

        adjacency = normalize_graph(nx.path_graph(3))
        assert adjacency == {0: (1,), 1: (0, 2), 2: (1,)}

    def test_mapping(self):
        adjacency = normalize_graph({0: [1], 1: [0]})
        assert adjacency == {0: (1,), 1: (0,)}

    def test_symmetrizes(self):
        adjacency = normalize_graph({0: [1], 1: []})
        assert adjacency == {0: (1,), 1: (0,)}

    def test_drops_self_loops(self):
        adjacency = normalize_graph({0: [0, 1], 1: []})
        assert adjacency == {0: (1,), 1: (0,)}

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(ValueError):
            normalize_graph({0: [9]})

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            normalize_graph([0, 1])

    def test_empty(self):
        assert normalize_graph({}) == {}


class TestNodeRng:
    def test_deterministic(self):
        assert node_rng(1, 5).random() == node_rng(1, 5).random()

    def test_distinct_per_node(self):
        assert node_rng(1, 5).random() != node_rng(1, 6).random()

    def test_distinct_per_seed(self):
        assert node_rng(1, 5).random() != node_rng(2, 5).random()


class TestDelivery:
    def test_awake_neighbors_exchange(self):
        result = simulate(PATH3, lambda v: Echo())
        assert result.outputs[0] == {1: "hello"}
        assert result.outputs[1] == {0: "hello", 2: "hello"}
        assert result.outputs[2] == {1: "hello"}

    def test_message_to_sleeping_node_dropped(self):
        # Node 1 sleeps through round 0, so node 0's message is lost.
        def factory(v):
            return Echo() if v == 0 else SleepThenListen(1)

        result = simulate({0: [1], 1: [0]}, factory)
        assert result.outputs[0] == {}  # neighbor asleep, nothing received
        assert result.outputs[1] == {}  # sender already terminated

    def test_message_to_terminated_node_dropped(self):
        # Node 0 terminates after round 0; node 1 sends during round 1.
        class TwoRounds(Protocol):
            def __init__(self):
                self.second = None

            def run(self, ctx):
                yield SendAndReceive({u: "a" for u in ctx.neighbors})
                self.second = yield SendAndReceive(
                    {u: "b" for u in ctx.neighbors}
                )

            def output(self):
                return self.second

        def factory(v):
            return Echo() if v == 0 else TwoRounds()

        result = simulate({0: [1], 1: [0]}, factory)
        assert result.outputs[0] == {1: "a"}
        assert result.outputs[1] == {}  # round-1 send hit a terminated node

    def test_send_to_non_neighbor_rejected(self):
        class Bad(Protocol):
            def run(self, ctx):
                yield SendAndReceive({99: "x"})

        with pytest.raises(ProtocolError):
            simulate(PATH3, lambda v: Bad())

    def test_distinct_payloads_per_neighbor(self):
        class PerNeighbor(Protocol):
            def __init__(self):
                self.inbox = None

            def run(self, ctx):
                self.inbox = yield SendAndReceive(
                    {u: ("to", u) for u in ctx.neighbors}
                )

            def output(self):
                return self.inbox

        result = simulate(PATH3, lambda v: PerNeighbor())
        assert result.outputs[1] == {0: ("to", 1), 2: ("to", 1)}


class TestSleepSemantics:
    def test_sleep_duration_exact(self):
        result = simulate({0: []}, lambda v: SleepThenListen(5))
        assert result.protocols[0].woke_at == 5
        assert result.node_stats[0].sleep_rounds == 5
        assert result.node_stats[0].awake_rounds == 1
        assert result.rounds == 6  # acted in round 5, finished after it

    def test_sleep_zero_is_noop(self):
        class ZeroSleep(Protocol):
            def run(self, ctx):
                yield Sleep(0)
                yield SendAndReceive({})

        result = simulate({0: []}, lambda v: ZeroSleep())
        assert result.node_stats[0].sleep_rounds == 0
        assert result.rounds == 1

    def test_negative_sleep_rejected(self):
        class Negative(Protocol):
            def run(self, ctx):
                yield Sleep(-1)

        with pytest.raises(ProtocolError):
            simulate({0: []}, lambda v: Negative())

    def test_non_integer_sleep_rejected(self):
        class Fractional(Protocol):
            def run(self, ctx):
                yield Sleep(1.5)

        with pytest.raises(ProtocolError):
            simulate({0: []}, lambda v: Fractional())

    def test_fast_forward_skips_all_asleep_windows(self):
        # Both nodes sleep a huge window; the simulator must finish fast
        # while the round counter reflects the full wall clock.
        big = 10**9

        result = simulate(
            {0: [1], 1: [0]},
            lambda v: SleepThenListen(big),
            max_iterations=1000,
        )
        assert result.rounds == big + 1
        assert result.node_stats[0].sleep_rounds == big

    def test_interleaved_sleep_and_wake(self):
        # Node 0 awake rounds 0,1,2; node 1 awake only round 1.
        class AwakeThree(Protocol):
            def __init__(self):
                self.inboxes = []

            def run(self, ctx):
                for _ in range(3):
                    inbox = yield SendAndReceive(
                        {u: "ping" for u in ctx.neighbors}
                    )
                    self.inboxes.append(dict(inbox))

            def output(self):
                return self.inboxes

        class AwakeMiddle(Protocol):
            def __init__(self):
                self.inbox = None

            def run(self, ctx):
                yield Sleep(1)
                self.inbox = yield SendAndReceive(
                    {u: "pong" for u in ctx.neighbors}
                )

            def output(self):
                return self.inbox

        def factory(v):
            return AwakeThree() if v == 0 else AwakeMiddle()

        result = simulate({0: [1], 1: [0]}, factory)
        assert result.outputs[0] == [{}, {1: "pong"}, {}]
        assert result.outputs[1] == {0: "ping"}


class TestTermination:
    def test_immediate_termination(self):
        class Immediate(Protocol):
            def run(self, ctx):
                return
                yield  # pragma: no cover

        result = simulate({0: []}, lambda v: Immediate())
        assert result.rounds == 0
        assert result.node_stats[0].finish_round == 0
        assert result.all_finished

    def test_finish_round_counts_elapsed_rounds(self):
        result = simulate({0: []}, lambda v: Echo())
        assert result.node_stats[0].finish_round == 1

    def test_termination_after_sleep(self):
        class SleepOnly(Protocol):
            def run(self, ctx):
                yield Sleep(4)

        result = simulate({0: []}, lambda v: SleepOnly())
        assert result.node_stats[0].finish_round == 4
        assert result.node_stats[0].awake_rounds == 0


class TestAccounting:
    def test_awake_rounds_counted(self):
        result = simulate(PATH3, lambda v: Echo())
        assert all(s.awake_rounds == 1 for s in result.node_stats.values())

    def test_tx_rx_idle_classification(self):
        # Node 0 sends (tx); node 1 sleeps; node 2 listens and hears
        # nothing (idle).
        class Silent(Protocol):
            def run(self, ctx):
                yield SendAndReceive({})

        def factory(v):
            if v == 0:
                return Echo()
            if v == 1:
                return SleepThenListen(2)
            return Silent()

        result = simulate(PATH3, factory)
        assert result.node_stats[0].tx_rounds == 1
        assert result.node_stats[2].idle_rounds == 1

    def test_rx_round_classification(self):
        # Node 1 listens silently while node 0 transmits to it.
        class Silent(Protocol):
            def run(self, ctx):
                yield SendAndReceive({})

        def factory(v):
            return Echo() if v == 0 else Silent()

        result = simulate({0: [1], 1: [0]}, factory)
        assert result.node_stats[1].rx_rounds == 1
        assert result.node_stats[1].idle_rounds == 0

    def test_message_and_bit_totals(self):
        result = simulate(PATH3, lambda v: Echo(payload=True))
        # path 0-1-2: degree sum = 4 messages of 2 bits each.
        assert result.total_messages == 4
        assert result.total_bits == 8

    def test_messages_received_counted(self):
        result = simulate(PATH3, lambda v: Echo())
        assert result.node_stats[1].messages_received == 2


class TestCongestEnforcement:
    def test_within_limit_passes(self):
        result = simulate(
            PATH3, lambda v: Echo(payload=True), congest_bit_limit=8
        )
        assert result.all_finished

    def test_violation_raises(self):
        with pytest.raises(CongestViolationError) as info:
            simulate(
                PATH3,
                lambda v: Echo(payload="a long string payload"),
                congest_bit_limit=8,
            )
        assert info.value.limit == 8
        assert info.value.bits > 8


class TestGuards:
    def test_max_rounds_exceeded(self):
        class Forever(Protocol):
            def run(self, ctx):
                while True:
                    yield SendAndReceive({})

        with pytest.raises(MaxRoundsExceededError):
            simulate({0: []}, lambda v: Forever(), max_rounds=10)

    def test_max_iterations_exceeded(self):
        class Forever(Protocol):
            def run(self, ctx):
                while True:
                    yield SendAndReceive({})

        with pytest.raises(MaxRoundsExceededError):
            simulate({0: []}, lambda v: Forever(), max_iterations=10)

    def test_unknown_action_rejected(self):
        class BadAction(Protocol):
            def run(self, ctx):
                yield "not-an-action"

        with pytest.raises(ProtocolError):
            simulate({0: []}, lambda v: BadAction())

    def test_factory_type_checked(self):
        with pytest.raises(TypeError):
            Simulator({0: []}, lambda v: object())


class TestDeterminism:
    def test_same_seed_same_result(self):
        class RandomReporter(Protocol):
            def __init__(self):
                self.value = None

            def run(self, ctx):
                self.value = ctx.rng.random()
                yield SendAndReceive({})

            def output(self):
                return self.value

        a = simulate(PATH3, lambda v: RandomReporter(), seed=5)
        b = simulate(PATH3, lambda v: RandomReporter(), seed=5)
        c = simulate(PATH3, lambda v: RandomReporter(), seed=6)
        assert a.outputs == b.outputs
        assert a.outputs != c.outputs


class TestEmptyGraph:
    def test_zero_nodes(self):
        result = simulate({}, lambda v: Echo())
        assert result.n == 0
        assert result.rounds == 0
        assert result.outputs == {}


class TestClock:
    def test_current_round_visible_to_protocol(self):
        class ClockReader(Protocol):
            def __init__(self):
                self.readings = []

            def run(self, ctx):
                self.readings.append(ctx.current_round())
                yield SendAndReceive({})
                self.readings.append(ctx.current_round())
                yield Sleep(3)
                self.readings.append(ctx.current_round())
                yield SendAndReceive({})

            def output(self):
                return self.readings

        result = simulate({0: []}, lambda v: ClockReader())
        # primed at 0; after round 0 reads 1; wakes at round 4.
        assert result.outputs[0] == [0, 1, 4]

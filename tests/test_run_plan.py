"""RunPlan: the one validated configuration object behind every entry point.

Covers the plan contract end to end: construction-time validation of
every unsupported knob combination, hash/equality semantics, the pinned
canonical JSON form (the promise committed ``BENCH_*.json`` artifacts
rely on), the CLI flag -> plan field mapping, the ``ensure_plan`` shim
shared by the legacy keyword signatures, behavioral equivalence between
the plan path and the legacy kwargs path, and the sixth-knob guarantee
(a subclass with an extra field flows through serialization and entry
points without touching any signature).
"""

import dataclasses

import pytest

from repro import RunPlan, solve_mis
from repro.analysis.complexity import run_trial, sweep
from repro.analysis.tables import build_table1
from repro.cli import build_parser, plan_from_args
from repro.graphs.generators import make_family_graph
from repro.plan import PLAN_VERSION, ensure_plan
from repro.sim.batch import iter_trials, run_trials

#: The pinned canonical serialization (see RunPlan.to_json).  If this
#: golden string moves, every committed artifact config block and every
#: cache keyed by cache_key() silently invalidates -- bump PLAN_VERSION
#: instead of editing the expectation.
GOLDEN_PLAN = RunPlan(algorithm="luby", engine="vectorized", result="arrays")
GOLDEN_JSON = (
    '{"algorithm":"luby","congest_bit_limit":null,'
    '"engine":"vectorized","family":null,"graph_rng":"legacy",'
    '"graph_source":"auto","max_rounds":null,"n":null,"n_jobs":null,'
    '"plan_version":1,"protocol_kwargs":{},"result":"arrays",'
    '"rng":"pernode","seed":0}'
)
GOLDEN_CACHE_KEY = (
    "12dd3206e585e503c44782c53eca6d9aff1d791b9b6e7cad3dfb7ce17f6349cb"
)


class TestConstructionValidation:
    """Every unsupported combination fails at construction, with the
    same suggestion-bearing / unsupported_reason-style messages the
    underlying registries raise."""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            # Unknown names get close-match suggestions.
            (dict(algorithm="lubby"), r"unknown algorithm 'lubby'.*luby"),
            (
                dict(family="gnp", n=8),
                r"unknown graph family 'gnp'.*'gnp-dense', 'gnp-sparse'",
            ),
            (dict(engine="vector"), r"unknown engine 'vector'"),
            (dict(rng="batch"), r"unknown rng stream 'batch'"),
            (
                dict(family="gnp-sparse", graph_rng="v2"),
                r"unknown graph_rng 'v2'",
            ),
            (
                dict(family="gnp-sparse", graph_source="csr"),
                r"unknown graph source 'csr'",
            ),
            (dict(result="dict"), r"unknown result kind 'dict'"),
            # Unsupported engine x instrumentation / kwarg combinations.
            (
                dict(engine="vectorized", congest_bit_limit=8),
                r"vectorized engine cannot run.*congest_bit_limit",
            ),
            (
                dict(engine="vectorized", protocol_kwargs={"bogus": 1}),
                r"protocol kwargs \['bogus'\] have no vectorized path",
            ),
            # Unsupported graph_rng x graph_source x family combinations.
            (
                dict(family="tree", graph_rng="batched"),
                r"family 'tree' has none.*graph_rng='legacy'",
            ),
            (
                dict(
                    family="gnp-sparse",
                    graph_source="networkx",
                    graph_rng="batched",
                ),
                r"cannot replay through the networkx generators",
            ),
            (
                dict(family="tree", graph_source="arrays"),
                r"'tree' has no array-native sampler",
            ),
            # Graph knobs are meaningless without a family to sample.
            (
                dict(graph_source="arrays"),
                r"graph_source='arrays' applies only to family-sampled",
            ),
            (
                dict(graph_rng="batched"),
                r"graph_rng='batched' applies only to family-sampled",
            ),
            # Scalar range checks.
            (dict(n=-1), r"n must be >= 0"),
            (dict(max_rounds=0), r"max_rounds must be >= 1"),
            (dict(congest_bit_limit=0), r"congest_bit_limit must be >= 1"),
            (dict(seed="x"), r"seed must be an int or None"),
            (
                dict(protocol_kwargs={1: "x"}),
                r"protocol kwarg names must be strings",
            ),
        ],
    )
    def test_invalid_combination_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RunPlan(**kwargs)

    @pytest.mark.parametrize("n_jobs", [0, -1, -8])
    def test_nonpositive_n_jobs_rejected_with_fix(self, n_jobs):
        # The error must name the fix: None/1 for sequential, an explicit
        # positive count (os.cpu_count()) for parallel.
        with pytest.raises(ValueError) as excinfo:
            RunPlan(n_jobs=n_jobs)
        message = str(excinfo.value)
        assert f"n_jobs={n_jobs}" in message
        assert "n_jobs=None (or 1)" in message
        assert "os.cpu_count()" in message
        assert "no longer silently coerced" in message

    def test_replace_revalidates(self):
        plan = RunPlan(family="gnp-sparse", engine="auto")
        with pytest.raises(ValueError, match="not a valid worker count"):
            plan.replace(n_jobs=0)
        with pytest.raises(ValueError, match="vectorized engine cannot"):
            plan.replace(engine="vectorized", congest_bit_limit=4)

    def test_valid_plans_construct(self):
        # A plan that constructs is a plan that runs: the full matrix of
        # supported corners goes through without error.
        RunPlan()
        RunPlan(algorithm="ghaffari", engine="vectorized", rng="batched")
        RunPlan(
            family="gnp-sparse",
            n=1000,
            graph_source="arrays",
            graph_rng="batched",
            result="arrays",
            n_jobs=4,
        )
        RunPlan(algorithm="sleeping", protocol_kwargs={"depth": 3})
        RunPlan(engine="generators", congest_bit_limit=32, max_rounds=10)


class TestResolution:
    def test_resolved_engine_and_result(self):
        auto = RunPlan(algorithm="sleeping", engine="auto")
        assert auto.resolved_engine == "vectorized"
        assert auto.resolved_result == "arrays"
        # Generator-only instrumentation flips auto back to generators,
        # and auto-result follows the engine.
        congest = auto.replace(congest_bit_limit=16)
        assert congest.resolved_engine == "generators"
        assert congest.resolved_result == "legacy"

    def test_resolved_graph_source(self):
        assert RunPlan().resolved_graph_source is None
        arrays = RunPlan(family="gnp-sparse")
        assert arrays.resolved_graph_source == "arrays"
        assert RunPlan(family="tree").resolved_graph_source == "networkx"

    def test_build_graph_requires_spec(self):
        with pytest.raises(ValueError, match="no graph spec"):
            RunPlan().build_graph()

    def test_build_graph_sources(self):
        nx_plan = RunPlan(family="gnp-sparse", n=32, graph_source="networkx")
        graph = nx_plan.build_graph()
        assert graph.number_of_nodes() == 32
        arr = nx_plan.replace(graph_source="arrays").build_graph()
        assert arr.n == 32
        # Same seeded edge set across sources under the legacy stream.
        assert sorted(map(tuple, map(sorted, graph.edges()))) == sorted(
            map(tuple, map(sorted, arr.to_networkx().edges()))
        )


class TestHashEquality:
    def test_equal_plans_hash_equal(self):
        a = RunPlan(algorithm="luby", protocol_kwargs={"coin_bias": 0.5})
        b = RunPlan(
            algorithm="luby", protocol_kwargs=(("coin_bias", 0.5),)
        )
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_plans_differ(self):
        assert RunPlan() != RunPlan(rng="batched")
        assert RunPlan() != RunPlan(seed=1)

    def test_usable_as_dict_key(self):
        cache = {RunPlan(): "default", RunPlan(algorithm="luby"): "luby"}
        assert cache[RunPlan()] == "default"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunPlan().algorithm = "luby"


class TestCanonicalSerialization:
    def test_golden_json_pinned(self):
        assert GOLDEN_PLAN.to_json() == GOLDEN_JSON

    def test_golden_cache_key_pinned(self):
        assert GOLDEN_PLAN.cache_key() == GOLDEN_CACHE_KEY

    def test_round_trip_golden(self):
        assert RunPlan.from_json(GOLDEN_JSON) == GOLDEN_PLAN

    def test_round_trip_full_plan(self):
        plan = RunPlan(
            algorithm="sleeping",
            family="gnp-sparse",
            n=512,
            seed=7,
            engine="vectorized",
            rng="batched",
            graph_rng="batched",
            graph_source="arrays",
            result="arrays",
            n_jobs=2,
            protocol_kwargs={"depth": 3},
        )
        clone = RunPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.to_json() == plan.to_json()
        assert clone.cache_key() == plan.cache_key()

    def test_to_dict_carries_version(self):
        assert RunPlan().to_dict()["plan_version"] == PLAN_VERSION

    def test_from_dict_rejects_wrong_version(self):
        data = RunPlan().to_dict()
        data["plan_version"] = PLAN_VERSION + 1
        with pytest.raises(ValueError, match="unsupported plan_version"):
            RunPlan.from_dict(data)
        with pytest.raises(ValueError, match="unsupported plan_version"):
            RunPlan.from_dict({"algorithm": "luby"})  # version missing

    def test_from_dict_rejects_unknown_fields(self):
        data = RunPlan().to_dict()
        data["patience"] = 3
        with pytest.raises(ValueError, match=r"unknown field\(s\) \['patience'\]"):
            RunPlan.from_dict(data)

    def test_from_dict_revalidates(self):
        # A hand-edited serialized plan with an invalid combination is
        # rejected exactly like direct construction.
        data = RunPlan(family="gnp-sparse").to_dict()
        data["graph_rng"] = "batched"
        data["graph_source"] = "networkx"
        with pytest.raises(ValueError, match="cannot replay"):
            RunPlan.from_dict(data)

    def test_default_dtype_is_elided_from_serialization(self):
        """The version-stable evolution rule: fields added after plan
        version 1 shipped serialize only at non-default values, so every
        committed artifact and cache key stays byte-identical."""
        assert "dtype" not in RunPlan().to_dict()
        assert '"dtype"' not in GOLDEN_JSON  # the pin above proves this too

    def test_narrow_dtype_serializes_and_round_trips(self):
        plan = RunPlan(dtype="narrow")
        assert plan.to_dict()["dtype"] == "narrow"
        assert '"dtype":"narrow"' in plan.to_json()
        clone = RunPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.cache_key() == plan.cache_key()
        assert clone.cache_key() != RunPlan().cache_key()

    def test_absent_dtype_deserializes_to_default(self):
        # Plans serialized before the dtype field existed stay loadable.
        assert RunPlan.from_json(GOLDEN_JSON).dtype == "default"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="unknown result dtype"):
            RunPlan(dtype="float16")


class TestCliMapping:
    """Every configuration flag the CLI exposes maps onto exactly one
    RunPlan field via plan_from_args."""

    #: argparse dest -> RunPlan field, for every knob flag any subcommand
    #: defines.  A new CLI knob must be added here (and to RunPlan) or
    #: test_every_cli_knob_is_a_plan_field fails.
    DEST_TO_FIELD = {
        "algorithm": "algorithm",
        "family": "family",
        "n": "n",
        "seed": "seed",
        "engine": "engine",
        "rng": "rng",
        "graph_source": "graph_source",
        "graph_rng": "graph_rng",
        "result": "result",
        "dtype": "dtype",
        "jobs": "n_jobs",
    }

    #: Per-command dests that configure the *grid*, the *rendering*, the
    #: sweep *orchestration* (manifest/frontier/resume flags schedule
    #: which plans run where), or the *transport* (--server routing and
    #: the serve subcommand's pool/cache knobs) -- they never change what
    #: a trial measures, so they stay deliberately outside the plan.
    NON_PLAN_DESTS = {
        "command", "sizes", "trials", "measure", "markdown", "max_depth",
        "output", "manifest", "sweep_dir", "resume", "budget_s",
        "claim_ttl", "emit_manifest", "server", "no_fallback",
        "host", "port", "workers", "max_queue", "cache_size", "deadline_s",
        "profile_phases",
    }

    def _subparsers(self):
        parser = build_parser()
        actions = [
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        ]
        return parser._subparsers._group_actions[0].choices

    def test_every_cli_knob_is_a_plan_field(self):
        plan_fields = {f.name for f in dataclasses.fields(RunPlan)}
        for name, sub in self._subparsers().items():
            if name == "report":
                continue  # composite command; delegates grid params only
            for action in sub._actions:
                if action.dest in ("help",) or action.dest in self.NON_PLAN_DESTS:
                    continue
                assert action.dest in self.DEST_TO_FIELD, (
                    f"CLI flag --{action.dest} of '{name}' is not mapped "
                    f"onto a RunPlan field; extend plan_from_args and "
                    f"DEST_TO_FIELD"
                )
                assert self.DEST_TO_FIELD[action.dest] in plan_fields

    def test_plan_from_args_round_trips_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--algorithm", "sleeping",
                "--family", "gnp-dense",
                "--seed", "7",
                "--engine", "vectorized",
                "--rng", "batched",
                "--graph-source", "arrays",
                "--graph-rng", "batched",
                "--result", "arrays",
                "--jobs", "2",
                "--sizes", "32",
            ]
        )
        plan = plan_from_args(args)
        assert plan == RunPlan(
            algorithm="sleeping",
            family="gnp-dense",
            seed=7,
            engine="vectorized",
            rng="batched",
            graph_source="arrays",
            graph_rng="batched",
            result="arrays",
            n_jobs=2,
        )

    def test_flagless_commands_keep_generator_defaults(self):
        # tree/energy expose no engine/result flags; the plan falls back
        # to the behavior they always had (generator engine, legacy
        # result -- the tree needs result.protocols).
        args = build_parser().parse_args(["tree", "--n", "16"])
        plan = plan_from_args(args)
        assert plan.engine == "generators"
        assert plan.result == "legacy"

    def test_cli_rejects_bad_combination_before_running(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep", "--family", "tree", "--graph-rng", "batched",
                "--sizes", "16", "--trials", "1",
            ]
        )
        assert code == 2
        assert "array-native" in capsys.readouterr().err


class TestEnsurePlanShim:
    def test_plan_type_checked(self):
        graph = make_family_graph("gnp-sparse", 16, seed=0)
        with pytest.raises(TypeError, match="expects a RunPlan"):
            solve_mis(graph, plan={"algorithm": "luby"})

    def test_plan_plus_loose_knobs_rejected(self):
        graph = make_family_graph("gnp-sparse", 16, seed=0)
        plan = RunPlan(algorithm="luby", engine="generators", result="legacy")
        with pytest.raises(ValueError, match=r"\['engine'\].*plan.replace"):
            solve_mis(graph, plan=plan, engine="vectorized")

    def test_iter_trials_validates_eagerly(self):
        # The clash surfaces at call time, not at first next().
        plan = RunPlan(algorithm="luby")
        with pytest.raises(ValueError, match="plan= and explicit knob"):
            iter_trials(
                lambda seed: make_family_graph("gnp-sparse", 8, seed=seed),
                seeds=[0],
                plan=plan,
                rng="batched",
            )

    def test_sweep_rejects_conflicting_algorithm(self):
        plan = RunPlan(algorithm="luby", family="gnp-sparse")
        with pytest.raises(ValueError, match=r"plan\.replace\(algorithm="):
            run_trial(
                make_family_graph("gnp-sparse", 8, seed=0),
                "sleeping",
                plan=RunPlan(algorithm="luby"),
            )
        # run_trial tolerates a *matching* positional algorithm; sweep
        # treats any loose algorithm next to plan= as a clash.
        result, trial = run_trial(
            make_family_graph("gnp-sparse", 8, seed=0),
            "luby",
            plan=RunPlan(algorithm="luby"),
        )
        assert trial.valid
        with pytest.raises(ValueError, match="plan= and explicit knob"):
            sweep("luby", sizes=(8,), plan=plan, trials=1)
        assert sweep(sizes=(8,), plan=plan, trials=1)

    def test_family_required_for_grid_entry_points(self):
        with pytest.raises(ValueError, match="family"):
            sweep(sizes=(8,), plan=RunPlan(algorithm="luby"), trials=1)
        with pytest.raises(ValueError, match="family"):
            build_table1(sizes=(8,), plan=RunPlan(), trials=1)


class TestPlanLegacyEquivalence:
    """The plan path and the legacy kwargs path are the same execution:
    bit-for-bit identical results (strictly-no-behavior-change gate)."""

    def test_solve_mis_equivalent(self):
        graph = make_family_graph("gnp-sparse", 64, seed=3)
        legacy = solve_mis(graph, "sleeping", seed=5, engine="vectorized")
        planned = solve_mis(
            graph,
            plan=RunPlan(
                algorithm="sleeping",
                seed=5,
                engine="vectorized",
                result="legacy",
            ),
        )
        assert legacy.mis == planned.mis
        assert legacy.rounds == planned.rounds

    def test_run_trials_equivalent(self):
        factory = lambda seed: make_family_graph("gnp-sparse", 32, seed=seed)
        legacy = run_trials(
            factory, "luby", seeds=range(3), engine="vectorized",
            rng="batched",
        )
        planned = run_trials(
            factory,
            seeds=range(3),
            plan=RunPlan(
                algorithm="luby", engine="vectorized", rng="batched",
                result="legacy",
            ),
        )
        for r1, r2 in zip(legacy, planned):
            assert r1.mis == r2.mis
            assert r1.rounds == r2.rounds

    def test_sweep_equivalent(self):
        legacy = sweep("luby", "gnp-sparse", sizes=(16, 32), trials=2)
        planned = sweep(
            sizes=(16, 32),
            plan=RunPlan(algorithm="luby", family="gnp-sparse"),
            trials=2,
        )
        assert legacy == planned

    def test_build_table1_equivalent(self):
        legacy = build_table1(
            sizes=(16,), trials=1, algorithms=("luby", "sleeping")
        )
        planned = build_table1(
            sizes=(16,),
            plan=RunPlan(family="gnp-sparse"),
            trials=1,
            algorithms=("luby", "sleeping"),
        )
        assert legacy.rows == planned.rows


@dataclasses.dataclass(frozen=True)
class PlanWithPatience(RunPlan):
    """The sixth-knob demonstration: one new field, nothing else edited."""

    patience: int = 3


class TestSixthKnob:
    """Adding a knob means adding a field -- serialization and entry
    points iterate dataclasses.fields, so nothing else changes."""

    def test_subclass_validates_and_hashes(self):
        plan = PlanWithPatience(algorithm="luby", patience=5)
        assert plan.patience == 5
        assert hash(plan) == hash(PlanWithPatience(algorithm="luby", patience=5))
        with pytest.raises(ValueError, match="unknown algorithm"):
            PlanWithPatience(algorithm="nope")

    def test_subclass_serializes_round_trip(self):
        plan = PlanWithPatience(family="gnp-sparse", patience=7)
        data = plan.to_dict()
        assert data["patience"] == 7
        clone = PlanWithPatience.from_json(plan.to_json())
        assert clone == plan
        # The base class refuses the extra field instead of dropping it.
        with pytest.raises(ValueError, match="unknown field"):
            RunPlan.from_dict(data)

    def test_subclass_flows_through_entry_points(self):
        plan = PlanWithPatience(algorithm="luby", family="gnp-sparse")
        rows = sweep(sizes=(16,), plan=plan, trials=1)
        assert rows == sweep(
            sizes=(16,),
            plan=RunPlan(algorithm="luby", family="gnp-sparse"),
            trials=1,
        )
        graph = make_family_graph("gnp-sparse", 16, seed=0)
        result = solve_mis(graph, plan=PlanWithPatience(algorithm="luby"))
        assert result.mis

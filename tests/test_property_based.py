"""Property-based tests (hypothesis) on core invariants.

Strategy: generate random graph shapes and seeds and assert the invariants
that the paper proves always (not just w.h.p.) or that our implementation
must maintain unconditionally: MIS validity of the greedy oracle, validity
of the phased baselines, rank-order laws, schedule arithmetic, payload bit
monotonicity, and the Corollary 1 equivalence conditioned on distinct ranks.
"""

import math

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import solve_mis
from repro.baselines.seq_greedy import greedy_mis, lexicographically_first_mis
from repro.core import schedule
from repro.core.ranks import k_rank, ranks_unique
from repro.graphs import is_maximal_independent_set
from repro.sim.messages import payload_bits

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_nodes=24):
    """A random graph as (n, edge set) with reproducible structure."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible) if possible else st.nothing(),
            unique=True,
            max_size=len(possible),
        )
    ) if possible else []
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


class TestGreedyOracleProperties:
    @SLOW
    @given(random_graphs(), st.randoms(use_true_random=False))
    def test_greedy_always_mis(self, graph, rng):
        order = list(graph.nodes())
        rng.shuffle(order)
        mis = greedy_mis(graph, order)
        assert is_maximal_independent_set(graph, mis)

    @SLOW
    @given(random_graphs())
    def test_first_in_order_always_joins(self, graph):
        if graph.number_of_nodes() == 0:
            return
        order = sorted(graph.nodes())
        assert order[0] in greedy_mis(graph, order)

    @SLOW
    @given(random_graphs(), st.integers(min_value=0, max_value=10**6))
    def test_priority_map_equivalent_to_sorted_order(self, graph, salt):
        priority = {v: (v * 2654435761 + salt) % 997 for v in graph.nodes()}
        by_map = lexicographically_first_mis(graph, priority)
        order = sorted(
            graph.nodes(), key=lambda v: (priority[v], v), reverse=True
        )
        assert by_map == greedy_mis(graph, order)


class TestAlgorithmProperties:
    @SLOW
    @given(random_graphs(max_nodes=18), st.integers(min_value=0, max_value=50))
    def test_baselines_always_valid(self, graph, seed):
        for algorithm in ("luby", "greedy", "ghaffari"):
            result = solve_mis(graph, algorithm=algorithm, seed=seed)
            assert is_maximal_independent_set(graph, result.mis)

    @SLOW
    @given(random_graphs(max_nodes=16), st.integers(min_value=0, max_value=50))
    def test_sleeping_valid_when_ranks_distinct(self, graph, seed):
        result = solve_mis(graph, algorithm="sleeping", seed=seed)
        bits_of = {v: p.x_bits for v, p in result.protocols.items()}
        if ranks_unique(bits_of):
            assert is_maximal_independent_set(graph, result.mis)
            # Corollary 1 under the same precondition.
            from repro.analysis import check_lexicographically_first

            assert check_lexicographically_first(result)

    @SLOW
    @given(random_graphs(max_nodes=16), st.integers(min_value=0, max_value=50))
    def test_fast_sleeping_valid(self, graph, seed):
        result = solve_mis(graph, algorithm="fast-sleeping", seed=seed)
        bits_of = {v: p.x_bits for v, p in result.protocols.items()}
        ranks = {
            v: (bits_of[v], getattr(result.protocols[v], "base_rank", None))
            for v in bits_of
        }
        distinct = len(set(map(str, ranks.values()))) == len(ranks)
        if distinct and not any(
            p.base_truncated for p in result.protocols.values()
        ):
            assert is_maximal_independent_set(graph, result.mis)

    @SLOW
    @given(
        random_graphs(max_nodes=14),
        st.integers(min_value=0, max_value=20),
    )
    def test_sleeping_wall_clock_is_schedule(self, graph, seed):
        n = graph.number_of_nodes()
        if n == 0:
            return
        result = solve_mis(graph, algorithm="sleeping", seed=seed)
        assert result.rounds == schedule.call_duration(
            schedule.recursion_depth(n)
        )


class TestRankProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12),
    )
    def test_rank_comparison_antisymmetric(self, a, b):
        k = min(len(a), len(b))
        ra, rb = k_rank(a, k), k_rank(b, k)
        assert not (ra < rb and rb < ra)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12))
    def test_rank_length(self, bits):
        for k in range(len(bits) + 1):
            assert len(k_rank(bits, k)) == k + 1

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=12))
    def test_rank_prefix_consistency(self, bits):
        # r_k determines r_{k-1} by dropping the leading bit.
        k = len(bits)
        assert k_rank(bits, k)[1:] == k_rank(bits, k - 1)


class TestScheduleProperties:
    @given(st.integers(min_value=0, max_value=30))
    def test_duration_recurrence(self, k):
        if k > 0:
            assert schedule.call_duration(k) == 2 * schedule.call_duration(
                k - 1
            ) + 3

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=1000),
    )
    def test_fast_duration_recurrence(self, k, base):
        if k > 0:
            assert schedule.fast_call_duration(
                k, base
            ) == 2 * schedule.fast_call_duration(k - 1, base) + 3

    @given(st.integers(min_value=2, max_value=10**9))
    def test_depths_ordered(self, n):
        assert schedule.truncated_depth(n) <= schedule.recursion_depth(n)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_greedy_rounds_logarithmic(self, n):
        rounds = schedule.greedy_rounds(n)
        assert rounds >= 8
        assert rounds <= 8 * (math.ceil(math.log2(max(n, 2))) + 1)


class TestPayloadProperties:
    @given(st.integers())
    def test_int_bits_match_bit_length(self, value):
        assert payload_bits(value) == max(value.bit_length(), 1) + 2

    @given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=8))
    def test_tuple_bits_sum(self, values):
        total = sum(payload_bits(v) + 4 for v in values)
        assert payload_bits(tuple(values)) == total

    @given(st.text(max_size=40))
    def test_str_bits_linear(self, text):
        assert payload_bits(text) == 8 * len(text) + 8

"""Tests for Algorithm 2 (Fast-SleepingMIS): correctness, base cases, schedule."""

import networkx as nx
import pytest

from repro.analysis import base_level_participants, verify_schedule
from repro.core import FastSleepingMIS, schedule
from repro.graphs import assert_valid_mis
from repro.sim import Simulator

from helpers import run_mis


class TestCorrectness:
    def test_valid_mis_on_corner_cases(self, small_graph):
        result = run_mis(small_graph, "fast-sleeping", seed=1)
        assert_valid_mis(small_graph, result.mis)

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_mis_many_seeds(self, gnp60, seed):
        result = run_mis(gnp60, "fast-sleeping", seed=seed)
        assert_valid_mis(gnp60, result.mis)

    def test_every_node_decides(self, gnp60):
        result = run_mis(gnp60, "fast-sleeping", seed=2)
        assert result.undecided == frozenset()

    def test_no_base_truncation_at_default_constant(self, gnp60):
        result = run_mis(gnp60, "fast-sleeping", seed=2)
        assert not any(
            p.base_truncated for p in result.protocols.values()
        )

    def test_larger_graph(self):
        graph = nx.gnp_random_graph(400, 0.02, seed=9)
        result = run_mis(graph, "fast-sleeping", seed=9)
        assert_valid_mis(graph, result.mis)

    def test_two_node_graph_degenerates_to_greedy(self):
        # truncated_depth(2) == 0: the whole run is one greedy base case.
        result = run_mis(nx.path_graph(2), "fast-sleeping", seed=1)
        assert len(result.mis) == 1
        assert result.rounds == schedule.greedy_rounds(2)


class TestSchedule:
    def test_total_rounds(self):
        graph = nx.gnp_random_graph(50, 0.1, seed=4)
        result = run_mis(graph, "fast-sleeping", seed=4)
        depth = schedule.truncated_depth(50)
        window = schedule.greedy_rounds(50)
        assert result.rounds == schedule.fast_call_duration(depth, window)

    def test_every_call_matches_schedule(self, gnp60):
        result = run_mis(gnp60, "fast-sleeping", seed=5)
        window = schedule.greedy_rounds(60)
        violations = verify_schedule(
            result, lambda k: schedule.fast_call_duration(k, window)
        )
        assert violations == []

    def test_polylog_versus_algorithm1(self):
        # The whole point of Algorithm 2: exponentially shorter wall clock.
        n = 100
        fast = schedule.fast_call_duration(
            schedule.truncated_depth(n), schedule.greedy_rounds(n)
        )
        slow = schedule.call_duration(schedule.recursion_depth(n))
        assert fast * 100 < slow


class TestGreedyBaseCase:
    def _run_forcing_base(self, n=40, seed=3, depth=1):
        # Depth 1 forces nearly everyone into greedy base cases.
        graph = nx.gnp_random_graph(n, 0.12, seed=seed)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(depth=depth), seed=seed
        ).run()
        return graph, result

    def test_forced_base_cases_still_correct(self):
        graph, result = self._run_forcing_base()
        assert_valid_mis(graph, result.mis)

    def test_base_participants_have_ranks(self):
        _, result = self._run_forcing_base()
        for protocol in result.protocols.values():
            reached_base = any(rec.k == 0 for rec in protocol.calls)
            assert (protocol.base_rank is not None) == reached_base

    def test_base_participation_counted(self):
        _, result = self._run_forcing_base()
        assert base_level_participants(result) > 0

    def test_depth_zero_is_pure_greedy(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=6)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(depth=0), seed=6
        ).run()
        assert_valid_mis(graph, result.mis)
        assert result.rounds == schedule.greedy_rounds(30)

    def test_tiny_greedy_constant_can_truncate(self):
        # With a 1-round window the greedy cannot possibly finish on a
        # non-trivial graph: the Monte Carlo failure path must trigger
        # and be reported rather than crash.
        graph = nx.complete_graph(30)

        class OneRoundWindow(FastSleepingMIS):
            def _prepare(self, ctx):
                self.base_rounds = 1

        result = Simulator(
            graph, lambda v: OneRoundWindow(depth=0), seed=2
        ).run()
        assert any(p.base_truncated for p in result.protocols.values())
        assert len(result.undecided) > 0

    def test_greedy_constant_parameter(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=6)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(greedy_constant=12), seed=6
        ).run()
        assert_valid_mis(graph, result.mis)
        window = schedule.greedy_rounds(30, constant=12)
        depth = schedule.truncated_depth(30)
        assert result.rounds == schedule.fast_call_duration(depth, window)


class TestAwakeBounds:
    def test_awake_is_logarithmic_not_linear(self):
        graph = nx.gnp_random_graph(300, 0.03, seed=7)
        result = run_mis(graph, "fast-sleeping", seed=7)
        # Worst-case awake = 3 per level + O(log n) in the base window.
        depth = schedule.truncated_depth(300)
        window = schedule.greedy_rounds(300)
        assert result.worst_case_awake_complexity <= 3 * (depth + 1) + window

    def test_base_participants_sleep_out_the_window(self):
        # Wall clock charges the full window to everyone, but decided
        # base participants sleep most of it.
        graph = nx.gnp_random_graph(40, 0.12, seed=3)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(depth=1), seed=3
        ).run()
        window = schedule.greedy_rounds(40)
        for v, protocol in result.protocols.items():
            if protocol.base_rank is not None:
                assert result.node_stats[v].awake_rounds < window + 6


class TestDeterminism:
    def test_same_seed_same_mis(self, gnp60):
        a = run_mis(gnp60, "fast-sleeping", seed=11)
        b = run_mis(gnp60, "fast-sleeping", seed=11)
        assert a.mis == b.mis

    def test_congest_budget_respected(self, gnp60):
        import math

        limit = 64 * math.ceil(math.log2(60))
        result = run_mis(
            gnp60, "fast-sleeping", seed=3, congest_bit_limit=limit
        )
        assert_valid_mis(gnp60, result.mis)

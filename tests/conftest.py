"""Shared fixtures for the test suite.

The importable helpers (``run_mis``, ``GRAPH_CASES``) live in
``tests/helpers.py`` -- import them with ``from helpers import ...``, never
``from conftest import ...`` (conftest modules are pytest plumbing and the
name can be shadowed by other conftest files in the repository).
"""

from __future__ import annotations

import networkx as nx
import pytest

from helpers import GRAPH_BUILDERS, GRAPH_CASES, GRAPH_IDS, run_mis  # noqa: F401


@pytest.fixture(params=GRAPH_BUILDERS, ids=GRAPH_IDS)
def small_graph(request):
    """Parametrized fixture yielding each corner-case graph."""
    return request.param()


@pytest.fixture
def gnp60():
    """A fixed medium random graph for single-graph tests."""
    return nx.gnp_random_graph(60, 0.08, seed=3)

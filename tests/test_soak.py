"""Larger-scale soak tests: the simulator at thousands of nodes.

These guard the fast-forward machinery and the overall O(awake work)
simulation cost: a wall clock of 10^11 rounds must simulate in seconds.
"""

import time

import networkx as nx
import pytest

from repro.api import solve_mis
from repro.core import schedule
from repro.graphs import assert_valid_mis


class TestScale:
    def test_algorithm1_at_n2000(self):
        graph = nx.gnp_random_graph(2000, 8.0 / 2000, seed=1)
        start = time.monotonic()
        result = solve_mis(graph, algorithm="sleeping", seed=1)
        elapsed = time.monotonic() - start
        assert_valid_mis(graph, result.mis)
        # Wall clock is ~3 * 2^33 rounds; simulation must stay fast.
        assert result.rounds == schedule.call_duration(
            schedule.recursion_depth(2000)
        )
        assert result.rounds > 10**9
        assert elapsed < 30.0
        assert result.node_averaged_awake_complexity < 10.0

    def test_algorithm2_at_n4000(self):
        graph = nx.gnp_random_graph(4000, 8.0 / 4000, seed=2)
        start = time.monotonic()
        result = solve_mis(graph, algorithm="fast-sleeping", seed=2)
        elapsed = time.monotonic() - start
        assert_valid_mis(graph, result.mis)
        assert elapsed < 30.0
        assert result.node_averaged_awake_complexity < 10.0
        assert result.worst_case_awake_complexity < 3 * (
            schedule.truncated_depth(4000) + 1
        ) + schedule.greedy_rounds(4000)

    def test_dense_graph_at_n1000(self):
        # ~250k edges: message volume is the bottleneck here.
        graph = nx.gnp_random_graph(1000, 0.5, seed=3)
        result = solve_mis(graph, algorithm="fast-sleeping", seed=3)
        assert_valid_mis(graph, result.mis)

    @pytest.mark.parametrize("algorithm", ["luby", "greedy"])
    def test_baselines_at_n3000(self, algorithm):
        graph = nx.gnp_random_graph(3000, 8.0 / 3000, seed=4)
        result = solve_mis(graph, algorithm=algorithm, seed=4)
        assert_valid_mis(graph, result.mis)
        assert result.rounds <= 3 * 20  # O(log n) phases

"""Trace-level verification of the model properties the algorithms rely on.

The correctness of Algorithm 1's isolated-node detection rests on a global
scheduling invariant the paper states informally: *at any round, the only
awake nodes are the participants of the currently executing recursive
call*.  These tests reconstruct per-round awake sets from an execution
trace and check that invariant (and its consequences) directly.
"""

import networkx as nx

from repro.analysis.lemmas import aggregate_calls
from repro.core import SleepingMIS
from repro.sim import Simulator, Trace


def traced_run(n=24, p=0.15, seed=4):
    graph = nx.gnp_random_graph(n, p, seed=seed)
    trace = Trace(max_events=2_000_000)
    result = Simulator(graph, lambda v: SleepingMIS(), seed=seed, trace=trace).run()
    return graph, trace, result


def awake_rounds_per_node(trace):
    """node -> set of rounds in which it sent at least one message."""
    rounds = {}
    for event in trace.by_kind("send"):
        rounds.setdefault(event.node, set()).add(event.round)
    return rounds


class TestGlobalSchedulingInvariant:
    def test_call_communication_rounds_have_only_participants_awake(self):
        graph, trace, result = traced_run()
        calls = aggregate_calls(result)
        sends = awake_rounds_per_node(trace)

        # Map each round in which anybody sent to the set of senders.
        senders_by_round = {}
        for v, rounds in sends.items():
            for r in rounds:
                senders_by_round.setdefault(r, set()).add(v)

        # The first isolated-node detection of a call happens at its start
        # round; every participant sends and *only* participants send.
        for path, agg in calls.items():
            if agg.k < 1:
                continue
            detection_round = agg.start_round
            assert senders_by_round.get(detection_round) == agg.members, path

    def test_sync_rounds_synchronized(self):
        # All members of a call send their inMIS in the same two rounds
        # (sync + second detection), located right after the left window.
        graph, trace, result = traced_run()
        calls = aggregate_calls(result)
        sends = awake_rounds_per_node(trace)
        from repro.core import schedule

        for path, agg in calls.items():
            if agg.k < 1:
                continue
            sync_round = agg.start_round + 1 + schedule.call_duration(agg.k - 1)
            second_round = sync_round + 1
            for v in agg.members:
                assert sync_round in sends[v], (path, v)
                assert second_round in sends[v], (path, v)

    def test_each_node_sends_exactly_three_rounds_per_internal_call(self):
        graph, trace, result = traced_run()
        sends = awake_rounds_per_node(trace)
        for v, protocol in result.protocols.items():
            internal_calls = sum(1 for rec in protocol.calls if rec.k >= 1)
            assert len(sends.get(v, set())) == 3 * internal_calls

    def test_no_sends_outside_own_call_windows(self):
        graph, trace, result = traced_run()
        sends = awake_rounds_per_node(trace)
        for v, protocol in result.protocols.items():
            windows = [
                (rec.start_round, rec.end_round)
                for rec in protocol.calls
                if rec.k >= 1
            ]
            for r in sends.get(v, set()):
                assert any(start <= r < end for start, end in windows), (v, r)


class TestMessageVisibility:
    def test_presence_probe_reveals_exactly_call_neighborhood(self):
        # For every internal call and participant v, the set of messages v
        # received at the detection round equals its graph-neighbors within
        # the call's member set -- the G[U] neighborhood.
        graph, trace, result = traced_run(n=20, p=0.25, seed=9)
        calls = aggregate_calls(result)

        received = {}
        for event in trace.by_kind("send"):
            received.setdefault((event.round, event.data["to"]), set()).add(
                event.node
            )

        for path, agg in calls.items():
            if agg.k < 1:
                continue
            detection = agg.start_round
            for v in agg.members:
                got = {
                    u
                    for u in received.get((detection, v), set())
                    if u in agg.members
                }
                expected = set(graph.adj[v]) & agg.members
                assert got == expected, (path, v)

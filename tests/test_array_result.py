"""The array-backed result type (repro.sim.array_result.ArrayRunResult).

``result="arrays"`` must be a representation change only: every measure,
every per-node statistic reachable through the lazy legacy view, and every
downstream consumer (Trial rows, energy, validation, CSV) has to agree
with the legacy ``RunResult`` bit for bit (floats: up to summation order
for energy only).  These tests pin that equivalence across engines,
algorithms, RNG streams, and the batch/sweep plumbing.
"""

from dataclasses import asdict

import numpy as np
import pytest

from helpers import GRAPH_CASES, run_mis

from repro.analysis.complexity import run_trial, trial_from_result
from repro.api import solve_mis
from repro.graphs.arrays import make_family_arrays
from repro.graphs.generators import make_family_graph
from repro.sim.array_result import (
    DTYPE_KINDS,
    RESULT_KINDS,
    ArrayRunResult,
    narrow_column,
    resolve_dtype_kind,
    resolve_result_kind,
    result_column,
    validate_result_kind,
)
from repro.sim.batch import run_trials
from repro.sim.energy import DEFAULT_MODEL

ALGORITHMS = (
    "sleeping", "fast-sleeping", "luby", "greedy", "ghaffari", "abi"
)

MEASURES = (
    "node_averaged_awake_complexity",
    "worst_case_awake_complexity",
    "node_averaged_round_complexity",
    "worst_case_round_complexity",
    "total_messages",
    "total_bits",
    "total_awake_rounds",
    "node_averaged_decision_round",
    "all_finished",
)


def assert_results_agree(legacy, arrays) -> None:
    """Every public observable of the two result types must match."""
    assert isinstance(arrays, ArrayRunResult)
    assert arrays.n == legacy.n
    assert arrays.rounds == legacy.rounds
    assert arrays.seed == legacy.seed
    for measure in MEASURES:
        assert getattr(arrays, measure) == getattr(legacy, measure), measure
    assert arrays.mis == legacy.mis
    assert arrays.undecided == legacy.undecided
    assert arrays.summary() == legacy.summary()
    assert arrays.outputs == legacy.outputs
    assert arrays.adjacency == legacy.adjacency
    assert arrays.protocols == legacy.protocols
    assert set(arrays.node_stats) == set(legacy.node_stats)
    for v in legacy.node_stats:
        assert asdict(arrays.node_stats[v]) == asdict(legacy.node_stats[v]), v


class TestVectorizedEnginesBuildArrays:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("rng", ["pernode", "batched"])
    @pytest.mark.parametrize(
        "builder", [b for _, b in GRAPH_CASES], ids=[n for n, _ in GRAPH_CASES]
    )
    def test_arrays_equal_legacy(self, builder, algorithm, rng):
        graph = builder()
        legacy = run_mis(graph, algorithm, seed=1, engine="vectorized", rng=rng)
        arrays = run_mis(
            graph, algorithm, seed=1, engine="vectorized", rng=rng,
            result="arrays",
        )
        assert_results_agree(legacy, arrays)

    def test_arrays_are_copies_not_scratch_views(self):
        from repro.sim.batch import make_vectorized_engine
        from repro.sim.fast_engine import EngineScratch

        graph = make_family_graph("gnp-sparse", 60, seed=2)
        scratch = EngineScratch()
        first = make_vectorized_engine(
            graph, "sleeping", seed=1, scratch=scratch, result="arrays"
        ).run()
        snapshot = first.awake_rounds.copy()
        # A second trial on the same scratch must not clobber the first
        # result's columns.
        make_vectorized_engine(
            graph, "sleeping", seed=99, scratch=scratch, result="arrays"
        ).run()
        np.testing.assert_array_equal(first.awake_rounds, snapshot)


class TestGeneratorConversion:
    @pytest.mark.parametrize("algorithm", ["ghaffari", "abi", "sleeping"])
    def test_from_run_result_round_trip(self, algorithm):
        graph = make_family_graph("gnp-sparse", 80, seed=4)
        legacy = solve_mis(graph, algorithm, seed=4, engine="generators")
        arrays = ArrayRunResult.from_run_result(legacy)
        assert_results_agree(legacy, arrays)
        # The conversion keeps the original as the cached legacy view,
        # protocol instances included (lossless for per-call analyses).
        assert arrays.to_run_result() is legacy
        assert arrays.protocols is legacy.protocols

    def test_solve_mis_result_arrays_on_generator_engine(self):
        graph = make_family_graph("gnp-sparse", 60, seed=1)
        result = solve_mis(
            graph, "ghaffari", seed=1, engine="generators", result="arrays"
        )
        assert isinstance(result, ArrayRunResult)
        assert result.is_valid_mis()


class TestResultKindResolution:
    def test_kinds(self):
        assert RESULT_KINDS == ("auto", "legacy", "arrays")
        for kind in RESULT_KINDS:
            assert validate_result_kind(kind) == kind
        with pytest.raises(ValueError, match="unknown result kind"):
            validate_result_kind("dataframe")

    def test_auto_follows_engine(self):
        assert resolve_result_kind("auto", "vectorized") == "arrays"
        assert resolve_result_kind("auto", "generators") == "legacy"
        assert resolve_result_kind("legacy", "vectorized") == "legacy"
        assert resolve_result_kind("arrays", "generators") == "arrays"

    def test_solve_mis_auto_kinds(self):
        from repro.sim.trace import make_trace

        graph = make_family_graph("gnp-sparse", 40, seed=0)
        vec = solve_mis(graph, "sleeping", engine="auto", result="auto")
        ghf = solve_mis(graph, "ghaffari", engine="auto", result="auto")
        # A generator-only feature (tracing) still drops auto back to the
        # generator engine, and result="auto" follows it to legacy.
        gen = solve_mis(
            graph, "ghaffari", engine="auto", result="auto",
            trace=make_trace(enabled=True),
        )
        assert isinstance(vec, ArrayRunResult)
        assert isinstance(ghf, ArrayRunResult)  # ghaffari is vectorized now
        assert not isinstance(gen, ArrayRunResult)


class TestDownstreamConsumers:
    def test_trial_rows_identical(self):
        graph = make_family_arrays("gnp-sparse", 120, seed=9)
        legacy_run, legacy_trial = run_trial(
            graph, "fast-sleeping", seed=9, engine="vectorized",
            result="legacy",
        )
        arrays_run, arrays_trial = run_trial(
            graph, "fast-sleeping", seed=9, engine="vectorized",
            result="arrays",
        )
        assert isinstance(arrays_run, ArrayRunResult)
        for field in (
            "n", "seed", "node_averaged_awake", "worst_case_awake",
            "node_averaged_rounds", "worst_case_rounds",
            "total_messages", "total_bits", "valid", "undecided",
        ):
            assert getattr(arrays_trial, field) == getattr(legacy_trial, field)
        assert arrays_trial.total_energy == pytest.approx(
            legacy_trial.total_energy
        )

    def test_vectorized_validation_agrees_with_dict_oracle(self):
        from repro.graphs.validation import (
            is_maximal_independent_set,
            is_maximal_independent_set_arrays,
        )

        rng = np.random.default_rng(7)
        for name, builder in GRAPH_CASES:
            from repro.sim.fast_engine import GraphArrays

            arrays = GraphArrays(builder())
            for _ in range(4):
                mask = rng.random(arrays.n) < 0.4
                members = {arrays.node_ids[i] for i in np.flatnonzero(mask)}
                assert is_maximal_independent_set_arrays(
                    arrays, mask
                ) == is_maximal_independent_set(arrays.adjacency, members), name

    def test_energy_model_tallies_arrays(self):
        graph = make_family_graph("gnp-sparse", 100, seed=3)
        legacy = solve_mis(graph, "sleeping", seed=3, engine="vectorized")
        arrays = solve_mis(
            graph, "sleeping", seed=3, engine="vectorized", result="arrays"
        )
        assert DEFAULT_MODEL.total_energy(arrays) == pytest.approx(
            DEFAULT_MODEL.total_energy(legacy)
        )
        assert DEFAULT_MODEL.average_energy(arrays) == pytest.approx(
            DEFAULT_MODEL.average_energy(legacy)
        )

    def test_parallel_chunks_ship_graph_arrays_without_dict(self):
        # The process-pool path must carry GraphArrays payloads with the
        # lazy adjacency still unbuilt (pickling edge arrays, not a dict),
        # and workers must produce the same results as the sequential
        # path.  On a 1-CPU sandbox the pool may fall back to sequential
        # execution with a warning -- results must be identical either way.
        import pickle
        import warnings

        ga = make_family_arrays("gnp-sparse", 120, seed=6)
        assert ga._adjacency is None
        clone = pickle.loads(pickle.dumps(ga))
        assert clone._adjacency is None  # lazy view survives the wire
        np.testing.assert_array_equal(clone.src, ga.src)
        # Even a materialized adjacency is dropped from the pickle and
        # rebuilt identically on demand at the receiving end.
        materialized = ga.adjacency
        wire_clone = pickle.loads(pickle.dumps(ga))
        assert wire_clone._adjacency is None
        assert wire_clone.adjacency == materialized
        ga._adjacency = None  # restore laziness for the pool assertions
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = run_trials(
                lambda seed: ga, "sleeping", seeds=range(4),
                engine="auto", result="arrays", n_jobs=2,
            )
        sequential = run_trials(
            lambda seed: ga, "sleeping", seeds=range(4),
            engine="auto", result="arrays",
        )
        assert ga._adjacency is None  # still never materialized
        for p, s in zip(parallel, sequential):
            assert p.mis == s.mis
            assert p.summary() == s.summary()

    def test_batch_runner_yields_arrays(self):
        graph = make_family_arrays("gnp-sparse", 90, seed=5)
        results = run_trials(
            graph, "sleeping", seeds=range(3), engine="auto", result="arrays"
        )
        assert len(results) == 3
        assert all(isinstance(r, ArrayRunResult) for r in results)
        legacy = run_trials(
            graph, "sleeping", seeds=range(3), engine="auto", result="legacy"
        )
        for a, b in zip(results, legacy):
            assert_results_agree(b, a)

    def test_trial_from_result_accepts_either(self):
        graph = make_family_graph("gnp-sparse", 70, seed=2)
        legacy = solve_mis(graph, "luby", seed=2, engine="vectorized")
        arrays = solve_mis(
            graph, "luby", seed=2, engine="vectorized", result="arrays"
        )
        row_a = trial_from_result(arrays, "luby", seed=2)
        row_b = trial_from_result(legacy, "luby", seed=2)
        assert row_a.valid == row_b.valid is True
        assert row_a.node_averaged_awake == row_b.node_averaged_awake


class TestExactSummation:
    """Column reductions must not wrap where legacy Python ints would not."""

    def test_exact_sum_beyond_int64(self):
        from repro.sim.array_result import exact_sum

        huge = np.full(100, 1 << 52, dtype=np.int64)
        assert exact_sum(huge) == 100 * (1 << 52)  # > 2^58, int64-safe
        huge = np.full(5000, 1 << 51, dtype=np.int64)
        assert exact_sum(huge) == 5000 * (1 << 51)  # > 2^63: python path
        assert exact_sum(np.empty(0, dtype=np.int64)) == 0

    def test_theta_n_cubed_rounds_do_not_overflow(self):
        # Algorithm 1 on a modest graph already has ~2^38 finish rounds;
        # synthesize the 10^5-node regime by padding the columns, and pin
        # the array measures against big-int arithmetic.
        graph = make_family_graph("gnp-sparse", 64, seed=1)
        legacy = solve_mis(graph, "sleeping", seed=1, engine="vectorized")
        arrays = solve_mis(
            graph, "sleeping", seed=1, engine="vectorized", result="arrays"
        )
        assert (
            arrays.node_averaged_round_complexity
            == legacy.node_averaged_round_complexity
        )
        scaled = ArrayRunResult(
            **{
                **{f: getattr(arrays, f) for f in (
                    "n", "rounds", "seed", "node_ids", "in_mis",
                    "awake_rounds", "sleep_rounds", "tx_rounds", "rx_rounds",
                    "idle_rounds", "messages_sent", "bits_sent",
                    "messages_received", "decision_round",
                    "awake_at_decision",
                )},
                "rounds": 1 << 52,
                "finish_round": np.full(arrays.n, 1 << 52, dtype=np.int64),
                "arrays": arrays.arrays,
            }
        )
        assert scaled.node_averaged_round_complexity == float(1 << 52)
        energy = DEFAULT_MODEL.total_energy(scaled)
        assert energy > 0  # and finite/positive despite huge sleep columns


class TestNarrowColumns:
    """The ``dtype="narrow"`` opt-in and its exactness guarantees."""

    def test_dtype_kind_validation(self):
        assert DTYPE_KINDS == ("default", "narrow")
        for kind in DTYPE_KINDS:
            assert resolve_dtype_kind(kind) == kind
        with pytest.raises(ValueError, match="unknown result dtype"):
            resolve_dtype_kind("float16")

    def test_narrow_column_ladder(self):
        # int64 in int32 range -> int32; out of range -> int64 copy.
        small = np.array([0, -5, 2**31 - 1], dtype=np.int64)
        assert narrow_column(small).dtype == np.int32
        np.testing.assert_array_equal(narrow_column(small), small)
        big = np.array([0, 2**31], dtype=np.int64)
        assert narrow_column(big).dtype == np.int64
        # float64 narrows only inside float32's exact-integer range.
        exact = np.array([0.0, 0.5, 1024.0], dtype=np.float64)
        assert narrow_column(exact).dtype == np.float32
        # Overflow-promoted round labels stay float64 even when they land
        # on float32-representable values (3*2^62 round-trips exactly).
        promoted = np.array([float(3 * (2**62 - 1))], dtype=np.float64)
        assert narrow_column(promoted).dtype == np.float64
        inexact = np.array([0.1], dtype=np.float64)
        assert narrow_column(inexact).dtype == np.float64
        # Other dtypes (the int8 tri-state in_mis) pass through as copies.
        tri = np.array([-1, 0, 1], dtype=np.int8)
        assert narrow_column(tri).dtype == np.int8
        # Empty columns take the narrowest dtype trivially.
        assert narrow_column(np.empty(0, dtype=np.int64)).dtype == np.int32

    def test_result_column_always_copies(self):
        src = np.arange(10, dtype=np.int64)
        for narrow in (False, True):
            out = result_column(src, narrow=narrow)
            assert out is not src and not np.shares_memory(out, src)
        assert result_column(src, narrow=False).dtype == np.int64
        assert result_column(src, narrow=True).dtype == np.int32

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_narrow_measures_equal_default(self, algorithm):
        graph = make_family_arrays("gnp-sparse", 120, seed=11)
        default = solve_mis(
            graph, algorithm, seed=11, engine="vectorized", result="arrays"
        )
        narrow = solve_mis(
            graph, algorithm, seed=11, engine="vectorized", result="arrays",
            dtype="narrow",
        )
        assert narrow.awake_rounds.dtype == np.int32  # actually narrowed
        assert narrow.summary() == default.summary()
        assert narrow.mis == default.mis
        for measure in MEASURES:
            assert getattr(narrow, measure) == getattr(default, measure)
        for v in default.node_stats:
            assert asdict(narrow.node_stats[v]) == asdict(
                default.node_stats[v]
            ), v

    def test_from_run_result_narrow(self):
        graph = make_family_graph("gnp-sparse", 60, seed=4)
        legacy = solve_mis(graph, "ghaffari", seed=4, engine="generators")
        narrow = ArrayRunResult.from_run_result(legacy, "narrow")
        assert narrow.awake_rounds.dtype == np.int32
        assert_results_agree(legacy, narrow)

    def test_default_stays_bit_identical(self):
        """dtype='default' must be byte-for-byte the historical columns."""
        graph = make_family_arrays("gnp-sparse", 100, seed=2)
        explicit = solve_mis(
            graph, "fast-sleeping", seed=2, engine="vectorized",
            result="arrays", dtype="default",
        )
        implicit = solve_mis(
            graph, "fast-sleeping", seed=2, engine="vectorized",
            result="arrays",
        )
        for field in (
            "awake_rounds", "sleep_rounds", "finish_round", "bits_sent"
        ):
            a, b = getattr(explicit, field), getattr(implicit, field)
            assert a.dtype == b.dtype == (
                np.int64 if field != "in_mis" else np.int8
            )
            np.testing.assert_array_equal(a, b)


class TestDtypePromotionBoundaries:
    """Pin the exact recursion depth at which each round-label column
    climbs the promotion ladder (int32 -> int64 -> float64).

    Algorithm 1's round labels grow like ``T(K) = 3(2^K - 1)``:
    ``T(29) = 1_610_612_733`` is the last duration inside int32 range,
    ``T(61) = 6_917_529_027_641_081_853`` the last inside int64 --
    ``T(62)`` passes ``2^63 - 1`` and forces the engines' float64
    promotion (PR 7), which ``dtype="narrow"`` generalizes downward:
    columns take int32 exactly when their values fit, never sooner.
    """

    #: (depth, dtype knob, expected round-label column dtype).
    CASES = [
        (29, "narrow", np.int32),
        (30, "narrow", np.int64),  # T(30) = 3_221_225_469 > 2^31 - 1
        (29, "default", np.int64),
        (30, "default", np.int64),
        (61, "narrow", np.int64),
        (61, "default", np.int64),
        (62, "narrow", np.float64),  # T(62) > 2^63 - 1: promotion wins
        (62, "default", np.float64),
    ]

    @pytest.mark.parametrize("depth,dtype,expected", CASES)
    def test_round_label_columns_promote_at_the_pinned_depth(
        self, depth, dtype, expected
    ):
        graph = make_family_graph("gnp-sparse", 16, seed=1)
        result = solve_mis(
            graph, "sleeping", seed=1, engine="vectorized",
            result="arrays", dtype=dtype, depth=depth,
        )
        assert result.sleep_rounds.dtype == expected
        assert result.finish_round.dtype == expected
        # Count columns never promote: exact int64 (int32 under narrow)
        # at every depth -- the paper's awake measure stays exact.
        count_dtype = np.int32 if dtype == "narrow" else np.int64
        assert result.awake_rounds.dtype == count_dtype
        assert result.bits_sent.dtype == count_dtype

    def test_narrow_agrees_with_default_across_the_boundary(self):
        graph = make_family_graph("gnp-sparse", 16, seed=1)
        for depth in (29, 30, 62):
            default = solve_mis(
                graph, "sleeping", seed=1, engine="vectorized",
                result="arrays", depth=depth,
            )
            narrow = solve_mis(
                graph, "sleeping", seed=1, engine="vectorized",
                result="arrays", dtype="narrow", depth=depth,
            )
            assert narrow.summary() == default.summary(), depth
            assert narrow.mis == default.mis, depth


class TestEmptyGraph:
    @pytest.mark.parametrize("algorithm", ["sleeping", "luby"])
    def test_zero_nodes(self, algorithm):
        result = solve_mis(
            {}, algorithm, seed=0, engine="vectorized", result="arrays"
        )
        assert isinstance(result, ArrayRunResult)
        assert result.n == 0 and result.rounds == 0
        assert result.mis == frozenset()
        assert result.node_averaged_awake_complexity == 0.0
        assert result.worst_case_awake_complexity == 0
        assert result.is_valid_mis()
        assert result.summary()["total_messages"] == 0

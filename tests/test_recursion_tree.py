"""Tests for recursion-tree reconstruction and schedule verification."""

import networkx as nx
import pytest

from repro.analysis import (
    base_level_participants,
    build_tree,
    render_tree,
    tree_stats,
    verify_schedule,
)
from repro.core import FastSleepingMIS, SleepingMIS, schedule
from repro.sim import Simulator

from helpers import run_mis


@pytest.fixture(scope="module")
def tree_run():
    graph = nx.gnp_random_graph(40, 0.12, seed=6)
    return run_mis(graph, "sleeping", seed=6)


class TestBuildTree:
    def test_root_level_is_depth(self, tree_run):
        root = build_tree(tree_run)
        assert root.k == schedule.recursion_depth(40)
        assert root.call.size == 40

    def test_children_paths_extend_parent(self, tree_run):
        root = build_tree(tree_run)

        def visit(node):
            for child in node.children:
                assert child.path[:-1] == node.path
                assert child.k == node.k - 1
                visit(child)

        visit(root)

    def test_children_within_parent_window(self, tree_run):
        root = build_tree(tree_run)

        def visit(node):
            for child in node.children:
                assert child.call.start_round >= node.call.start_round
                assert child.call.end_round <= node.call.end_round
                visit(child)

        visit(root)

    def test_left_before_right(self, tree_run):
        root = build_tree(tree_run)

        def visit(node):
            lefts = [c for c in node.children if c.path.endswith("L")]
            rights = [c for c in node.children if c.path.endswith("R")]
            if lefts and rights:
                assert lefts[0].call.end_round <= rights[0].call.start_round
            for child in node.children:
                visit(child)

        visit(root)

    def test_empty_graph_tree(self):
        result = run_mis(nx.empty_graph(0), "sleeping")
        assert build_tree(result) is None


class TestRenderTree:
    def test_contains_figure1_labels(self, tree_run):
        text = render_tree(build_tree(tree_run))
        assert "root k=" in text
        assert "(0, " in text  # root first-reached label
        assert "|U|=40" in text

    def test_max_depth_truncates(self, tree_run):
        full = render_tree(build_tree(tree_run))
        short = render_tree(build_tree(tree_run), max_depth=1)
        assert len(short.splitlines()) <= len(full.splitlines())

    def test_empty_render(self):
        assert "empty" in render_tree(None)


class TestVerifySchedule:
    def test_algorithm1_schedule_exact(self, tree_run):
        assert verify_schedule(tree_run, schedule.call_duration) == []

    def test_algorithm2_schedule_exact(self):
        graph = nx.gnp_random_graph(40, 0.12, seed=6)
        result = Simulator(graph, lambda v: FastSleepingMIS(), seed=6).run()
        window = schedule.greedy_rounds(40)
        assert (
            verify_schedule(
                result, lambda k: schedule.fast_call_duration(k, window)
            )
            == []
        )

    def test_wrong_schedule_flagged(self, tree_run):
        violations = verify_schedule(tree_run, lambda k: 0)
        assert violations  # every internal call violates the zero schedule
        assert all(v.expected == 0 for v in violations)


class TestTreeStats:
    def test_counts_consistent(self, tree_run):
        stats = tree_stats(build_tree(tree_run))
        assert stats["calls"] >= 1
        assert stats["leaves"] >= 1
        assert stats["max_depth"] <= schedule.recursion_depth(40)

    def test_empty(self):
        assert tree_stats(None)["calls"] == 0


class TestBaseParticipants:
    def test_algorithm1_rarely_reaches_base(self, tree_run):
        # With K = 3 log n levels, reaching k=0 requires surviving every
        # level; most runs see zero or very few base participants.
        assert base_level_participants(tree_run) <= 3

    def test_forced_shallow_depth_reaches_base(self):
        graph = nx.gnp_random_graph(40, 0.12, seed=6)
        result = Simulator(
            graph, lambda v: SleepingMIS(depth=2), seed=6
        ).run()
        assert base_level_participants(result) > 0

"""Tests for the curve-fitting and growth-classification helpers."""

import math

import pytest

from repro.analysis.estimators import (
    classify_growth,
    fit_constant,
    fit_logarithmic,
    fit_polylog,
    fit_power,
    growth_factor,
)

NS = [64, 128, 256, 512, 1024, 2048]


class TestFits:
    def test_constant_recovered(self):
        fit = fit_constant(NS, [7.0] * len(NS))
        assert fit.params[0] == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_logarithmic_recovered(self):
        ys = [2.0 + 3.0 * math.log2(n) for n in NS]
        fit = fit_logarithmic(NS, ys)
        assert fit.params[0] == pytest.approx(2.0, abs=1e-6)
        assert fit.params[1] == pytest.approx(3.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_recovered(self):
        ys = [0.5 * n**3 for n in NS]
        fit = fit_power(NS, ys)
        assert fit.params[1] == pytest.approx(3.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_polylog_recovered(self):
        ys = [4.0 * math.log2(n) ** 3.41 for n in NS]
        fit = fit_polylog(NS, ys)
        assert fit.params[1] == pytest.approx(3.41, abs=1e-6)

    def test_power_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power(NS, [0.0] * len(NS))

    def test_polylog_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_polylog(NS, [-1.0] * len(NS))

    def test_fit_str(self):
        fit = fit_constant(NS, [1.0] * len(NS))
        assert "constant" in str(fit)
        assert "R2" in str(fit)


class TestGrowthFactor:
    def test_flat_series(self):
        assert growth_factor(NS, [5.0] * len(NS)) == pytest.approx(1.0)

    def test_linear_series(self):
        assert growth_factor(NS, NS) == pytest.approx(2048 / 64)

    def test_zero_start(self):
        assert growth_factor([1, 2], [0.0, 3.0]) == float("inf")
        assert growth_factor([1, 2], [0.0, 0.0]) == 1.0

    def test_unsorted_input(self):
        assert growth_factor([1024, 64], [10.0, 5.0]) == pytest.approx(2.0)


class TestClassifyGrowth:
    def test_constant(self):
        assert classify_growth(NS, [6.5, 6.8, 6.6, 6.7, 6.5, 6.9]) == "constant"

    def test_logarithmic(self):
        ys = [1.0 + 4.0 * math.log2(n) for n in NS]
        assert classify_growth(NS, ys) == "logarithmic"

    def test_polynomial(self):
        ys = [n**3 / 1e5 for n in NS]
        assert classify_growth(NS, ys) == "power"

    def test_all_zero(self):
        assert classify_growth(NS, [0.0] * len(NS)) == "constant"

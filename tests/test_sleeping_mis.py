"""Tests for Algorithm 1 (SleepingMIS): correctness, structure, measures."""

import networkx as nx
import pytest

from repro.analysis import verify_schedule
from repro.core import SleepingMIS, schedule
from repro.graphs import assert_valid_mis, is_maximal_independent_set
from repro.sim import Simulator

from helpers import run_mis


class TestCorrectness:
    def test_valid_mis_on_corner_cases(self, small_graph):
        # The algorithm is Monte Carlo: it is guaranteed correct whenever
        # all rank vectors are distinct, which holds w.h.p. for large n but
        # can fail on tiny graphs (Lemma 5's union bound is vacuous there).
        # Condition on the guarantee's premise, as the paper's analysis does.
        from repro.core.ranks import ranks_unique

        result = run_mis(small_graph, "sleeping", seed=1)
        bits_of = {v: p.x_bits for v, p in result.protocols.items()}
        if ranks_unique(bits_of):
            assert_valid_mis(small_graph, result.mis)
        else:
            assert small_graph.number_of_nodes() < 10  # only tiny graphs

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_mis_many_seeds(self, gnp60, seed):
        result = run_mis(gnp60, "sleeping", seed=seed)
        assert_valid_mis(gnp60, result.mis)

    def test_every_node_decides(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=2)
        assert result.undecided == frozenset()
        assert all(
            s.decision_round is not None
            for s in result.node_stats.values()
        )

    def test_all_nodes_terminate_together(self, gnp60):
        # Algorithm 1 returns from the top-level call in the same round at
        # every node (Condition 1 of the correctness induction).
        result = run_mis(gnp60, "sleeping", seed=2)
        finishes = {s.finish_round for s in result.node_stats.values()}
        assert len(finishes) == 1

    def test_single_node_joins_immediately(self):
        result = run_mis(nx.empty_graph(1), "sleeping")
        assert result.mis == frozenset({0})
        assert result.rounds == 0

    def test_empty_graph_all_join(self):
        result = run_mis(nx.empty_graph(6), "sleeping", seed=0)
        assert result.mis == frozenset(range(6))

    def test_complete_graph_exactly_one(self):
        result = run_mis(nx.complete_graph(20), "sleeping", seed=3)
        assert len(result.mis) == 1

    def test_star_center_or_all_leaves(self):
        result = run_mis(nx.star_graph(15), "sleeping", seed=4)
        mis = result.mis
        assert mis == frozenset({0}) or mis == frozenset(range(1, 16))


class TestWallClockSchedule:
    def test_total_rounds_is_t_of_k(self):
        graph = nx.gnp_random_graph(20, 0.2, seed=1)
        result = run_mis(graph, "sleeping", seed=1)
        depth = schedule.recursion_depth(20)
        assert result.rounds == schedule.call_duration(depth)

    def test_every_call_matches_schedule(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=5)
        assert verify_schedule(result, schedule.call_duration) == []

    def test_depth_override_shrinks_schedule(self):
        graph = nx.gnp_random_graph(16, 0.2, seed=2)
        result = run_mis(graph, "sleeping", seed=7, depth=5)
        assert result.rounds == schedule.call_duration(5)


class TestAwakeBounds:
    def test_worst_case_awake_at_most_3_per_level(self, gnp60):
        # A node is awake at most 3 rounds per recursion level it
        # participates in (Lemma 9's constant is exactly 3 here).
        result = run_mis(gnp60, "sleeping", seed=6)
        depth = schedule.recursion_depth(60)
        assert result.worst_case_awake_complexity <= 3 * (depth + 1)

    def test_awake_rounds_equals_three_per_participation(self, gnp60):
        # Exact accounting: every internal call a node participates in
        # costs exactly 3 awake rounds; base cases cost 0.
        result = run_mis(gnp60, "sleeping", seed=6)
        for v, protocol in result.protocols.items():
            internal = sum(1 for rec in protocol.calls if rec.k >= 1)
            assert result.node_stats[v].awake_rounds == 3 * internal

    def test_isolated_nodes_awake_constant(self):
        result = run_mis(nx.empty_graph(10), "sleeping", seed=1)
        # An isolated node joins at the top call's first detection and then
        # only does the 2 sync rounds there: 3 awake rounds total.
        assert result.worst_case_awake_complexity == 3


class TestRandomBits:
    def test_bits_length_matches_depth(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=1)
        depth = schedule.recursion_depth(60)
        assert all(
            len(p.x_bits) == depth for p in result.protocols.values()
        )

    def test_bits_are_binary(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=1)
        for protocol in result.protocols.values():
            assert set(protocol.x_bits) <= {0, 1}

    def test_coin_bias_shifts_distribution(self):
        graph = nx.gnp_random_graph(24, 0.2, seed=3)
        result = run_mis(graph, "sleeping", seed=3, coin_bias=0.7)
        ones = sum(sum(p.x_bits) for p in result.protocols.values())
        total = sum(len(p.x_bits) for p in result.protocols.values())
        assert ones / total > 0.6
        assert is_maximal_independent_set(graph, result.mis)

    def test_extreme_bias_breaks_whp_guarantee(self):
        # With p -> 1 the bit vectors collide with constant probability,
        # producing the algorithm's documented Monte Carlo failure: two
        # adjacent nodes share every coin, both reach the base case, both
        # join.  The validators must catch it (we scan seeds to find one).
        from repro.core.ranks import ranks_unique

        graph = nx.complete_graph(12)
        saw_collision_failure = False
        for seed in range(40):
            result = run_mis(graph, "sleeping", seed=seed, coin_bias=0.97)
            bits_of = {v: p.x_bits for v, p in result.protocols.items()}
            valid = is_maximal_independent_set(graph, result.mis)
            if ranks_unique(bits_of):
                assert valid  # distinct ranks still imply correctness
            elif not valid:
                saw_collision_failure = True
                break
        assert saw_collision_failure

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            SleepingMIS(coin_bias=0.0)
        with pytest.raises(ValueError):
            SleepingMIS(coin_bias=1.0)


class TestInstrumentation:
    def test_calls_recorded_in_preorder(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=2)
        for protocol in result.protocols.values():
            starts = [rec.start_round for rec in protocol.calls]
            assert starts == sorted(starts)

    def test_call_paths_nest(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=2)
        for protocol in result.protocols.values():
            paths = [rec.path for rec in protocol.calls]
            assert paths[0] == ""
            for path in paths[1:]:
                assert path[:-1] in paths  # parent seen earlier

    def test_left_and_right_mutually_exclusive(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=2)
        for protocol in result.protocols.values():
            for rec in protocol.calls:
                assert not (rec.went_left and rec.went_right)

    def test_record_calls_off(self, gnp60):
        result = Simulator(
            gnp60, lambda v: SleepingMIS(record_calls=False), seed=2
        ).run()
        assert_valid_mis(gnp60, result.mis)
        assert all(p.calls == [] for p in result.protocols.values())

    def test_exactly_one_decision_record(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=2)
        for protocol in result.protocols.values():
            decided = [r for r in protocol.calls if r.decided is not None]
            assert len(decided) == 1


class TestDeterminism:
    def test_same_seed_same_mis(self, gnp60):
        a = run_mis(gnp60, "sleeping", seed=11)
        b = run_mis(gnp60, "sleeping", seed=11)
        assert a.mis == b.mis

    def test_different_seed_usually_different_mis(self, gnp60):
        outcomes = {
            run_mis(gnp60, "sleeping", seed=s).mis for s in range(5)
        }
        assert len(outcomes) > 1


class TestMessageSizes:
    def test_congest_budget_respected(self, gnp60):
        import math

        limit = 8 * math.ceil(math.log2(60))
        result = run_mis(gnp60, "sleeping", seed=3, congest_bit_limit=limit)
        assert_valid_mis(gnp60, result.mis)

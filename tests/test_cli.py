"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "fast-sleeping"
        assert args.n == 128

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["sweep", "--sizes", "8,16,32"])
        assert args.sizes == [8, 16, 32]

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--sizes", "8,x"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--n", "24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "MIS size" in out
        assert "valid MIS          : True" in out

    def test_run_luby(self, capsys):
        assert main(["run", "--algorithm", "luby", "--n", "24"]) == 0
        assert "luby" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm",
                "luby",
                "--sizes",
                "12,24",
                "--trials",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean" in out

    def test_table1(self, capsys):
        code = main(
            ["table1", "--sizes", "12,24", "--trials", "1", "--family", "cycle"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node_averaged_awake" in out
        assert "O(1)" in out

    def test_table1_markdown(self, capsys):
        main(
            [
                "table1",
                "--sizes",
                "12",
                "--trials",
                "1",
                "--family",
                "cycle",
                "--markdown",
            ]
        )
        assert "| algorithm |" in capsys.readouterr().out

    def test_tree(self, capsys):
        code = main(
            ["tree", "--n", "16", "--algorithm", "sleeping", "--max-depth", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "root k=" in out

    def test_energy(self, capsys):
        code = main(["energy", "--n", "32", "--family", "cycle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast-sleeping" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "fast-sleeping"
        assert args.n == 128

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["sweep", "--sizes", "8,16,32"])
        assert args.sizes == [8, 16, 32]

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--sizes", "8,x"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])

    def test_pipeline_defaults(self):
        for command in ("run", "sweep", "table1"):
            args = build_parser().parse_args([command])
            assert args.graph_source == "auto"
            assert args.graph_rng == "legacy"
            assert args.result == "auto"

    def test_unknown_graph_rng_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--graph-rng", "v3"])

    def test_unknown_graph_source_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--graph-source", "csr"])

    def test_unknown_result_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--result", "dataframe"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--n", "24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "MIS size" in out
        assert "valid MIS          : True" in out

    def test_run_luby(self, capsys):
        assert main(["run", "--algorithm", "luby", "--n", "24"]) == 0
        assert "luby" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm",
                "luby",
                "--sizes",
                "12,24",
                "--trials",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean" in out

    def test_table1(self, capsys):
        code = main(
            ["table1", "--sizes", "12,24", "--trials", "1", "--family", "cycle"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node_averaged_awake" in out
        assert "O(1)" in out

    def test_table1_markdown(self, capsys):
        main(
            [
                "table1",
                "--sizes",
                "12",
                "--trials",
                "1",
                "--family",
                "cycle",
                "--markdown",
            ]
        )
        assert "| algorithm |" in capsys.readouterr().out

    def test_tree(self, capsys):
        code = main(
            ["tree", "--n", "16", "--algorithm", "sleeping", "--max-depth", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "root k=" in out

    def test_energy(self, capsys):
        code = main(["energy", "--n", "32", "--family", "cycle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast-sleeping" in out


class TestArrayNativeFlags:
    def test_run_array_native_matches_networkx(self, capsys):
        base = ["run", "--n", "40", "--seed", "3", "--engine", "vectorized"]
        assert main(base + ["--graph-source", "networkx",
                            "--result", "legacy"]) == 0
        legacy_out = capsys.readouterr().out
        assert main(base + ["--graph-source", "arrays",
                            "--result", "arrays"]) == 0
        arrays_out = capsys.readouterr().out
        # Same seeded graph and algorithm: every printed measure matches.
        assert arrays_out == legacy_out

    def test_sweep_array_native(self, capsys):
        code = main(
            ["sweep", "--algorithm", "sleeping", "--sizes", "16,32",
             "--trials", "2", "--graph-source", "arrays",
             "--result", "arrays", "--rng", "batched"]
        )
        assert code == 0
        assert "mean" in capsys.readouterr().out

    def test_arrays_source_for_unsupported_family_errors(self, capsys):
        code = main(
            ["sweep", "--family", "tree", "--sizes", "12",
             "--graph-source", "arrays"]
        )
        assert code == 2
        assert "no array-native sampler" in capsys.readouterr().err

    def test_table1_array_native(self, capsys):
        code = main(
            ["table1", "--sizes", "12", "--trials", "1", "--family",
             "gnp-sparse", "--graph-source", "arrays", "--result", "arrays"]
        )
        assert code == 0
        assert "node_averaged_awake" in capsys.readouterr().out

    def test_sweep_batched_graph_rng(self, capsys):
        code = main(
            ["sweep", "--algorithm", "sleeping", "--sizes", "64",
             "--trials", "2", "--rng", "batched", "--graph-rng", "batched"]
        )
        assert code == 0
        assert "mean" in capsys.readouterr().out

    def test_batched_graph_rng_with_networkx_source_errors(self, capsys):
        code = main(
            ["sweep", "--sizes", "12", "--graph-source", "networkx",
             "--graph-rng", "batched"]
        )
        assert code == 2
        assert "graph_rng='batched'" in capsys.readouterr().err

    def test_batched_graph_rng_for_unsupported_family_errors(self, capsys):
        code = main(
            ["run", "--family", "tree", "--n", "12",
             "--graph-rng", "batched"]
        )
        assert code == 2
        assert "graph_rng='legacy'" in capsys.readouterr().err

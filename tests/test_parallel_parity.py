"""Process-pool parity: ``n_jobs=2`` must be bit-identical to sequential.

Promoted from a CI-only smoke step into a real tier-1 test: the batch
runner's worker-pool path must produce *exactly* the rows and result
columns the sequential path produces -- across both engines and both RNG
stream formats -- because parallelism is a scheduling knob, never a
measurement knob.  Skipped on single-CPU runners (the dev container),
where a process pool adds nothing but flake surface; CI runners have the
cores and run it every push.
"""

import os

import numpy as np
import pytest

from repro.analysis.complexity import sweep
from repro.graphs.arrays import make_family
from repro.plan import RunPlan
from repro.sim.batch import run_trials

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-pool parity needs >= 2 CPUs (runs in CI)",
)

SIZES = (200,)
TRIALS = 4

ENGINE_RNG = [
    ("generators", "pernode"),
    ("generators", "batched"),
    ("vectorized", "pernode"),
    ("vectorized", "batched"),
]


def _plan(engine, rng):
    return RunPlan(
        algorithm="sleeping", family="gnp-sparse",
        engine=engine, rng=rng,
        graph_rng="batched", graph_source="auto",
    )


@pytest.mark.parametrize("engine,rng", ENGINE_RNG)
def test_sweep_rows_bit_identical(engine, rng):
    plan = _plan(engine, rng)
    seq = sweep(plan=plan, sizes=SIZES, trials=TRIALS, seed0=0)
    par = sweep(
        plan=plan.replace(n_jobs=2), sizes=SIZES, trials=TRIALS, seed0=0,
    )
    assert par == seq
    assert all(row.valid for row in par)


@pytest.mark.parametrize("engine,rng", ENGINE_RNG)
def test_run_trials_results_bit_identical(engine, rng):
    """Beyond the flattened rows: the full per-node result columns."""
    plan = _plan(engine, rng).replace(
        n=SIZES[0],
        result="arrays" if engine == "vectorized" else "legacy",
    )
    seeds = list(range(TRIALS))
    factory = lambda s: make_family(  # noqa: E731
        plan.family, plan.n, seed=s, graph_source="arrays",
        graph_rng="batched",
    )
    seq = run_trials(factory, seeds=seeds, plan=plan)
    par = run_trials(factory, seeds=seeds, plan=plan.replace(n_jobs=2))
    assert len(seq) == len(par) == TRIALS
    for one, two in zip(seq, par):
        assert one.rounds == two.rounds
        assert one.seed == two.seed
        if plan.result == "arrays":
            assert list(one.node_ids) == list(two.node_ids)
            for column in (
                "in_mis", "awake_rounds", "sleep_rounds", "tx_rounds",
                "rx_rounds", "idle_rounds", "messages_sent", "bits_sent",
                "messages_received", "decision_round",
                "awake_at_decision", "finish_round",
            ):
                assert np.array_equal(
                    getattr(one, column), getattr(two, column)
                ), f"column {column} diverged under n_jobs=2"
        else:
            assert one.mis == two.mis
            assert one.node_stats == two.node_stats
            assert one.outputs == two.outputs


def test_sweep_frontier_parallel_parity(tmp_path):
    """A 2-worker frontier sweep merges to the sequential byte string."""
    from repro.sweeps import (
        SweepManifest, TrialFrontier, merged_result_json, run_sweep,
    )

    manifest = SweepManifest.expand(
        _plan("vectorized", "batched").replace(result="arrays"),
        sizes=SIZES, trials=TRIALS, name="parity",
    )
    seq = TrialFrontier.create(tmp_path / "seq", manifest)
    assert run_sweep(seq).all_done
    par = TrialFrontier.create(tmp_path / "par", manifest)
    report = run_sweep(par, n_jobs=2)
    assert report.all_done and report.executed == len(manifest)
    assert merged_result_json(par) == merged_result_json(seq)

"""Tests for the lemma-validation analysis layer (Lemmas 2, 3, 7)."""

import networkx as nx
import pytest

from repro.analysis import (
    aggregate_calls,
    decision_counts,
    decision_site,
    level_decay_table,
    level_totals,
    pruning_summary,
)

from helpers import run_mis


@pytest.fixture(scope="module")
def runs():
    """A pool of finished Algorithm 1 runs for aggregation tests."""
    results = []
    for seed in range(6):
        graph = nx.gnp_random_graph(70, 0.08, seed=seed)
        results.append(run_mis(graph, "sleeping", seed=seed))
    return results


class TestAggregateCalls:
    def test_root_call_has_everyone(self, runs):
        calls = aggregate_calls(runs[0])
        assert len(calls[""].members) == runs[0].n

    def test_left_right_subsets_of_members(self, runs):
        for agg in aggregate_calls(runs[0]).values():
            assert agg.left <= agg.members
            assert agg.right <= agg.members
            assert not (agg.left & agg.right)

    def test_children_members_match_parent_roles(self, runs):
        calls = aggregate_calls(runs[0])
        for path, agg in calls.items():
            left_child = calls.get(path + "L")
            if left_child is not None:
                assert left_child.members == agg.left
            right_child = calls.get(path + "R")
            if right_child is not None:
                assert right_child.members == agg.right

    def test_call_levels_decrease_along_paths(self, runs):
        calls = aggregate_calls(runs[0])
        for path, agg in calls.items():
            assert agg.k == calls[""].k - len(path)

    def test_requires_instrumented_protocol(self, gnp60):
        result = run_mis(gnp60, "luby", seed=0)
        with pytest.raises(TypeError):
            aggregate_calls(result)


class TestLevelTotals:
    def test_top_level_is_n(self, runs):
        for result in runs:
            totals = level_totals(result)
            assert totals[max(totals)] == result.n

    def test_totals_match_call_sizes(self, runs):
        result = runs[0]
        calls = aggregate_calls(result)
        totals = level_totals(result)
        assert sum(totals.values()) == sum(a.size for a in calls.values())


class TestPruningLemma:
    def test_fractions_respect_bounds_in_aggregate(self, runs):
        # Lemma 2: E|L| <= |U|/2; Lemma 3: E|R| <= |U|/4.  Pooled over
        # hundreds of calls the empirical fractions should sit at or below
        # the bounds (with slack for sampling noise).
        summary = pruning_summary(runs)
        assert summary.calls > 20
        assert summary.left_fraction <= 0.55
        assert summary.right_fraction <= 0.30
        assert summary.recursion_fraction <= 0.80

    def test_right_fraction_well_below_left(self, runs):
        # The pruning effect: the right recursion is much smaller than
        # the left one.
        summary = pruning_summary(runs)
        assert summary.right_fraction < summary.left_fraction

    def test_empty_input(self):
        summary = pruning_summary([])
        assert summary.calls == 0
        assert summary.left_fraction == 0.0


class TestLevelDecay:
    def test_observed_below_envelope(self, runs):
        # Lemma 7: E[Z_{K-i}] <= (3/4)^i n.  Allow slack at deep levels
        # where counts are tiny.
        for row in level_decay_table(runs):
            if row["envelope"] >= 5:
                assert row["mean_z"] <= row["envelope"] * 1.25

    def test_depth_zero_exact(self, runs):
        rows = level_decay_table(runs)
        assert rows[0]["depth"] == 0
        assert rows[0]["mean_z"] == pytest.approx(rows[0]["envelope"])

    def test_decay_is_geometric_not_linear(self, runs):
        # After ell ~ 2.41 levels the work should roughly halve; after 8
        # levels it must be far below n.
        rows = level_decay_table(runs)
        by_depth = {row["depth"]: row["mean_z"] for row in rows}
        if 8 in by_depth:
            assert by_depth[8] < 0.3 * by_depth[0]


class TestDecisionAccounting:
    def test_every_node_has_decision_site(self, runs):
        for result in runs:
            for protocol in result.protocols.values():
                assert decision_site(protocol) is not None

    def test_decision_counts_sum_to_n(self, runs):
        for result in runs:
            counts = decision_counts(result)
            assert sum(counts.values()) == result.n

    def test_known_mechanisms_only(self, runs):
        allowed = {"base", "isolated", "eliminated", "second_isolated"}
        for result in runs:
            assert set(decision_counts(result)) <= allowed

    def test_mis_members_never_eliminated(self, runs):
        for result in runs:
            for v in result.mis:
                _, how = decision_site(result.protocols[v])
                assert how != "eliminated"

"""Tests for the maximal-matching extension (MIS on the line graph)."""

import networkx as nx
import pytest

from repro.extensions.matching import (
    is_maximal_matching,
    line_graph_with_edge_map,
    solve_maximal_matching,
)


class TestLineGraph:
    def test_path_line_graph_is_path(self):
        line, edge_of = line_graph_with_edge_map(nx.path_graph(4))
        assert line.number_of_nodes() == 3
        assert line.number_of_edges() == 2  # consecutive edges share nodes

    def test_triangle_line_graph_is_triangle(self):
        line, _ = line_graph_with_edge_map(nx.complete_graph(3))
        assert line.number_of_nodes() == 3
        assert line.number_of_edges() == 3

    def test_star_line_graph_is_clique(self):
        line, _ = line_graph_with_edge_map(nx.star_graph(5))
        assert line.number_of_nodes() == 5
        assert line.number_of_edges() == 10  # K5

    def test_edge_map_covers_all_edges(self):
        graph = nx.gnp_random_graph(15, 0.3, seed=1)
        line, edge_of = line_graph_with_edge_map(graph)
        assert len(edge_of) == graph.number_of_edges()
        for u, v in edge_of.values():
            assert graph.has_edge(u, v)

    def test_empty_graph(self):
        line, edge_of = line_graph_with_edge_map(nx.empty_graph(4))
        assert line.number_of_nodes() == 0
        assert edge_of == {}

    def test_adjacency_mapping_input(self):
        line, edge_of = line_graph_with_edge_map({0: [1], 1: [0, 2], 2: [1]})
        assert line.number_of_nodes() == 2


class TestIsMaximalMatching:
    def test_valid(self):
        graph = nx.path_graph(4)
        assert is_maximal_matching(graph, [(1, 2)])
        assert is_maximal_matching(graph, [(0, 1), (2, 3)])

    def test_not_a_matching(self):
        graph = nx.path_graph(4)
        assert not is_maximal_matching(graph, [(0, 1), (1, 2)])

    def test_not_maximal(self):
        graph = nx.path_graph(5)
        assert not is_maximal_matching(graph, [(0, 1)])  # (2,3)/(3,4) free

    def test_non_edge_rejected(self):
        graph = nx.path_graph(4)
        assert not is_maximal_matching(graph, [(0, 2)])

    def test_empty_matching_on_empty_graph(self):
        assert is_maximal_matching(nx.empty_graph(3), [])

    def test_reversed_edge_orientation_accepted(self):
        graph = nx.path_graph(3)
        assert is_maximal_matching(graph, [(1, 0)]) == is_maximal_matching(
            graph, [(0, 1)]
        )


class TestSolveMaximalMatching:
    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby", "greedy"]
    )
    def test_valid_matching(self, algorithm):
        graph = nx.gnp_random_graph(25, 0.2, seed=4)
        matching, result = solve_maximal_matching(
            graph, algorithm=algorithm, seed=4
        )
        assert is_maximal_matching(graph, matching)
        assert result.n == graph.number_of_edges()

    def test_complete_graph_perfect_matching_size(self):
        graph = nx.complete_graph(8)
        matching, _ = solve_maximal_matching(graph, seed=1)
        # A maximal matching of K8 matches at least 3 pairs; at most 4.
        assert 3 <= len(matching) <= 4

    def test_edge_agents_have_constant_average_awake(self):
        # The headline guarantee carries over: O(1) awake rounds per edge.
        small = nx.gnp_random_graph(40, 6 / 40, seed=2)
        large = nx.gnp_random_graph(160, 6 / 160, seed=2)
        _, result_small = solve_maximal_matching(
            small, algorithm="fast-sleeping", seed=2
        )
        _, result_large = solve_maximal_matching(
            large, algorithm="fast-sleeping", seed=2
        )
        assert (
            result_large.node_averaged_awake_complexity
            <= 2.0 * result_small.node_averaged_awake_complexity
        )

    def test_deterministic(self):
        graph = nx.gnp_random_graph(20, 0.25, seed=3)
        a, _ = solve_maximal_matching(graph, seed=9)
        b, _ = solve_maximal_matching(graph, seed=9)
        assert a == b

    def test_edgeless_graph(self):
        matching, result = solve_maximal_matching(nx.empty_graph(5), seed=0)
        assert matching == frozenset()
        assert result.n == 0

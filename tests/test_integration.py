"""Cross-module integration tests: whole-pipeline behaviour.

These exercise the paths a downstream user actually takes: run several
algorithms on the same graph, compare their outputs and measures, validate
against theory-level expectations, and check the package surface.
"""

import math

import networkx as nx
import pytest

import repro
from repro import solve_mis
from repro.analysis import (
    aggregate_calls,
    check_lexicographically_first,
    pruning_summary,
    verify_schedule,
)
from repro.core import schedule
from repro.graphs import assert_valid_mis
from repro.sim import DEFAULT_MODEL, IDEAL_MODEL


class TestAllAlgorithmsAgreeOnStructure:
    @pytest.fixture(scope="class")
    def graph(self):
        return nx.gnp_random_graph(80, 0.06, seed=21)

    def test_all_produce_valid_mis(self, graph):
        for algorithm in repro.algorithm_names():
            result = solve_mis(graph, algorithm=algorithm, seed=21)
            assert_valid_mis(graph, result.mis)

    def test_mis_sizes_comparable(self, graph):
        # Different algorithms give different MIS's, but sizes should be
        # in the same ballpark (all maximal independent sets).
        sizes = {
            algorithm: len(solve_mis(graph, algorithm=algorithm, seed=21).mis)
            for algorithm in repro.algorithm_names()
        }
        assert max(sizes.values()) <= 2 * min(sizes.values())

    def test_same_bits_same_mis_across_depths(self, graph):
        # Corollary 1 consequence: Algorithm 1 and sequential greedy agree;
        # hence two Algorithm-1 runs with the same seed (same bits) agree.
        a = solve_mis(graph, algorithm="sleeping", seed=3)
        b = solve_mis(graph, algorithm="sleeping", seed=3)
        assert a.mis == b.mis


class TestSleepingVersusTraditional:
    def test_sleeping_node_avg_awake_flat_while_rounds_explode(self):
        ns = [32, 128, 512]
        awake = []
        rounds = []
        for n in ns:
            graph = nx.gnp_random_graph(n, 8.0 / n, seed=n)
            result = solve_mis(graph, algorithm="sleeping", seed=n)
            awake.append(result.node_averaged_awake_complexity)
            rounds.append(result.rounds)
        # awake flat within 2x across a 16x size range...
        assert max(awake) <= 2.0 * min(awake)
        # ...while wall clock grows by the schedule's 2^{3 log} factor.
        assert rounds[-1] > 1000 * rounds[0]

    def test_fast_sleeping_rounds_polylog(self):
        small = solve_mis(
            nx.gnp_random_graph(64, 0.1, seed=1), algorithm="fast-sleeping", seed=1
        )
        large = solve_mis(
            nx.gnp_random_graph(1024, 8 / 1024, seed=1),
            algorithm="fast-sleeping",
            seed=1,
        )
        # log^3.41 growth from n=64 to n=1024 is about (10/6)^3.41 ~ 5.7x;
        # allow generous headroom but forbid polynomial blow-up.
        assert large.rounds < 40 * small.rounds

    def test_luby_total_awake_grows_with_n_while_sleeping_flat(self):
        # Total awake rounds: Luby pays n * avg_finish; sleeping pays O(n).
        n = 512
        graph = nx.gnp_random_graph(n, 8.0 / n, seed=5)
        sleeping = solve_mis(graph, algorithm="sleeping", seed=5)
        assert sleeping.total_awake_rounds < 10 * n


class TestEnergyPipeline:
    def test_ideal_energy_equals_awake_rounds(self, gnp60):
        result = solve_mis(gnp60, algorithm="fast-sleeping", seed=2)
        assert IDEAL_MODEL.total_energy(result) == pytest.approx(
            float(result.total_awake_rounds)
        )

    def test_default_model_charges_sleep(self, gnp60):
        result = solve_mis(gnp60, algorithm="fast-sleeping", seed=2)
        assert DEFAULT_MODEL.total_energy(result) > IDEAL_MODEL.total_energy(
            result
        )


class TestCongestDiscipline:
    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby", "greedy", "ghaffari"]
    )
    def test_all_algorithms_fit_logarithmic_messages(self, algorithm):
        n = 100
        graph = nx.gnp_random_graph(n, 0.06, seed=3)
        limit = 64 * math.ceil(math.log2(n))
        result = solve_mis(
            graph, algorithm=algorithm, seed=3, congest_bit_limit=limit
        )
        assert_valid_mis(graph, result.mis)


class TestAnalysisPipelineOnFastVariant:
    def test_full_analysis_stack(self):
        graph = nx.gnp_random_graph(120, 0.05, seed=8)
        result = solve_mis(graph, algorithm="fast-sleeping", seed=8)
        assert_valid_mis(graph, result.mis)
        assert check_lexicographically_first(result)
        window = schedule.greedy_rounds(120)
        assert (
            verify_schedule(
                result, lambda k: schedule.fast_call_duration(k, window)
            )
            == []
        )
        summary = pruning_summary([result])
        assert 0.0 <= summary.right_fraction <= 0.5
        calls = aggregate_calls(result)
        assert calls[""].size == 120


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import repro.analysis as analysis
        import repro.baselines as baselines
        import repro.graphs as graphs
        import repro.sim as sim

        for module in (analysis, baselines, graphs, sim):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

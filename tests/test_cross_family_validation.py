"""Cross-family validation: every algorithm on every registered family.

Graph families differ structurally (trees vs. cliques vs. power-law vs.
geometric), and several past bugs in distributed MIS implementations are
family-specific (isolated nodes, hubs, dense neighborhoods).  This matrix
pins validity everywhere.
"""

import pytest

from repro.api import algorithm_names, solve_mis
from repro.core.ranks import ranks_unique
from repro.graphs import (
    family_names,
    is_maximal_independent_set,
    make_family_graph,
)

N = 48
SEED = 13


@pytest.mark.parametrize("family", family_names())
@pytest.mark.parametrize("algorithm", algorithm_names())
def test_valid_mis_everywhere(family, algorithm):
    graph = make_family_graph(family, N, seed=SEED)
    result = solve_mis(graph, algorithm=algorithm, seed=SEED)

    if algorithm == "sleeping":
        bits_of = {v: p.x_bits for v, p in result.protocols.items()}
        if not ranks_unique(bits_of):
            pytest.skip("rank collision (documented Monte Carlo case)")

    assert is_maximal_independent_set(graph, result.mis), (
        family,
        algorithm,
    )


@pytest.mark.parametrize("family", family_names())
def test_mis_size_structural_bounds(family):
    """Known structural bounds on MIS size per family."""
    graph = make_family_graph(family, N, seed=SEED)
    result = solve_mis(graph, algorithm="greedy", seed=SEED)
    size = len(result.mis)
    n = graph.number_of_nodes()

    if family == "empty":
        assert size == n
    elif family == "complete":
        assert size == 1
    elif family == "star":
        assert size in (1, n - 1)
    elif family in ("cycle", "path"):
        # Any MIS of a cycle/path has between ~n/3 and n/2 nodes.
        assert n // 3 <= size <= (n + 1) // 2
    else:
        assert 1 <= size <= n


@pytest.mark.parametrize("family", family_names())
def test_sleeping_awake_constant_across_families(family):
    """The O(1) node-averaged awake bound is family-independent."""
    graph = make_family_graph(family, N, seed=SEED)
    result = solve_mis(graph, algorithm="fast-sleeping", seed=SEED)
    assert result.node_averaged_awake_complexity < 15.0

"""Tests for graph generators, validators, and structural properties."""

import networkx as nx
import pytest

from repro.graphs import (
    FAMILIES,
    arboricity_upper_bound,
    caterpillar,
    complete_bipartite,
    cycle_graph,
    degeneracy,
    disjoint_cliques,
    domination_violations,
    family_names,
    gnp,
    graph_stats,
    grid_graph,
    h_partition,
    hypercube,
    independence_violations,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    is_proper_coloring,
    log_star,
    make_family_graph,
    max_degree,
    random_geometric,
    random_regular,
    random_tree,
    star_graph,
)


class TestGenerators:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_labels_consecutive(self, family):
        graph = make_family_graph(family, 20, seed=1)
        assert set(graph.nodes()) == set(range(graph.number_of_nodes()))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_size_close(self, family):
        graph = make_family_graph(family, 20, seed=1)
        # regular-4 may round n up by one to make n*d even.
        assert 20 <= graph.number_of_nodes() <= 21

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family 'nope'"):
            make_family_graph("nope", 10)

    def test_unknown_family_suggests_close_matches(self):
        # The shared registry error path: a truncated name finds both
        # gnp variants, a typo finds its edit-distance neighbour.
        with pytest.raises(ValueError, match="'gnp-dense', 'gnp-sparse'"):
            make_family_graph("gnp", 10)
        with pytest.raises(ValueError, match="did you mean 'tree'"):
            make_family_graph("tre", 10)

    def test_family_names_sorted(self):
        assert family_names() == sorted(FAMILIES)

    def test_gnp_seeded(self):
        assert set(gnp(30, 0.2, seed=4).edges()) == set(
            gnp(30, 0.2, seed=4).edges()
        )

    def test_random_regular_degrees(self):
        graph = random_regular(20, 4, seed=1)
        assert all(d == 4 for _, d in graph.degree())

    def test_random_tree_is_tree(self):
        graph = random_tree(15, seed=2)
        assert nx.is_tree(graph)

    def test_random_tree_single_node(self):
        assert random_tree(1).number_of_nodes() == 1

    def test_star_counts(self):
        graph = star_graph(10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 9

    def test_star_requires_node(self):
        with pytest.raises(ValueError):
            star_graph(0)

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert max_degree(graph) == 4

    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 4)
        assert graph.number_of_edges() == 12

    def test_caterpillar_is_tree(self):
        graph = caterpillar(17, seed=3)
        assert nx.is_tree(graph)
        assert graph.number_of_nodes() == 17

    def test_caterpillar_tiny(self):
        assert caterpillar(2).number_of_edges() == 1

    def test_disjoint_cliques(self):
        graph = disjoint_cliques(3, 4)
        assert graph.number_of_nodes() == 12
        assert nx.number_connected_components(graph) == 3

    def test_hypercube(self):
        graph = hypercube(3)
        assert graph.number_of_nodes() == 8
        assert all(d == 3 for _, d in graph.degree())

    def test_random_geometric_default_radius(self):
        graph = random_geometric(50, seed=1)
        assert graph.number_of_nodes() == 50

    def test_cycle(self):
        graph = cycle_graph(7)
        assert all(d == 2 for _, d in graph.degree())


class TestValidators:
    def test_independent_ok(self):
        graph = nx.path_graph(4)
        assert is_independent_set(graph, {0, 2})

    def test_independent_violation_reported(self):
        graph = nx.path_graph(4)
        violations = independence_violations(graph, {0, 1})
        assert len(violations) == 1
        assert set(violations[0]) == {0, 1}

    def test_dominating(self):
        graph = nx.star_graph(5)
        assert is_dominating_set(graph, {0})
        assert domination_violations(graph, set()) == list(range(6))

    def test_mis_requires_both(self):
        graph = nx.path_graph(5)
        assert is_maximal_independent_set(graph, {0, 2, 4})
        assert not is_maximal_independent_set(graph, {0, 4})  # 2 uncovered
        assert not is_maximal_independent_set(graph, {0, 1, 3})  # adjacent

    def test_empty_set_on_empty_graph(self):
        assert is_maximal_independent_set(nx.empty_graph(0), set())

    def test_proper_coloring(self):
        graph = nx.path_graph(3)
        assert is_proper_coloring(graph, {0: 0, 1: 1, 2: 0})
        assert not is_proper_coloring(graph, {0: 0, 1: 0, 2: 1})
        assert not is_proper_coloring(graph, {0: 0, 1: None, 2: 1})

    def test_adjacency_mapping_inputs(self):
        adjacency = {0: [1], 1: [0]}
        assert is_maximal_independent_set(adjacency, {0})


class TestProperties:
    def test_degeneracy_known_values(self):
        assert degeneracy(nx.empty_graph(5)) == 0
        assert degeneracy(nx.path_graph(10)) == 1
        assert degeneracy(nx.cycle_graph(10)) == 2
        assert degeneracy(nx.complete_graph(7)) == 6

    def test_degeneracy_tree(self):
        assert degeneracy(random_tree(20, seed=1)) == 1

    def test_arboricity_bound(self):
        assert arboricity_upper_bound(nx.complete_graph(6)) >= 3

    def test_h_partition_covers_all_nodes(self):
        graph = nx.gnp_random_graph(40, 0.2, seed=2)
        layers = h_partition(graph)
        covered = set().union(*layers)
        assert covered == set(graph.nodes())
        sizes = sum(len(layer) for layer in layers)
        assert sizes == 40  # layers are disjoint

    def test_h_partition_empty(self):
        assert h_partition(nx.empty_graph(0)) == []

    def test_log_star(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536 if False else 10**9) == 5

    def test_log_star_negative(self):
        with pytest.raises(ValueError):
            log_star(-1)

    def test_graph_stats(self):
        stats = graph_stats(nx.path_graph(4))
        assert stats["n"] == 4
        assert stats["edges"] == 3
        assert stats["max_degree"] == 2
        assert stats["isolated"] == 0

    def test_graph_stats_counts_isolated(self):
        stats = graph_stats(nx.empty_graph(3))
        assert stats["isolated"] == 3

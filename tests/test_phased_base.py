"""Unit tests for the shared phased-MIS skeleton (`baselines._phased`)."""

import networkx as nx
import pytest

from repro.baselines._phased import PhasedMISProtocol
from repro.graphs import assert_valid_mis
from repro.sim import Simulator


class FixedPriority(PhasedMISProtocol):
    """Deterministic priorities = node id (highest id wins each phase)."""

    def _priority_value(self, ctx, phase):
        return ctx.node_id


class TestDeterministicPhasing:
    def test_ids_as_priorities_give_greedy_by_id(self):
        # On a path 0-1-2-3-4, greedy by decreasing id picks {4, 2, 0}.
        graph = nx.path_graph(5)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        assert set(result.mis) == {4, 2, 0}

    def test_clique_highest_id_wins(self):
        graph = nx.complete_graph(6)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        assert result.mis == frozenset({5})

    def test_one_phase_on_clique(self):
        # The single winner is found in phase 1: 3 rounds total (winner
        # terminates after round B, the eliminated after round C).
        graph = nx.complete_graph(6)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        assert result.rounds == 3

    def test_path3_second_join_is_free(self):
        # 0-1-2: node 2 wins phase 1 eliminating 1; at the next phase
        # boundary node 0 sees an empty live set and joins with no further
        # communication -- still 3 rounds total.
        graph = nx.path_graph(3)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        assert set(result.mis) == {0, 2}
        assert result.rounds == 3

    def test_path5_needs_two_full_phases(self):
        # 0-1-2-3-4: phase 1 -> 4 joins, 3 out; phase 2 -> 2 joins, 1 out;
        # 0 then joins for free.  Two 3-round phases.
        graph = nx.path_graph(5)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        assert set(result.mis) == {4, 2, 0}
        assert result.rounds == 6

    def test_decision_reported_before_termination(self):
        graph = nx.path_graph(4)
        result = Simulator(graph, lambda v: FixedPriority(), seed=0).run()
        for stats in result.node_stats.values():
            assert stats.decision_round is not None
            assert stats.decision_round <= stats.finish_round


class TestAbstractBase:
    def test_priority_hook_required(self):
        graph = nx.path_graph(2)
        with pytest.raises(NotImplementedError):
            Simulator(graph, lambda v: PhasedMISProtocol(), seed=0).run()


class TestMixedProtocolInterop:
    def test_different_phased_protocols_do_not_interfere(self):
        # Not a sanctioned deployment, but the simulator must keep
        # per-node protocols independent.
        from repro.baselines import DistGreedyMIS, LubyMIS

        graph = nx.gnp_random_graph(20, 0.2, seed=2)

        def factory(v):
            return LubyMIS() if v % 2 else DistGreedyMIS()

        result = Simulator(graph, factory, seed=2).run()
        assert_valid_mis(graph, result.mis)

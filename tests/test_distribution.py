"""Tests for the awake-time distribution analysis (A_v properties)."""

import networkx as nx
import pytest

from repro.analysis.distribution import (
    average_concentration,
    awake_histogram,
    awake_quantiles,
    awake_values,
    survival_curve,
    tail_fraction,
)

from helpers import run_mis


@pytest.fixture(scope="module")
def runs():
    results = []
    for seed in range(4):
        graph = nx.gnp_random_graph(80, 0.08, seed=seed)
        results.append(run_mis(graph, "sleeping", seed=seed))
    return results


class TestAwakeValues:
    def test_sorted_and_complete(self, runs):
        values = awake_values(runs[0])
        assert values == sorted(values)
        assert len(values) == runs[0].n

    def test_histogram_sums_to_n(self, runs):
        histogram = awake_histogram(runs[0])
        assert sum(histogram.values()) == runs[0].n

    def test_histogram_multiples_of_three(self, runs):
        # Algorithm 1 nodes pay exactly 3 awake rounds per internal call.
        for value in awake_histogram(runs[0]):
            assert value % 3 == 0


class TestQuantiles:
    def test_monotone(self, runs):
        quantiles = awake_quantiles(runs[0], qs=(0.1, 0.5, 0.9, 1.0))
        ordered = [quantiles[q] for q in (0.1, 0.5, 0.9, 1.0)]
        assert ordered == sorted(ordered)

    def test_max_is_worst_case(self, runs):
        quantiles = awake_quantiles(runs[0], qs=(1.0,))
        assert quantiles[1.0] == runs[0].worst_case_awake_complexity

    def test_invalid_quantile(self, runs):
        with pytest.raises(ValueError):
            awake_quantiles(runs[0], qs=(1.5,))

    def test_empty_result(self):
        result = run_mis(nx.empty_graph(0), "sleeping")
        assert awake_quantiles(result)[1.0] == 0.0


class TestSurvivalCurve:
    def test_monotone_decreasing(self, runs):
        curve = survival_curve(runs, thresholds=[0, 3, 6, 9, 12, 15])
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == 1.0

    def test_geometric_style_decay(self, runs):
        # P[A_v >= 3(i+1)] should shrink markedly as i grows (Lemma 7's
        # (3/4)^i participation bound; empirically much faster).
        curve = dict(survival_curve(runs, thresholds=[3, 9, 15]))
        assert curve[15] < curve[9] < curve[3]
        assert curve[15] < 0.5 * curve[3]

    def test_empty(self):
        assert survival_curve([], [1, 2]) == [(1, 0.0), (2, 0.0)]


class TestConcentration:
    def test_stats_consistent(self, runs):
        stats = average_concentration(runs)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["stdev"] < stats["mean"]  # tightly concentrated

    def test_empty(self):
        assert average_concentration([])["mean"] == 0.0


class TestTailFraction:
    def test_bounds(self, runs):
        assert 0.0 <= tail_fraction(runs, 2.0) <= 1.0

    def test_large_multiplier_empties_tail(self, runs):
        assert tail_fraction(runs, 100.0) == 0.0

    def test_zero_multiplier_catches_everyone_positive(self, runs):
        assert tail_fraction(runs, 0.0) > 0.9

    def test_empty(self):
        assert tail_fraction([], 2.0) == 0.0

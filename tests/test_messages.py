"""Unit tests for CONGEST payload bit accounting."""

import math

import pytest

from repro.sim.errors import ProtocolError
from repro.sim.messages import Message, payload_bits


class TestPayloadBits:
    def test_none(self):
        assert payload_bits(None) == 2

    def test_bool(self):
        assert payload_bits(True) == 2
        assert payload_bits(False) == 2

    def test_small_int(self):
        assert payload_bits(0) == 3
        assert payload_bits(1) == 3

    def test_int_grows_with_bit_length(self):
        assert payload_bits(255) == 8 + 2
        assert payload_bits(2**20) == 21 + 2

    def test_negative_int(self):
        assert payload_bits(-5) == payload_bits(5)

    def test_float(self):
        assert payload_bits(3.14) == 66

    def test_str(self):
        assert payload_bits("abc") == 8 * 3 + 8

    def test_empty_str(self):
        assert payload_bits("") == 8

    def test_bytes(self):
        assert payload_bits(b"xy") == 8 * 2 + 8

    def test_tuple_sums_elements(self):
        single = payload_bits(7)
        assert payload_bits((7, 7)) == 2 * (single + 4)

    def test_list_same_as_tuple(self):
        assert payload_bits([1, 2]) == payload_bits((1, 2))

    def test_nested_tuple(self):
        assert payload_bits(((1,),)) == payload_bits((1,)) + 4

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError):
            payload_bits({"a": 1})

    def test_unencodable_object_raises(self):
        with pytest.raises(ProtocolError):
            payload_bits(object())

    def test_bool_is_not_counted_as_int(self):
        # bool is a subclass of int; ensure the cheaper bool encoding wins.
        assert payload_bits(True) < payload_bits(1 << 10)
        assert payload_bits(True) == 2

    def test_rank_payload_is_logarithmic(self):
        # The rank messages used by the greedy base case must fit in
        # O(log n) bits.
        n = 1024
        rank = (n**6, n - 1)
        assert payload_bits(rank) <= 64 * math.ceil(math.log2(n))


class TestMessage:
    def test_fields(self):
        msg = Message(round=3, sender=1, recipient=2, payload="x")
        assert (msg.round, msg.sender, msg.recipient) == (3, 1, 2)

    def test_bits_property(self):
        msg = Message(round=0, sender=0, recipient=1, payload=True)
        assert msg.bits == 2

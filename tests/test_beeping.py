"""Tests for the beeping-model MIS extension."""

import math

import networkx as nx
import pytest

from repro.extensions.beeping import BeepingMIS
from repro.graphs import assert_valid_mis
from repro.sim import Simulator


def run_beeping(graph, seed=0, congest_bit_limit=None, **kwargs):
    return Simulator(
        graph,
        lambda v: BeepingMIS(**kwargs),
        seed=seed,
        congest_bit_limit=congest_bit_limit,
    ).run()


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: nx.empty_graph(5),
            lambda: nx.path_graph(10),
            lambda: nx.cycle_graph(9),
            lambda: nx.complete_graph(12),
            lambda: nx.star_graph(8),
            lambda: nx.gnp_random_graph(40, 0.15, seed=3),
            lambda: nx.disjoint_union(nx.cycle_graph(5), nx.complete_graph(4)),
        ],
        ids=["empty", "path", "cycle", "complete", "star", "gnp", "components"],
    )
    def test_valid_mis(self, graph_builder):
        graph = graph_builder()
        result = run_beeping(graph, seed=7)
        assert_valid_mis(graph, result.mis)

    @pytest.mark.parametrize("seed", range(6))
    def test_valid_mis_many_seeds(self, gnp60, seed):
        result = run_beeping(gnp60, seed=seed)
        assert_valid_mis(gnp60, result.mis)

    def test_isolated_decides_with_zero_rounds(self):
        result = run_beeping(nx.empty_graph(3), seed=1)
        assert result.mis == frozenset({0, 1, 2})
        assert result.rounds == 0

    def test_every_node_decides(self, gnp60):
        result = run_beeping(gnp60, seed=2)
        assert result.undecided == frozenset()


class TestBeepingDiscipline:
    def test_messages_are_single_beeps(self, gnp60):
        # One carrier-sense bit per message: the CONGEST limit can be set
        # to the minimum payload size and everything still works.
        result = run_beeping(gnp60, seed=3, congest_bit_limit=2)
        assert_valid_mis(gnp60, result.mis)

    def test_nodes_never_sleep(self, gnp60):
        result = run_beeping(gnp60, seed=3)
        assert all(s.sleep_rounds == 0 for s in result.node_stats.values())

    def test_phase_length(self):
        # A clique decides in exactly one phase: B contention rounds plus
        # the JOIN round.
        n = 16
        graph = nx.complete_graph(n)
        result = run_beeping(graph, seed=4)
        bits = math.ceil(4 * math.log2(n))
        assert result.rounds == bits + 1
        assert len(result.mis) == 1


class TestParameters:
    def test_rank_bits_override(self):
        graph = nx.complete_graph(6)
        result = run_beeping(graph, seed=5, rank_bits=30)
        assert result.rounds == 31
        assert_valid_mis(graph, result.mis)

    def test_tiny_ranks_can_tie_and_fail(self):
        # 1-bit ranks collide constantly: some seed must produce an
        # invalid MIS (two adjacent winners), which validation catches.
        from repro.graphs import is_maximal_independent_set

        graph = nx.complete_graph(10)
        outcomes = [
            is_maximal_independent_set(
                graph, run_beeping(graph, seed=seed, rank_bits=1).mis
            )
            for seed in range(12)
        ]
        assert not all(outcomes)

    def test_max_phases_gives_up(self):
        graph = nx.cycle_graph(30)
        result = run_beeping(graph, seed=6, max_phases=1)
        # One phase cannot decide a long cycle completely.
        assert len(result.undecided) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BeepingMIS(rank_bits=0)
        with pytest.raises(ValueError):
            BeepingMIS(max_phases=0)


class TestAwakeContrast:
    def test_beeping_awake_grows_with_log_n(self):
        # Every live node is awake through whole Theta(log n)-round
        # phases: node-averaged awake is at least one phase, i.e. already
        # larger than the sleeping algorithms' O(1) total at modest n.
        graph = nx.gnp_random_graph(100, 0.08, seed=8)
        beeping = run_beeping(graph, seed=8)
        bits = math.ceil(4 * math.log2(100))
        assert beeping.node_averaged_awake_complexity >= bits + 1

        from repro.api import solve_mis

        sleeping = solve_mis(graph, algorithm="fast-sleeping", seed=8)
        assert (
            sleeping.node_averaged_awake_complexity
            < beeping.node_averaged_awake_complexity
        )

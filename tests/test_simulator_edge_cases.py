"""Edge-case tests: unusual node labelings, graph shapes, and re-runs."""

import networkx as nx
import pytest

from repro.api import solve_mis
from repro.graphs import assert_valid_mis
from repro.sim import Simulator, simulate
from repro.sim.protocol import Protocol
from repro.sim.actions import SendAndReceive


class TestNonContiguousNodeIds:
    """Protocols send node ids in payloads; any integer labels must work."""

    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby", "greedy", "ghaffari"]
    )
    def test_sparse_integer_labels(self, algorithm):
        graph = nx.relabel_nodes(
            nx.gnp_random_graph(25, 0.2, seed=3),
            {i: i * 97 + 13 for i in range(25)},
        )
        result = solve_mis(graph, algorithm=algorithm, seed=3)
        assert_valid_mis(graph, result.mis)

    def test_negative_labels(self):
        graph = nx.relabel_nodes(nx.path_graph(6), {i: i - 3 for i in range(6)})
        result = solve_mis(graph, algorithm="sleeping", seed=1)
        assert_valid_mis(graph, result.mis)

    def test_adjacency_dict_input(self):
        adjacency = {10: [20], 20: [10, 30], 30: [20]}
        result = solve_mis(adjacency, algorithm="luby", seed=1)
        assert result.mis  # non-empty MIS on a path of 3


class TestGraphShapes:
    @pytest.mark.parametrize(
        "algorithm", ["sleeping", "fast-sleeping", "luby"]
    )
    def test_many_components(self, algorithm):
        graph = nx.disjoint_union_all(
            [nx.cycle_graph(5), nx.complete_graph(4), nx.path_graph(3),
             nx.empty_graph(2), nx.star_graph(4)]
        )
        result = solve_mis(graph, algorithm=algorithm, seed=2)
        assert_valid_mis(graph, result.mis)

    def test_self_loops_ignored(self):
        graph = nx.path_graph(4)
        graph.add_edge(1, 1)
        result = solve_mis(graph, algorithm="sleeping", seed=1)
        assert_valid_mis(nx.path_graph(4), result.mis)

    @pytest.mark.parametrize("algorithm", ["sleeping", "fast-sleeping"])
    def test_very_dense_graph(self, algorithm):
        graph = nx.complete_graph(40)
        result = solve_mis(graph, algorithm=algorithm, seed=5)
        assert len(result.mis) == 1

    def test_long_path(self):
        graph = nx.path_graph(200)
        result = solve_mis(graph, algorithm="fast-sleeping", seed=1)
        assert_valid_mis(graph, result.mis)
        # On a path the MIS has at least n/3 nodes.
        assert len(result.mis) >= 66


class TestSimulatorReuse:
    def test_simulator_not_reusable_after_run(self):
        # A second .run() on the same Simulator has terminated runtimes;
        # it must return immediately with the same outputs rather than
        # corrupt state.
        graph = nx.path_graph(4)
        sim = Simulator(graph, lambda v: _OneRound(), seed=1)
        first = sim.run()
        second = sim.run()
        assert second.outputs == first.outputs

    def test_fresh_simulators_independent(self):
        graph = nx.path_graph(4)
        a = simulate(graph, lambda v: _OneRound(), seed=1)
        b = simulate(graph, lambda v: _OneRound(), seed=1)
        assert a.outputs == b.outputs


class _OneRound(Protocol):
    def __init__(self):
        self.inbox = None

    def run(self, ctx):
        self.inbox = yield SendAndReceive({u: 1 for u in ctx.neighbors})

    def output(self):
        return sorted(self.inbox) if self.inbox is not None else None


class TestExamplesSmoke:
    """The shipped examples must at least run to completion."""

    def test_quickstart(self, capsys):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "examples"
            / "quickstart.py"
        )
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "MIS size" in out

    def test_recursion_tree_demo(self, capsys):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "examples"
            / "recursion_tree_demo.py"
        )
        spec = importlib.util.spec_from_file_location("tree_demo", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "schedule violations vs T(k) = 3(2^k - 1): 0" in out

    def test_awake_distribution_example_importable(self):
        module = _load_example("awake_distribution.py")
        assert callable(module.main)

    def test_maximal_matching_example(self, capsys):
        _load_example("maximal_matching.py").main()
        out = capsys.readouterr().out
        assert "True" in out and "avg awake / edge" in out

    def test_beeping_example(self, capsys):
        _load_example("beeping_vs_sleeping.py").main()
        out = capsys.readouterr().out
        assert "beeping avg awake" in out

    def test_sensor_energy_example(self, capsys):
        _load_example("sensor_network_energy.py").main()
        out = capsys.readouterr().out
        assert "Energy to elect an MIS backbone" in out
        assert "fast-sleeping" in out


def _load_example(filename):
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).resolve().parents[1] / "examples" / filename
    )
    spec = importlib.util.spec_from_file_location(filename[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

"""The service wire schema: canonical JSON, versioning, stable errors.

Mirrors ``test_run_plan.py``'s serialization discipline for the HTTP
boundary: the canonical request/response JSON is golden-pinned (these
bytes are what the result cache stores and what clients parse -- moving
them silently invalidates both), unknown fields and versions are
rejected with errors naming the fix, and every error code the server
can emit is a member of the published ``ERROR_CODES`` tuple.
"""

import json

import pytest

from repro.plan import RunPlan
from repro.service import (
    ERROR_CODES,
    SERVICE_VERSION,
    ErrorEnvelope,
    JobStatus,
    SchemaError,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    SweepResponse,
    Table1Request,
    Table1Response,
)
from repro.service.routes import CODE_STATUS

PLAN = RunPlan(
    algorithm="fast-sleeping", family="gnp-sparse", n=64, seed=1
)

#: Pinned canonical forms.  If one of these strings moves, every byte
#: stored in a service cache and every client parser silently breaks --
#: bump SERVICE_VERSION instead of editing the expectation.
GOLDEN_SOLVE_REQUEST = SolveRequest(plan=PLAN.to_dict(), seed=7)
GOLDEN_SOLVE_REQUEST_JSON = (
    '{"deadline_s":null,"mode":"sync","plan":' + PLAN.to_json() + ","
    '"request_version":1,"seed":7}'
)
GOLDEN_SOLVE_RESPONSE = SolveResponse(
    plan=PLAN.to_dict(),
    seed=7,
    trial_key="abc123-7",
    mis_size=20,
    row={"algorithm": "fast-sleeping", "valid": True},
)
GOLDEN_SOLVE_RESPONSE_JSON = (
    '{"mis_size":20,"plan":' + PLAN.to_json() + ',"row":'
    '{"algorithm":"fast-sleeping","valid":true},"seed":7,'
    '"service_version":1,"trial_key":"abc123-7"}'
)
GOLDEN_ERROR = ErrorEnvelope(
    code="backpressure", message="worker queue is full"
)
GOLDEN_ERROR_JSON = (
    '{"error":{"code":"backpressure","detail":null,'
    '"message":"worker queue is full"},"service_version":1}'
)


class TestCanonicalJson:
    def test_solve_request_golden(self):
        assert GOLDEN_SOLVE_REQUEST.to_json() == GOLDEN_SOLVE_REQUEST_JSON

    def test_solve_response_golden(self):
        assert GOLDEN_SOLVE_RESPONSE.to_json() == GOLDEN_SOLVE_RESPONSE_JSON

    def test_error_envelope_golden(self):
        assert GOLDEN_ERROR.to_json() == GOLDEN_ERROR_JSON

    def test_canonical_form_is_sorted_and_compact(self):
        for obj in (
            GOLDEN_SOLVE_REQUEST, GOLDEN_SOLVE_RESPONSE, GOLDEN_ERROR,
        ):
            text = obj.to_json()
            assert text == json.dumps(
                json.loads(text), sort_keys=True, separators=(",", ":")
            )

    @pytest.mark.parametrize(
        "obj",
        [
            GOLDEN_SOLVE_REQUEST,
            GOLDEN_SOLVE_RESPONSE,
            GOLDEN_ERROR,
            SweepRequest(manifest={"manifest_version": 1}),
            SweepResponse(
                manifest_key="k", name="s", trial_keys=("a-1",),
                rows=({"n": 8},),
            ),
            Table1Request(plan=PLAN.to_dict(), sizes=(16, 32), trials=2),
            Table1Response(
                plan=PLAN.to_dict(), sizes=(16,), trials=1, seed0=0,
                title="T", headers=("a", "b"), rows=(("1", "2"),),
            ),
            JobStatus(job_id="job-1", kind="solve", state="queued"),
        ],
    )
    def test_round_trip(self, obj):
        rebuilt = type(obj).from_json(obj.to_json())
        assert rebuilt == obj
        assert rebuilt.to_json() == obj.to_json()

    def test_equal_payloads_are_byte_identical(self):
        a = SolveRequest(plan=PLAN.to_dict(), seed=7)
        b = SolveRequest(plan=dict(reversed(PLAN.to_dict().items())), seed=7)
        assert a.to_json() == b.to_json()


class TestRejection:
    """Unknown versions and fields fail loudly, naming the fix."""

    def test_unknown_request_version(self):
        data = GOLDEN_SOLVE_REQUEST.to_dict()
        data["request_version"] = 99
        with pytest.raises(SchemaError, match="version 99") as info:
            SolveRequest.from_dict(data)
        assert info.value.code == "unsupported_version"

    def test_unknown_response_version(self):
        data = GOLDEN_SOLVE_RESPONSE.to_dict()
        data["service_version"] = 2
        with pytest.raises(SchemaError) as info:
            SolveResponse.from_dict(data)
        assert info.value.code == "unsupported_version"

    def test_unknown_field_rejected_naming_known_fields(self):
        data = GOLDEN_SOLVE_REQUEST.to_dict()
        data["timeout"] = 5
        with pytest.raises(SchemaError, match=r"\['timeout'\]") as info:
            SolveRequest.from_dict(data)
        assert info.value.code == "unknown_field"
        assert "deadline_s" in str(info.value)  # the fix is discoverable

    def test_non_object_body(self):
        with pytest.raises(SchemaError) as info:
            SolveRequest.from_dict([1, 2])
        assert info.value.code == "bad_request"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(plan="not-a-dict"), "serialized RunPlan"),
            (dict(plan={}, seed="x"), "seed must be an int"),
            (dict(plan={}, deadline_s=-1), "deadline_s must be"),
            (dict(plan={}, mode="later"), "mode must be"),
        ],
    )
    def test_solve_request_validation(self, kwargs, match):
        with pytest.raises((SchemaError, ValueError), match=match):
            SolveRequest(**kwargs)

    def test_table1_request_validation(self):
        with pytest.raises(ValueError, match="sizes"):
            Table1Request(plan={}, sizes=())
        with pytest.raises(ValueError, match="trials"):
            Table1Request(plan={}, sizes=(8,), trials=0)

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            ErrorEnvelope(code="oops", message="x")

    def test_error_envelope_requires_error_key(self):
        with pytest.raises(SchemaError):
            ErrorEnvelope.from_dict({"code": "internal"})


class TestErrorCodes:
    def test_every_code_has_an_http_status(self):
        assert set(CODE_STATUS) == set(ERROR_CODES)

    def test_code_status_classes(self):
        # Client errors are 4xx, service-side failures 5xx.
        assert CODE_STATUS["backpressure"] == 429
        assert CODE_STATUS["deadline_exceeded"] == 504
        assert CODE_STATUS["worker_killed"] == 502
        assert CODE_STATUS["not_found"] == 404
        for code in (
            "bad_request", "unknown_field", "unsupported_version",
            "invalid_plan", "invalid_manifest",
        ):
            assert CODE_STATUS[code] == 400

    def test_service_version_is_one(self):
        # Bumping the wire version is a breaking change; this pin makes
        # it a deliberate one.
        assert SERVICE_VERSION == 1

"""Unit tests for the protocol action vocabulary."""

from repro.sim.actions import LISTEN, SendAndReceive, Sleep


class TestSendAndReceive:
    def test_holds_messages(self):
        action = SendAndReceive({1: "hi", 2: 42})
        assert action.messages == {1: "hi", 2: 42}

    def test_default_is_empty(self):
        assert SendAndReceive().messages == {}

    def test_listen_is_empty_send(self):
        assert isinstance(LISTEN, SendAndReceive)
        assert LISTEN.messages == {}

    def test_frozen(self):
        import pytest

        action = SendAndReceive({1: "x"})
        with pytest.raises(AttributeError):
            action.messages = {}


class TestSleep:
    def test_duration(self):
        assert Sleep(7).duration == 7

    def test_zero_duration_allowed(self):
        assert Sleep(0).duration == 0

    def test_equality(self):
        assert Sleep(3) == Sleep(3)
        assert Sleep(3) != Sleep(4)

"""Unit tests for execution tracing."""

from repro.sim import SendAndReceive, Sleep, simulate
from repro.sim.protocol import Protocol
from repro.sim.trace import NULL_TRACE, Trace, make_trace


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(0, 1, "send", to=2)
        trace.record(1, 1, "decide", value=True)
        assert len(trace) == 2
        assert trace.by_kind("send")[0].data == {"to": 2}
        assert [e.kind for e in trace.by_node(1)] == ["send", "decide"]

    def test_bounded(self):
        trace = Trace(max_events=2)
        for i in range(5):
            trace.record(i, 0, "x")
        assert len(trace) == 2
        assert trace.truncated

    def test_null_trace_records_nothing(self):
        NULL_TRACE.record(0, 0, "x")
        assert len(NULL_TRACE) == 0
        assert not NULL_TRACE.enabled

    def test_make_trace(self):
        assert make_trace(False) is NULL_TRACE
        assert make_trace(True).enabled


class TestSimulatorTracing:
    def test_events_recorded_during_run(self):
        class Chatty(Protocol):
            def run(self, ctx):
                yield SendAndReceive({u: "m" for u in ctx.neighbors})
                ctx.trace("custom", note="hi")
                yield Sleep(2)

        trace = Trace()
        simulate({0: [1], 1: [0]}, lambda v: Chatty(), trace=trace)
        kinds = {e.kind for e in trace.events}
        assert "send" in kinds
        assert "custom" in kinds
        assert "sleep" in kinds
        assert "terminate" in kinds

    def test_send_events_have_recipients(self):
        class OneShot(Protocol):
            def run(self, ctx):
                yield SendAndReceive({u: "m" for u in ctx.neighbors})

        trace = Trace()
        simulate({0: [1], 1: [0]}, lambda v: OneShot(), trace=trace)
        sends = trace.by_kind("send")
        assert {e.data["to"] for e in sends} == {0, 1}

"""Unit tests for k-ranks and evaluation sequences (Definitions 1-2)."""

import pytest

from repro.core.ranks import (
    evaluation_sequence,
    full_rank_order,
    k_rank,
    rank_less,
    ranks_unique,
)


class TestKRank:
    def test_zero_rank_is_sentinel(self):
        assert k_rank((1, 0, 1), 0) == (-1,)

    def test_orders_bits_from_x_k_down(self):
        # bits = (X_1, X_2, X_3); r_3 = (X_3, X_2, X_1, -1).
        assert k_rank((1, 0, 1), 3) == (1, 0, 1, -1)
        assert k_rank((0, 1, 1), 3) == (1, 1, 0, -1)

    def test_partial_rank(self):
        assert k_rank((1, 0, 1), 2) == (0, 1, -1)

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            k_rank((1, 0), 3)
        with pytest.raises(ValueError):
            k_rank((1, 0), -1)

    def test_prefix_property(self):
        # If r_k(a) <= r_k(b) and X_k equal, then the (k-1)-ranks compare
        # the same way (used throughout the proof of Lemma 4).
        a, b = (1, 1, 0), (0, 1, 0)
        assert a[2] == b[2]  # X_3 equal
        assert (k_rank(a, 3) < k_rank(b, 3)) == (
            k_rank(a, 2) < k_rank(b, 2)
        )


class TestRankLess:
    def test_lexicographic(self):
        assert rank_less((0, 1), (1, 1), 2)  # (1,0,-1) < (1,1,-1)
        assert not rank_less((1, 1), (0, 1), 2)

    def test_equal_not_less(self):
        assert not rank_less((1, 0), (1, 0), 2)


class TestEvaluationSequence:
    def test_sorted_by_decreasing_k_minus_1_rank(self):
        bits_of = {
            "a": (1, 1),  # r_1 = (1, -1)
            "b": (0, 1),  # r_1 = (0, -1)
            "c": (1, 0),  # r_1 = (1, -1)  (tie with a on r_1)
        }
        seq = evaluation_sequence(["a", "b", "c"], bits_of, k=2)
        assert seq[-1] == "b"
        assert set(seq[:2]) == {"a", "c"}

    def test_needs_positive_k(self):
        with pytest.raises(ValueError):
            evaluation_sequence(["a"], {"a": (1,)}, k=0)

    def test_deterministic_tiebreak(self):
        bits_of = {1: (1,), 2: (1,)}
        assert evaluation_sequence([1, 2], bits_of, k=1) == (
            evaluation_sequence([2, 1], bits_of, k=1)
        )


class TestFullRankOrder:
    def test_orders_by_decreasing_full_rank(self):
        bits_of = {0: (0, 0), 1: (1, 1), 2: (0, 1)}
        # K-ranks: 0 -> (0,0,-1); 1 -> (1,1,-1); 2 -> (1,0,-1).
        assert full_rank_order(bits_of) == [1, 2, 0]

    def test_empty(self):
        assert full_rank_order({}) == []


class TestRanksUnique:
    def test_unique(self):
        assert ranks_unique({0: (0, 1), 1: (1, 1)})

    def test_duplicate(self):
        assert not ranks_unique({0: (0, 1), 1: (0, 1)})

    def test_empty(self):
        assert ranks_unique({})

"""Tests for Corollary 1 (lex-first MIS) and Lemma 6 (deferred decisions)."""

import networkx as nx
import pytest

from repro.analysis import (
    check_lexicographically_first,
    recover_priorities,
    reference_mis,
    replay_deferred_decisions,
    verify_lemma6,
    verify_lemma6_everywhere,
)
from repro.core import FastSleepingMIS
from repro.sim import Simulator

from helpers import run_mis


class TestCorollary1Algorithm1:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_equality_gnp(self, seed):
        graph = nx.gnp_random_graph(50, 0.1, seed=seed)
        result = run_mis(graph, "sleeping", seed=seed)
        assert check_lexicographically_first(result)

    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: nx.cycle_graph(20),
            lambda: nx.complete_graph(15),
            lambda: nx.star_graph(14),
            lambda: nx.random_regular_graph(4, 20, seed=1),
        ],
        ids=["cycle", "complete", "star", "regular"],
    )
    def test_exact_equality_structured(self, graph_builder):
        graph = graph_builder()
        result = run_mis(graph, "sleeping", seed=5)
        assert check_lexicographically_first(result)

    def test_reference_is_valid_mis(self, gnp60):
        from repro.graphs import assert_valid_mis

        result = run_mis(gnp60, "sleeping", seed=1)
        assert_valid_mis(gnp60, reference_mis(result))


class TestCorollary1Algorithm2:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_equality(self, seed):
        graph = nx.gnp_random_graph(60, 0.08, seed=seed)
        result = run_mis(graph, "fast-sleeping", seed=seed)
        assert check_lexicographically_first(result)

    def test_equality_with_forced_base_cases(self):
        # Shallow depth pushes most nodes into greedy base cases, making
        # the combined (bits, base-rank) priority do real work.
        graph = nx.gnp_random_graph(40, 0.12, seed=2)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(depth=1), seed=2
        ).run()
        assert check_lexicographically_first(result)


class TestRecoverPriorities:
    def test_rejects_uninstrumented_protocols(self, gnp60):
        result = run_mis(gnp60, "luby", seed=0)
        with pytest.raises(TypeError):
            recover_priorities(result)

    def test_priorities_comparable(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=0)
        priorities = sorted(recover_priorities(result).values())
        assert len(priorities) == 60


class TestLemma6:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_violations_anywhere(self, seed):
        graph = nx.gnp_random_graph(50, 0.1, seed=seed)
        result = run_mis(graph, "sleeping", seed=seed)
        assert verify_lemma6_everywhere(result) == []

    def test_root_call_labels_partition_members(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=3)
        outcome = replay_deferred_decisions(result, "")
        assert set(outcome.labels) == set(outcome.order)
        assert outcome.sequence_fixed() | outcome.neighbor_fixed() == set(
            outcome.order
        )
        assert not outcome.sequence_fixed() & outcome.neighbor_fixed()

    def test_first_in_sequence_is_sequence_fixed(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=3)
        outcome = replay_deferred_decisions(result, "")
        assert outcome.labels[outcome.order[0]] == "sequence"

    def test_unknown_path_rejected(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=3)
        with pytest.raises(KeyError):
            replay_deferred_decisions(result, "LLLLLLLLLLLL")

    def test_base_call_rejected(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=1)
        from repro.core import SleepingMIS

        result = Simulator(
            graph, lambda v: SleepingMIS(depth=1), seed=4
        ).run()
        from repro.analysis import aggregate_calls

        base_paths = [
            p for p, a in aggregate_calls(result).items() if a.k == 0
        ]
        if base_paths:
            with pytest.raises(ValueError):
                replay_deferred_decisions(result, base_paths[0])

    def test_lemma6_on_specific_call(self, gnp60):
        result = run_mis(gnp60, "sleeping", seed=3)
        assert verify_lemma6(result, "") == []


class TestLemma6TruncationBoundary:
    """Lemma 6 is samplewise-exact only for Algorithm 1 (see module docs)."""

    def test_forced_base_cases_break_samplewise_replay(self):
        # Algorithm 2 with depth 1 funnels nodes into greedy base cases
        # whose fresh ranks differ from the X-bit continuation: the replay
        # must detect samplewise violations (the equality is only in
        # distribution, which is all Corollary 1 needs).
        import networkx as nx

        from repro.core import FastSleepingMIS
        from repro.sim import Simulator

        graph = nx.gnp_random_graph(60, 0.1, seed=3)
        result = Simulator(
            graph, lambda v: FastSleepingMIS(depth=1), seed=3
        ).run()
        assert verify_lemma6_everywhere(result) != []
        # ...while the realized run is still a correct lex-first MIS of
        # its own (bits, base-rank) priorities.
        assert check_lexicographically_first(result)

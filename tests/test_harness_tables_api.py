"""Tests for the trial harness, table builders, and the top-level API."""

import networkx as nx
import pytest

from repro.analysis.complexity import (
    MEASURES,
    all_valid,
    mean_by_size,
    run_trial,
    summarize,
    sweep,
)
from repro.analysis.tables import PAPER_CLAIMS, Table, build_table1
from repro.api import algorithm_names, make_protocol_factory, solve_mis


class TestRunTrial:
    def test_returns_result_and_row(self, gnp60):
        result, trial = run_trial(gnp60, "luby", seed=1, family="test")
        assert trial.n == 60
        assert trial.valid
        assert trial.family == "test"
        assert trial.worst_case_rounds == result.rounds

    def test_protocol_kwargs_forwarded(self, gnp60):
        result, trial = run_trial(
            gnp60, "fast-sleeping", seed=1, greedy_constant=10
        )
        assert result.protocols[0].greedy_constant == 10

    def test_energy_accounted(self, gnp60):
        _, trial = run_trial(gnp60, "luby", seed=1)
        assert trial.total_energy > 0


class TestSweep:
    def test_row_counts(self):
        rows = sweep("luby", "cycle", sizes=[10, 20], trials=2, seed0=0)
        assert len(rows) == 4
        assert {row.n for row in rows} == {10, 20}

    def test_all_valid(self):
        rows = sweep("greedy", "gnp-sparse", sizes=[20, 40], trials=2, seed0=0)
        assert all_valid(rows)

    def test_reproducible(self):
        a = sweep("luby", "cycle", sizes=[12], trials=2, seed0=5)
        b = sweep("luby", "cycle", sizes=[12], trials=2, seed0=5)
        assert [r.worst_case_rounds for r in a] == [
            r.worst_case_rounds for r in b
        ]


class TestSummarize:
    def test_statistics(self):
        rows = sweep("luby", "cycle", sizes=[10], trials=3, seed0=0)
        summary = summarize(rows, "node_averaged_awake")
        assert 10 in summary
        stats = summary[10]
        assert stats["count"] == 3
        eps = 1e-9
        assert stats["min"] - eps <= stats["mean"] <= stats["max"] + eps

    def test_unknown_measure_rejected(self):
        with pytest.raises(KeyError):
            summarize([], "nope")

    def test_mean_by_size_sorted(self):
        rows = sweep("luby", "cycle", sizes=[20, 10], trials=1, seed0=0)
        sizes, means = mean_by_size(rows, "worst_case_rounds")
        assert sizes == [10, 20]
        assert len(means) == 2

    def test_all_measures_supported(self):
        rows = sweep("luby", "cycle", sizes=[10], trials=1, seed0=0)
        for measure in MEASURES:
            assert summarize(rows, measure)


class TestTable:
    def test_text_rendering(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, "x")
        text = table.to_text()
        assert "Demo" in text
        assert "1" in text and "x" in text

    def test_markdown_rendering(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2)
        md = table.to_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_row_width_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_table_renders(self):
        assert "Demo" in Table("Demo", ["a"]).to_text()


class TestBuildTable1:
    def test_structure(self):
        table = build_table1(
            sizes=(16, 32),
            algorithms=("luby", "fast-sleeping"),
            trials=1,
            seed0=1,
        )
        # 2 algorithms x 4 measures.
        assert len(table.rows) == 8
        assert table.headers[:2] == ["algorithm", "measure"]
        assert table.headers[-1] == "paper"

    def test_paper_claims_present_for_all_algorithms(self):
        for name in algorithm_names():
            assert name in PAPER_CLAIMS


class TestAPI:
    def test_algorithm_names(self):
        names = algorithm_names()
        assert "sleeping" in names
        assert "fast-sleeping" in names
        assert names == sorted(names)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm 'nope'"):
            solve_mis(nx.path_graph(3), algorithm="nope")

    def test_factory_builds_fresh_instances(self):
        factory = make_protocol_factory("luby")
        assert factory(0) is not factory(1)

    def test_solve_mis_defaults(self):
        result = solve_mis(nx.cycle_graph(9), seed=2)
        from repro.graphs import assert_valid_mis

        assert_valid_mis(nx.cycle_graph(9), result.mis)

    def test_kwargs_reach_protocol(self):
        result = solve_mis(
            nx.cycle_graph(9), algorithm="sleeping", seed=2, depth=6
        )
        assert all(len(p.x_bits) == 6 for p in result.protocols.values())

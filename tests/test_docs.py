"""Keep the documentation in sync with the code.

These tests fail when someone adds an algorithm, graph family, or
experiment without documenting it -- cheap insurance for a repository whose
main deliverable is a documented reproduction.
"""

import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing documentation file {name}"
    return path.read_text()


class TestFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/model.md",
            "docs/algorithms.md",
            "docs/api.md",
        ],
    )
    def test_doc_present_and_nonempty(self, name):
        assert len(read(name)) > 500


class TestReadmeAccuracy:
    def test_all_algorithms_mentioned(self):
        from repro.api import algorithm_names

        readme = read("README.md")
        for name in algorithm_names():
            assert name in readme, f"algorithm {name!r} missing from README"

    def test_paper_reference(self):
        readme = read("README.md")
        assert "PODC 2020" in readme
        assert "2006.07449" in readme

    def test_quickstart_code_runs(self):
        # The README quickstart block, executed verbatim in spirit.
        import networkx as nx

        from repro import solve_mis

        graph = nx.gnp_random_graph(100, 0.05, seed=1)
        result = solve_mis(graph, algorithm="fast-sleeping", seed=1)
        assert result.mis
        assert result.node_averaged_awake_complexity > 0


class TestDesignExperimentIndex:
    def test_every_experiment_has_a_bench_file(self):
        design = read("DESIGN.md")
        import re

        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert targets, "DESIGN.md lists no benchmark targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in design, (
                f"{path.name} not listed in DESIGN.md's experiment index"
            )

    def test_experiment_ids_continuous(self):
        design = read("DESIGN.md")
        import re

        ids = sorted(
            int(m) for m in re.findall(r"\| E(\d+) \|", design)
        )
        assert ids == list(range(1, len(ids) + 1))


class TestExperimentsRecordsAll:
    def test_every_experiment_discussed(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        import re

        for exp_id in re.findall(r"\| (E\d+) \|", design):
            assert exp_id in experiments, (
                f"{exp_id} indexed in DESIGN.md but absent from "
                f"EXPERIMENTS.md"
            )


class TestExamplesDocumented:
    def test_every_example_has_docstring_and_main(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith('"""'), path.name
            assert "def main()" in text, path.name
            assert 'if __name__ == "__main__":' in text, path.name

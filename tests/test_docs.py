"""Keep the documentation in sync with the code.

These tests fail when someone adds an algorithm, graph family, engine or
RNG or result-type choice, benchmark artifact, or experiment without
documenting it -- cheap insurance for a repository whose main deliverable
is a documented reproduction.  ``TestDocLinks`` additionally checks every
relative link and anchor in the markdown docs, so renames break CI
instead of readers.  (CI runs this file as its own ``docs`` job; see
.github/workflows/ci.yml.)
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Every markdown file the docs job checks for dead links/anchors.
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/model.md",
    "docs/algorithms.md",
    "docs/api.md",
    "docs/performance.md",
    "docs/sweeps.md",
    "docs/service.md",
)


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing documentation file {name}"
    return path.read_text()


class TestFilesExist:
    @pytest.mark.parametrize("name", DOC_FILES)
    def test_doc_present_and_nonempty(self, name):
        assert len(read(name)) > 500


class TestReadmeAccuracy:
    def test_all_algorithms_mentioned(self):
        from repro.api import algorithm_names

        readme = read("README.md")
        for name in algorithm_names():
            assert name in readme, f"algorithm {name!r} missing from README"

    def test_paper_reference(self):
        readme = read("README.md")
        assert "PODC 2020" in readme
        assert "2006.07449" in readme

    def test_quickstart_code_runs(self):
        # The README quickstart blocks, executed verbatim in spirit
        # (smaller n so the test stays fast).
        import networkx as nx

        from repro import solve_mis
        from repro.graphs.arrays import gnp_arrays

        arrays = gnp_arrays(500, 8 / 499, seed=1)
        fast = solve_mis(arrays, algorithm="fast-sleeping", seed=1,
                         engine="vectorized", rng="batched", result="arrays")
        assert fast.mis
        assert fast.node_stats  # lazy legacy view works

        graph = nx.gnp_random_graph(100, 0.05, seed=1)
        result = solve_mis(graph, algorithm="fast-sleeping", seed=1)
        assert result.mis
        assert result.node_averaged_awake_complexity > 0


class TestDesignExperimentIndex:
    def test_every_experiment_has_a_bench_file(self):
        design = read("DESIGN.md")
        import re

        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert targets, "DESIGN.md lists no benchmark targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in design, (
                f"{path.name} not listed in DESIGN.md's experiment index"
            )

    def test_experiment_ids_continuous(self):
        design = read("DESIGN.md")
        import re

        ids = sorted(
            int(m) for m in re.findall(r"\| E(\d+) \|", design)
        )
        assert ids == list(range(1, len(ids) + 1))


class TestExperimentsRecordsAll:
    def test_every_experiment_discussed(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        import re

        for exp_id in re.findall(r"\| (E\d+) \|", design):
            assert exp_id in experiments, (
                f"{exp_id} indexed in DESIGN.md but absent from "
                f"EXPERIMENTS.md"
            )


class TestExamplesDocumented:
    def test_every_example_has_docstring_and_main(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith('"""'), path.name
            assert "def main()" in text, path.name
            assert 'if __name__ == "__main__":' in text, path.name


class TestPerformanceGuideFreshness:
    """docs/performance.md must cover every public pipeline choice.

    Each choice is asserted in backticked form (`` `name` ``) so a value
    can only pass by being genuinely documented, not by substring luck.
    """

    def test_every_engine_choice_documented(self):
        from repro.sim.batch import ENGINES

        guide = read("docs/performance.md")
        for engine in ENGINES:
            assert f"`{engine}`" in guide, f"engine {engine!r} undocumented"

    def test_every_rng_stream_documented(self):
        from repro.sim.rng import RNG_STREAMS

        guide = read("docs/performance.md")
        for stream in RNG_STREAMS:
            assert f"`{stream}`" in guide, f"rng stream {stream!r} undocumented"

    def test_every_result_kind_documented(self):
        from repro.sim.array_result import RESULT_KINDS

        guide = read("docs/performance.md")
        for kind in RESULT_KINDS:
            assert f"`{kind}`" in guide, f"result kind {kind!r} undocumented"

    def test_every_graph_source_documented(self):
        from repro.graphs.arrays import GRAPH_SOURCES

        guide = read("docs/performance.md")
        for source in GRAPH_SOURCES:
            assert f"`{source}`" in guide, (
                f"graph source {source!r} undocumented"
            )

    def test_every_graph_rng_documented(self):
        from repro.graphs.arrays import GRAPH_RNGS

        guide = read("docs/performance.md")
        assert "`graph_rng=`" in guide or "`graph_rng`" in guide
        for stream in GRAPH_RNGS:
            assert f"`{stream}`" in guide, (
                f"graph_rng stream {stream!r} undocumented"
            )

    def test_support_matrix_names_every_algorithm(self):
        from repro.api import algorithm_names

        guide = read("docs/performance.md")
        for name in algorithm_names():
            assert f"`{name}`" in guide, (
                f"algorithm {name!r} missing from the support matrix"
            )

    def test_support_matrix_matches_capability_registry(self):
        """The matrix renders ENGINE_CAPABILITIES, the dispatch registry.

        A row that still tells a "generator-only" story for an algorithm
        the registry vectorizes (or vice versa) is exactly the staleness
        that shipped in the PR 3 era for ghaffari/abi -- the registry is
        the single source of truth, and this test makes the rendered
        matrix track it.
        """
        from repro.api import algorithm_names
        from repro.sim.fast_engine import ENGINE_CAPABILITIES

        assert set(ENGINE_CAPABILITIES) == set(algorithm_names())
        guide = read("docs/performance.md")
        rows = [
            line for line in guide.splitlines() if line.startswith("| `")
        ]
        for name, capability in ENGINE_CAPABILITIES.items():
            matching = [
                row for row in rows if row.startswith(f"| `{name}`")
            ]
            assert matching, f"no support-matrix row for {name!r}"
            assert any(
                "yes" in row and f"`{capability.engine}`" in row
                for row in matching
            ), (
                f"support-matrix row for {name!r} must say yes and name "
                f"`{capability.engine}` (the registry entry)"
            )

    def test_every_bench_artifact_referenced(self):
        guide = read("docs/performance.md")
        artifacts = sorted(
            (ROOT / "benchmarks" / "artifacts").glob("BENCH_*.json")
        )
        assert artifacts, "no committed benchmark artifacts found"
        for path in artifacts:
            assert path.name in guide, (
                f"{path.name} not referenced in docs/performance.md"
            )

    def test_array_family_registry_documented(self):
        from repro.graphs.arrays import ARRAY_FAMILIES

        guide = read("docs/performance.md")
        for family in ARRAY_FAMILIES:
            assert f"`{family}`" in guide, (
                f"array-native family {family!r} undocumented"
            )


def _github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, punctuation dropped,
    spaces to hyphens)."""
    text = heading.strip().lower()
    text = re.sub(r"`", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(text: str) -> set:
    anchors = set()
    in_code = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_code = not in_code
            continue
        if not in_code and line.startswith("#"):
            anchors.add(_github_anchor(line.lstrip("#")))
    return anchors


_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


class TestDocLinks:
    """Every relative link and anchor in the docs must resolve."""

    @pytest.mark.parametrize("name", DOC_FILES)
    def test_links_resolve(self, name):
        text = read(name)
        base = (ROOT / name).parent
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = ROOT / name if not path_part else (base / path_part)
            if not dest.exists():
                broken.append(target)
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in _anchors(dest.read_text()):
                    broken.append(target)
        assert not broken, f"dead links in {name}: {broken}"

    def test_docs_reference_the_performance_guide(self):
        # The guide is the entry point for every tuning knob; the README
        # and API docs must point readers at it.
        assert "docs/performance.md" in read("README.md")
        assert "performance.md" in read("docs/api.md")

"""MIS in the beeping model (Afek et al., Distributed Computing 2013).

Section 1.5 of the paper contrasts the sleeping model with the **beeping
model**, where per round a node either *beeps* or *listens*, and a
listener learns only whether at least one neighbor beeped (a single bit of
carrier sense -- far weaker than CONGEST messages).  "Sleeping is
orthogonal to beeping"; implementing a beeping MIS lets the benchmarks put
the two models side by side on the same simulator.

The algorithm implemented here is the classic rank-contention scheme
(in the style of Afek et al.'s exchange of random values, bit by bit):

Each *phase*, every live node draws a ``B = ceil(4 log2 n)``-bit random
rank and plays a knockout over the bits, most significant first:

* a contender whose current bit is 1 **beeps**; a contender whose bit is
  0 **listens** and drops out of contention if it hears a beep;
* after the B bits, surviving contenders beep ``JOIN`` and enter the MIS;
  any live listener that hears the JOIN beep is eliminated.

No two adjacent nodes can both survive a phase with distinct ranks: at
their first differing bit the higher one is still contending (or was
already knocked out, in which case it is not a survivor) and its beep
knocks the lower one out.  The globally maximum rank always survives, so
every phase makes progress; with fresh random ranks the number of phases
is logarithmic in practice (the known worst-case bounds for beeping MIS
are polylogarithmic).

Beeping nodes cannot sleep here (every live node is awake for all
``B + 1`` rounds of every phase), which is exactly the contrast the
benchmark draws: awake time per node is ``Theta(log n)`` *per phase*
versus the sleeping algorithms' O(1) total average.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from ..sim.actions import SendAndReceive
from ..sim.context import NodeContext
from ..sim.protocol import MISProtocol

#: The only payload a beep may carry: bare carrier sense.
BEEP = True


class BeepingMIS(MISProtocol):
    """MIS by bitwise rank knockout in the beeping model.

    Parameters
    ----------
    rank_bits:
        Override the per-phase rank width (default ``ceil(4 log2 n)``,
        making ties -- the Monte Carlo failure mode -- polynomially
        unlikely).
    max_phases:
        Optional phase budget; exceeding it leaves the node undecided.
    """

    def __init__(
        self,
        rank_bits: Optional[int] = None,
        max_phases: Optional[int] = None,
    ):
        super().__init__()
        if rank_bits is not None and rank_bits < 1:
            raise ValueError(f"rank_bits must be positive, got {rank_bits}")
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        self.rank_bits = rank_bits
        self.max_phases = max_phases
        self.phases_run = 0

    def _beep(self, ctx: NodeContext) -> Generator:
        inbox = yield SendAndReceive({u: BEEP for u in ctx.neighbors})
        return bool(inbox)

    def _listen(self) -> Generator:
        inbox = yield SendAndReceive({})
        return bool(inbox)

    def run(self, ctx: NodeContext) -> Generator:
        bits = (
            self.rank_bits
            if self.rank_bits is not None
            else max(1, math.ceil(4 * math.log2(max(ctx.n, 2))))
        )
        if ctx.degree == 0:
            self._decide(ctx, True, "beeping_isolated")
            return

        phase = 0
        while self.in_mis is None:
            if self.max_phases is not None and phase >= self.max_phases:
                return
            self.phases_run = phase + 1
            rank = ctx.rng.getrandbits(bits)
            contending = True

            # Bitwise knockout, most significant bit first.
            for position in range(bits - 1, -1, -1):
                my_bit = (rank >> position) & 1
                if contending and my_bit == 1:
                    yield from self._beep(ctx)
                else:
                    heard = yield from self._listen()
                    if contending and heard:
                        contending = False

            # JOIN round: survivors beep; live listeners that hear a JOIN
            # are dominated and leave.
            if contending:
                self._decide(ctx, True, "beeping_won")
                yield from self._beep(ctx)
                return
            heard = yield from self._listen()
            if heard:
                self._decide(ctx, False, "beeping_eliminated")
                return
            phase += 1

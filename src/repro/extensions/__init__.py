"""Extensions beyond the paper's MIS results.

Two directions the paper itself points at:

* **maximal matching** (conclusion: the sleeping model "for various
  problems") via the classic line-graph reduction -- a maximal matching of
  G is exactly an MIS of L(G);
* **the beeping model** (Section 1.5: "sleeping is orthogonal to beeping")
  -- an MIS algorithm using only carrier-sense beeps, for side-by-side
  comparison with the sleeping algorithms on the same simulator.
"""

from .beeping import BeepingMIS
from .matching import (
    is_maximal_matching,
    line_graph_with_edge_map,
    solve_maximal_matching,
)

__all__ = [
    "BeepingMIS",
    "is_maximal_matching",
    "line_graph_with_edge_map",
    "solve_maximal_matching",
]

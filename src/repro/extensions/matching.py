"""Maximal matching in the sleeping model via the line-graph reduction.

A matching M of G is maximal iff M is a maximal independent set of the
line graph L(G) (edges of G become nodes; two are adjacent iff they share
an endpoint).  Running any of the repository's MIS protocols over L(G)
therefore yields a maximal matching with the same complexity guarantees,
now counted per *edge agent* -- e.g. O(1) node-averaged awake complexity
per edge with Algorithm 2.

Implementation-wise each edge is simulated as its own agent.  In a real
deployment an edge agent would be hosted by one of its endpoints (the
standard simulation of edge processes by node processes costs only a
constant factor, since an endpoint can multiplex its incident edges'
messages); the simulator runs the edge agents directly, which measures
the same round/awake quantities.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Tuple

import networkx as nx

from ..api import make_protocol_factory
from ..sim.metrics import RunResult
from ..sim.network import Simulator

Edge = Tuple[Any, Any]


def _normalized_edge(u: Any, v: Any) -> Edge:
    return (u, v) if repr(u) <= repr(v) else (v, u)


def line_graph_with_edge_map(graph: Any) -> Tuple[nx.Graph, Dict[int, Edge]]:
    """Build L(G) with integer node labels and the label -> edge mapping.

    Integer labels keep CONGEST payloads small when MIS protocols send
    node ids.
    """
    if not hasattr(graph, "edges"):
        graph = nx.Graph(
            (u, v) for u, nbrs in graph.items() for v in nbrs
        )
    edges = sorted(
        (_normalized_edge(u, v) for u, v in graph.edges()), key=repr
    )
    index_of = {edge: i for i, edge in enumerate(edges)}
    line = nx.Graph()
    line.add_nodes_from(range(len(edges)))
    incident: Dict[Any, list] = {}
    for edge in edges:
        for endpoint in edge:
            incident.setdefault(endpoint, []).append(index_of[edge])
    for shared in incident.values():
        for i, a in enumerate(shared):
            for b in shared[i + 1 :]:
                line.add_edge(a, b)
    return line, {i: edge for edge, i in index_of.items()}


def solve_maximal_matching(
    graph: Any,
    algorithm: str = "fast-sleeping",
    *,
    seed: Optional[int] = 0,
    **protocol_kwargs: Any,
) -> Tuple[FrozenSet[Edge], RunResult]:
    """Compute a maximal matching by running an MIS protocol over L(G).

    Returns ``(matching, line_graph_run_result)``; the result's complexity
    measures are per edge agent.
    """
    line, edge_of = line_graph_with_edge_map(graph)
    factory = make_protocol_factory(algorithm, **protocol_kwargs)
    result = Simulator(line, factory, seed=seed).run()
    matching = frozenset(edge_of[i] for i in result.mis)
    return matching, result


def is_maximal_matching(graph: Any, matching: Iterable[Edge]) -> bool:
    """Whether ``matching`` is a matching of G that cannot be extended."""
    if not hasattr(graph, "edges"):
        graph = nx.Graph(
            (u, v) for u, nbrs in graph.items() for v in nbrs
        )
    chosen = {_normalized_edge(u, v) for u, v in matching}
    graph_edges = {_normalized_edge(u, v) for u, v in graph.edges()}
    if not chosen <= graph_edges:
        return False
    matched: Set[Any] = set()
    for u, v in chosen:
        if u in matched or v in matched:
            return False  # two matching edges share an endpoint
        matched.add(u)
        matched.add(v)
    # Maximality: every non-matching edge touches a matched endpoint.
    for u, v in graph_edges - chosen:
        if u not in matched and v not in matched:
            return False
    return True

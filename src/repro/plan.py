"""One validated :class:`RunPlan` behind every entry point.

The execution configuration of this package is a matrix of orthogonal
knobs -- ``engine`` (generator vs vectorized), ``rng`` (v1 per-node vs v2
batched node streams), ``graph_rng`` (v1 vs v2 graph sampling),
``graph_source`` (networkx vs direct-to-CSR), ``result`` (legacy dicts vs
struct-of-arrays), plus ``n_jobs`` and the per-protocol kwargs.  They
used to be threaded as loose parameters through ``solve_mis``,
``run_trial``, ``sweep``, ``build_table1``, ``run_trials`` and the CLI,
so every new knob re-touched every signature and invalid combinations
surfaced late (or as raw ``KeyError``/``TypeError``).

:class:`RunPlan` collapses the matrix into one frozen, hashable,
validated dataclass:

* **validated once, at construction** -- algorithm and family names are
  checked against their registries (typos get close-match suggestions),
  knob values against their choice tuples, and knob *combinations*
  against :data:`repro.sim.fast_engine.ENGINE_CAPABILITIES` and
  :func:`repro.graphs.arrays.resolve_graph_source`, with the same
  ``unsupported_reason``-style errors those layers raise (batched
  graph_rng + networkx source, vectorized engine + generator-only
  instrumentation, ...).  A plan that constructs is a plan that runs.
* **one place to add a knob** -- entry points accept ``plan=`` and pass
  the object through; their legacy keyword signatures remain as thin
  shims that build a plan internally.  A sixth knob is a new field here
  (subclassing works too: entry points and serialization iterate
  ``dataclasses.fields``, so an extended plan flows through unchanged).
* **canonically serializable** -- :meth:`to_json` emits a stable,
  sorted-key, compact JSON form (pinned by tests), :meth:`from_json`
  round-trips it, and :meth:`cache_key` hashes it.  The serialized plan
  is the ``config.plan`` block of every committed ``BENCH_*.json``
  artifact (validated by ``benchmarks/check_artifacts.py``) and the
  service-layer cache key (:mod:`repro.service` keys its result cache on
  ``cache_key()`` + seed): every run is deterministic given
  ``(plan, seed)``.

Argument-order convention (all entry points)
--------------------------------------------
Entry points taking a **concrete graph** take it first, algorithm second
(``solve_mis(graph, algorithm)``, ``run_trial(graph, algorithm)``,
``run_trials(graph_factory, algorithm)``); entry points that **build
graphs from a family** take ``(algorithm, family)``
(``sweep(algorithm, family)``).  Everything after the first two
parameters is keyword-only everywhere, so a positional call written
against the wrong sibling fails with a clear named-argument error
instead of silently binding a seed to ``trials``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from ._registry import unknown_name_error
from .graphs.arrays import DEFAULT_GRAPH_RNG, make_family, resolve_graph_source
from .sim.array_result import (
    resolve_dtype_kind,
    resolve_result_kind,
    validate_result_kind,
)
from .sim.batch import resolve_engine
from .sim.rng import DEFAULT_STREAM, validate_stream

#: Version of the serialized plan format.  Bump only on a breaking change
#: to the canonical form; :meth:`RunPlan.from_dict` rejects unknown
#: versions instead of guessing.
PLAN_VERSION = 1

P = TypeVar("P", bound="RunPlan")


@dataclass(frozen=True)
class RunPlan:
    """The full execution configuration of one (or many) MIS runs.

    Frozen and hashable: equal plans hash equally, so a plan (or its
    :meth:`cache_key`) can key caches, sweep manifests, and artifact
    config blocks.  Construction validates every field and every
    supported combination; see the module docstring.

    ``family``/``n``/``seed`` describe the *subject* when the plan builds
    its own graphs (:meth:`build_graph`, the CLI, sweeps); entry points
    called with an explicit graph object leave ``family`` ``None``.
    ``protocol_kwargs`` is stored as a sorted tuple of ``(name, value)``
    pairs (hashable); pass a plain dict, it is normalized.
    """

    algorithm: str = "fast-sleeping"
    family: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = 0
    engine: str = "auto"
    rng: str = DEFAULT_STREAM
    graph_rng: str = DEFAULT_GRAPH_RNG
    graph_source: str = "auto"
    result: str = "auto"
    dtype: str = "default"
    n_jobs: Optional[int] = None
    max_rounds: Optional[int] = None
    congest_bit_limit: Optional[int] = None
    protocol_kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.protocol_kwargs, Mapping):
            object.__setattr__(
                self,
                "protocol_kwargs",
                tuple(sorted(self.protocol_kwargs.items())),
            )
        else:
            object.__setattr__(
                self, "protocol_kwargs", tuple(self.protocol_kwargs)
            )
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        from .api import _registry  # lazy: api imports this module

        registry = _registry()
        if self.algorithm not in registry:
            raise unknown_name_error("algorithm", self.algorithm, registry)
        validate_stream(self.rng)
        validate_result_kind(self.result)
        resolve_dtype_kind(self.dtype)
        for name, value in (
            ("n", self.n),
            ("seed", self.seed),
            ("n_jobs", self.n_jobs),
            ("max_rounds", self.max_rounds),
            ("congest_bit_limit", self.congest_bit_limit),
        ):
            if value is not None and not isinstance(value, int):
                raise ValueError(
                    f"{name} must be an int or None, got {value!r}"
                )
        if self.n is not None and self.n < 0:
            raise ValueError(f"n must be >= 0, got {self.n}")
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ValueError(
                f"n_jobs={self.n_jobs} is not a valid worker count: pass "
                f"n_jobs=None (or 1) for sequential execution, or an "
                f"explicit positive worker count (e.g. "
                f"n_jobs=os.cpu_count() for one worker per CPU) -- "
                f"0/negative values are no longer silently coerced"
            )
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(
                f"max_rounds must be >= 1 or None, got {self.max_rounds}"
            )
        if self.congest_bit_limit is not None and self.congest_bit_limit < 1:
            raise ValueError(
                f"congest_bit_limit must be >= 1 or None, got "
                f"{self.congest_bit_limit}"
            )
        for key, _ in self.protocol_kwargs:
            if not isinstance(key, str):
                raise ValueError(
                    f"protocol kwarg names must be strings, got {key!r}"
                )
        if self.family is not None:
            # Validates the family name (close-match suggestions), the
            # graph_source/graph_rng names, and their combination.
            resolve_graph_source(self.graph_source, self.family, self.graph_rng)
        else:
            if self.graph_source != "auto":
                raise ValueError(
                    f"graph_source={self.graph_source!r} applies only to "
                    f"family-sampled graphs; set family= (and n=) in the "
                    f"plan, or leave graph_source='auto' when the graph "
                    f"is supplied by the caller"
                )
            if self.graph_rng != DEFAULT_GRAPH_RNG:
                raise ValueError(
                    f"graph_rng={self.graph_rng!r} applies only to "
                    f"family-sampled graphs; set family= (and n=) in the "
                    f"plan, or leave graph_rng={DEFAULT_GRAPH_RNG!r} when "
                    f"the graph is supplied by the caller"
                )
        # Validates the engine name and rejects unsupported engine x
        # (algorithm, instrumentation, protocol-kwarg) combinations with
        # fast_engine.unsupported_reason's message.
        resolve_engine(
            self.engine,
            self.algorithm,
            congest_bit_limit=self.congest_bit_limit,
            **self.protocol_dict(),
        )

    # -- resolution ----------------------------------------------------

    def protocol_dict(self) -> Dict[str, Any]:
        """The protocol kwargs as a plain dict (engines consume this)."""
        return dict(self.protocol_kwargs)

    @property
    def resolved_engine(self) -> str:
        """The concrete engine that will run: generators or vectorized."""
        return resolve_engine(
            self.engine,
            self.algorithm,
            congest_bit_limit=self.congest_bit_limit,
            **self.protocol_dict(),
        )

    @property
    def resolved_result(self) -> str:
        """The concrete result kind that will be built: legacy or arrays."""
        return resolve_result_kind(self.result, self.resolved_engine)

    @property
    def resolved_graph_source(self) -> Optional[str]:
        """The concrete graph source (``None`` for caller-supplied graphs)."""
        if self.family is None:
            return None
        return resolve_graph_source(
            self.graph_source, self.family, self.graph_rng
        )

    def replace(self: P, **changes: Any) -> P:
        """A new plan with ``changes`` applied -- re-validated on construction.

        The ``dataclasses.replace`` wrapper is how sweeps derive per-size
        or per-algorithm variants from one base plan
        (``plan.replace(algorithm="luby")``).
        """
        return replace(self, **changes)

    def build_graph(self, seed: Optional[int] = None) -> Any:
        """Sample this plan's seeded family graph from its resolved source.

        Requires ``family`` and ``n``; ``seed`` defaults to the plan's
        own.  Returns a :class:`repro.sim.fast_engine.GraphArrays` when
        the resolved source is ``"arrays"``, a ``networkx.Graph``
        otherwise (same seeded edge set under ``graph_rng="legacy"``).
        """
        if self.family is None or self.n is None:
            raise ValueError(
                "plan carries no graph spec (family=None or n=None); set "
                "both to build graphs from it, or pass a graph object to "
                "the entry point directly"
            )
        return make_family(
            self.family,
            self.n,
            seed=self.seed if seed is None else seed,
            graph_source=self.graph_source,
            graph_rng=self.graph_rng,
        )

    # -- canonical serialization ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready dict form (includes ``plan_version``).

        Iterates ``dataclasses.fields``, so subclasses with extra knobs
        serialize without overriding anything.

        Fields added after version 1 shipped (currently: ``dtype``) are
        **elided at their default value** -- the canonical JSON, hence
        ``cache_key()`` and every committed artifact's ``config.plan``
        block, is byte-identical to what earlier releases produced unless
        the new knob is actually exercised.  That is the version-stable
        evolution rule: a new knob only changes serialized identity for
        plans that use it (``from_dict`` fills absent fields from the
        dataclass defaults), so no ``plan_version`` bump or artifact
        regeneration is needed.
        """
        data: Dict[str, Any] = {"plan_version": PLAN_VERSION}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "dtype" and value == "default":
                continue
            if field.name == "protocol_kwargs":
                value = dict(value)
            data[field.name] = value
        return data

    def to_json(self) -> str:
        """The **canonical** serialized plan: compact, sorted-key JSON.

        This string is the promise: equal plans produce byte-identical
        JSON across processes and sessions (pinned by a golden test), so
        it can key caches and be diffed in committed artifacts.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls: Type[P], data: Mapping[str, Any]) -> P:
        """Rebuild (and re-validate) a plan from :meth:`to_dict` output."""
        payload = dict(data)
        version = payload.pop("plan_version", None)
        if version != PLAN_VERSION:
            raise ValueError(
                f"unsupported plan_version {version!r} "
                f"(this build reads version {PLAN_VERSION})"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"serialized plan carries unknown field(s) {unknown} "
                f"for {cls.__name__} (known: {sorted(known)})"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls: Type[P], text: str) -> P:
        """Rebuild (and re-validate) a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """SHA-256 of the canonical JSON -- the service-layer cache key."""
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()


def ensure_plan(
    entry_point: str,
    plan: Optional[RunPlan],
    given: Dict[str, Any],
    defaults: Dict[str, Any],
) -> RunPlan:
    """The shim shared by every entry point's legacy keyword signature.

    With ``plan=None``, builds a :class:`RunPlan` from the entry point's
    loose kwargs (``given``) -- the deprecation-safe path existing
    callers ride.  With a plan, rejects any loose knob that differs from
    the entry point's default (``defaults``): the plan is the single
    source of truth, and mixing the two silently would resurrect exactly
    the foot-guns the plan exists to kill.
    """
    if plan is None:
        return RunPlan(**given)
    if not isinstance(plan, RunPlan):
        raise TypeError(
            f"{entry_point}() plan= expects a RunPlan, got "
            f"{type(plan).__name__}"
        )
    clashes = sorted(
        name
        for name, value in given.items()
        if value != defaults[name]
    )
    if clashes:
        raise ValueError(
            f"{entry_point}() got both plan= and explicit knob(s) "
            f"{clashes}; a RunPlan carries the full configuration -- "
            f"derive a variant with plan.replace(...) instead of mixing "
            f"loose keyword knobs in"
        )
    return plan

"""Top-level convenience API: run any registered MIS algorithm on a graph.

This is the entry point downstream users touch first::

    result = solve_mis(graph, algorithm="fast-sleeping", seed=7)
    result.mis                                  # frozenset of MIS nodes
    result.node_averaged_awake_complexity       # the paper's headline measure

Two execution engines sit behind ``solve_mis``:

* ``engine="generators"`` (default) -- the reference per-node generator
  simulator; fully general (tracing, CONGEST checks, fault injection,
  per-call instrumentation via ``result.protocols``);
* ``engine="vectorized"`` -- the numpy array-backed engines; every
  registered algorithm has one (the capability registry is
  :data:`repro.sim.fast_engine.ENGINE_CAPABILITIES`), with bit-for-bit
  identical results, much faster;
* ``engine="auto"`` -- vectorized when the configuration allows it,
  generator fallback otherwise (e.g. tracing or congest checks
  requested).

Orthogonally, ``rng=`` selects the per-node random stream format:
``"pernode"`` (v1, the default) or ``"batched"`` (v2, whole-array draws;
same seed gives a *different* execution than v1 -- see
:mod:`repro.sim.rng`).  Both engines implement both formats identically.

For many seeds at once, see :func:`repro.sim.batch.run_trials`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

from .sim.array_result import ArrayRunResult
from .sim.metrics import RunResult
from .sim.network import Simulator
from .sim.protocol import Protocol
from .sim.rng import DEFAULT_STREAM
from .sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import RunPlan


def _lazy_registry() -> Dict[str, Callable[..., Protocol]]:
    # Imported lazily to avoid a circular import at package load.
    from .baselines.abi import ABIMIS
    from .baselines.dist_greedy import DistGreedyMIS
    from .baselines.ghaffari import GhaffariMIS
    from .baselines.luby import LubyMIS
    from .core.fast_sleeping_mis import FastSleepingMIS
    from .core.sleeping_mis import SleepingMIS

    return {
        "sleeping": SleepingMIS,
        "fast-sleeping": FastSleepingMIS,
        "luby": LubyMIS,
        "greedy": DistGreedyMIS,
        "ghaffari": GhaffariMIS,
        "abi": ABIMIS,
    }


#: Name -> protocol class.  Populated on first use.
ALGORITHMS: Dict[str, Callable[..., Protocol]] = {}


def _registry() -> Dict[str, Callable[..., Protocol]]:
    if not ALGORITHMS:
        ALGORITHMS.update(_lazy_registry())
    return ALGORITHMS


def algorithm_names() -> List[str]:
    """Sorted names of the registered MIS algorithms."""
    return sorted(_registry())


def make_protocol_factory(
    algorithm: str, **protocol_kwargs: Any
) -> Callable[[Any], Protocol]:
    """A ``node_id -> Protocol`` factory for the named algorithm.

    An unknown name raises ``ValueError`` with close-match suggestions
    -- the shared registry error path (:mod:`repro._registry`).
    """
    registry = _registry()
    if algorithm not in registry:
        from ._registry import unknown_name_error

        raise unknown_name_error("algorithm", algorithm, registry)
    cls = registry[algorithm]
    return lambda node_id: cls(**protocol_kwargs)


def solve_mis(
    graph: Any,
    algorithm: str = "fast-sleeping",
    *,
    plan: Optional["RunPlan"] = None,
    seed: Optional[int] = 0,
    congest_bit_limit: Optional[int] = None,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
    engine: str = "generators",
    rng: str = DEFAULT_STREAM,
    result: str = "legacy",
    dtype: str = "default",
    **protocol_kwargs: Any,
) -> Union[RunResult, ArrayRunResult]:
    """Compute an MIS of ``graph`` with the named distributed algorithm.

    Parameters
    ----------
    graph:
        ``networkx.Graph``, adjacency mapping, or a prebuilt
        :class:`repro.sim.fast_engine.GraphArrays` (e.g. from the
        array-native samplers in :mod:`repro.graphs.arrays` -- at
        n = 10^4..10^5 building the graph array-natively is the
        difference between the graph costing more than the run and being
        noise).
    algorithm:
        One of :func:`algorithm_names` -- ``"sleeping"`` (Algorithm 1),
        ``"fast-sleeping"`` (Algorithm 2, the default), ``"luby"``,
        ``"greedy"`` (distributed randomized greedy), ``"ghaffari"``, or
        ``"abi"`` (Alon--Babai--Itai).
    plan:
        A pre-validated :class:`repro.plan.RunPlan` carrying the full
        knob configuration (algorithm, engine, rng, result, ...).
        Mutually exclusive with the loose knob keywords below; derive
        variants with ``plan.replace(...)``.  ``trace`` stays a loose
        argument (a live instrumentation object, not configuration).
    seed:
        Master seed for all per-node random streams.
    engine:
        ``"generators"`` (default, the reference engine),
        ``"vectorized"`` (numpy engines for every registered algorithm,
        identical results), or ``"auto"`` (vectorized when eligible).
        The vectorized engines return no ``result.protocols``; analyses
        needing per-call records must use the generator engine.
    rng:
        Random-stream format: ``"pernode"`` (v1, the default) or
        ``"batched"`` (v2).  The formats are versioned and deliberately
        incompatible; pin the format alongside the seed to reproduce a
        run (see :mod:`repro.sim.rng`).
    result:
        ``"legacy"`` (default) returns :class:`RunResult` with per-node
        :class:`NodeStats` dicts; ``"arrays"`` returns the
        struct-of-arrays :class:`repro.sim.array_result.ArrayRunResult`
        (same measures, integer-exact, with a lazy legacy view);
        ``"auto"`` picks arrays exactly when a vectorized engine runs.
    dtype:
        Result column-dtype policy: ``"default"`` keeps the historical
        int64/float64 columns bit for bit; ``"narrow"`` stores each
        array-result column in the smallest dtype representing it exactly
        (see :data:`repro.sim.array_result.DTYPE_KINDS`).
    protocol_kwargs:
        Forwarded to the protocol constructor (e.g. ``coin_bias=0.4``,
        ``greedy_constant=12``, ``max_phases=50``).

    Returns
    -------
    RunResult or ArrayRunResult
        ``result.mis`` is the computed set; the four complexity measures are
        available as properties on either result type.
    """
    from .plan import ensure_plan
    from .sim.array_result import resolve_result_kind
    from .sim.batch import make_vectorized_engine, resolve_engine

    plan = ensure_plan(
        "solve_mis",
        plan,
        given=dict(
            algorithm=algorithm,
            seed=seed,
            congest_bit_limit=congest_bit_limit,
            max_rounds=max_rounds,
            engine=engine,
            rng=rng,
            result=result,
            dtype=dtype,
            protocol_kwargs=protocol_kwargs,
        ),
        defaults=dict(
            algorithm="fast-sleeping",
            seed=0,
            congest_bit_limit=None,
            max_rounds=None,
            engine="generators",
            rng=DEFAULT_STREAM,
            result="legacy",
            dtype="default",
            protocol_kwargs={},
        ),
    )
    protocol_kwargs = plan.protocol_dict()
    # Re-resolve with the live trace object (not part of the plan): a
    # trace forces the generator engine under engine="auto" and is
    # rejected under engine="vectorized".
    resolved = resolve_engine(
        plan.engine,
        plan.algorithm,
        trace=trace,
        congest_bit_limit=plan.congest_bit_limit,
        **protocol_kwargs,
    )
    result_kind = resolve_result_kind(plan.result, resolved)
    if resolved == "vectorized":
        return make_vectorized_engine(
            graph,
            plan.algorithm,
            seed=plan.seed,
            max_rounds=plan.max_rounds,
            rng=plan.rng,
            result=result_kind,
            dtype=plan.dtype,
            **protocol_kwargs,
        ).run()
    factory = make_protocol_factory(plan.algorithm, **protocol_kwargs)
    simulator = Simulator(
        graph,
        factory,
        seed=plan.seed,
        congest_bit_limit=plan.congest_bit_limit,
        trace=trace,
        max_rounds=plan.max_rounds,
        rng=plan.rng,
    )
    run = simulator.run()
    if result_kind == "arrays":
        return ArrayRunResult.from_run_result(run, plan.dtype)
    return run

"""Algorithm 1: the Sleeping MIS algorithm.

This is a line-by-line transcription of the paper's Algorithm 1 into the
generator protocol API.  Each node:

1. draws random bits ``X_1, ..., X_K`` with ``K = ceil(3 log2 n)``;
2. calls ``SleepingMISRecursive(K)``, which per level performs

   * **first isolated node detection** (1 awake round): send to every
     neighbor; a node that hears nothing is isolated in the current
     subgraph ``G[U]`` and joins the MIS -- this works because *only* the
     participants of the current call are awake, so the inbox exactly
     reveals the neighborhood within ``G[U]``;
   * **left recursion**: participants with ``X_k = 1`` recurse; everyone
     else sleeps for exactly ``T(k-1) = 3 (2^{k-1} - 1)`` rounds;
   * **synchronization / elimination** (1 awake round): everyone announces
     ``inMIS``; an undecided node with a neighbor in the MIS is eliminated;
   * **second isolated node detection** (1 awake round): an undecided node
     all of whose announcements read ``False`` joins the MIS;
   * **right recursion**: still-undecided nodes recurse; everyone else
     sleeps ``T(k-1)`` rounds.

The base case ``k = 0`` joins the MIS locally with no communication
(``T(0) = 0``).

Instrumentation: when ``record_calls`` is on (the default) every node keeps a
:class:`CallRecord` per recursive call it participated in -- level, tree
path, start/end rounds, whether it entered the left/right sub-call, and the
decision it made at that level.  The analysis package aggregates these
records into the paper's per-call quantities (|U|, |L|, |R|, Z_k) and into
the recursion trees of Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..sim.actions import SendAndReceive, Sleep
from ..sim.context import NodeContext
from ..sim.protocol import MISProtocol
from . import schedule

#: Payload of the isolated-node-detection probe (2 bits).
PRESENCE = True


@dataclass
class CallRecord:
    """One node's participation in one call of ``SleepingMISRecursive``."""

    k: int
    path: str
    start_round: int
    end_round: Optional[int] = None
    went_left: bool = False
    went_right: bool = False
    #: decision made at this level's own steps, if any:
    #: ``base`` / ``isolated`` / ``eliminated`` / ``second_isolated`` /
    #: ``base_greedy_*`` (Algorithm 2) / ``None``.
    decided: Optional[str] = None


class SleepingMIS(MISProtocol):
    """Per-node protocol for the paper's Algorithm 1 (``SleepingMIS``).

    Parameters
    ----------
    depth:
        Override the recursion depth ``K`` (default ``ceil(3 log2 n)``).
    coin_bias:
        Probability that ``X_i = 1``.  The paper uses fair coins (1/2);
        other values are exposed for the ablation study of the pruning
        constant.
    record_calls:
        Keep per-call :class:`CallRecord` instrumentation (cheap; on by
        default).
    """

    def __init__(
        self,
        depth: Optional[int] = None,
        coin_bias: float = 0.5,
        record_calls: bool = True,
    ):
        super().__init__()
        if not 0.0 < coin_bias < 1.0:
            raise ValueError(f"coin bias must be in (0, 1), got {coin_bias}")
        self.depth_override = depth
        self.coin_bias = coin_bias
        self.record_calls = record_calls
        self.x_bits: Tuple[int, ...] = ()
        self.calls: List[CallRecord] = []

    # ------------------------------------------------------------------
    # Hooks overridden by Algorithm 2.
    # ------------------------------------------------------------------

    def _default_depth(self, n: int) -> int:
        """Recursion depth for a network of ``n`` nodes."""
        return schedule.recursion_depth(n)

    def _call_duration(self, k: int) -> int:
        """Exact wall-clock duration of a level-``k`` call."""
        return schedule.call_duration(k)

    def _prepare(self, ctx: NodeContext) -> None:
        """Pre-run setup hook (Algorithm 2 sizes its base window here)."""

    def _base_case(self, ctx: NodeContext, path: str) -> Generator:
        """``k = 0``: join the MIS locally; consumes zero rounds."""
        assert self.in_mis is None, "decided node reached the base case"
        self._decide(ctx, True, "base")
        return
        yield  # pragma: no cover -- makes this function a generator

    # ------------------------------------------------------------------

    def x(self, i: int) -> int:
        """The random bit ``X_i`` (1-based, as in the paper)."""
        return self.x_bits[i - 1]

    def run(self, ctx: NodeContext) -> Generator:
        depth = (
            self.depth_override
            if self.depth_override is not None
            else self._default_depth(ctx.n)
        )
        self._prepare(ctx)
        self.x_bits = tuple(
            1 if ctx.rng.random() < self.coin_bias else 0
            for _ in range(depth)
        )
        yield from self._recurse(ctx, depth, "")

    def _recurse(self, ctx: NodeContext, k: int, path: str) -> Generator:
        record: Optional[CallRecord] = None
        if self.record_calls:
            record = CallRecord(k=k, path=path, start_round=ctx.current_round())
            self.calls.append(record)

        if k == 0:
            yield from self._base_case(ctx, path)
            if record is not None:
                record.end_round = ctx.current_round()
                # The specific mechanism ("base", "base_greedy_join", ...)
                # was recorded by _decide; truncated base cases stay None.
                record.decided = self.decided_how
            return

        assert self.in_mis is None, "decided node entered a recursive call"

        # Part 2 -- first isolated node detection (lines 13-16).
        inbox = yield SendAndReceive({u: PRESENCE for u in ctx.neighbors})
        if not inbox:
            self._decide(ctx, True, "isolated")
            if record is not None:
                record.decided = "isolated"

        # Part 3 -- left recursion (lines 17-21).
        if self.in_mis is None and self.x(k) == 1:
            if record is not None:
                record.went_left = True
            yield from self._recurse(ctx, k - 1, path + "L")
        else:
            yield Sleep(self._call_duration(k - 1))

        # Part 4 -- synchronization and elimination (lines 22-25).
        inbox = yield SendAndReceive({u: self.in_mis for u in ctx.neighbors})
        if self.in_mis is None and any(v is True for v in inbox.values()):
            self._decide(ctx, False, "eliminated")
            if record is not None:
                record.decided = "eliminated"

        # Part 5 -- second isolated node detection (lines 26-29).
        inbox = yield SendAndReceive({u: self.in_mis for u in ctx.neighbors})
        if self.in_mis is None and all(v is False for v in inbox.values()):
            self._decide(ctx, True, "second_isolated")
            if record is not None:
                record.decided = "second_isolated"

        # Part 6 -- right recursion (lines 30-34).
        if self.in_mis is None:
            if record is not None:
                record.went_right = True
            yield from self._recurse(ctx, k - 1, path + "R")
        else:
            yield Sleep(self._call_duration(k - 1))

        if record is not None:
            record.end_round = ctx.current_round()

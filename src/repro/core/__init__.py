"""The paper's primary contribution: sleeping-model MIS algorithms.

* :class:`SleepingMIS` -- Algorithm 1 (O(1) node-averaged awake, O(n^3)
  worst-case rounds);
* :class:`FastSleepingMIS` -- Algorithm 2 (O(1) node-averaged awake,
  O(log^3.41 n) worst-case rounds);
* :mod:`repro.core.schedule` -- recursion depths and the exact sleep
  schedule T(k) that keeps nodes synchronized;
* :mod:`repro.core.ranks` -- k-ranks and evaluation sequences
  (Definitions 1-2), used to verify the lexicographically-first-MIS
  equivalence (Corollary 1).
"""

from .fast_sleeping_mis import FastSleepingMIS
from .ranks import (
    evaluation_sequence,
    full_rank_order,
    k_rank,
    rank_less,
    ranks_unique,
)
from .schedule import (
    DEFAULT_GREEDY_CONSTANT,
    ELL,
    call_duration,
    expected_base_participants,
    expected_leaf_count,
    fast_call_duration,
    greedy_rounds,
    recursion_depth,
    truncated_depth,
)
from .sleeping_mis import PRESENCE, CallRecord, SleepingMIS

__all__ = [
    "CallRecord",
    "DEFAULT_GREEDY_CONSTANT",
    "ELL",
    "FastSleepingMIS",
    "PRESENCE",
    "SleepingMIS",
    "call_duration",
    "evaluation_sequence",
    "expected_base_participants",
    "expected_leaf_count",
    "fast_call_duration",
    "full_rank_order",
    "greedy_rounds",
    "k_rank",
    "rank_less",
    "ranks_unique",
    "recursion_depth",
    "truncated_depth",
]

"""Algorithm 2: the Fast Sleeping MIS algorithm.

Identical to Algorithm 1 except that

* the recursion is truncated at depth ``K2 = ceil(ell * log2 log2 n)`` with
  ``ell = 1 / log2(4/3)`` (Equation 2), and
* each base case runs the **parallel/distributed randomized greedy MIS**
  (Coppersmith et al. 1989; Blelloch et al. 2012; Fischer--Noever 2018) for
  *exactly* ``c * ceil(log2 n)`` rounds, so higher recursion levels stay
  synchronized.  Base cases that have not finished inside that window are
  the algorithm's Monte Carlo failure mode; the protocol flags them via
  :attr:`FastSleepingMIS.base_truncated`.

The greedy base case is phased, three rounds per phase:

* **round A** -- every live (undecided) node sends its random rank to its
  live neighbors; a node whose rank beats all of them wins;
* **round B** -- winners announce ``JOIN``; live neighbors of a winner are
  eliminated;
* **round C** -- the newly eliminated announce ``OUT``; survivors remove
  them from their live sets.

Decided nodes sleep out the remainder of the base window, which is what
keeps the worst-case *awake* complexity at ``O(log n)`` while the wall clock
charges the full window.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..sim.actions import SendAndReceive, Sleep
from ..sim.context import NodeContext
from . import schedule
from .sleeping_mis import PRESENCE, SleepingMIS


class FastSleepingMIS(SleepingMIS):
    """Per-node protocol for the paper's Algorithm 2 (``Fast-SleepingMIS``).

    Parameters
    ----------
    depth:
        Override the truncated recursion depth ``K2``.
    coin_bias:
        Probability that ``X_i = 1`` (fair coins by default).
    greedy_constant:
        The ``c`` in the fixed ``c * ceil(log2 n)``-round base window.
    record_calls:
        Keep per-call instrumentation (on by default).
    """

    def __init__(
        self,
        depth: Optional[int] = None,
        coin_bias: float = 0.5,
        greedy_constant: int = schedule.DEFAULT_GREEDY_CONSTANT,
        record_calls: bool = True,
    ):
        super().__init__(
            depth=depth, coin_bias=coin_bias, record_calls=record_calls
        )
        self.greedy_constant = greedy_constant
        self.base_rounds = 0
        #: random rank drawn if this node reached a greedy base case,
        #: as the comparable pair ``(rank_value, node_id)``.
        self.base_rank: Optional[Tuple[int, int]] = None
        #: set when the base window expired with this node still undecided
        #: (the Monte Carlo failure mode).
        self.base_truncated = False

    def _default_depth(self, n: int) -> int:
        return schedule.truncated_depth(n)

    def _call_duration(self, k: int) -> int:
        return schedule.fast_call_duration(k, self.base_rounds)

    def _prepare(self, ctx: NodeContext) -> None:
        self.base_rounds = schedule.greedy_rounds(ctx.n, self.greedy_constant)

    # ------------------------------------------------------------------

    def _base_case(self, ctx: NodeContext, path: str) -> Generator:
        """Distributed randomized greedy MIS in a fixed window of rounds."""
        assert self.in_mis is None, "decided node reached the base case"
        window = self.base_rounds
        used = 0
        ctx.trace("greedy_base_enter", path=path)

        # Neighbor discovery inside G[U]: only co-participants are awake.
        inbox = yield SendAndReceive({u: PRESENCE for u in ctx.neighbors})
        used += 1
        live = set(inbox)

        rank_value = ctx.rng.randrange(ctx.n**6 + 1)
        self.base_rank = (rank_value, ctx.node_id)
        my_key = self.base_rank

        while True:
            if self.in_mis is None and not live:
                # All competitors are gone: this node is isolated among the
                # survivors and joins (greedy would pick it next).
                self._decide(ctx, True, "base_greedy_isolated")
            if self.in_mis is not None or used + 3 > window:
                break

            # Round A -- rank exchange.
            inbox = yield SendAndReceive(
                {u: (rank_value, ctx.node_id) for u in live}
            )
            used += 1
            rank_keys = {
                u: tuple(payload) for u, payload in inbox.items() if u in live
            }
            joined = len(rank_keys) == len(live) and all(
                my_key > key for key in rank_keys.values()
            )

            # Round B -- JOIN announcements.
            if joined:
                self._decide(ctx, True, "base_greedy_join")
            inbox = yield SendAndReceive(
                {u: True for u in live} if joined else {}
            )
            used += 1
            eliminated_now = False
            if self.in_mis is None and any(u in live for u in inbox):
                self._decide(ctx, False, "base_greedy_eliminated")
                eliminated_now = True
            if joined:
                break  # announced; sleep out the rest of the window

            # Round C -- OUT announcements from the newly eliminated.
            inbox = yield SendAndReceive(
                {u: False for u in live} if eliminated_now else {}
            )
            used += 1
            if eliminated_now:
                break  # announced; sleep out the rest of the window
            live -= set(inbox)

        if self.in_mis is None:
            # The fixed window expired mid-computation: Monte Carlo failure.
            self.base_truncated = True
            ctx.trace("greedy_base_truncated", path=path)
        yield Sleep(window - used)

"""k-ranks, evaluation sequences, and rank orders (Definitions 1 and 2).

Each node draws random bits ``X_K, ..., X_1`` before the recursion starts.
The *k-rank* of node ``v`` is the sequence

    ``r_k(v) = (X_k, X_{k-1}, ..., X_1, -1)``

compared lexicographically; ``r_0(v) = (-1,)`` is a sentinel.  The
*evaluation sequence* of a call with participant set ``U`` and parameter
``k`` lists ``U`` by lexicographically **decreasing** ``(k-1)``-rank
(Definition 2) -- it is the order in which the deferred-decision analysis
(Lemma 6) fixes the ``X_k`` coins.

Lemma 4 / Corollary 1 show that the whole algorithm outputs the
*lexicographically-first MIS* with respect to decreasing ``K``-rank; the
helpers here recover that order from a finished run so tests and benchmarks
can verify the equivalence exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

Bits = Tuple[int, ...]


def k_rank(bits: Sequence[int], k: int) -> Tuple[int, ...]:
    """``r_k(v)`` for a node whose bits are ``(X_1, ..., X_K)``.

    ``bits[i - 1]`` is ``X_i``, matching the paper's 1-based indexing.
    """
    if k < 0:
        raise ValueError(f"rank level must be non-negative, got {k}")
    if k > len(bits):
        raise ValueError(
            f"rank level {k} exceeds number of drawn bits {len(bits)}"
        )
    return tuple(bits[i - 1] for i in range(k, 0, -1)) + (-1,)


def rank_less(bits_a: Sequence[int], bits_b: Sequence[int], k: int) -> bool:
    """Whether ``r_k(a) < r_k(b)`` lexicographically."""
    return k_rank(bits_a, k) < k_rank(bits_b, k)


def evaluation_sequence(
    members: Iterable[int], bits_of: Dict[int, Sequence[int]], k: int
) -> List[int]:
    """The evaluation sequence of a call: ``members`` sorted by
    lexicographically decreasing ``(k-1)``-rank (Definition 2).

    Ties (which occur only with the polynomially-small probability bounded
    by Lemma 5) are broken by node id so the sequence is always well
    defined.
    """
    if k < 1:
        raise ValueError(f"evaluation sequence needs k >= 1, got {k}")
    return sorted(
        members,
        key=lambda v: (k_rank(bits_of[v], k - 1), _tiebreak(v)),
        reverse=True,
    )


def full_rank_order(bits_of: Dict[int, Sequence[int]]) -> List[int]:
    """All nodes sorted by lexicographically decreasing K-rank.

    This is the priority order under which the algorithm's MIS equals the
    sequential greedy MIS (Corollary 1).
    """
    if not bits_of:
        return []
    return sorted(
        bits_of,
        key=lambda v: (k_rank(bits_of[v], len(bits_of[v])), _tiebreak(v)),
        reverse=True,
    )


def ranks_unique(bits_of: Dict[int, Sequence[int]]) -> bool:
    """Whether all nodes have distinct bit vectors (holds w.h.p., Lemma 5)."""
    seen = set()
    for bits in bits_of.values():
        key = tuple(bits)
        if key in seen:
            return False
        seen.add(key)
    return True


def _tiebreak(v) -> Tuple:
    """A total tiebreak usable for heterogeneous node ids."""
    return (str(type(v).__name__), v if isinstance(v, (int, float, str)) else str(v))

"""Recursion depth and timing schedule for the sleeping MIS algorithms.

The algorithms synchronize entirely through precomputed sleep durations:
a node that skips a recursive call sleeps for *exactly* the worst-case
duration of that call, so every participant of a call re-awakens in the same
round.  This module is the single source of truth for those durations.

* Algorithm 1 uses recursion depth ``K(n) = ceil(3 log2 n)`` (Lemma 1) and a
  level-``k`` call lasts ``T(k) = 3 (2^k - 1)`` rounds (Lemma 10): three
  communication rounds plus two level-``(k-1)`` sub-calls, with
  ``T(0) = 0`` because the base case is purely local.

* Algorithm 2 truncates the recursion at depth
  ``K2(n) = ceil(ell * log2 log2 n)`` with ``ell = 1 / log2(4/3)``
  (Equation 2) and solves each base case by running the distributed
  randomized greedy MIS for exactly ``c * ceil(log2 n)`` rounds, so a
  level-``k`` call lasts ``T2(k) = 3 (2^k - 1) + 2^k * c ceil(log2 n)``.
"""

from __future__ import annotations

import math

#: Equation 2 of the paper: ell = (log2(4/3))^-1 ~= 2.4094.
ELL = 1.0 / math.log2(4.0 / 3.0)

#: Default Fischer--Noever constant: the greedy base case runs for exactly
#: ``DEFAULT_GREEDY_CONSTANT * ceil(log2 n)`` rounds.  Sweepable; see the
#: ablation benchmark.
DEFAULT_GREEDY_CONSTANT = 8


def recursion_depth(n: int) -> int:
    """``K = ceil(3 log2 n)``, Algorithm 1's recursion depth.

    ``n = 1`` gives depth 0: the lone node joins the MIS immediately.
    """
    if n < 1:
        raise ValueError(f"network size must be positive, got {n}")
    if n == 1:
        return 0
    return math.ceil(3 * math.log2(n))


def call_duration(k: int) -> int:
    """``T(k) = 3 (2^k - 1)``, the exact wall-clock length of a level-``k``
    call of ``SleepingMISRecursive`` (Lemma 10)."""
    if k < 0:
        raise ValueError(f"recursion level must be non-negative, got {k}")
    return 3 * (2**k - 1)


def truncated_depth(n: int) -> int:
    """``K2 = ceil(ell * log2 log2 n)``, Algorithm 2's recursion depth.

    For ``n <= 2`` the double logarithm is non-positive and the whole
    algorithm degenerates to a single greedy base case (depth 0).
    """
    if n < 1:
        raise ValueError(f"network size must be positive, got {n}")
    if n <= 2:
        return 0
    return math.ceil(ELL * math.log2(math.log2(n)))


def greedy_rounds(n: int, constant: int = DEFAULT_GREEDY_CONSTANT) -> int:
    """The fixed base-case window: ``c * ceil(log2 n)`` rounds.

    The paper requires the greedy algorithm to run for *exactly* this many
    rounds so that higher recursion levels stay synchronized; runs in which
    some base case has not finished by then are the algorithm's Monte Carlo
    failure mode.
    """
    if n < 1:
        raise ValueError(f"network size must be positive, got {n}")
    if constant < 1:
        raise ValueError(f"greedy constant must be positive, got {constant}")
    return constant * max(1, math.ceil(math.log2(max(n, 2))))


def fast_call_duration(k: int, base_rounds: int) -> int:
    """Wall-clock length of a level-``k`` call of Algorithm 2.

    Recurrence ``T2(k) = 2 T2(k-1) + 3`` with ``T2(0) = base_rounds`` gives
    ``T2(k) = 3 (2^k - 1) + 2^k * base_rounds``.
    """
    if k < 0:
        raise ValueError(f"recursion level must be non-negative, got {k}")
    if base_rounds < 0:
        raise ValueError(f"base window must be non-negative, got {base_rounds}")
    return 3 * (2**k - 1) + (2**k) * base_rounds


def expected_leaf_count(n: int) -> float:
    """``(log2 n)^ell`` -- the number of leaves of Algorithm 2's truncated
    recursion tree (proof of Lemma 13)."""
    if n <= 2:
        return 1.0
    return math.log2(n) ** ELL


def expected_base_participants(n: int) -> float:
    """``n / log2 n`` -- the expected total number of nodes that reach the
    truncation depth (proof sketch of Lemma 12)."""
    if n <= 2:
        return float(n)
    return n / math.log2(n)

"""repro -- reproduction of "Sleeping is Efficient: MIS in O(1)-rounds
Node-averaged Awake Complexity" (Chatterjee, Gmyr, Pandurangan, PODC 2020).

Quickstart::

    import networkx as nx
    from repro import solve_mis

    graph = nx.gnp_random_graph(200, 0.05, seed=1)
    result = solve_mis(graph, algorithm="sleeping", seed=1)
    print(sorted(result.mis))
    print(result.node_averaged_awake_complexity)   # O(1), ~3-4 rounds
"""

from . import core, graphs, sim
from .api import ALGORITHMS, algorithm_names, make_protocol_factory, solve_mis
from .core import FastSleepingMIS, SleepingMIS
from .plan import RunPlan, ensure_plan
from .sim import (
    EnergyModel,
    MISProtocol,
    Protocol,
    RunResult,
    SendAndReceive,
    Simulator,
    Sleep,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "EnergyModel",
    "FastSleepingMIS",
    "MISProtocol",
    "Protocol",
    "RunPlan",
    "RunResult",
    "SendAndReceive",
    "Simulator",
    "Sleep",
    "SleepingMIS",
    "algorithm_names",
    "core",
    "ensure_plan",
    "graphs",
    "make_protocol_factory",
    "sim",
    "simulate",
    "solve_mis",
]

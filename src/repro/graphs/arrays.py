"""Array-native graph sources: sample straight into CSR edge arrays.

The classic pipeline builds a ``networkx.Graph``
(:mod:`repro.graphs.generators`), normalizes it into an adjacency dict,
and only then converts to the :class:`repro.sim.fast_engine.GraphArrays`
CSR view the vectorized engines consume.  At n = 10^5 those first two
steps -- a dict-of-dicts graph object plus a Python normalization pass --
cost more than the simulation itself (~70% of a batched sleeping trial).

This module skips them: each sampler here draws the edge list directly
into integer arrays and hands them to :meth:`GraphArrays.from_edges`,
never materializing a networkx object or an adjacency dict.  The dict
view stays *lazy* (built only if a generator-engine consumer asks), and
:meth:`GraphArrays.to_networkx` is the escape hatch back to a real
``networkx.Graph`` when one is wanted.

Exactness contract
------------------
Samplers are **edge-for-edge identical** to their networkx-built
counterparts in :mod:`repro.graphs.generators` for the same parameters
and seed: :func:`gnp_arrays` consumes ``random.Random(seed)`` draws in
exactly the order ``networkx.gnp_random_graph`` /
``networkx.fast_gnp_random_graph`` do (including the
:data:`~repro.graphs.generators.GNP_FAST_THRESHOLD` switchover), and the
deterministic topologies replicate the generators' labelings (including
``grid``'s string-sorted relabeling).  ``tests/test_graph_arrays.py``
pins this parity, which is what makes ``graph_source="arrays"`` a pure
performance choice: any seeded experiment produces bit-identical results
on either source.

:data:`ARRAY_FAMILIES` mirrors the :data:`repro.graphs.generators.FAMILIES`
registry for the families with an array-native sampler;
:func:`resolve_graph_source` maps the ``graph_source=`` choices
(:data:`GRAPH_SOURCES`: ``"auto"``/``"networkx"``/``"arrays"``) onto a
concrete source per family.

Versioned sampling streams (``graph_rng=``)
-------------------------------------------
Replaying ``random.Random``'s exact draw order is what pins the samplers
above to a Python skip loop: at n = 10^6 the v1 gnp sampler spends tens of
seconds appending edge tuples one geometric jump at a time.  Exactly as
:mod:`repro.sim.rng` did for the node streams, this module therefore
carries a second, **deliberately incompatible** sampling stream:

``"legacy"`` (v1, the default)
    The samplers above -- ``random.Random(seed)`` consumed in networkx's
    exact order, edge-for-edge identical to the networkx generators.
    Every graph seed recorded before v2 existed replays under it.

``"batched"`` (v2)
    :func:`gnp_arrays_v2`: whole geometric-skip arrays drawn from the
    counter-based splitmix64 stream
    (:func:`repro.sim.rng.graph_stream_key`), Batagelj--Brandes sampling
    vectorized.  Same G(n, p) distribution, *different* seeded graphs --
    the break is versioned (:data:`GRAPH_RNG_VERSIONS`), never silent:
    record ``graph_rng`` next to the seed like ``rng``.  Deterministic
    topologies (cycle/path/star/complete/empty) have no randomness, so
    both streams build the identical graph there.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

import numpy as np

from .._registry import unknown_name_error
from ..profiling import phase
from ..sim.fast_engine import GraphArrays
from ..sim.rng import graph_stream_key, mix64_array, u64_to_unit_float
from .generators import FAMILIES, GNP_FAST_THRESHOLD

#: Graph-source choices accepted by ``graph_source=`` throughout the
#: package: ``"networkx"`` (the classic generators), ``"arrays"`` (the
#: direct-to-CSR samplers here), ``"auto"`` (arrays whenever the family
#: has an array-native sampler -- identical results either way).
GRAPH_SOURCES = ("auto", "networkx", "arrays")

#: Known graph-sampling stream formats, in version order (``graph_rng=``).
GRAPH_RNGS = ("legacy", "batched")

#: Graph-sampling stream name -> format version number.
GRAPH_RNG_VERSIONS = {"legacy": 1, "batched": 2}

#: The default sampling stream: v1, networkx's exact draw order.
DEFAULT_GRAPH_RNG = "legacy"


def validate_graph_rng(graph_rng: str) -> str:
    """Return ``graph_rng`` if it names a known sampling stream, else raise."""
    if graph_rng not in GRAPH_RNGS:
        raise ValueError(
            f"unknown graph_rng {graph_rng!r}; known: {GRAPH_RNGS}"
        )
    return graph_rng


def _from_pairs(n: int, pairs: List[tuple]) -> GraphArrays:
    """Edge-pair list -> :class:`GraphArrays` (the samplers' common exit)."""
    with phase("csr_build"):
        if not pairs:
            return GraphArrays.from_edges(
                n, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        u, v = zip(*pairs)
        return GraphArrays.from_edges(
            n,
            np.fromiter(u, dtype=np.int64, count=len(pairs)),
            np.fromiter(v, dtype=np.int64, count=len(pairs)),
        )


def gnp_arrays(n: int, p: float, seed: int = 0) -> GraphArrays:
    """Erdos--Renyi ``G(n, p)``, sampled directly into edge arrays.

    Edge-for-edge identical to :func:`repro.graphs.generators.gnp` for
    the same ``(n, p, seed)``: below the
    :data:`~repro.graphs.generators.GNP_FAST_THRESHOLD` (or for dense
    ``p``) it replays networkx's classic pair-loop sampler; above it, the
    O(n + m) geometric-skip sampler of ``fast_gnp_random_graph``
    (Batagelj--Brandes) -- both consuming ``random.Random(seed)`` draws in
    networkx's exact order.
    """
    if p >= 1.0:
        iu, iv = np.triu_indices(n, k=1)
        return GraphArrays.from_edges(n, iu.astype(np.int64), iv.astype(np.int64))
    if p <= 0.0:
        return _from_pairs(n, [])
    rng = random.Random(seed)
    pairs: List[tuple] = []
    if n > GNP_FAST_THRESHOLD and p < 0.25:
        # Geometric skips over the (v, w) pair enumeration, exactly as
        # networkx.fast_gnp_random_graph walks it.
        with phase("sample"):
            lp = math.log(1.0 - p)
            rand, log = rng.random, math.log
            v, w = 1, -1
            while v < n:
                lr = log(1.0 - rand())
                w = w + 1 + int(lr / lp)
                while w >= v and v < n:
                    w = w - v
                    v = v + 1
                if v < n:
                    pairs.append((v, w))
        return _from_pairs(n, pairs)
    with phase("sample"):
        rand = rng.random
        for u in range(n):  # networkx.gnp_random_graph's combinations order
            for v in range(u + 1, n):
                if rand() < p:
                    pairs.append((u, v))
    return _from_pairs(n, pairs)


#: Uniform draws per refill chunk of the v2 sampler.  Bounds the peak
#: *transient* memory of a dense sample: however many edges G(n, p) has,
#: the sampler never holds more than this many uniforms/skips in flight
#: (~128 MB of float64+int64 temporaries), refilling until the pair space
#: is exhausted.  Chunking changes nothing about the sampled graph -- draw
#: ``j`` is a pure function of ``(key, j)`` -- so the constant can move
#: without versioning.
GNP_V2_CHUNK = 1 << 23

#: Draws per refill in **streaming** mode, where the CSR build holds one
#: chunk's index temporaries on top of the sampler's float64+int64 pair
#: (~60 bytes per pair all told): smaller chunks keep the whole
#: sample-plus-build transient near the same ~128 MB envelope.
GNP_V2_STREAM_CHUNK = 1 << 21

#: ``stream="auto"`` switches to the bounded-memory two-pass build once
#: the *expected* edge count crosses this many pairs -- below it the
#: one-shot build is faster (no second sampling pass) and its transient
#: memory is small anyway.
GNP_V2_STREAM_THRESHOLD = 1 << 24

#: ``stream=`` choices accepted by :func:`gnp_arrays_v2`.
GNP_V2_STREAM_MODES = ("auto", True, False)


def _gnp_v2_pair_chunks(n: int, p: float, key: np.uint64, chunk: int):
    """Yield the v2 gnp edge stream as ``(lo, hi)`` array chunks.

    The chunks concatenate to the full edge list in strictly increasing
    ``(hi, lo)``-lex order (= ascending flat position).  Every draw is a
    pure function of ``(key, counter)``, so iterating twice replays the
    identical stream -- which is what lets the streaming CSR build
    re-sample instead of buffering pairs.
    """
    total = n * (n - 1) // 2
    log1mp = math.log1p(-p)
    pos = np.int64(-1)  # last occupied flat position
    counter = 0
    while True:
        # Aim one chunk at the expected remainder (with slack), bounded
        # by the chunk budget; loop until a position lands past the end.
        expect = float(total - int(pos)) * p
        size = min(chunk, max(int(expect * 1.1) + 64, 1024))
        u = u64_to_unit_float(
            mix64_array(
                key + np.arange(counter, counter + size, dtype=np.uint64)
            )
        )
        counter += size
        skips = 1 + (np.log1p(-u) / log1mp).astype(np.int64)
        positions = pos + np.cumsum(skips)
        done = bool(positions[-1] >= total)
        if done:
            positions = positions[positions < total]
        if len(positions):
            pos = positions[-1]
            # Decode flat positions to (v, w): v is the triangular root,
            # float-seeded then corrected in exact integer arithmetic.
            v = ((1.0 + np.sqrt(8.0 * positions + 1.0)) / 2.0).astype(
                np.int64
            )
            v -= v * (v - 1) // 2 > positions
            v += (v + 1) * v // 2 <= positions
            yield positions - v * (v - 1) // 2, v
        if done:
            return


def gnp_arrays_v2(
    n: int, p: float, seed: int = 0, stream: object = "auto"
) -> GraphArrays:
    """Erdos--Renyi ``G(n, p)`` on the v2 (``"batched"``) sampling stream.

    Batagelj--Brandes geometric-skip sampling, vectorized: whole arrays of
    skips come from the counter-based splitmix64 stream instead of one
    ``random.Random`` call per edge.  Same distribution as
    :func:`gnp_arrays`, **different seeded graphs** -- the v1/v2 break is
    deliberate and versioned (see the module docstring).

    v2 sampling format (normative, pinned by tests)
    -----------------------------------------------
    * ``key = sha256(f"repro|graph-v2|{seed}")[:8]`` little-endian
      (:func:`repro.sim.rng.graph_stream_key`);
    * draw ``j`` (``j = 0, 1, ...``): ``u_j = mix64((key + j) mod 2^64)``
      mapped to [0, 1) by the standard ``(u >> 11) * 2^-53``;
    * skip ``j``: ``g_j = 1 + floor(log1p(-u_j) / log1p(-p))`` in IEEE
      float64 (the Batagelj--Brandes geometric jump);
    * the sampled edges sit at flat positions ``cumsum(g) - 1`` (exact
      int64 accounting -- positions never pass through floats) over the
      pair enumeration ``(v, w), 0 <= w < v < n`` flattened as
      ``v(v-1)/2 + w``, truncated at ``n(n-1)/2``.

    Skips are strictly positive, so positions are strictly increasing: the
    edge list needs no deduplication and arrives pre-sorted, which is what
    lets :meth:`GraphArrays.from_distinct_pairs` take the direct O(m)
    CSR build.

    ``stream`` picks the build strategy -- **never** the sampled graph
    (both modes consume the identical counter stream): ``False`` buffers
    every pair chunk and builds the CSR in one shot; ``True`` makes two
    passes with :meth:`GraphArrays.from_distinct_pair_chunks`,
    re-sampling on the second, so peak transient memory stays bounded by
    the chunk size instead of growing with ``m``; ``"auto"`` (default)
    streams exactly when the expected edge count crosses
    :data:`GNP_V2_STREAM_THRESHOLD`.
    """
    if stream not in GNP_V2_STREAM_MODES:
        raise ValueError(
            f"unknown stream mode {stream!r}; known: {GNP_V2_STREAM_MODES}"
        )
    if p >= 1.0:
        return gnp_arrays(n, 1.0)
    if p <= 0.0 or n < 2:
        return _from_pairs(n, [])
    key = np.uint64(graph_stream_key(seed))
    if stream == "auto":
        stream = n * (n - 1) / 2 * p >= GNP_V2_STREAM_THRESHOLD
    if stream:
        return GraphArrays.from_distinct_pair_chunks(
            n, lambda: _gnp_v2_pair_chunks(n, p, key, GNP_V2_STREAM_CHUNK)
        )
    parts_w: List[np.ndarray] = []
    parts_v: List[np.ndarray] = []
    with phase("sample"):
        for w, v in _gnp_v2_pair_chunks(n, p, key, GNP_V2_CHUNK):
            parts_w.append(w)
            parts_v.append(v)
    if not parts_v:
        return _from_pairs(n, [])
    with phase("csr_build"):
        hi = np.concatenate(parts_v)
        lo = np.concatenate(parts_w)
        return GraphArrays.from_distinct_pairs(n, lo, hi)


def ring_arrays(n: int) -> GraphArrays:
    """The cycle (ring) ``C_n`` -- matches ``generators.cycle_graph``."""
    idx = np.arange(n, dtype=np.int64)
    # n = 1 yields the self-loop networkx's cycle_graph(1) carries and
    # from_edges drops it, matching normalize_graph; n = 2 collapses the
    # duplicate orientation to the single 0--1 edge.
    return GraphArrays.from_edges(n, idx, (idx + 1) % max(n, 1))


def path_arrays(n: int) -> GraphArrays:
    """The path ``P_n`` -- matches ``generators.path_graph``."""
    idx = np.arange(max(n - 1, 0), dtype=np.int64)
    return GraphArrays.from_edges(n, idx, idx + 1)


def star_arrays(n: int) -> GraphArrays:
    """A star with ``n`` nodes total -- matches ``generators.star_graph``."""
    if n < 1:
        raise ValueError(f"star needs at least one node, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    return GraphArrays.from_edges(n, np.zeros(n - 1, dtype=np.int64), leaves)


def grid_arrays(rows: int, cols: int) -> GraphArrays:
    """A ``rows x cols`` 2-D grid -- matches ``generators.grid_graph``,
    including its deterministic string-sorted relabeling of the ``(i, j)``
    coordinate nodes (``sorted(nodes, key=str)``, *not* row-major order).
    """
    coords = [(i, j) for i in range(rows) for j in range(cols)]
    label = {c: k for k, c in enumerate(sorted(coords, key=str))}
    pairs = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                pairs.append((label[(i, j)], label[(i + 1, j)]))
            if j + 1 < cols:
                pairs.append((label[(i, j)], label[(i, j + 1)]))
    return _from_pairs(rows * cols, pairs)


def empty_arrays(n: int) -> GraphArrays:
    """``n`` isolated nodes."""
    return _from_pairs(n, [])


def complete_arrays(n: int) -> GraphArrays:
    """The clique ``K_n``."""
    return gnp_arrays(n, 1.0)


# ----------------------------------------------------------------------
# The single-knob family registry, mirroring generators.FAMILIES for the
# families with an array-native sampler.
# ----------------------------------------------------------------------


def _gnp_sparse(
    n: int, seed: int = 0, graph_rng: str = DEFAULT_GRAPH_RNG
) -> GraphArrays:
    """G(n, p) with expected degree ~8 -- generators' ``gnp-sparse``."""
    p = min(1.0, 8.0 / max(n - 1, 1))
    if validate_graph_rng(graph_rng) == "batched":
        return gnp_arrays_v2(n, p, seed=seed)
    return gnp_arrays(n, p, seed=seed)


def _gnp_dense(
    n: int, seed: int = 0, graph_rng: str = DEFAULT_GRAPH_RNG
) -> GraphArrays:
    """G(n, 1/2) -- generators' ``gnp-dense``."""
    if validate_graph_rng(graph_rng) == "batched":
        return gnp_arrays_v2(n, 0.5, seed=seed)
    return gnp_arrays(n, 0.5, seed=seed)


#: Family samplers, keyed by name; every constructor accepts
#: ``(n, seed=, graph_rng=)``.  The deterministic topologies carry no
#: randomness, so they ignore both knobs beyond validation -- the same
#: graph comes back under either sampling stream.
ARRAY_FAMILIES: Dict[str, Callable[..., GraphArrays]] = {
    "gnp-sparse": _gnp_sparse,
    "gnp-dense": _gnp_dense,
    "cycle": lambda n, seed=0, graph_rng="legacy": ring_arrays(n),
    "path": lambda n, seed=0, graph_rng="legacy": path_arrays(n),
    "star": lambda n, seed=0, graph_rng="legacy": star_arrays(n),
    "complete": lambda n, seed=0, graph_rng="legacy": complete_arrays(n),
    "empty": lambda n, seed=0, graph_rng="legacy": empty_arrays(n),
}

#: The families whose sampled edges depend on ``graph_rng`` at all (the
#: randomized ones); used by docs and tests -- everything else is
#: deterministic and stream-independent.
RANDOMIZED_ARRAY_FAMILIES = ("gnp-sparse", "gnp-dense")


def array_family_names() -> List[str]:
    """Sorted names of the families with an array-native sampler."""
    return sorted(ARRAY_FAMILIES)


def make_family_arrays(
    family: str,
    n: int,
    seed: int = 0,
    graph_rng: str = DEFAULT_GRAPH_RNG,
) -> GraphArrays:
    """Build a :class:`GraphArrays` from the named family, array-natively.

    Only families in :data:`ARRAY_FAMILIES` are accepted.  Under the
    default ``graph_rng="legacy"`` the edge set is identical to
    ``make_family_graph(family, n, seed)``; ``graph_rng="batched"``
    selects the v2 vectorized sampling stream (different seeded graphs
    for the randomized families, same distribution -- see the module
    docstring).
    """
    validate_graph_rng(graph_rng)
    if family not in ARRAY_FAMILIES:
        if family in FAMILIES:
            raise ValueError(
                f"graph family {family!r} has no array-native sampler; "
                f"array-native: {array_family_names()} "
                f"(use graph_source='networkx' for the rest)"
            )
        # Unknown everywhere: the shared registry error path, suggesting
        # close matches over every family either registry knows.
        raise unknown_name_error(
            "graph family", family, set(FAMILIES) | set(ARRAY_FAMILIES)
        )
    return ARRAY_FAMILIES[family](n, seed=seed, graph_rng=graph_rng)


def make_family(
    family: str,
    n: int,
    seed: int = 0,
    graph_source: str = "auto",
    graph_rng: str = DEFAULT_GRAPH_RNG,
) -> object:
    """One seeded family graph from the resolved source.

    The single dispatch point shared by ``sweep``, ``build_table1``, and
    the CLI: returns a :class:`GraphArrays` when the resolved source is
    ``"arrays"`` and a ``networkx.Graph`` otherwise -- same seeded edge
    set either way under ``graph_rng="legacy"``.  ``graph_rng="batched"``
    always resolves to the array-native samplers (the v2 stream has no
    networkx replay path).
    """
    from .generators import make_family_graph

    if resolve_graph_source(graph_source, family, graph_rng) == "arrays":
        return make_family_arrays(family, n, seed=seed, graph_rng=graph_rng)
    return make_family_graph(family, n, seed=seed)


def resolve_graph_source(
    graph_source: str, family: str, graph_rng: str = DEFAULT_GRAPH_RNG
) -> str:
    """Map a ``graph_source=`` request to the source that will be used.

    ``"auto"`` picks ``"arrays"`` exactly when the family has an
    array-native sampler (a pure performance choice under the default
    ``graph_rng="legacy"`` -- the edge sets are identical); requesting
    ``"arrays"`` for a family without one is an error rather than a
    silent fallback.  ``graph_rng="batched"`` (the v2 sampling stream)
    exists only array-natively, so it requires an array-native family and
    is incompatible with ``graph_source="networkx"`` -- both misuses fail
    with the fix spelled out rather than silently changing the sampled
    graphs.
    """
    if graph_source not in GRAPH_SOURCES:
        raise ValueError(
            f"unknown graph source {graph_source!r}; known: {GRAPH_SOURCES}"
        )
    validate_graph_rng(graph_rng)
    if family not in ARRAY_FAMILIES and family not in FAMILIES:
        # A typo, not a capability gap: the shared registry error path
        # (with close-match suggestions) beats a misleading
        # "no array-native sampler" story for a family that is not known
        # under any source.
        raise unknown_name_error(
            "graph family", family, set(FAMILIES) | set(ARRAY_FAMILIES)
        )
    if graph_rng == "batched":
        if family not in ARRAY_FAMILIES:
            raise ValueError(
                f"graph_rng='batched' (the v2 vectorized sampling stream) "
                f"needs an array-native sampler, and family {family!r} has "
                f"none (array-native: {array_family_names()}); use "
                f"graph_rng='legacy' for this family"
            )
        if graph_source == "networkx":
            raise ValueError(
                "graph_rng='batched' samples array-natively and cannot "
                "replay through the networkx generators; use "
                "graph_source='arrays' (or 'auto'), or keep "
                "graph_source='networkx' with graph_rng='legacy'"
            )
        return "arrays"
    if graph_source == "auto":
        return "arrays" if family in ARRAY_FAMILIES else "networkx"
    if graph_source == "arrays" and family not in ARRAY_FAMILIES:
        raise ValueError(
            f"graph family {family!r} has no array-native sampler "
            f"(array-native: {array_family_names()}); "
            f"use graph_source='networkx' or 'auto'"
        )
    return graph_source

"""Array-native graph sources: sample straight into CSR edge arrays.

The classic pipeline builds a ``networkx.Graph``
(:mod:`repro.graphs.generators`), normalizes it into an adjacency dict,
and only then converts to the :class:`repro.sim.fast_engine.GraphArrays`
CSR view the vectorized engines consume.  At n = 10^5 those first two
steps -- a dict-of-dicts graph object plus a Python normalization pass --
cost more than the simulation itself (~70% of a batched sleeping trial).

This module skips them: each sampler here draws the edge list directly
into integer arrays and hands them to :meth:`GraphArrays.from_edges`,
never materializing a networkx object or an adjacency dict.  The dict
view stays *lazy* (built only if a generator-engine consumer asks), and
:meth:`GraphArrays.to_networkx` is the escape hatch back to a real
``networkx.Graph`` when one is wanted.

Exactness contract
------------------
Samplers are **edge-for-edge identical** to their networkx-built
counterparts in :mod:`repro.graphs.generators` for the same parameters
and seed: :func:`gnp_arrays` consumes ``random.Random(seed)`` draws in
exactly the order ``networkx.gnp_random_graph`` /
``networkx.fast_gnp_random_graph`` do (including the
:data:`~repro.graphs.generators.GNP_FAST_THRESHOLD` switchover), and the
deterministic topologies replicate the generators' labelings (including
``grid``'s string-sorted relabeling).  ``tests/test_graph_arrays.py``
pins this parity, which is what makes ``graph_source="arrays"`` a pure
performance choice: any seeded experiment produces bit-identical results
on either source.

:data:`ARRAY_FAMILIES` mirrors the :data:`repro.graphs.generators.FAMILIES`
registry for the families with an array-native sampler;
:func:`resolve_graph_source` maps the ``graph_source=`` choices
(:data:`GRAPH_SOURCES`: ``"auto"``/``"networkx"``/``"arrays"``) onto a
concrete source per family.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

import numpy as np

from ..sim.fast_engine import GraphArrays
from .generators import GNP_FAST_THRESHOLD

#: Graph-source choices accepted by ``graph_source=`` throughout the
#: package: ``"networkx"`` (the classic generators), ``"arrays"`` (the
#: direct-to-CSR samplers here), ``"auto"`` (arrays whenever the family
#: has an array-native sampler -- identical results either way).
GRAPH_SOURCES = ("auto", "networkx", "arrays")


def _from_pairs(n: int, pairs: List[tuple]) -> GraphArrays:
    """Edge-pair list -> :class:`GraphArrays` (the samplers' common exit)."""
    if not pairs:
        return GraphArrays.from_edges(
            n, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
    u, v = zip(*pairs)
    return GraphArrays.from_edges(
        n,
        np.fromiter(u, dtype=np.int64, count=len(pairs)),
        np.fromiter(v, dtype=np.int64, count=len(pairs)),
    )


def gnp_arrays(n: int, p: float, seed: int = 0) -> GraphArrays:
    """Erdos--Renyi ``G(n, p)``, sampled directly into edge arrays.

    Edge-for-edge identical to :func:`repro.graphs.generators.gnp` for
    the same ``(n, p, seed)``: below the
    :data:`~repro.graphs.generators.GNP_FAST_THRESHOLD` (or for dense
    ``p``) it replays networkx's classic pair-loop sampler; above it, the
    O(n + m) geometric-skip sampler of ``fast_gnp_random_graph``
    (Batagelj--Brandes) -- both consuming ``random.Random(seed)`` draws in
    networkx's exact order.
    """
    if p >= 1.0:
        iu, iv = np.triu_indices(n, k=1)
        return GraphArrays.from_edges(n, iu.astype(np.int64), iv.astype(np.int64))
    if p <= 0.0:
        return _from_pairs(n, [])
    rng = random.Random(seed)
    pairs: List[tuple] = []
    if n > GNP_FAST_THRESHOLD and p < 0.25:
        # Geometric skips over the (v, w) pair enumeration, exactly as
        # networkx.fast_gnp_random_graph walks it.
        lp = math.log(1.0 - p)
        rand, log = rng.random, math.log
        v, w = 1, -1
        while v < n:
            lr = log(1.0 - rand())
            w = w + 1 + int(lr / lp)
            while w >= v and v < n:
                w = w - v
                v = v + 1
            if v < n:
                pairs.append((v, w))
        return _from_pairs(n, pairs)
    rand = rng.random
    for u in range(n):  # networkx.gnp_random_graph's combinations order
        for v in range(u + 1, n):
            if rand() < p:
                pairs.append((u, v))
    return _from_pairs(n, pairs)


def ring_arrays(n: int) -> GraphArrays:
    """The cycle (ring) ``C_n`` -- matches ``generators.cycle_graph``."""
    idx = np.arange(n, dtype=np.int64)
    # n = 1 yields the self-loop networkx's cycle_graph(1) carries and
    # from_edges drops it, matching normalize_graph; n = 2 collapses the
    # duplicate orientation to the single 0--1 edge.
    return GraphArrays.from_edges(n, idx, (idx + 1) % max(n, 1))


def path_arrays(n: int) -> GraphArrays:
    """The path ``P_n`` -- matches ``generators.path_graph``."""
    idx = np.arange(max(n - 1, 0), dtype=np.int64)
    return GraphArrays.from_edges(n, idx, idx + 1)


def star_arrays(n: int) -> GraphArrays:
    """A star with ``n`` nodes total -- matches ``generators.star_graph``."""
    if n < 1:
        raise ValueError(f"star needs at least one node, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    return GraphArrays.from_edges(n, np.zeros(n - 1, dtype=np.int64), leaves)


def grid_arrays(rows: int, cols: int) -> GraphArrays:
    """A ``rows x cols`` 2-D grid -- matches ``generators.grid_graph``,
    including its deterministic string-sorted relabeling of the ``(i, j)``
    coordinate nodes (``sorted(nodes, key=str)``, *not* row-major order).
    """
    coords = [(i, j) for i in range(rows) for j in range(cols)]
    label = {c: k for k, c in enumerate(sorted(coords, key=str))}
    pairs = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                pairs.append((label[(i, j)], label[(i + 1, j)]))
            if j + 1 < cols:
                pairs.append((label[(i, j)], label[(i, j + 1)]))
    return _from_pairs(rows * cols, pairs)


def empty_arrays(n: int) -> GraphArrays:
    """``n`` isolated nodes."""
    return _from_pairs(n, [])


def complete_arrays(n: int) -> GraphArrays:
    """The clique ``K_n``."""
    return gnp_arrays(n, 1.0)


# ----------------------------------------------------------------------
# The single-knob family registry, mirroring generators.FAMILIES for the
# families with an array-native sampler.
# ----------------------------------------------------------------------


def _gnp_sparse(n: int, seed: int = 0) -> GraphArrays:
    """G(n, p) with expected degree ~8 -- generators' ``gnp-sparse``."""
    p = min(1.0, 8.0 / max(n - 1, 1))
    return gnp_arrays(n, p, seed=seed)


def _gnp_dense(n: int, seed: int = 0) -> GraphArrays:
    """G(n, 1/2) -- generators' ``gnp-dense``."""
    return gnp_arrays(n, 0.5, seed=seed)


ARRAY_FAMILIES: Dict[str, Callable[..., GraphArrays]] = {
    "gnp-sparse": _gnp_sparse,
    "gnp-dense": _gnp_dense,
    "cycle": lambda n, seed=0: ring_arrays(n),
    "path": lambda n, seed=0: path_arrays(n),
    "star": lambda n, seed=0: star_arrays(n),
    "complete": lambda n, seed=0: complete_arrays(n),
    "empty": lambda n, seed=0: empty_arrays(n),
}


def array_family_names() -> List[str]:
    """Sorted names of the families with an array-native sampler."""
    return sorted(ARRAY_FAMILIES)


def make_family_arrays(family: str, n: int, seed: int = 0) -> GraphArrays:
    """Build a :class:`GraphArrays` from the named family, array-natively.

    Only families in :data:`ARRAY_FAMILIES` are accepted; the edge set is
    identical to ``make_family_graph(family, n, seed)``.
    """
    if family not in ARRAY_FAMILIES:
        raise KeyError(
            f"graph family {family!r} has no array-native sampler; "
            f"array-native: {array_family_names()} "
            f"(use graph_source='networkx' for the rest)"
        )
    return ARRAY_FAMILIES[family](n, seed=seed)


def make_family(
    family: str, n: int, seed: int = 0, graph_source: str = "auto"
) -> object:
    """One seeded family graph from the resolved source.

    The single dispatch point shared by ``sweep``, ``build_table1``, and
    the CLI: returns a :class:`GraphArrays` when the resolved source is
    ``"arrays"`` and a ``networkx.Graph`` otherwise -- same seeded edge
    set either way.
    """
    from .generators import make_family_graph

    if resolve_graph_source(graph_source, family) == "arrays":
        return make_family_arrays(family, n, seed=seed)
    return make_family_graph(family, n, seed=seed)


def resolve_graph_source(graph_source: str, family: str) -> str:
    """Map a ``graph_source=`` request to the source that will be used.

    ``"auto"`` picks ``"arrays"`` exactly when the family has an
    array-native sampler (a pure performance choice -- the edge sets are
    identical); requesting ``"arrays"`` for a family without one is an
    error rather than a silent fallback.
    """
    if graph_source not in GRAPH_SOURCES:
        raise ValueError(
            f"unknown graph source {graph_source!r}; known: {GRAPH_SOURCES}"
        )
    if graph_source == "auto":
        return "arrays" if family in ARRAY_FAMILIES else "networkx"
    if graph_source == "arrays" and family not in ARRAY_FAMILIES:
        raise ValueError(
            f"graph family {family!r} has no array-native sampler "
            f"(array-native: {array_family_names()}); "
            f"use graph_source='networkx' or 'auto'"
        )
    return graph_source

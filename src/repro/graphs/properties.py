"""Structural graph properties referenced by the paper.

The paper contrasts its bounds with Barenboim--Tzur's ``O(a + log* n)``
node-averaged bound, where ``a`` is the *arboricity* -- which can be
``Theta(n)`` in general.  We provide a degeneracy-based arboricity estimate
(degeneracy is within a factor 2 of arboricity) and the peeling
``H-partition`` that underlies such algorithms, so experiments can report
where a graph family sits on that spectrum.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Set


def _adjacency(graph: Any) -> Dict[Any, Set[Any]]:
    if hasattr(graph, "adj"):
        return {v: set(graph.adj[v]) for v in graph.nodes()}
    return {v: set(nbrs) for v, nbrs in graph.items()}


def max_degree(graph: Any) -> int:
    """The maximum degree Delta."""
    adjacency = _adjacency(graph)
    if not adjacency:
        return 0
    return max(len(nbrs) for nbrs in adjacency.values())


def average_degree(graph: Any) -> float:
    """The mean degree."""
    adjacency = _adjacency(graph)
    if not adjacency:
        return 0.0
    return sum(len(nbrs) for nbrs in adjacency.values()) / len(adjacency)


def degeneracy(graph: Any) -> int:
    """The degeneracy (smallest d such that every subgraph has a node of
    degree <= d), computed by the standard linear-time peeling."""
    adjacency = _adjacency(graph)
    if not adjacency:
        return 0
    degrees = {v: len(nbrs) for v, nbrs in adjacency.items()}
    buckets: Dict[int, Set[Any]] = {}
    for v, d in degrees.items():
        buckets.setdefault(d, set()).add(v)
    removed: Set[Any] = set()
    result = 0
    for _ in range(len(adjacency)):
        d = min(b for b in buckets if buckets[b])
        result = max(result, d)
        v = buckets[d].pop()
        removed.add(v)
        for u in adjacency[v]:
            if u in removed:
                continue
            buckets[degrees[u]].discard(u)
            degrees[u] -= 1
            buckets.setdefault(degrees[u], set()).add(u)
    return result


def arboricity_upper_bound(graph: Any) -> int:
    """Degeneracy is an upper bound on arboricity (and <= 2a - 1)."""
    return max(1, degeneracy(graph))


def h_partition(graph: Any, epsilon: float = 0.1) -> List[Set[Any]]:
    """The Barenboim--Elkin H-partition: repeatedly peel all nodes of degree
    at most ``(2 + epsilon) * a_hat`` where ``a_hat`` is the degeneracy
    estimate.  Returns the list of layers; their count is ``O(log n)``.
    """
    adjacency = _adjacency(graph)
    if not adjacency:
        return []
    threshold = (2.0 + epsilon) * max(1, degeneracy(graph))
    remaining = {v: set(nbrs) for v, nbrs in adjacency.items()}
    layers: List[Set[Any]] = []
    while remaining:
        layer = {v for v, nbrs in remaining.items() if len(nbrs) <= threshold}
        if not layer:
            # Cannot happen when threshold >= 2 * degeneracy, but guard
            # against epsilon rounding by peeling the minimum-degree node.
            layer = {min(remaining, key=lambda v: len(remaining[v]))}
        layers.append(layer)
        for v in layer:
            for u in remaining[v]:
                if u not in layer:
                    remaining[u].discard(v)
            del remaining[v]
    return layers


def log_star(n: float) -> int:
    """The iterated logarithm ``log* n`` (base 2)."""
    if n < 0:
        raise ValueError(f"log* undefined for negative values, got {n}")
    count = 0
    while n > 1:
        n = math.log2(n)
        count += 1
    return count


def graph_stats(graph: Any) -> Dict[str, float]:
    """A flat summary used by sweeps: n, m, Delta, degeneracy, etc."""
    adjacency = _adjacency(graph)
    n = len(adjacency)
    m = sum(len(nbrs) for nbrs in adjacency.values()) // 2
    return {
        "n": n,
        "edges": m,
        "max_degree": max_degree(graph),
        "average_degree": average_degree(graph),
        "degeneracy": degeneracy(graph),
        "isolated": sum(1 for nbrs in adjacency.values() if not nbrs),
    }

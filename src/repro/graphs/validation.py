"""Correctness checks for MIS and coloring outputs.

These are the oracles the whole test suite leans on: given a graph and a
claimed solution they either certify it or name a concrete violation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set


def _adjacency(graph: Any) -> Dict[Any, Set[Any]]:
    if hasattr(graph, "adj"):
        return {v: set(graph.adj[v]) for v in graph.nodes()}
    return {v: set(nbrs) for v, nbrs in graph.items()}


def independence_violations(graph: Any, candidate: Iterable[Any]) -> List[tuple]:
    """Edges of the graph with both endpoints in ``candidate``."""
    members = set(candidate)
    adjacency = _adjacency(graph)
    violations = []
    for v in members:
        for u in adjacency.get(v, ()):
            if u in members and (u, v) not in violations:
                violations.append((v, u))
    return violations


def domination_violations(graph: Any, candidate: Iterable[Any]) -> List[Any]:
    """Nodes with no neighbor in ``candidate`` and not in it themselves."""
    members = set(candidate)
    adjacency = _adjacency(graph)
    return [
        v
        for v in adjacency
        if v not in members and not (adjacency[v] & members)
    ]


def is_independent_set(graph: Any, candidate: Iterable[Any]) -> bool:
    """Whether no two members of ``candidate`` are adjacent."""
    return not independence_violations(graph, candidate)


def is_dominating_set(graph: Any, candidate: Iterable[Any]) -> bool:
    """Whether every non-member has a neighbor in ``candidate``."""
    return not domination_violations(graph, candidate)


def is_maximal_independent_set(graph: Any, candidate: Iterable[Any]) -> bool:
    """Whether ``candidate`` is an MIS: independent **and** dominating."""
    return is_independent_set(graph, candidate) and is_dominating_set(
        graph, candidate
    )


def is_maximal_independent_set_arrays(arrays: Any, mis_mask: Any) -> bool:
    """Vectorized MIS oracle over a CSR graph view.

    ``arrays`` is a :class:`repro.sim.fast_engine.GraphArrays` (or
    anything exposing ``n``, ``src``, ``dst`` directed-edge index arrays);
    ``mis_mask`` a boolean membership column aligned with node indices.
    Two O(m) numpy passes -- no adjacency dict is ever built -- returning
    exactly what :func:`is_maximal_independent_set` returns for the same
    graph and member set (undecided nodes are simply non-members, as in
    the dict oracle).
    """
    import numpy as np

    mask = np.asarray(mis_mask, dtype=bool)
    if mask.shape != (arrays.n,):
        raise ValueError(
            f"mis_mask has shape {mask.shape}, expected ({arrays.n},)"
        )
    src, dst = arrays.src, arrays.dst
    if bool(np.any(mask[src] & mask[dst])):
        return False  # adjacent members: not independent
    covered = np.zeros(arrays.n, dtype=bool)
    covered[dst[mask[src]]] = True
    return bool(np.all(mask | covered))  # non-members need a member neighbor


def assert_valid_mis(graph: Any, candidate: Iterable[Any]) -> None:
    """Raise ``AssertionError`` with a concrete witness if not an MIS."""
    bad_edges = independence_violations(graph, candidate)
    if bad_edges:
        raise AssertionError(
            f"not independent: adjacent pair(s) in set, e.g. {bad_edges[0]}"
        )
    undominated = domination_violations(graph, candidate)
    if undominated:
        raise AssertionError(
            f"not maximal: node(s) with no neighbor in set, "
            f"e.g. {undominated[0]}"
        )


def is_proper_coloring(graph: Any, colors: Dict[Any, Optional[int]]) -> bool:
    """Whether ``colors`` assigns every node a color differing from all
    neighbors' colors."""
    adjacency = _adjacency(graph)
    for v, nbrs in adjacency.items():
        color = colors.get(v)
        if color is None:
            return False
        if any(colors.get(u) == color for u in nbrs):
            return False
    return True


def coloring_palette_size(colors: Dict[Any, Optional[int]]) -> int:
    """Number of distinct colors used."""
    return len({c for c in colors.values() if c is not None})

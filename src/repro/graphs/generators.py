"""Seeded graph generators used across examples, tests, and benchmarks.

Every generator returns a ``networkx.Graph`` whose nodes are the consecutive
integers ``0 .. n-1`` (protocols send node ids in CONGEST messages, so small
integer labels keep payloads within the bit budget).  All randomized
generators take an explicit ``seed`` for reproducibility.

The :data:`FAMILIES` registry maps family names to single-knob constructors
``(n, seed) -> Graph`` so that sweeps, benchmarks, and the CLI can iterate
over families by name.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

import networkx as nx

from .._registry import unknown_name_error


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to consecutive integers 0..n-1 deterministically."""
    mapping = {v: i for i, v in enumerate(sorted(graph.nodes(), key=str))}
    return nx.relabel_nodes(graph, mapping)


def empty_graph(n: int) -> nx.Graph:
    """``n`` isolated nodes."""
    return nx.empty_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """The clique ``K_n``."""
    return nx.complete_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """The cycle ``C_n``."""
    return nx.cycle_graph(n)


def path_graph(n: int) -> nx.Graph:
    """The path ``P_n``."""
    return nx.path_graph(n)


def star_graph(n: int) -> nx.Graph:
    """A star with ``n`` nodes total (one hub, ``n - 1`` leaves)."""
    if n < 1:
        raise ValueError(f"star needs at least one node, got {n}")
    return nx.star_graph(n - 1)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows x cols`` 2-D grid."""
    return _relabel(nx.grid_2d_graph(rows, cols))


#: Above this size, sparse G(n, p) sampling switches to the O(n + m)
#: geometric-skip algorithm.  The distribution is identical but the sampled
#: graphs differ per seed, so the threshold is pinned well above every
#: committed benchmark size (<= 1024): recorded small-n results replay
#: byte-identically while 10^4..10^5-node sweeps stop paying the naive
#: O(n^2) pair loop (which dominates whole sweeps from n ~ 3000 up).
GNP_FAST_THRESHOLD = 2048


def gnp(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdos--Renyi ``G(n, p)``.

    Sparse graphs above :data:`GNP_FAST_THRESHOLD` nodes use
    ``networkx.fast_gnp_random_graph`` (same distribution, O(n + m) time);
    everything else keeps the classic pair-loop sampler for seed-stable
    continuity with previously recorded runs.
    """
    if n > GNP_FAST_THRESHOLD and p < 0.25:
        return nx.fast_gnp_random_graph(n, p, seed=seed)
    return nx.gnp_random_graph(n, p, seed=seed)


def random_regular(n: int, d: int, seed: int = 0) -> nx.Graph:
    """A random ``d``-regular graph (``n * d`` must be even)."""
    return nx.random_regular_graph(d, n, seed=seed)


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random labeled tree."""
    if n == 1:
        return nx.empty_graph(1)
    if hasattr(nx, "random_labeled_tree"):
        return nx.random_labeled_tree(n, seed=seed)
    return nx.random_tree(n, seed=seed)


def barabasi_albert(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """A Barabasi--Albert preferential-attachment graph (power-law degrees)."""
    m = min(m, max(1, n - 1))
    if n <= m:
        return nx.complete_graph(n)
    return nx.barabasi_albert_graph(n, m, seed=seed)


def random_geometric(n: int, radius: float = None, seed: int = 0) -> nx.Graph:
    """A random geometric graph -- the standard sensor-network model.

    The default radius ``sqrt(2 ln n / (pi n))`` sits just above the
    connectivity threshold, giving the sparse-but-connected topologies that
    motivate the paper's energy story.
    """
    import math

    if radius is None:
        radius = math.sqrt(2.0 * math.log(max(n, 2)) / (math.pi * n))
    return nx.random_geometric_graph(n, radius, seed=seed)


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """The complete bipartite graph ``K_{a,b}``."""
    return _relabel(nx.complete_bipartite_graph(a, b))


def caterpillar(n: int, seed: int = 0) -> nx.Graph:
    """A caterpillar tree: a random spine with pendant legs."""
    if n <= 2:
        return nx.path_graph(n)
    rng = random.Random(seed)
    spine_len = max(2, n // 2)
    graph = nx.path_graph(spine_len)
    for leaf in range(spine_len, n):
        graph.add_edge(leaf, rng.randrange(spine_len))
    return graph


def disjoint_cliques(count: int, size: int) -> nx.Graph:
    """``count`` disjoint cliques of ``size`` nodes each."""
    graph = nx.Graph()
    for i in range(count):
        base = i * size
        graph.add_nodes_from(range(base, base + size))
        for u in range(base, base + size):
            for v in range(u + 1, base + size):
                graph.add_edge(u, v)
    return graph


def hypercube(dimension: int) -> nx.Graph:
    """The ``dimension``-dimensional hypercube (``2^dimension`` nodes)."""
    return _relabel(nx.hypercube_graph(dimension))


# ----------------------------------------------------------------------
# The single-knob family registry used by sweeps and benchmarks.
# ----------------------------------------------------------------------

def _gnp_sparse(n: int, seed: int = 0) -> nx.Graph:
    """G(n, p) with expected degree ~8 (sparse regime)."""
    p = min(1.0, 8.0 / max(n - 1, 1))
    return gnp(n, p, seed=seed)


def _gnp_dense(n: int, seed: int = 0) -> nx.Graph:
    """G(n, 1/2) -- high-degree regime where log(deg) ~ log n."""
    return gnp(n, 0.5, seed=seed)


def _regular4(n: int, seed: int = 0) -> nx.Graph:
    if n <= 4:
        return nx.complete_graph(n)
    if (n * 4) % 2:
        n += 1
    return random_regular(n, 4, seed=seed)


FAMILIES: Dict[str, Callable[..., nx.Graph]] = {
    "gnp-sparse": _gnp_sparse,
    "gnp-dense": _gnp_dense,
    "regular-4": _regular4,
    "tree": random_tree,
    "cycle": lambda n, seed=0: cycle_graph(n),
    "path": lambda n, seed=0: path_graph(n),
    "star": lambda n, seed=0: star_graph(n),
    "complete": lambda n, seed=0: complete_graph(n),
    "empty": lambda n, seed=0: empty_graph(n),
    "ba": barabasi_albert,
    "geometric": random_geometric,
    "caterpillar": caterpillar,
}


def make_family_graph(family: str, n: int, seed: int = 0) -> nx.Graph:
    """Build a graph from the named family, checked against the registry.

    A typo raises ``ValueError`` with close-match suggestions
    (``"gnp"`` -> did you mean ``"gnp-sparse"``, ``"gnp-dense"``?) --
    the same error path the array-native registry
    (:func:`repro.graphs.arrays.make_family_arrays`) uses.
    """
    if family not in FAMILIES:
        raise unknown_name_error("graph family", family, FAMILIES)
    return FAMILIES[family](n, seed=seed)


def family_names() -> List[str]:
    """Sorted list of registered family names."""
    return sorted(FAMILIES)

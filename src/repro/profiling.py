"""Phase profiling: where a trial's wall time and peak memory actually go.

The scale series (``BENCH_scale_*.json``) answered "how fast" one decade
at a time but never "where": the 10^7 trial's ~40 s was known only as a
total.  This module is the measurement layer behind the ``phases`` block
those artifacts now carry -- a stopwatch over the named stages of the
sampler -> CSR build -> engine -> result build pipeline, with optional
``tracemalloc`` peak tracking per phase and the process-wide
``ru_maxrss`` high-water mark, all from the stdlib.

Design constraints, in order:

* **zero cost when disabled** -- the hot paths call the module-level
  :func:`phase` context-manager factory; with no active profiler it
  returns one shared null object (no allocation, two attribute loads per
  call site), so tier-1 equivalence and perf gates run the exact same
  code whether or not anyone is measuring.
* **self-time attribution** -- phases nest (the streaming CSR build pulls
  sampler chunks from *inside* its build loop), and a stopwatch that
  double-counted nested spans could not answer "where does the time go".
  Entering an inner phase pauses the enclosing one, so the reported
  wall-clock totals partition the measured window.
* **peaks are per-window** -- with ``trace=True`` each phase records the
  ``tracemalloc`` peak between its start and end; entering a nested
  phase resets the peak window, so a phase's figure reflects its own
  allocations (innermost-window semantics), while ``ru_maxrss`` reports
  the whole process high-water mark.

Activate with :func:`profile_phases` (benchmarks, the ``--profile-phases``
CLI flag); instrumented code never checks whether profiling is on::

    with profile_phases(trace=True) as prof:
        run_the_pipeline()
    print(prof.summary())
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: The canonical pipeline phases, in execution order.  Instrumented code
#: may introduce additional names (they sort after these in reports);
#: these four are what every ``BENCH_scale_*`` phases block carries.
PIPELINE_PHASES = ("sample", "csr_build", "engine", "result_build")

_ACTIVE: Optional["PhaseProfiler"] = None


class PhaseProfiler:
    """Per-phase self wall time, call counts, and optional traced peaks.

    Not constructed directly by instrumented code -- use
    :func:`profile_phases` to activate one for a block and the module
    level :func:`phase` to attribute spans to it.
    """

    def __init__(self, *, trace: bool = False):
        self.trace = trace
        self.wall_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.peak_bytes: Dict[str, int] = {}
        # Frames are mutable [name, span_start] pairs: entering a nested
        # phase flushes and re-bases the parent's span, so accumulated
        # wall clocks are self times and partition the measured window.
        self._stack: List[List[Any]] = []

    # -- span bookkeeping (driven by the module-level phase()) ---------

    def _flush_top(self, now: float) -> None:
        frame = self._stack[-1]
        name = frame[0]
        self.wall_s[name] = self.wall_s.get(name, 0.0) + (now - frame[1])
        frame[1] = now

    def start_phase(self, name: str) -> None:
        now = time.perf_counter()
        if self._stack:
            self._flush_top(now)
        self.calls[name] = self.calls.get(name, 0) + 1
        self._stack.append([name, now])
        if self.trace and tracemalloc.is_tracing():
            tracemalloc.reset_peak()

    def end_phase(self, name: str) -> None:
        now = time.perf_counter()
        if not self._stack or self._stack[-1][0] != name:
            raise RuntimeError(
                f"phase {name!r} ended out of order (stack: "
                f"{[f[0] for f in self._stack]})"
            )
        self._flush_top(now)
        self._stack.pop()
        if self.trace and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.peak_bytes[name] = max(self.peak_bytes.get(name, 0), peak)
            tracemalloc.reset_peak()
        if self._stack:
            self._stack[-1][1] = now  # resume the enclosing span

    # -- reporting -----------------------------------------------------

    def phase_names(self) -> List[str]:
        """Measured phase names, pipeline order first, then extras."""
        known = [n for n in PIPELINE_PHASES if n in self.calls]
        return known + sorted(set(self.calls) - set(PIPELINE_PHASES))

    def report(self) -> Dict[str, Dict[str, Any]]:
        """``{phase: {"calls", "wall_s"[, "peak_traced_mb"]}}``.

        This is the ``phases`` block committed into ``BENCH_scale_*``
        artifacts: ``wall_s`` and ``peak_traced_mb`` are machine-varying
        (``check_artifacts.py`` strips ``_s``/``_mb``-suffixed keys from
        series comparison but validates the block's shape); ``calls`` is
        deterministic for a fixed plan and is compared.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.phase_names():
            entry: Dict[str, Any] = {
                "calls": self.calls[name],
                "wall_s": round(self.wall_s.get(name, 0.0), 6),
            }
            if name in self.peak_bytes:
                entry["peak_traced_mb"] = round(
                    self.peak_bytes[name] / 1e6, 3
                )
            out[name] = entry
        return out

    def summary(self) -> Dict[str, Any]:
        """The report plus process-level totals (RSS high-water mark)."""
        out: Dict[str, Any] = {
            "phases": self.report(),
            "profiled_wall_s": round(sum(self.wall_s.values()), 6),
        }
        rss = peak_rss_mb()
        if rss is not None:
            out["peak_rss_mb"] = rss
        return out

    def format(self) -> str:
        """A fixed-width table for human eyes (the CLI's rendering)."""
        lines = [
            f"{'phase':<14} {'calls':>7} {'wall_s':>10} {'peak_mb':>10}"
        ]
        for name in self.phase_names():
            peak = (
                f"{self.peak_bytes[name] / 1e6:>10.1f}"
                if name in self.peak_bytes
                else f"{'-':>10}"
            )
            lines.append(
                f"{name:<14} {self.calls[name]:>7} "
                f"{self.wall_s.get(name, 0.0):>10.3f} {peak}"
            )
        total = sum(self.wall_s.values())
        rss = peak_rss_mb()
        tail = f"{'total':<14} {'':>7} {total:>10.3f}"
        if rss is not None:
            tail += f"  peak_rss_mb={rss}"
        lines.append(tail)
        return "\n".join(lines)


class _NullPhase:
    """The shared do-nothing span served while no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: PhaseProfiler, name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._profiler.start_phase(self._name)

    def __exit__(self, *exc: Any) -> bool:
        self._profiler.end_phase(self._name)
        return False


def active() -> Optional[PhaseProfiler]:
    """The profiler currently collecting, or ``None``."""
    return _ACTIVE


def phase(name: str):
    """A context manager attributing the enclosed span to ``name``.

    The instrumentation entry point: hot paths call this unconditionally;
    without an active profiler it returns one preallocated null object,
    so the disabled cost is a global load and an identity check.
    """
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_PHASE
    return _Phase(profiler, name)


def profiled_pulls(name: str, iterable: Iterable[Any]) -> Iterable[Any]:
    """Attribute time spent *pulling* from ``iterable`` to ``name``.

    The streaming CSR build iterates sampler chunks from inside its own
    ``csr_build`` phase; wrapping the chunk iterable here books the
    generator's production time to ``sample`` (self-time attribution
    pauses the enclosing phase per pull).  Returns ``iterable`` unchanged
    when no profiler is active, so the disabled path adds no generator
    frame.
    """
    if _ACTIVE is None:
        return iterable
    return _pull_profiled(name, iterable)


def _pull_profiled(name: str, iterable: Iterable[Any]) -> Iterator[Any]:
    iterator = iter(iterable)
    while True:
        with phase(name):
            try:
                item = next(iterator)
            except StopIteration:
                return
        yield item


@contextmanager
def profile_phases(*, trace: bool = False) -> Iterator[PhaseProfiler]:
    """Activate a fresh :class:`PhaseProfiler` for the enclosed block.

    ``trace=True`` additionally records per-phase ``tracemalloc`` peaks
    (starting the tracer if needed, stopping it again if started here).
    Profiling is process-global and deliberately single-level: nesting
    activations is an error, not a silent re-scope.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "phase profiling is already active; profile_phases() does not "
            "nest -- share the active profiler instead"
        )
    profiler = PhaseProfiler(trace=trace)
    started_tracer = False
    if trace and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracer = True
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = None
        if started_tracer:
            tracemalloc.stop()


def peak_rss_mb() -> Optional[float]:
    """The process RSS high-water mark in MB (``None`` off-POSIX).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so artifacts carry one unit.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kb = raw / 1024.0 if sys.platform == "darwin" else float(raw)
    return round(kb / 1024.0, 1)

"""The server: one asyncio loop over stdlib streams, no new deps.

:class:`MISService` owns the moving parts (cache, pool, reaper, the
async-job registry); the HTTP layer is a minimal HTTP/1.1 handler on
``asyncio.start_server`` -- request line, headers, ``Content-Length``
body, keep-alive -- because the API is five JSON endpoints and a
framework would be the only new dependency in the repo.  Request
*semantics* live in :mod:`repro.service.routes`; this module only moves
bytes.

Entry points: :func:`serve` (blocking; the CLI ``serve`` subcommand) and
:func:`start_service_thread` (background thread + own loop; tests and
the cold-vs-warm benchmark).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from .cache import ResultCache
from .pool import WorkerPool
from .reaper import Reaper
from .routes import dispatch
from .schema import SERVICE_VERSION, JobStatus

#: Request bodies past this are rejected outright (a manifest of 10^4
#: trials serializes to well under 1 MB).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    504: "Gateway Timeout",
}


class JobRecord:
    """One async job's lifecycle, queryable via ``GET /v1/jobs/{id}``."""

    def __init__(self, job_id: str, kind: str) -> None:
        self.job_id = job_id
        self.kind = kind
        self.state = "queued"
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, Any]] = None

    def complete(self, status: int, payload: bytes) -> None:
        decoded = json.loads(payload.decode("utf-8"))
        if status == 200:
            self.state = "done"
            self.result = decoded
        else:
            self.state = "failed"
            self.error = decoded

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            kind=self.kind,
            state=self.state,
            result=self.result,
            error=self.error,
        )


class MISService:
    """The long-running service state behind every endpoint."""

    def __init__(
        self,
        *,
        workers: int = 1,
        max_queue: int = 8,
        cache_size: int = 256,
        default_deadline_s: Optional[float] = None,
        reaper_interval_s: float = 0.05,
    ) -> None:
        self.cache = ResultCache(cache_size)
        self.pool = WorkerPool(workers=workers, max_queue=max_queue)
        self.reaper = Reaper(self.pool, interval_s=reaper_interval_s)
        self.default_deadline_s = default_deadline_s
        self.jobs: Dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._started = time.monotonic()
        self._tasks: set = set()

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def new_job(self, kind: str) -> JobRecord:
        record = JobRecord(f"job-{next(self._ids)}", kind)
        self.jobs[record.job_id] = record
        return record

    def start_job(self, record: JobRecord, coro) -> None:
        """Run ``coro`` (returning ``(status, body bytes)``) as ``record``."""
        record.state = "running"
        task = asyncio.get_running_loop().create_task(
            self._run_job(record, coro)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_job(self, record: JobRecord, coro) -> None:
        try:
            status, payload = await coro
        except Exception as exc:  # pragma: no cover - job-level backstop
            record.state = "failed"
            record.error = {
                "error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                    "detail": None,
                },
                "service_version": SERVICE_VERSION,
            }
        else:
            record.complete(status, payload)

    def close(self) -> None:
        self.reaper.stop()
        self.pool.close()


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; ``None`` on clean EOF, ``ValueError``
    on a malformed request."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ValueError(
            f"malformed Content-Length {headers.get('content-length')!r}"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target.split("?", 1)[0], headers, body


def _render(
    status: int, extra: Dict[str, str], body: bytes, keep_alive: bool
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


async def _handle_connection(
    service: MISService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                body = json.dumps(
                    {
                        "error": {
                            "code": "bad_request",
                            "message": str(exc),
                            "detail": None,
                        },
                        "service_version": SERVICE_VERSION,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
                writer.write(_render(400, {}, body, keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, body = request
            status, extra, payload = await dispatch(
                service, method, path, body
            )
            keep_alive = headers.get("connection", "").lower() != "close"
            writer.write(_render(status, extra, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # pragma: no cover


async def _start_http_server(
    service: MISService, host: str, port: int
) -> "asyncio.base_events.Server":
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(service, reader, writer),
        host,
        port,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    **config: Any,
) -> None:
    """Run the service in the foreground until interrupted (CLI entry)."""
    service = MISService(**config)

    async def main() -> None:
        server = await _start_http_server(service, host, port)
        bound = server.sockets[0].getsockname()
        print(
            f"repro service v{SERVICE_VERSION} listening on "
            f"http://{bound[0]}:{bound[1]} "
            f"(workers={service.pool.counters()['workers']}, "
            f"max_queue={service.pool.max_queue}, "
            f"cache={service.cache.capacity})",
            flush=True,
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        service.close()


class ServiceHandle:
    """A running background service: ``base_url`` to hit, ``stop()`` to end.

    Returned by :func:`start_service_thread`; usable as a context
    manager.  ``service`` exposes the live internals (cache stats, pool
    counters) to tests.
    """

    def __init__(
        self,
        service: MISService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        main_task: "asyncio.Task",
        host: str,
        port: int,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop
        self._main_task = main_task
        self.host = host
        self.port = port
        self.base_url = f"http://{host}:{port}"

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._main_task.cancel)
            self._thread.join(timeout=5.0)
        self.service.close()


def start_service_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    **config: Any,
) -> ServiceHandle:
    """Start the service on a daemon thread; ``port=0`` picks a free port.

    The server (and its event loop) lives entirely on the background
    thread; the returned handle carries the bound ``base_url`` and a
    thread-safe ``stop()``.
    """
    service = MISService(**config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    state: Dict[str, Any] = {}

    async def main() -> None:
        server = await _start_http_server(service, host, port)
        state["port"] = server.sockets[0].getsockname()[1]
        state["main_task"] = asyncio.current_task()
        started.set()
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=run, daemon=True, name="repro-service")
    thread.start()
    if not started.wait(timeout=10.0):
        service.close()
        raise RuntimeError(
            f"service failed to bind {host}:{port} within 10s"
        )
    return ServiceHandle(
        service, thread, loop, state["main_task"], host, state["port"]
    )

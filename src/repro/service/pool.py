"""The bounded process-pool worker tier.

Solves run in worker *processes* (not threads: a SIGKILLed or wedged
solve must never take the server down with it), each paired with a
parent-side serving thread that feeds it jobs over a pipe:

* **bounded queue + backpressure** -- :meth:`WorkerPool.submit` counts
  queued-plus-running jobs against ``max_queue`` and raises
  :class:`PoolSaturated` past it; the HTTP layer maps that to a 429 so
  overload sheds load at the edge instead of growing an unbounded
  backlog.
* **kill isolation + respawn** -- a worker that dies mid-job (SIGKILL,
  OOM, a segfaulting extension) fails *that one job* with a stable error
  code; the serving thread respawns the worker and keeps draining the
  queue.  This is the property ``concurrent.futures`` lacks: a
  ``BrokenProcessPool`` condemns every in-flight job.
* **warm workers** -- worker processes persist across requests, so the
  executor's per-worker scratch and graph caches
  (:mod:`repro.service.executor`) actually pay off.
* **deadline hooks** -- every job carries ``deadline_at``; jobs that
  expire while still queued fail without ever executing, and the reaper
  (:mod:`repro.service.reaper`) calls :meth:`WorkerPool.request_kill` on
  running jobs past their deadline.

The pool is synchronous (threads + pipes); :meth:`submit_async` bridges
completions onto an ``asyncio`` loop via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing as mp
import os
import queue
import signal
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple


class PoolSaturated(RuntimeError):
    """Queue depth hit ``max_queue``; the caller should shed load (429)."""


class PoolJob:
    """One unit of pool work and its eventual outcome.

    ``outcome`` is ``("ok", payload)`` or ``("error", code, message)``
    with ``code`` drawn from :data:`repro.service.schema.ERROR_CODES`;
    ``state`` walks ``queued -> running -> done``.  ``wait()`` blocks a
    synchronous caller; async callers get a future from
    :meth:`WorkerPool.submit_async`.
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        task: Dict[str, Any],
        deadline_s: Optional[float],
    ) -> None:
        self.job_id = job_id
        self.kind = kind
        self.task = task
        self.deadline_s = deadline_s
        self.deadline_at = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self.state = "queued"
        self.kill_reason: Optional[str] = None
        self.worker: Optional["_Worker"] = None
        self.outcome: Optional[Tuple] = None
        self._done = threading.Event()
        self._cb_lock = threading.Lock()
        self._callbacks: List[Any] = []

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    def add_done_callback(self, callback) -> None:
        """``callback(job)`` on completion (already-done jobs fire now)."""
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: Optional[float] = None) -> Tuple:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        return self.outcome

    def _finish(self, outcome: Tuple) -> None:
        with self._cb_lock:
            self.state = "done"
            self.outcome = outcome
            callbacks, self._callbacks = self._callbacks, []
            self._done.set()
        for callback in callbacks:
            callback(self)


def _worker_main(conn) -> None:  # pragma: no cover - child process
    """Worker-process loop: ``(kind, task) -> ("ok", payload) | ("error", ...)``.

    Import of the executor happens here, inside the child, so a fork
    carries warm module state forward and a spawn still works.
    """
    from .executor import run_task

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        kind, task = message
        try:
            payload = run_task(kind, task)
        except Exception as exc:
            conn.send(
                ("error", "solve_failed", f"{type(exc).__name__}: {exc}",
                 traceback.format_exc())
            )
        else:
            conn.send(("ok", payload))


class _Worker:
    """One worker process plus its parent-side pipe end."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.process.is_alive():
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover
                pass

    def close(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stubborn worker
            self.kill()
            self.process.join(timeout=1.0)
        self.conn.close()


class WorkerPool:
    """``workers`` persistent worker processes behind a bounded queue."""

    def __init__(self, workers: int = 1, max_queue: int = 8) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self._ctx = mp.get_context()
        self._queue: "queue.Queue[Optional[PoolJob]]" = queue.Queue()
        self._lock = threading.Lock()
        self._depth = 0  # queued + running
        self._ids = itertools.count(1)
        self._closed = False
        # Counters (health + the zero-recompute spy): ``executed`` counts
        # jobs actually sent to a worker -- a cache hit never moves it.
        self.executed = 0
        self.completed = 0
        self.killed = 0
        self.respawns = 0
        self._workers: List[_Worker] = []
        self._threads: List[threading.Thread] = []
        self._running: Dict[str, PoolJob] = {}
        for index in range(workers):
            worker = _Worker(self._ctx)
            self._workers.append(worker)
            thread = threading.Thread(
                target=self._serve, args=(index,), daemon=True,
                name=f"repro-pool-{index}",
            )
            self._threads.append(thread)
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        task: Dict[str, Any],
        *,
        deadline_s: Optional[float] = None,
    ) -> PoolJob:
        """Enqueue one job; :class:`PoolSaturated` when the queue is full."""
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._lock:
            if self._depth >= self.max_queue:
                raise PoolSaturated(
                    f"worker queue is full ({self._depth}/{self.max_queue} "
                    f"jobs in flight); retry later"
                )
            self._depth += 1
        job = PoolJob(f"j{next(self._ids)}", kind, task, deadline_s)
        self._queue.put(job)
        return job

    async def submit_async(
        self,
        kind: str,
        task: Dict[str, Any],
        *,
        deadline_s: Optional[float] = None,
    ) -> Tuple:
        """``submit`` + await the outcome on the calling asyncio loop."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple]" = loop.create_future()
        job = self.submit(kind, task, deadline_s=deadline_s)

        def on_done(finished: PoolJob) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(finished.outcome)
            )

        job.add_done_callback(on_done)
        return await future

    # -- introspection / control ---------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    def running_jobs(self) -> List[PoolJob]:
        with self._lock:
            return list(self._running.values())

    def alive_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive())

    def request_kill(self, job: PoolJob, reason: str) -> bool:
        """Kill the worker executing ``job`` (reaper entry point).

        Records ``reason`` as the job's failure code first, so the
        serving thread reports ``deadline_exceeded`` rather than the
        generic ``worker_killed`` when the death was deliberate.
        """
        with self._lock:
            if job.job_id not in self._running or job.kill_reason is not None:
                return False
            job.kill_reason = reason
            worker = job.worker
        if worker is not None:
            worker.kill()
        return True

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "executed": self.executed,
                "completed": self.completed,
                "killed": self.killed,
                "respawns": self.respawns,
                "queue_depth": self._depth,
                "workers": len(self._workers),
                "alive_workers": self.alive_workers(),
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=2.0)
        for worker in self._workers:
            worker.close()

    # -- the per-worker serving loop -----------------------------------

    def _serve(self, index: int) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.expired():
                # Never executed: fail from the queue without burning a
                # worker on a request whose client already gave up.
                self._finish(
                    job,
                    (
                        "error",
                        "deadline_exceeded",
                        f"job {job.job_id} spent its {job.deadline_s}s "
                        f"deadline queued (queue depth "
                        f"{self.queue_depth}); retry with a longer "
                        f"deadline or when the queue drains",
                    ),
                )
                continue
            worker = self._workers[index]
            if not worker.alive():
                worker = self._respawn(index)
            with self._lock:
                job.state = "running"
                job.worker = worker
                self._running[job.job_id] = job
                self.executed += 1
            try:
                worker.conn.send((job.kind, job.task))
                outcome = self._await_worker(job, worker)
            except (OSError, BrokenPipeError, EOFError):
                outcome = None  # died between send and first poll
            if outcome is None:
                reason = job.kill_reason or "worker_killed"
                with self._lock:
                    self.killed += 1
                self._respawn(index)
                outcome = (
                    "error",
                    reason,
                    (
                        f"job {job.job_id} exceeded its "
                        f"{job.deadline_s}s deadline and was reaped"
                        if reason == "deadline_exceeded"
                        else f"worker executing job {job.job_id} died "
                        f"mid-solve; it was respawned and the server "
                        f"keeps serving -- retry the request"
                    ),
                )
            with self._lock:
                self._running.pop(job.job_id, None)
            self._finish(job, outcome)

    def _await_worker(self, job: PoolJob, worker: _Worker) -> Optional[Tuple]:
        """Poll for the worker's answer; ``None`` means the worker died."""
        while True:
            if worker.conn.poll(0.02):
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    return None
                if message[0] == "ok":
                    return ("ok", message[1])
                return ("error", message[1], message[2])
            if not worker.alive():
                # Drain any answer that raced the death.
                try:
                    if worker.conn.poll(0):
                        message = worker.conn.recv()
                        if message[0] == "ok":
                            return ("ok", message[1])
                        return ("error", message[1], message[2])
                except (EOFError, OSError):
                    pass
                return None

    def _respawn(self, index: int) -> _Worker:
        old = self._workers[index]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker = _Worker(self._ctx)
        with self._lock:
            self._workers[index] = worker
            self.respawns += 1
        return worker

    def _finish(self, job: PoolJob, outcome: Tuple) -> None:
        with self._lock:
            self._depth -= 1
            if outcome[0] == "ok":
                self.completed += 1
        job._finish(outcome)

"""MIS-as-a-service: the long-running async solve server.

Every run in this package is deterministic given ``(RunPlan, seed)``
(:meth:`repro.plan.RunPlan.cache_key` is the promise), which makes the
per-invocation CLI -- re-importing, re-sampling, re-allocating on every
call -- pure waste at production traffic.  This package turns the library
into a traffic-serving system:

* :mod:`~repro.service.schema` -- the versioned wire format: frozen
  request/response dataclasses with canonical JSON and stable
  machine-readable error codes;
* :mod:`~repro.service.cache` -- the plan-keyed LRU result cache (a
  *perfect* cache: hits return the stored response bytes without
  touching the worker pool);
* :mod:`~repro.service.executor` -- the worker-side solve/table1
  functions, reusing :class:`~repro.sim.fast_engine.EngineScratch` and
  sampled graphs across requests;
* :mod:`~repro.service.pool` -- the bounded process-pool worker tier:
  kill-isolated workers (one SIGKILLed worker fails one request, not
  the pool), queue-depth backpressure, automatic respawn;
* :mod:`~repro.service.reaper` -- the deadline reaper killing runaway
  jobs;
* :mod:`~repro.service.routes` / :mod:`~repro.service.app` -- the
  ``/v1`` HTTP/JSON endpoints on a stdlib-``asyncio`` handler loop (no
  new dependencies);
* :mod:`~repro.service.client` -- the stdlib HTTP client the CLI's
  ``--server`` thin-client mode rides.

See ``docs/service.md`` for the endpoint reference and the
cache/backpressure/reaper invariants.
"""

from .app import MISService, ServiceHandle, serve, start_service_thread
from .cache import ResultCache
from .client import ServiceClient, ServiceError, ServiceUnreachable
from .executor import FAULT_ENV, payload_to_response, solve_payload, table1_payload
from .pool import PoolJob, PoolSaturated, WorkerPool
from .reaper import Reaper
from .schema import (
    ERROR_CODES,
    SERVICE_VERSION,
    ErrorEnvelope,
    JobStatus,
    SchemaError,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    SweepResponse,
    Table1Request,
    Table1Response,
)

__all__ = [
    "ERROR_CODES",
    "FAULT_ENV",
    "SERVICE_VERSION",
    "ErrorEnvelope",
    "JobStatus",
    "MISService",
    "PoolJob",
    "PoolSaturated",
    "Reaper",
    "ResultCache",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ServiceUnreachable",
    "SolveRequest",
    "SolveResponse",
    "SweepRequest",
    "SweepResponse",
    "Table1Request",
    "Table1Response",
    "WorkerPool",
    "payload_to_response",
    "serve",
    "solve_payload",
    "start_service_thread",
    "table1_payload",
]

"""The plan-keyed LRU result cache.

Every solve is deterministic given ``(RunPlan, seed)``
(:meth:`repro.plan.RunPlan.cache_key` is the promise), so the service
cache is *perfect*: a hit returns the exact response bytes the original
computation produced, with no staleness window and no invalidation
protocol.  Keys are derived from the canonical plan hash plus the
request grid (``solve:<cache_key>:<seed>``,
``table1:<cache_key>:<sizes>:<trials>:<seed0>``); values are the
canonical response body bytes, stored verbatim so hits bypass both the
worker pool and re-serialization.

Thread-safe: the event loop thread reads, pool-bridge callbacks write.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional


class ResultCache:
    """A bounded, thread-safe LRU of ``key -> response bytes``.

    ``capacity`` bounds the entry count (responses are a few hundred
    bytes of flattened trial rows, so a few thousand entries is still
    sub-megabyte).  ``get`` marks the entry most-recently-used; ``put``
    evicts the least-recently-used entry past capacity.  Counters feed
    ``GET /v1/health`` and the zero-recompute tests.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise TypeError(
                f"cache values are canonical response bytes, got "
                f"{type(value).__name__}"
            )
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def solve_cache_key(plan_cache_key: str, seed: int) -> str:
    """The cache key of one ``(plan, seed)`` solve."""
    return f"solve:{plan_cache_key}:{seed}"


def table1_cache_key(
    plan_cache_key: str, sizes: tuple, trials: int, seed0: int
) -> str:
    """The cache key of one table1 measurement grid."""
    grid = ",".join(str(n) for n in sizes)
    return f"table1:{plan_cache_key}:{grid}:{trials}:{seed0}"

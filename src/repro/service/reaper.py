"""The deadline reaper: no job outlives its deadline.

A background thread scans the pool's running jobs every ``interval_s``
and SIGKILLs the worker executing any job past its ``deadline_at``
(:meth:`WorkerPool.request_kill` records the reason first, so the
failure surfaces as ``deadline_exceeded`` rather than the generic
``worker_killed``).  Killing the *process* is deliberate: a solve wedged
inside a numpy kernel or a pathological graph never checks a flag, and
the pool's respawn machinery already makes worker death a single-request
event.  Queued-but-expired jobs are cheaper -- the serving threads fail
those without executing them at all.
"""

from __future__ import annotations

import threading

from .pool import WorkerPool


class Reaper:
    """Scan ``pool`` every ``interval_s`` seconds; kill expired jobs."""

    def __init__(self, pool: WorkerPool, interval_s: float = 0.05) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.pool = pool
        self.interval_s = interval_s
        self.reaped = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-reaper"
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            for job in self.pool.running_jobs():
                if job.expired() and job.kill_reason is None:
                    if self.pool.request_kill(job, "deadline_exceeded"):
                        self.reaped += 1

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

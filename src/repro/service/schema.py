"""The versioned wire schema of the ``/v1`` service API.

Every request and response crossing the HTTP boundary is one of the
frozen dataclasses below, mirroring the :class:`repro.plan.RunPlan`
serialization discipline:

* **canonical JSON** -- :meth:`to_json` emits compact, sorted-key JSON
  (pinned by golden tests), so equal payloads are byte-identical across
  processes and sessions.  Response bytes are therefore cacheable
  verbatim: a cache hit returns the stored bytes, and clients cannot
  tell a hit from a recompute by the body alone (the ``X-Repro-Cache``
  header says which it was).
* **versioned** -- requests carry ``request_version``, responses
  ``service_version``, both pinned to :data:`SERVICE_VERSION`.
  :meth:`from_dict` rejects unknown versions and unknown fields with
  errors naming the fix, instead of guessing.
* **stable error codes** -- every error body is an
  :class:`ErrorEnvelope` whose ``code`` is one of :data:`ERROR_CODES`;
  scripts branch on the code, humans read the message.

The plan inside a :class:`SolveRequest` is the *serialized* dict form
(:meth:`RunPlan.to_dict`); the server re-validates it via
:meth:`RunPlan.from_dict` against its own registries, so an
unconstructible plan fails with ``invalid_plan`` before touching the
worker pool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

#: Version of the wire schema.  Bump only on a breaking change to the
#: canonical request/response forms; servers reject unknown request
#: versions, clients can check ``service_version`` in every response.
SERVICE_VERSION = 1

#: Stable machine-readable error codes (the ``code`` of every
#: :class:`ErrorEnvelope`).  Scripts branch on these; the HTTP status
#: carries the coarse class, the code the precise cause.
ERROR_CODES = (
    "bad_request",  # malformed JSON, wrong types, missing fields
    "unknown_field",  # request carries a field this schema does not know
    "unsupported_version",  # request_version this build does not speak
    "invalid_plan",  # RunPlan.from_dict rejected the embedded plan
    "invalid_manifest",  # SweepManifest.from_dict rejected the manifest
    "not_found",  # unknown route or job id
    "backpressure",  # worker queue full; retry later (HTTP 429)
    "deadline_exceeded",  # the reaper killed the job at its deadline
    "worker_killed",  # the executing worker died mid-job (not reaped)
    "solve_failed",  # the solve itself raised
    "internal",  # anything else; a bug, not a client error
)

S = TypeVar("S", bound="_Wire")


class SchemaError(ValueError):
    """A request that does not fit the wire schema.

    Carries the stable error ``code`` (``bad_request``,
    ``unknown_field``, or ``unsupported_version``) so the HTTP layer can
    build the matching :class:`ErrorEnvelope` without string-matching
    the message.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class _Wire:
    """Shared canonical-serialization machinery (iterates dataclass
    fields, so subclasses serialize without overriding anything)."""

    #: The name of the version field each side carries.
    _VERSION_FIELD = "service_version"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return data

    def to_json(self) -> str:
        """The canonical form: compact, sorted-key JSON (golden-pinned)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls: Type[S], data: Mapping[str, Any]) -> S:
        """Rebuild from :meth:`to_dict` output, rejecting unknown
        versions and unknown fields with errors naming the fix."""
        if not isinstance(data, Mapping):
            raise SchemaError(
                "bad_request",
                f"{cls.__name__} body must be a JSON object, got "
                f"{type(data).__name__}",
            )
        payload = dict(data)
        version = payload.pop(cls._VERSION_FIELD, SERVICE_VERSION)
        if version != SERVICE_VERSION:
            raise SchemaError(
                "unsupported_version",
                f"unsupported {cls._VERSION_FIELD} {version!r} (this build "
                f"speaks version {SERVICE_VERSION}; re-serialize the "
                f"{cls.__name__} with a matching client)",
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SchemaError(
                "unknown_field",
                f"{cls.__name__} carries unknown field(s) {unknown} "
                f"(known: {sorted(known - {cls._VERSION_FIELD})}; drop "
                f"them or upgrade the server)",
            )
        try:
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            raise SchemaError("bad_request", f"{cls.__name__}: {exc}") from None

    @classmethod
    def from_json(cls: Type[S], text: str) -> S:
        return cls.from_dict(json.loads(text))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


# -- requests ----------------------------------------------------------


@dataclass(frozen=True)
class SolveRequest(_Wire):
    """``POST /v1/solve``: one ``(plan, seed)`` solve.

    ``plan`` is the serialized :class:`repro.plan.RunPlan` dict (it must
    carry ``family`` and ``n`` -- the server builds the graph); ``seed``
    defaults to the plan's own seed.  ``deadline_s`` bounds the whole
    request (queue wait included); the reaper kills jobs that exceed it.
    ``mode="async"`` returns a job id immediately instead of waiting.
    """

    _VERSION_FIELD = "request_version"

    plan: Mapping[str, Any] = None  # type: ignore[assignment]
    seed: Optional[int] = None
    deadline_s: Optional[float] = None
    mode: str = "sync"
    request_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(
            isinstance(self.plan, Mapping),
            "plan must be a serialized RunPlan object "
            "(RunPlan.to_dict() output)",
        )
        object.__setattr__(self, "plan", dict(self.plan))
        _require(
            self.seed is None
            or (isinstance(self.seed, int) and not isinstance(self.seed, bool)),
            f"seed must be an int or null, got {self.seed!r}",
        )
        _require(
            self.deadline_s is None
            or (
                isinstance(self.deadline_s, (int, float))
                and not isinstance(self.deadline_s, bool)
                and self.deadline_s > 0
            ),
            f"deadline_s must be a positive number or null, got "
            f"{self.deadline_s!r}",
        )
        _require(
            self.mode in ("sync", "async"),
            f"mode must be 'sync' or 'async', got {self.mode!r}",
        )


@dataclass(frozen=True)
class SweepRequest(_Wire):
    """``POST /v1/sweep``: run every trial of a sweep manifest.

    ``manifest`` is the serialized :class:`repro.sweeps.SweepManifest`
    dict (``SweepManifest.to_dict()`` / ``--emit-manifest`` output); the
    server re-validates every embedded plan.  Always asynchronous: the
    response is a job id to poll via ``GET /v1/jobs/{id}``.
    ``deadline_s`` applies per trial, not to the whole sweep.
    """

    _VERSION_FIELD = "request_version"

    manifest: Mapping[str, Any] = None  # type: ignore[assignment]
    deadline_s: Optional[float] = None
    request_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(
            isinstance(self.manifest, Mapping),
            "manifest must be a serialized SweepManifest object "
            "(SweepManifest.to_dict() output)",
        )
        object.__setattr__(self, "manifest", dict(self.manifest))
        _require(
            self.deadline_s is None
            or (
                isinstance(self.deadline_s, (int, float))
                and not isinstance(self.deadline_s, bool)
                and self.deadline_s > 0
            ),
            f"deadline_s must be a positive number or null, got "
            f"{self.deadline_s!r}",
        )


@dataclass(frozen=True)
class Table1Request(_Wire):
    """``POST /v1/table1``: the measured Table 1 for one base plan.

    Mirrors :func:`repro.analysis.tables.build_table1`: the plan carries
    the family and knob configuration, ``sizes``/``trials``/``seed0``
    are the measurement grid.
    """

    _VERSION_FIELD = "request_version"

    plan: Mapping[str, Any] = None  # type: ignore[assignment]
    sizes: Tuple[int, ...] = (64, 128, 256)
    trials: int = 3
    seed0: int = 0
    deadline_s: Optional[float] = None
    mode: str = "sync"
    request_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(
            isinstance(self.plan, Mapping),
            "plan must be a serialized RunPlan object "
            "(RunPlan.to_dict() output)",
        )
        object.__setattr__(self, "plan", dict(self.plan))
        _require(
            isinstance(self.sizes, (list, tuple))
            and len(self.sizes) > 0
            and all(
                isinstance(n, int) and not isinstance(n, bool) and n >= 0
                for n in self.sizes
            ),
            f"sizes must be a non-empty list of ints, got {self.sizes!r}",
        )
        object.__setattr__(self, "sizes", tuple(self.sizes))
        _require(
            isinstance(self.trials, int)
            and not isinstance(self.trials, bool)
            and self.trials >= 1,
            f"trials must be an int >= 1, got {self.trials!r}",
        )
        _require(
            isinstance(self.seed0, int) and not isinstance(self.seed0, bool),
            f"seed0 must be an int, got {self.seed0!r}",
        )
        _require(
            self.deadline_s is None
            or (
                isinstance(self.deadline_s, (int, float))
                and not isinstance(self.deadline_s, bool)
                and self.deadline_s > 0
            ),
            f"deadline_s must be a positive number or null, got "
            f"{self.deadline_s!r}",
        )
        _require(
            self.mode in ("sync", "async"),
            f"mode must be 'sync' or 'async', got {self.mode!r}",
        )


# -- responses ---------------------------------------------------------


@dataclass(frozen=True)
class SolveResponse(_Wire):
    """The solve result: deterministic given ``(plan, seed)``.

    Contains no per-request state (no wall clocks, no cache flags), so
    the canonical bytes are the cache value and a hit is byte-identical
    to the original computation.  ``row`` is the flattened
    :class:`repro.analysis.complexity.Trial` (``dataclasses.asdict``
    form), exactly what a local :func:`repro.sweeps.execute_trial`
    produces for the same ``(plan, seed)``.
    """

    plan: Mapping[str, Any] = None  # type: ignore[assignment]
    seed: int = 0
    trial_key: str = ""
    mis_size: int = 0
    row: Mapping[str, Any] = None  # type: ignore[assignment]
    service_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(isinstance(self.plan, Mapping), "plan must be an object")
        object.__setattr__(self, "plan", dict(self.plan))
        _require(isinstance(self.row, Mapping), "row must be an object")
        object.__setattr__(self, "row", dict(self.row))


@dataclass(frozen=True)
class SweepResponse(_Wire):
    """The finished sweep: one row per manifest trial, in manifest order."""

    manifest_key: str = ""
    name: str = ""
    trial_keys: Tuple[str, ...] = ()
    rows: Tuple[Mapping[str, Any], ...] = ()
    service_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "trial_keys", tuple(self.trial_keys))
        object.__setattr__(
            self, "rows", tuple(dict(row) for row in self.rows)
        )
        _require(
            len(self.rows) == len(self.trial_keys),
            f"rows/trial_keys length mismatch "
            f"({len(self.rows)} != {len(self.trial_keys)})",
        )


@dataclass(frozen=True)
class Table1Response(_Wire):
    """The measured Table 1, as renderable cells.

    ``title``/``headers``/``rows`` rebuild a
    :class:`repro.analysis.tables.Table` verbatim, so a thin client's
    ``to_text()``/``to_markdown()`` output is byte-identical to a local
    :func:`build_table1` call with the same arguments.
    """

    plan: Mapping[str, Any] = None  # type: ignore[assignment]
    sizes: Tuple[int, ...] = ()
    trials: int = 3
    seed0: int = 0
    title: str = ""
    headers: Tuple[str, ...] = ()
    rows: Tuple[Tuple[str, ...], ...] = ()
    service_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(isinstance(self.plan, Mapping), "plan must be an object")
        object.__setattr__(self, "plan", dict(self.plan))
        object.__setattr__(self, "sizes", tuple(self.sizes))
        object.__setattr__(self, "headers", tuple(self.headers))
        object.__setattr__(
            self, "rows", tuple(tuple(row) for row in self.rows)
        )

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["rows"] = [list(row) for row in self.rows]
        return data


@dataclass(frozen=True)
class JobStatus(_Wire):
    """``GET /v1/jobs/{id}`` (and every 202 submission response).

    ``state`` walks ``queued -> running -> done | failed``; ``result``
    is the finished response object when done, ``error`` the
    :class:`ErrorEnvelope` dict when failed, both ``null`` otherwise.
    """

    job_id: str = ""
    kind: str = ""  # solve | sweep | table1
    state: str = "queued"
    result: Optional[Mapping[str, Any]] = None
    error: Optional[Mapping[str, Any]] = None
    service_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(
            self.state in ("queued", "running", "done", "failed"),
            f"unknown job state {self.state!r}",
        )


@dataclass(frozen=True)
class ErrorEnvelope(_Wire):
    """Every non-2xx body: a stable ``code`` plus a human message.

    The wire form nests the fields under ``"error"`` so clients can
    distinguish an envelope from a result at a glance::

        {"error": {"code": "backpressure", "message": "...",
                   "detail": null}, "service_version": 1}
    """

    code: str = "internal"
    message: str = ""
    detail: Optional[str] = None
    service_version: int = SERVICE_VERSION

    def __post_init__(self) -> None:
        _require(
            self.code in ERROR_CODES,
            f"unknown error code {self.code!r}; known: {ERROR_CODES}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": self.detail,
            },
            "service_version": self.service_version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorEnvelope":
        if not isinstance(data, Mapping) or "error" not in data:
            raise SchemaError(
                "bad_request",
                "ErrorEnvelope body must be {'error': {...}, "
                "'service_version': N}",
            )
        error = data["error"]
        if not isinstance(error, Mapping):
            raise SchemaError("bad_request", "'error' must be an object")
        version = data.get("service_version", SERVICE_VERSION)
        if version != SERVICE_VERSION:
            raise SchemaError(
                "unsupported_version",
                f"unsupported service_version {version!r} (this build "
                f"speaks version {SERVICE_VERSION})",
            )
        unknown = sorted(set(error) - {"code", "message", "detail"})
        if unknown:
            raise SchemaError(
                "unknown_field",
                f"ErrorEnvelope carries unknown field(s) {unknown}",
            )
        try:
            return cls(
                code=error.get("code", "internal"),
                message=error.get("message", ""),
                detail=error.get("detail"),
                service_version=version,
            )
        except ValueError as exc:
            raise SchemaError("bad_request", str(exc)) from None

"""Worker-side execution: the functions that actually solve.

These run inside pool worker *processes* (:mod:`repro.service.pool`),
which live across requests -- so this module keeps the two warm-state
pools the per-invocation CLI can never have:

* one persistent :class:`~repro.sim.fast_engine.EngineScratch`, so
  vectorized solves stop reallocating node-sized state arrays per
  request;
* a small LRU of sampled graphs keyed on the exact sampling identity
  ``(family, n, seed, graph_rng, resolved source)``, so repeated solves
  of one subject (different algorithms, knobs, or deadlines) skip
  re-sampling entirely.

:func:`solve_payload` mirrors :func:`repro.sweeps.runner.execute_trial`
byte-for-byte on the measured row -- same graph factory, same
:func:`~repro.analysis.complexity.trial_from_result` flattening -- which
is what lets the CLI's local fallback and a warm server return identical
results.  Fault injection mirrors the sweep harness:
``REPRO_SERVICE_FAULT=hang:<match>`` spins the matching trial forever
(reaper fodder), ``sigkill:<match>`` SIGKILLs the executing worker.
"""

from __future__ import annotations

import os
import signal
import time
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, Optional, Tuple

from ..plan import RunPlan
from ..sim.fast_engine import EngineScratch
from ..sweeps.manifest import trial_key
from .schema import SolveResponse, Table1Response

#: Environment hook for fault injection, matched against the trial key
#: (the sweep harness's ``REPRO_SWEEP_FAULT`` pattern): ``hang:<match>``
#: never returns, ``sigkill:<match>`` kills the executing worker.
FAULT_ENV = "REPRO_SERVICE_FAULT"

#: Sampled graphs kept warm per worker (each is O(n + m) memory).
GRAPH_CACHE_SIZE = 8

_SCRATCH = EngineScratch()
_GRAPHS: "OrderedDict[Tuple, Any]" = OrderedDict()


def _maybe_inject_fault(key: str) -> None:
    spec = os.environ.get(FAULT_ENV, "")
    action, _, match = spec.partition(":")
    if action not in ("hang", "sigkill") or match not in key:
        return
    if action == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here
    while True:  # pragma: no cover - reaped from outside
        time.sleep(0.05)


def _graph_for(plan: RunPlan, seed: int) -> Any:
    """The plan's sampled graph, from the per-worker LRU when warm."""
    key = (plan.family, plan.n, seed, plan.graph_rng, plan.resolved_graph_source)
    graph = _GRAPHS.get(key)
    if graph is None:
        graph = plan.build_graph(seed)
        _GRAPHS[key] = graph
    _GRAPHS.move_to_end(key)
    while len(_GRAPHS) > GRAPH_CACHE_SIZE:
        _GRAPHS.popitem(last=False)
    return graph


def solve_payload(plan: RunPlan, seed: int) -> Dict[str, Any]:
    """One solve; returns the artifact-shaped payload dict.

    The ``row`` is bit-identical to what
    :func:`repro.sweeps.runner.execute_trial` produces for the same
    ``(plan, seed)`` -- both flatten the same engine output through
    :func:`~repro.analysis.complexity.trial_from_result`; warm state
    (scratch, cached graphs) changes allocation, never results.
    """
    from ..analysis.complexity import trial_from_result
    from ..sim.array_result import ArrayRunResult
    from ..sim.batch import run_planned_trial

    key = trial_key(plan, seed)
    _maybe_inject_fault(key)
    exec_plan = plan if plan.n_jobs is None else plan.replace(n_jobs=None)
    start = time.perf_counter()
    result = run_planned_trial(
        _graph_for(plan, seed), exec_plan, seed, scratch=_SCRATCH
    )
    row = trial_from_result(
        result, plan.algorithm, family=plan.family, seed=seed
    )
    if isinstance(result, ArrayRunResult):
        mis_size = int(result.mis_mask.sum())
    else:
        mis_size = len(result.mis)
    return {
        "trial_key": key,
        "plan": plan.to_dict(),
        "seed": seed,
        "row": asdict(row),
        "mis_size": mis_size,
        "wall_clock_s": time.perf_counter() - start,
    }


def table1_payload(
    plan: RunPlan, sizes: Tuple[int, ...], trials: int, seed0: int
) -> Dict[str, Any]:
    """One Table 1 measurement; returns the renderable-cells payload."""
    from ..analysis.tables import build_table1

    _maybe_inject_fault(f"table1-{plan.cache_key()[:20]}-{seed0}")
    exec_plan = plan if plan.n_jobs is None else plan.replace(n_jobs=None)
    start = time.perf_counter()
    table = build_table1(
        sizes=list(sizes),
        plan=exec_plan,
        trials=trials,
        seed0=seed0,
    )
    return {
        "plan": plan.to_dict(),
        "sizes": list(sizes),
        "trials": trials,
        "seed0": seed0,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "wall_clock_s": time.perf_counter() - start,
    }


def payload_to_response(payload: Dict[str, Any]) -> SolveResponse:
    """The deterministic wire response for a solve payload.

    Drops the wall clock (per-request state has no place in cacheable
    bytes); everything kept is a pure function of ``(plan, seed)``.
    """
    return SolveResponse(
        plan=payload["plan"],
        seed=payload["seed"],
        trial_key=payload["trial_key"],
        mis_size=payload["mis_size"],
        row=payload["row"],
    )


def table1_to_response(payload: Dict[str, Any]) -> Table1Response:
    """The deterministic wire response for a table1 payload."""
    return Table1Response(
        plan=payload["plan"],
        sizes=tuple(payload["sizes"]),
        trials=payload["trials"],
        seed0=payload["seed0"],
        title=payload["title"],
        headers=tuple(payload["headers"]),
        rows=tuple(tuple(row) for row in payload["rows"]),
    )


def run_task(kind: str, task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process dispatch: ``(kind, serialized task) -> payload``.

    Tasks cross the pipe as plain JSON-ready dicts (plans serialized, so
    workers re-validate via :meth:`RunPlan.from_dict` -- the same
    discipline as the HTTP boundary).
    """
    plan = RunPlan.from_dict(task["plan"])
    if kind == "solve":
        return solve_payload(plan, task["seed"])
    if kind == "table1":
        return table1_payload(
            plan, tuple(task["sizes"]), task["trials"], task["seed0"]
        )
    raise ValueError(f"unknown task kind {kind!r}")

"""The stdlib HTTP client behind the CLI's ``--server`` thin-client mode.

``urllib.request`` only -- the client must not grow dependencies the
server avoided.  Two exception classes split the two failure worlds the
CLI treats differently:

* :class:`ServiceUnreachable` -- no server answered (connection refused,
  DNS, timeout).  The CLI degrades to the local path with a warning, or
  exits with its dedicated code under ``--no-fallback``.
* :class:`ServiceError` -- the server answered with an
  :class:`~repro.service.schema.ErrorEnvelope`; ``code`` carries the
  stable machine-readable cause (``backpressure``,
  ``deadline_exceeded``, ...).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional

from .schema import (
    ErrorEnvelope,
    JobStatus,
    SchemaError,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    SweepResponse,
    Table1Request,
    Table1Response,
)


class ServiceUnreachable(ConnectionError):
    """No server answered at the configured URL."""


class ServiceError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, status: int, envelope: ErrorEnvelope) -> None:
        super().__init__(
            f"[{envelope.code}] {envelope.message}"
            + (f" ({envelope.detail})" if envelope.detail else "")
        )
        self.status = status
        self.code = envelope.code
        self.envelope = envelope


class ServiceClient:
    """A thin, synchronous client for the ``/v1`` API."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                envelope = ErrorEnvelope.from_dict(json.loads(raw))
            except (json.JSONDecodeError, SchemaError, ValueError):
                envelope = ErrorEnvelope(
                    code="internal",
                    message=f"HTTP {exc.code} with unparseable body",
                    detail=raw[:200],
                )
            raise ServiceError(exc.code, envelope) from None
        except urllib.error.URLError as exc:
            raise ServiceUnreachable(
                f"no repro service reachable at {self.base_url} "
                f"({exc.reason})"
            ) from None
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceUnreachable(
                f"no repro service reachable at {self.base_url} ({exc})"
            ) from None

    def _post(self, path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self._request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def solve(
        self,
        plan: Mapping[str, Any],
        *,
        seed: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SolveResponse:
        """One synchronous solve; returns the validated response."""
        request = SolveRequest(plan=plan, seed=seed, deadline_s=deadline_s)
        return SolveResponse.from_dict(
            self._post("/v1/solve", request.to_dict())
        )

    def table1(
        self,
        plan: Mapping[str, Any],
        *,
        sizes,
        trials: int = 3,
        seed0: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Table1Response:
        request = Table1Request(
            plan=plan,
            sizes=tuple(sizes),
            trials=trials,
            seed0=seed0,
            deadline_s=deadline_s,
        )
        return Table1Response.from_dict(
            self._post("/v1/table1", request.to_dict())
        )

    def submit_sweep(
        self,
        manifest: Mapping[str, Any],
        *,
        deadline_s: Optional[float] = None,
    ) -> JobStatus:
        """Submit a sweep; returns the job to poll (always async)."""
        request = SweepRequest(manifest=manifest, deadline_s=deadline_s)
        return JobStatus.from_dict(
            self._post("/v1/sweep", request.to_dict())
        )

    def job(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(self._request("GET", f"/v1/jobs/{job_id}"))

    def wait_job(
        self,
        job_id: str,
        *,
        poll_s: float = 0.1,
        timeout: Optional[float] = None,
    ) -> JobStatus:
        """Poll ``job_id`` until done/failed; raise on job failure.

        A failed job re-raises its recorded envelope as
        :class:`ServiceError` so callers handle sync and async failures
        identically.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status.state == "done":
                return status
            if status.state == "failed":
                envelope = ErrorEnvelope.from_dict(
                    status.error
                    if status.error is not None
                    else {"error": {"code": "internal",
                                    "message": "job failed without detail"}}
                )
                raise ServiceError(0, envelope)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state!r} after {timeout}s"
                )
            time.sleep(poll_s)

    def sweep(
        self,
        manifest: Mapping[str, Any],
        *,
        deadline_s: Optional[float] = None,
        poll_s: float = 0.1,
        timeout: Optional[float] = None,
    ) -> SweepResponse:
        """Submit a sweep and block until its rows come back."""
        submitted = self.submit_sweep(manifest, deadline_s=deadline_s)
        finished = self.wait_job(
            submitted.job_id, poll_s=poll_s, timeout=timeout
        )
        return SweepResponse.from_dict(finished.result)

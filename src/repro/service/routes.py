"""The ``/v1`` endpoint handlers.

:func:`dispatch` maps ``(method, path, body)`` to
``(status, extra headers, body bytes)`` -- pure request semantics, no
socket code (that lives in :mod:`repro.service.app`, and tests can call
``dispatch`` directly).  Invariants enforced here:

* every plan and manifest crossing the boundary is **re-validated**
  (:meth:`RunPlan.from_dict` / :meth:`SweepManifest.from_dict`) -- the
  server never trusts client-side validation;
* the cache check happens **before** the pool -- a warm ``(plan, seed)``
  never touches a worker, and the stored bytes are returned verbatim
  (``X-Repro-Cache: hit``);
* every failure is an :class:`ErrorEnvelope` with a stable ``code``;
  the HTTP status is derived from the code via :data:`CODE_STATUS`, so
  the two can never disagree.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..plan import RunPlan
from ..sweeps.manifest import SweepManifest
from .cache import solve_cache_key, table1_cache_key
from .executor import payload_to_response, table1_to_response
from .pool import PoolSaturated
from .schema import (
    SERVICE_VERSION,
    ErrorEnvelope,
    JobStatus,
    SchemaError,
    SolveRequest,
    SweepRequest,
    SweepResponse,
    Table1Request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import MISService

#: HTTP status for each stable error code (one mapping, no drift).
CODE_STATUS = {
    "bad_request": 400,
    "unknown_field": 400,
    "unsupported_version": 400,
    "invalid_plan": 400,
    "invalid_manifest": 400,
    "not_found": 404,
    "backpressure": 429,
    "deadline_exceeded": 504,
    "worker_killed": 502,
    "solve_failed": 500,
    "internal": 500,
}

Response = Tuple[int, Dict[str, str], bytes]

#: How long a sweep job waits between submit retries when the pool is
#: saturated (sweeps yield to interactive solves instead of 429ing).
_SWEEP_RETRY_S = 0.05


def _error(code: str, message: str, detail: Optional[str] = None) -> Response:
    body = (
        ErrorEnvelope(code=code, message=message, detail=detail)
        .to_json()
        .encode("utf-8")
    )
    return CODE_STATUS[code], {}, body


def _ok(body_bytes: bytes, headers: Optional[Dict[str, str]] = None) -> Response:
    return 200, dict(headers or {}), body_bytes


def _outcome_error(outcome: Tuple) -> Response:
    """Map a pool job's ``("error", code, message)`` outcome to a response."""
    _, code, message = outcome[:3]
    if code not in CODE_STATUS:  # pragma: no cover - defensive
        code, message = "internal", f"{code}: {message}"
    response = _error(code, message)
    if code == "backpressure":
        response[1]["Retry-After"] = "1"
    return response


def _parse_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(
            "bad_request", f"request body is not valid JSON: {exc}"
        ) from None


def _plan_from(data: Any, *, require_n: bool = True) -> RunPlan:
    """Re-validate a serialized plan; it must carry a graph spec (the
    server builds graphs -- there is no way to ship a graph object).
    ``table1`` plans skip the ``n`` requirement (sizes are the grid)."""
    try:
        plan = RunPlan.from_dict(data)
    except (ValueError, TypeError) as exc:
        raise SchemaError("invalid_plan", f"plan rejected: {exc}") from None
    if plan.family is None or (require_n and plan.n is None):
        raise SchemaError(
            "invalid_plan",
            "plan must carry family= (and n=, except for table1) -- the "
            "server samples the seeded graph; plans for caller-supplied "
            "graphs cannot be solved remotely",
        )
    return plan


async def _solve_sync(
    service: "MISService",
    plan: RunPlan,
    seed: int,
    deadline_s: Optional[float],
) -> Response:
    """The shared cache-then-pool solve path (sync mode and job bodies)."""
    key = solve_cache_key(plan.cache_key(), seed)
    cached = service.cache.get(key)
    if cached is not None:
        return _ok(cached, {"X-Repro-Cache": "hit"})
    try:
        outcome = await service.pool.submit_async(
            "solve",
            {"plan": plan.to_dict(), "seed": seed},
            deadline_s=deadline_s,
        )
    except PoolSaturated as exc:
        status, headers, payload = _error("backpressure", str(exc))
        headers["Retry-After"] = "1"
        return status, headers, payload
    if outcome[0] != "ok":
        return _outcome_error(outcome)
    body = payload_to_response(outcome[1]).to_json().encode("utf-8")
    service.cache.put(key, body)
    return _ok(body, {"X-Repro-Cache": "miss"})


async def _handle_solve(service: "MISService", body: bytes) -> Response:
    request = SolveRequest.from_dict(_parse_body(body))
    plan = _plan_from(request.plan)
    seed = request.seed
    if seed is None:
        seed = plan.seed if plan.seed is not None else 0
    deadline_s = (
        request.deadline_s
        if request.deadline_s is not None
        else service.default_deadline_s
    )
    if request.mode == "async":
        record = service.new_job("solve")

        async def run() -> Tuple[int, bytes]:
            status, _, payload = await _solve_sync(
                service, plan, seed, deadline_s
            )
            return status, payload

        service.start_job(record, run())
        return 202, {}, record.status().to_json().encode("utf-8")
    return await _solve_sync(service, plan, seed, deadline_s)


async def _handle_table1(service: "MISService", body: bytes) -> Response:
    request = Table1Request.from_dict(_parse_body(body))
    plan = _plan_from(request.plan, require_n=False)
    deadline_s = (
        request.deadline_s
        if request.deadline_s is not None
        else service.default_deadline_s
    )

    async def compute() -> Response:
        key = table1_cache_key(
            plan.cache_key(), request.sizes, request.trials, request.seed0
        )
        cached = service.cache.get(key)
        if cached is not None:
            return _ok(cached, {"X-Repro-Cache": "hit"})
        try:
            outcome = await service.pool.submit_async(
                "table1",
                {
                    "plan": plan.to_dict(),
                    "sizes": list(request.sizes),
                    "trials": request.trials,
                    "seed0": request.seed0,
                },
                deadline_s=deadline_s,
            )
        except PoolSaturated as exc:
            response = _error("backpressure", str(exc))
            response[1]["Retry-After"] = "1"
            return response
        if outcome[0] != "ok":
            return _outcome_error(outcome)
        body_bytes = table1_to_response(outcome[1]).to_json().encode("utf-8")
        service.cache.put(key, body_bytes)
        return _ok(body_bytes, {"X-Repro-Cache": "miss"})

    if request.mode == "async":
        record = service.new_job("table1")

        async def run() -> Tuple[int, bytes]:
            status, _, payload = await compute()
            return status, payload

        service.start_job(record, run())
        return 202, {}, record.status().to_json().encode("utf-8")
    return await compute()


async def _handle_sweep(service: "MISService", body: bytes) -> Response:
    request = SweepRequest.from_dict(_parse_body(body))
    try:
        manifest = SweepManifest.from_dict(request.manifest)
    except (ValueError, TypeError, KeyError) as exc:
        raise SchemaError(
            "invalid_manifest", f"manifest rejected: {exc}"
        ) from None
    deadline_s = (
        request.deadline_s
        if request.deadline_s is not None
        else service.default_deadline_s
    )
    record = service.new_job("sweep")

    async def run() -> Tuple[int, bytes]:
        rows = []
        keys = []
        for spec in manifest:
            while True:
                status, _, payload = await _solve_sync(
                    service, spec.plan, spec.seed, deadline_s
                )
                if status != 429:
                    break
                await asyncio.sleep(_SWEEP_RETRY_S)
            if status != 200:
                return status, payload
            solved = json.loads(payload.decode("utf-8"))
            keys.append(solved["trial_key"])
            rows.append(solved["row"])
        response = SweepResponse(
            manifest_key=manifest.manifest_key(),
            name=manifest.name,
            trial_keys=tuple(keys),
            rows=tuple(rows),
        )
        return 200, response.to_json().encode("utf-8")

    service.start_job(record, run())
    return 202, {}, record.status().to_json().encode("utf-8")


def _handle_job(service: "MISService", job_id: str) -> Response:
    record = service.jobs.get(job_id)
    if record is None:
        return _error(
            "not_found",
            f"unknown job {job_id!r} (jobs live in server memory; a "
            f"restarted server forgets them)",
        )
    return _ok(record.status().to_json().encode("utf-8"))


def _handle_health(service: "MISService") -> Response:
    body = json.dumps(
        {
            "status": "ok",
            "service_version": SERVICE_VERSION,
            "uptime_s": service.uptime_s(),
            "max_queue": service.pool.max_queue,
            "pool": service.pool.counters(),
            "cache": service.cache.stats(),
            "reaped": service.reaper.reaped,
            "jobs": len(service.jobs),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _ok(body)


async def dispatch(
    service: "MISService", method: str, path: str, body: bytes
) -> Response:
    """Route one request; always returns a well-formed response triple."""
    try:
        if method == "GET" and path == "/v1/health":
            return _handle_health(service)
        if method == "GET" and path.startswith("/v1/jobs/"):
            return _handle_job(service, path[len("/v1/jobs/"):])
        if method == "POST" and path == "/v1/solve":
            return await _handle_solve(service, body)
        if method == "POST" and path == "/v1/sweep":
            return await _handle_sweep(service, body)
        if method == "POST" and path == "/v1/table1":
            return await _handle_table1(service, body)
        return _error(
            "not_found",
            f"no route for {method} {path}; endpoints: POST /v1/solve, "
            f"POST /v1/sweep, POST /v1/table1, GET /v1/jobs/{{id}}, "
            f"GET /v1/health",
        )
    except SchemaError as exc:
        return _error(exc.code, str(exc))
    except Exception as exc:  # pragma: no cover - the never-crash backstop
        return _error("internal", f"{type(exc).__name__}: {exc}")

"""Sequential greedy MIS -- the lexicographically-first reference oracle.

Given a priority order, the sequential greedy algorithm scans nodes from
highest to lowest priority and adds a node whenever none of its neighbors
has been added.  The result is the *lexicographically-first MIS* of that
order (Coppersmith et al. 1989).

The paper's Corollary 1 states that ``SleepingMISRecursive`` outputs exactly
this set for the order given by lexicographically decreasing ``K``-rank.
These helpers are the centralized oracle against which the simulation is
checked bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Set


def _adjacency(graph: Any) -> Dict[Any, Set[Any]]:
    if hasattr(graph, "adj"):
        return {v: set(graph.adj[v]) for v in graph.nodes()}
    return {v: set(nbrs) for v, nbrs in graph.items()}


def greedy_mis(graph: Any, order: Sequence[Any]) -> Set[Any]:
    """The MIS produced by scanning ``order`` greedily.

    ``order`` must contain every node of the graph exactly once.
    """
    adjacency = _adjacency(graph)
    if set(order) != set(adjacency):
        raise ValueError("order must be a permutation of the graph's nodes")
    result: Set[Any] = set()
    blocked: Set[Any] = set()
    for v in order:
        if v in blocked:
            continue
        result.add(v)
        blocked.add(v)
        blocked.update(adjacency[v])
    return result


def lexicographically_first_mis(
    graph: Any, priority: Mapping[Any, Any]
) -> Set[Any]:
    """Greedy MIS by decreasing ``priority`` (ties broken by node id).

    ``priority`` maps each node to any comparable value; higher priority is
    processed first.
    """
    adjacency = _adjacency(graph)
    missing = set(adjacency) - set(priority)
    if missing:
        raise ValueError(f"priority missing for node(s), e.g. {next(iter(missing))!r}")
    order = sorted(
        adjacency, key=lambda v: (priority[v], _id_key(v)), reverse=True
    )
    return greedy_mis(graph, order)


def random_order_mis(graph: Any, rng) -> Set[Any]:
    """Greedy MIS over a uniformly random permutation drawn from ``rng``."""
    adjacency = _adjacency(graph)
    order: List[Any] = sorted(adjacency, key=_id_key)
    rng.shuffle(order)
    return greedy_mis(graph, order)


def _id_key(v: Any):
    return (str(type(v).__name__), v if isinstance(v, (int, float, str)) else str(v))

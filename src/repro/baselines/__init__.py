"""Baseline algorithms the paper compares against or builds upon."""

from ._phased import PhasedMISProtocol
from .abi import ABIMIS
from .coloring import LubyColoring
from .dist_greedy import DistGreedyMIS
from .ghaffari import GhaffariMIS
from .luby import LubyMIS
from .seq_greedy import (
    greedy_mis,
    lexicographically_first_mis,
    random_order_mis,
)

__all__ = [
    "ABIMIS",
    "DistGreedyMIS",
    "GhaffariMIS",
    "LubyColoring",
    "LubyMIS",
    "PhasedMISProtocol",
    "greedy_mis",
    "lexicographically_first_mis",
    "random_order_mis",
]

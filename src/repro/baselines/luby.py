"""Luby's randomized MIS algorithm (Luby 1986; Alon--Babai--Itai 1986).

This is the ``O(log n)``-round baseline occupying the first column of the
paper's Table 1.  In each phase every live node redraws a fresh random
priority; local maxima join the MIS and their neighborhoods are removed.
Each phase removes a constant fraction of the *edges* in expectation, giving
``O(log n)`` phases w.h.p. -- but, as Section 1.3 stresses, it is *not*
known to finish a constant fraction of the **nodes** per phase, which is why
its node-averaged complexity is not obviously ``o(log n)``.

The priority is an integer drawn from ``[0, n^4)`` so messages stay within
``O(log n)`` bits, with ties broken by node id.
"""

from __future__ import annotations

from ..sim.context import NodeContext
from ._phased import PhasedMISProtocol


class LubyMIS(PhasedMISProtocol):
    """Luby's algorithm: a fresh random priority every phase."""

    def _priority_value(self, ctx: NodeContext, phase: int) -> int:
        return ctx.rng.randrange(ctx.n**4 + 1)

"""The parallel/distributed randomized greedy MIS algorithm.

Introduced by Coppersmith, Raghavan, and Tompa (1989), generalized by
Blelloch, Fineman, and Shun (2012), and shown to run in ``O(log n)`` rounds
w.h.p. by Fischer and Noever (2018).  A single random ranking is drawn up
front; in each phase all nodes that hold the highest rank among their live
neighbors join the MIS and are removed together with their neighbors.

Its defining property (used by the paper's Corollary 1): it always outputs
the **lexicographically-first MIS** of the drawn ranking -- the same set the
sequential greedy algorithm produces -- which is also what Algorithm 2 runs
inside each truncated base case.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim.context import NodeContext
from ._phased import PhasedMISProtocol


class DistGreedyMIS(PhasedMISProtocol):
    """Randomized greedy: one permanent random rank per node."""

    def __init__(self, max_phases: Optional[int] = None):
        super().__init__(max_phases=max_phases)
        #: the node's permanent rank as ``(value, id)``, for analyses that
        #: recover the lexicographically-first order.
        self.rank: Optional[Tuple[int, int]] = None

    def _priority_value(self, ctx: NodeContext, phase: int) -> int:
        if self.rank is None:
            self.rank = (ctx.rng.randrange(ctx.n**6 + 1), ctx.node_id)
        return self.rank[0]

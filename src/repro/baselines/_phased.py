"""Shared machinery for phase-based MIS baselines (traditional model).

Luby's algorithm and the distributed randomized greedy differ in exactly one
respect: whether a node's priority is redrawn every phase (Luby) or drawn
once and kept (greedy -- equivalently, Luby with a fixed random
permutation).  Both fit the same three-round phase skeleton:

* **round A** -- every live node sends ``(priority, id)`` to its live
  neighbors; a node that beats all of them *wins*;
* **round B** -- winners announce ``JOIN``; a live node hearing a ``JOIN``
  is *eliminated*; winners then terminate (they have sent their output to
  their neighbors, the Barenboim--Tzur convention);
* **round C** -- the newly eliminated announce ``OUT`` and terminate;
  survivors drop the announcers from their live sets.

These are traditional-model algorithms: nodes never sleep, and every round
until termination counts toward both the awake and the round measures.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.actions import SendAndReceive
from ..sim.context import NodeContext
from ..sim.protocol import MISProtocol


class PhasedMISProtocol(MISProtocol):
    """Base class implementing the three-round phase skeleton."""

    def __init__(self, max_phases: Optional[int] = None):
        super().__init__()
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        self.max_phases = max_phases
        #: number of phases this node was live in.
        self.phases_run = 0

    def _priority_value(self, ctx: NodeContext, phase: int) -> int:
        """The node's priority for this phase (higher wins)."""
        raise NotImplementedError

    def run(self, ctx: NodeContext) -> Generator:
        live = set(ctx.neighbors)
        phase = 0
        while self.in_mis is None:
            if not live:
                self._decide(ctx, True, "isolated")
                return
            if self.max_phases is not None and phase >= self.max_phases:
                return  # give up undecided (callers treat this as failure)
            self.phases_run = phase + 1
            value = self._priority_value(ctx, phase)
            my_key = (value, ctx.node_id)

            # Round A -- priority exchange.
            inbox = yield SendAndReceive(
                {u: (value, ctx.node_id) for u in live}
            )
            keys = {
                u: tuple(payload) for u, payload in inbox.items() if u in live
            }
            joined = len(keys) == len(live) and all(
                my_key > key for key in keys.values()
            )

            # Round B -- JOIN announcements.
            if joined:
                self._decide(ctx, True, "won")
            inbox = yield SendAndReceive(
                {u: True for u in live} if joined else {}
            )
            eliminated = False
            if self.in_mis is None and any(u in live for u in inbox):
                self._decide(ctx, False, "eliminated")
                eliminated = True
            if joined:
                return  # output announced; terminate

            # Round C -- OUT announcements.
            inbox = yield SendAndReceive(
                {u: False for u in live} if eliminated else {}
            )
            if eliminated:
                return  # output announced; terminate
            live -= set(inbox)
            phase += 1

"""Luby's randomized (Delta+1)-coloring with O(1) node-averaged complexity.

Section 1.5 of the paper notes that ``(Delta + 1)``-coloring *can* be solved
with constant node-averaged round complexity in the traditional model --
because in Luby's coloring a constant fraction of the nodes finalize in
every phase -- while no such property is known for MIS.  We implement the
algorithm to measure that contrast directly (benchmark E10).

Per phase (two rounds):

* every live node picks a uniformly random color from its remaining
  palette (initially ``{0, ..., deg(v)}``) and exchanges picks with live
  neighbors; a node whose pick collides with no neighbor's pick finalizes;
* finalized nodes announce their color and terminate; listeners remove the
  announcer from their live sets and its color from their palettes.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.actions import SendAndReceive
from ..sim.context import NodeContext
from ..sim.protocol import Protocol


class LubyColoring(Protocol):
    """Luby's (Delta+1)-coloring (traditional model)."""

    def __init__(self, max_phases: Optional[int] = None):
        self.color: Optional[int] = None
        self.max_phases = max_phases
        self.phases_run = 0

    def output(self) -> Optional[int]:
        return self.color

    def run(self, ctx: NodeContext) -> Generator:
        palette = set(range(ctx.degree + 1))
        live = set(ctx.neighbors)
        phase = 0
        while self.color is None:
            if self.max_phases is not None and phase >= self.max_phases:
                return
            self.phases_run = phase + 1
            pick = ctx.rng.choice(sorted(palette))

            # Round A -- exchange picks.
            inbox = yield SendAndReceive({u: pick for u in live})
            conflict = any(
                payload == pick for u, payload in inbox.items() if u in live
            )
            if not conflict:
                self.color = pick
                ctx.report_decision(pick)

            # Round B -- finalized nodes announce their color.
            inbox = yield SendAndReceive(
                {u: pick for u in live} if self.color is not None else {}
            )
            if self.color is not None:
                return  # announced; terminate
            for u, final_color in inbox.items():
                if u in live:
                    live.discard(u)
                    palette.discard(final_color)
            phase += 1

"""The Alon--Babai--Itai MIS algorithm (J. Algorithms 1986).

The paper's Table 1 groups "Luby's [20, 2]" together; reference [2] is
Alon, Babai, and Itai's independently discovered algorithm, which differs
from Luby's in *how* a phase's winners are chosen:

* every live node marks itself with probability ``1 / (2 d(v))`` where
  ``d(v)`` is its current live degree (degree-0 nodes join outright);
* if two adjacent nodes are both marked, the one with **smaller degree**
  unmarks (ties broken by id) -- so marked conflicts are resolved toward
  high-degree nodes, which kill more edges;
* surviving marked nodes join the MIS; their neighborhoods are removed.

Each phase removes a constant fraction of the edges in expectation, giving
``O(log n)`` phases w.h.p., like Luby's.  Phases take three rounds in the
same JOIN/OUT shape as the other baselines.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.actions import SendAndReceive
from ..sim.context import NodeContext
from ..sim.protocol import MISProtocol


class ABIMIS(MISProtocol):
    """Alon--Babai--Itai: degree-weighted marking (traditional model)."""

    def __init__(self, max_phases: Optional[int] = None):
        super().__init__()
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        self.max_phases = max_phases
        self.phases_run = 0

    def run(self, ctx: NodeContext) -> Generator:
        live = set(ctx.neighbors)
        phase = 0
        while self.in_mis is None:
            if not live:
                self._decide(ctx, True, "isolated")
                return
            if self.max_phases is not None and phase >= self.max_phases:
                return
            self.phases_run = phase + 1
            degree = len(live)
            marked = ctx.rng.random() < 1.0 / (2.0 * degree)

            # Round A -- exchange (marked, degree).  A marked node keeps
            # its mark only if it beats every marked live neighbor on
            # (degree, id).
            inbox = yield SendAndReceive(
                {u: (marked, degree) for u in live}
            )
            reports = {
                u: tuple(payload) for u, payload in inbox.items() if u in live
            }
            joined = marked and len(reports) == len(live)
            if joined:
                my_key = (degree, ctx.node_id)
                for u, (u_marked, u_degree) in reports.items():
                    if u_marked and (u_degree, u) > my_key:
                        joined = False
                        break

            # Round B -- JOIN announcements.
            if joined:
                self._decide(ctx, True, "won")
            inbox = yield SendAndReceive(
                {u: True for u in live} if joined else {}
            )
            eliminated = False
            if self.in_mis is None and any(u in live for u in inbox):
                self._decide(ctx, False, "eliminated")
                eliminated = True
            if joined:
                return

            # Round C -- OUT announcements.
            inbox = yield SendAndReceive(
                {u: False for u in live} if eliminated else {}
            )
            if eliminated:
                return
            live -= set(inbox)
            phase += 1

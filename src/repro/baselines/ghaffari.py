"""Ghaffari's MIS algorithm (SODA 2016), the "node-centric" baseline.

Section 1.3 of the paper singles this algorithm out: it gives a per-node
probabilistic finish-time bound of ``O(log deg(v) + log 1/eps)``, which
makes its node-averaged complexity easy to reason about -- and that average
is still ``Theta(log n)`` when most nodes have polynomial degree.  We
implement it to measure exactly that.

Each node maintains a *desire level* ``p_v`` (initially 1/2).  Per phase:

* the node marks itself with probability ``p_v`` and exchanges
  ``(marked, p)`` with live neighbors;
* a marked node with no marked live neighbor joins the MIS;
* desire levels update by the *effective degree*
  ``d_v = sum of p_u over live neighbors``: if ``d_v >= 2`` then
  ``p_v /= 2`` else ``p_v`` doubles (capped at 1/2).

Desire levels are always powers of two, so they travel as integer exponents
within the CONGEST budget -- and the ``d_v >= 2`` comparison is computed in
*exact integer arithmetic* (``sum(2^(E - e)) >= 2^(E + 1)`` with ``E`` the
largest reported exponent) rather than a float sum: a float sum would start
rounding once neighboring exponents spread past the 53-bit mantissa, making
the update depend on summation order, whereas exact shifts keep this
protocol and the vectorized engine
(:class:`repro.sim.fast_phased.PhasedVectorizedEngine`) bit-for-bit equal
in every regime.  JOIN/OUT propagation reuses the same three-round phase
shape as the other baselines.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.actions import SendAndReceive
from ..sim.context import NodeContext
from ..sim.protocol import MISProtocol


class GhaffariMIS(MISProtocol):
    """Ghaffari's desire-level MIS algorithm (traditional model)."""

    def __init__(self, max_phases: Optional[int] = None):
        super().__init__()
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        self.max_phases = max_phases
        self.phases_run = 0

    def run(self, ctx: NodeContext) -> Generator:
        live = set(ctx.neighbors)
        exponent = 1  # p_v = 2 ** -exponent
        phase = 0
        while self.in_mis is None:
            if not live:
                self._decide(ctx, True, "isolated")
                return
            if self.max_phases is not None and phase >= self.max_phases:
                return
            self.phases_run = phase + 1
            marked = ctx.rng.random() < 2.0**-exponent

            # Round A -- exchange (marked, desire exponent).
            inbox = yield SendAndReceive(
                {u: (marked, exponent) for u in live}
            )
            reports = {
                u: tuple(payload) for u, payload in inbox.items() if u in live
            }
            neighbor_marked = any(m for m, _ in reports.values())
            joined = (
                marked
                and not neighbor_marked
                and len(reports) == len(live)
            )

            # Round B -- JOIN announcements.
            if joined:
                self._decide(ctx, True, "won")
            inbox = yield SendAndReceive(
                {u: True for u in live} if joined else {}
            )
            eliminated = False
            if self.in_mis is None and any(u in live for u in inbox):
                self._decide(ctx, False, "eliminated")
                eliminated = True
            if joined:
                return

            # Round C -- OUT announcements.
            inbox = yield SendAndReceive(
                {u: False for u in live} if eliminated else {}
            )
            if eliminated:
                return
            live -= set(inbox)

            # Desire-level update from this phase's reports (survivors
            # only).  sum(2^-e) >= 2 is evaluated exactly via integer
            # shifts scaled by the largest exponent (see module docstring).
            exponents = [e for u, (_, e) in reports.items() if u in live]
            if exponents:
                cap = max(exponents)
                high_degree = (
                    sum(1 << (cap - e) for e in exponents) >= 1 << (cap + 1)
                )
            else:
                high_degree = False
            if high_degree:
                exponent += 1
            else:
                exponent = max(1, exponent - 1)
            phase += 1

"""Command-line interface.

Subcommands::

    repro-mis run     --algorithm sleeping --family gnp-sparse --n 256
    repro-mis sweep   --algorithm fast-sleeping --sizes 64,128,256
    repro-mis table1  --sizes 64,128,256 --trials 3
    repro-mis tree    --n 64 --algorithm sleeping --max-depth 4
    repro-mis energy  --n 256 --family geometric
    repro-mis serve   --port 8765 --workers 2

``run``/``sweep``/``table1`` accept ``--server URL`` to route through a
running ``repro-mis serve`` instance (the thin-client mode: identical
output, warm-cache latency); without a reachable server they warn and
degrade to local execution unless ``--no-fallback`` is set.

(Also runnable as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: Exit codes (documented in ``sweep --help``; stable for scripting).
EXIT_OK = 0
EXIT_TRIAL_FAILED = 1
EXIT_CONFIG = 2
EXIT_CORRUPT = 3
EXIT_UNREACHABLE = 4

_EXIT_CODE_HELP = """\
exit codes:
  0  success
  1  trial failure (invalid MIS, failed sweep trials, server-side solve
     error)
  2  configuration error (bad flag combination, invalid plan/manifest,
     unsupported knob combination)
  3  sweep frontier corruption (--sweep-dir state failed integrity
     checks; see docs/sweeps.md)
  4  --server unreachable with --no-fallback set
"""

from .analysis.complexity import run_trial, summarize, sweep
from .analysis.recursion_tree import build_tree, render_tree, tree_stats
from .analysis.tables import Table, build_table1
from .api import algorithm_names
from .graphs.arrays import DEFAULT_GRAPH_RNG
from .graphs.generators import family_names, make_family_graph
from .plan import RunPlan
from .sim.energy import DEFAULT_MODEL
from .sim.rng import DEFAULT_STREAM


def _parse_sizes(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description=(
            "Sleeping-model MIS: reproduction of Chatterjee, Gmyr, "
            "Pandurangan (PODC 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--algorithm",
            default="fast-sleeping",
            choices=algorithm_names(),
            help="MIS algorithm to run",
        )
        p.add_argument(
            "--family",
            default="gnp-sparse",
            choices=family_names(),
            help="graph family",
        )
        p.add_argument("--seed", type=int, default=0, help="master seed")

    def engine_opt(p: argparse.ArgumentParser, default: str) -> None:
        p.add_argument(
            "--engine",
            default=default,
            choices=["auto", "generators", "vectorized"],
            help=(
                "execution engine (every algorithm has a vectorized "
                "engine; tracing/congest/fault workloads stay on "
                "generators)"
            ),
        )
        p.add_argument(
            "--rng",
            default="pernode",
            choices=["pernode", "batched"],
            help=(
                "random-stream format: pernode (v1, default) or batched "
                "(v2, whole-array draws; same seed gives different runs "
                "than v1)"
            ),
        )
        p.add_argument(
            "--graph-source",
            default="auto",
            choices=["auto", "networkx", "arrays"],
            help=(
                "how graphs are built: networkx generators or the "
                "direct-to-CSR array samplers (identical seeded edge "
                "sets; auto picks arrays whenever the family supports it)"
            ),
        )
        p.add_argument(
            "--graph-rng",
            default="legacy",
            choices=["legacy", "batched"],
            help=(
                "graph-sampling stream: legacy (v1, networkx's exact "
                "draw order) or batched (v2, vectorized geometric-skip "
                "sampling; same seed gives different graphs than v1)"
            ),
        )
        p.add_argument(
            "--result",
            default="auto",
            choices=["auto", "legacy", "arrays"],
            help=(
                "result representation: legacy per-node NodeStats dicts "
                "or struct-of-arrays (auto: arrays exactly when a "
                "vectorized engine runs the trial)"
            ),
        )
        p.add_argument(
            "--dtype",
            default="default",
            choices=["default", "narrow"],
            help=(
                "result column dtypes: default (historical int64 "
                "columns, bit-identical) or narrow (smallest dtype "
                "holding each column exactly -- halves result memory "
                "at 10^8 nodes; identical measures either way)"
            ),
        )

    def server_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--server", default=None, metavar="URL",
            help=(
                "route through a running repro-mis serve instance (e.g. "
                "http://127.0.0.1:8765); identical output to local "
                "execution, with the server's warm cache.  Unreachable "
                "servers degrade to local execution with a warning"
            ),
        )
        p.add_argument(
            "--no-fallback", action="store_true",
            help=(
                "with --server: exit with code 4 instead of degrading "
                "to local execution when the server is unreachable"
            ),
        )

    run_p = sub.add_parser("run", help="run once and print the measures")
    common(run_p)
    engine_opt(run_p, "generators")
    server_opt(run_p)
    run_p.add_argument("--n", type=int, default=128, help="graph size")
    run_p.add_argument(
        "--profile-phases",
        action="store_true",
        help=(
            "append a per-phase wall-time/peak-memory table (sample, "
            "csr_build, engine, result_build) after the run report; "
            "local execution only (ignored with --server)"
        ),
    )

    sweep_p = sub.add_parser(
        "sweep", help="measure across sizes",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(sweep_p)
    engine_opt(sweep_p, "auto")
    server_opt(sweep_p)
    sweep_p.add_argument(
        "--sizes", type=_parse_sizes, default=[64, 128, 256], help="e.g. 64,128,256"
    )
    sweep_p.add_argument("--trials", type=int, default=3)
    sweep_p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the batch runner (default: sequential)",
    )
    sweep_p.add_argument(
        "--measure", default="node_averaged_awake",
        help="which measure to summarize",
    )
    sweep_p.add_argument(
        "--manifest", default=None, metavar="PATH",
        help=(
            "run the trials of a sweep manifest JSON (see docs/sweeps.md) "
            "instead of expanding --sizes/--trials in process"
        ),
    )
    sweep_p.add_argument(
        "--sweep-dir", default=None, metavar="DIR",
        help=(
            "disk-backed resumable mode: track every trial through a "
            "frontier in DIR (claims, per-trial result artifacts, "
            "crash-resume); required for --resume/--budget-s"
        ),
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help=(
            "reattach to an existing frontier in --sweep-dir and finish "
            "its pending/failed trials (completed trials are never "
            "re-run); on a fresh directory this simply starts the sweep"
        ),
    )
    sweep_p.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help=(
            "stop claiming new trials after this many seconds (in-flight "
            "trials finish; resume later with --resume)"
        ),
    )
    sweep_p.add_argument(
        "--claim-ttl", type=float, default=None, metavar="SECONDS",
        help=(
            "seconds before a crashed worker's claim expires and its "
            "trial is re-issued (default: 900)"
        ),
    )
    sweep_p.add_argument(
        "--emit-manifest", default=None, metavar="PATH",
        help=(
            "expand the sweep spec (flags or --manifest) to a manifest "
            "JSON at PATH and exit without running any trial"
        ),
    )

    table_p = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table_p.add_argument(
        "--sizes", type=_parse_sizes, default=[64, 128, 256]
    )
    table_p.add_argument("--family", default="gnp-sparse", choices=family_names())
    table_p.add_argument("--trials", type=int, default=3)
    table_p.add_argument("--seed", type=int, default=0)
    engine_opt(table_p, "auto")
    server_opt(table_p)
    table_p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the batch runner (default: sequential)",
    )
    table_p.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text"
    )

    tree_p = sub.add_parser("tree", help="render the recursion tree (Figure 1)")
    common(tree_p)
    tree_p.add_argument("--n", type=int, default=32)
    tree_p.add_argument("--max-depth", type=int, default=None)

    energy_p = sub.add_parser("energy", help="compare energy against Luby")
    energy_p.add_argument("--n", type=int, default=256)
    energy_p.add_argument("--family", default="geometric", choices=family_names())
    energy_p.add_argument("--seed", type=int, default=0)

    serve_p = sub.add_parser(
        "serve",
        help="run the MIS solve service (see docs/service.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765)
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes in the solve pool",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=8,
        help=(
            "queued+running jobs past which new requests get 429 "
            "backpressure"
        ),
    )
    serve_p.add_argument(
        "--cache-size", type=int, default=256,
        help="entries in the plan-keyed LRU result cache",
    )
    serve_p.add_argument(
        "--deadline-s", type=float, default=None,
        help=(
            "default per-request deadline; jobs past it are reaped "
            "(requests can set their own via deadline_s)"
        ),
    )

    report_p = sub.add_parser(
        "report", help="regenerate the full reproduction report (markdown)"
    )
    report_p.add_argument(
        "--sizes", type=_parse_sizes, default=[64, 128, 256]
    )
    report_p.add_argument("--family", default="gnp-sparse", choices=family_names())
    report_p.add_argument("--trials", type=int, default=2)
    report_p.add_argument("--seed", type=int, default=0)
    report_p.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )

    return parser


def plan_from_args(args: argparse.Namespace) -> RunPlan:
    """Map parsed CLI flags onto one validated :class:`RunPlan`.

    Every configuration flag corresponds to exactly one plan field
    (asserted by the CLI tests); subcommands that omit a flag fall back
    to the behavior-preserving default for that command group
    (``engine="generators"``/``result="legacy"`` -- what ``tree`` and
    ``energy`` always ran with).  Building the plan here means every
    subcommand validates its whole knob combination up front, with the
    shared suggestion-bearing errors, before any graph is built.
    """
    return RunPlan(
        algorithm=getattr(args, "algorithm", "fast-sleeping"),
        family=getattr(args, "family", None),
        n=getattr(args, "n", None),
        seed=getattr(args, "seed", 0),
        engine=getattr(args, "engine", "generators"),
        rng=getattr(args, "rng", DEFAULT_STREAM),
        graph_rng=getattr(args, "graph_rng", DEFAULT_GRAPH_RNG),
        graph_source=getattr(args, "graph_source", "auto"),
        result=getattr(args, "result", "legacy"),
        dtype=getattr(args, "dtype", "default"),
        n_jobs=getattr(args, "jobs", None),
    )


def _with_server(args: argparse.Namespace, remote, local) -> int:
    """Route through ``--server`` when set; degrade to ``local`` with a
    warning when unreachable (or exit 4 under ``--no-fallback``).

    Server-reported validation errors (bad plan/manifest/request) map to
    the configuration exit code, everything else server-side to the
    trial-failure code -- the same split the local paths use.
    """
    if getattr(args, "server", None) is None:
        return local()
    from .service.client import (
        ServiceClient, ServiceError, ServiceUnreachable,
    )

    client = ServiceClient(args.server)
    try:
        return remote(client)
    except ServiceUnreachable as exc:
        if args.no_fallback:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNREACHABLE
        print(
            f"warning: {exc}; falling back to local execution",
            file=sys.stderr,
        )
        return local()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        config_codes = (
            "bad_request", "unknown_field", "unsupported_version",
            "invalid_plan", "invalid_manifest",
        )
        return EXIT_CONFIG if exc.code in config_codes else EXIT_TRIAL_FAILED


def _print_run(algorithm: str, family: str, n, mis_size, row) -> int:
    """The ``run`` report, printed from a flattened trial row -- the one
    formatter both the local path and the ``--server`` path feed, so
    their outputs are byte-identical (test-enforced)."""
    print(f"algorithm          : {algorithm}")
    print(f"graph              : {family} n={n}")
    print(f"MIS size           : {mis_size}")
    print(f"valid MIS          : {row['valid']}")
    print(f"node-avg awake     : {row['node_averaged_awake']:.2f}")
    print(f"worst-case awake   : {row['worst_case_awake']}")
    print(f"node-avg rounds    : {row['node_averaged_rounds']:.1f}")
    print(f"worst-case rounds  : {row['worst_case_rounds']}")
    print(
        f"messages / bits    : {row['total_messages']} / {row['total_bits']}"
    )
    print(f"total energy       : {row['total_energy']:.1f}")
    return EXIT_OK if row["valid"] else EXIT_TRIAL_FAILED


def _cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    plan = plan_from_args(args)

    def local() -> int:
        if getattr(args, "profile_phases", False):
            from .profiling import profile_phases

            with profile_phases(trace=True) as prof:
                graph = plan.build_graph()
                result, trial = run_trial(
                    graph, plan=plan, family=args.family
                )
            code = _print_run(
                args.algorithm, args.family, result.n,
                len(result.mis), asdict(trial),
            )
            print()
            print(prof.format())
            return code
        graph = plan.build_graph()
        result, trial = run_trial(graph, plan=plan, family=args.family)
        return _print_run(
            args.algorithm, args.family, result.n,
            len(result.mis), asdict(trial),
        )

    def remote(client) -> int:
        response = client.solve(plan.to_dict(), seed=args.seed)
        return _print_run(
            args.algorithm, args.family, response.row["n"],
            response.mis_size, response.row,
        )

    return _with_server(args, remote, local)


def _sweep_manifest(args: argparse.Namespace):
    """The manifest behind a ``sweep`` invocation: loaded or expanded."""
    from .sweeps import SweepManifest

    if args.manifest is not None:
        return SweepManifest.load(args.manifest)
    return SweepManifest.expand(
        plan_from_args(args).replace(n_jobs=None),
        sizes=args.sizes, trials=args.trials, seed0=args.seed,
    )


def _print_trial_table(args: argparse.Namespace, rows) -> None:
    summary = summarize(rows, args.measure)
    algorithms = sorted({row.algorithm for row in rows})
    families = sorted({row.family for row in rows})
    table = Table(
        title=(
            f"{args.measure} of {', '.join(algorithms)} "
            f"on {', '.join(families)}"
        ),
        headers=["n", "mean", "min", "max", "stdev"],
    )
    for n, row in summary.items():
        table.add_row(
            n, f"{row['mean']:.2f}", f"{row['min']:.2f}",
            f"{row['max']:.2f}", f"{row['stdev']:.2f}",
        )
    print(table.to_text())


def _cmd_sweep_frontier(args: argparse.Namespace) -> int:
    """The resumable (disk-backed) path of the ``sweep`` subcommand."""
    from .analysis.complexity import Trial
    from .sweeps import (
        DEFAULT_CLAIM_TTL, FrontierCorruption, TrialFrontier, run_sweep,
        write_merged,
    )

    manifest = _sweep_manifest(args)
    claim_ttl = (
        DEFAULT_CLAIM_TTL if args.claim_ttl is None else args.claim_ttl
    )
    directory = args.sweep_dir
    try:
        if args.resume:
            frontier = TrialFrontier.attach(
                directory, manifest, claim_ttl=claim_ttl
            )
        else:
            frontier = TrialFrontier.create(
                directory, manifest, claim_ttl=claim_ttl
            )
    except FrontierCorruption as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CORRUPT
    report = run_sweep(
        frontier, n_jobs=args.jobs, budget_s=args.budget_s,
    )
    status = frontier.status()
    print(
        f"sweep {manifest.name!r}: {status['done']}/{status['total']} done, "
        f"{status['failed']} failed, {status['pending']} pending "
        f"(this run: {report.executed} executed, "
        f"{report.skipped_done} already done, "
        f"{report.reissued_failed} failures re-issued, "
        f"{report.expired_claims} stale claims expired)"
    )
    for error in report.errors:
        print(f"  failed {error}", file=sys.stderr)
    if report.budget_exhausted and not report.all_done:
        print(
            f"budget exhausted after {report.wall_clock_s:.1f}s; resume "
            f"with: repro-mis sweep --sweep-dir {directory} --resume"
        )
    if frontier.is_complete:
        merged = write_merged(frontier)
        print(f"merged result set: {merged}")
        rows = [
            Trial(**payload["row"])
            for _, payload in frontier.iter_results()
        ]
        _print_trial_table(args, rows)
    return 0 if report.failed == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.emit_manifest is not None:
        manifest = _sweep_manifest(args)
        manifest.save(args.emit_manifest)
        print(
            f"wrote manifest {manifest.name!r}: {len(manifest)} trials, "
            f"key {manifest.manifest_key()[:12]} -> {args.emit_manifest}"
        )
        return 0
    if args.server is not None and (
        args.sweep_dir is not None or args.resume or args.budget_s is not None
    ):
        print(
            "error: --server runs trials remotely and cannot drive a "
            "local disk-backed frontier; drop --server, or drop "
            "--sweep-dir/--resume/--budget-s",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    if args.server is not None:
        from .analysis.complexity import Trial

        def remote(client) -> int:
            manifest = _sweep_manifest(args)
            response = client.sweep(manifest.to_dict())
            rows = [Trial(**row) for row in response.rows]
            _print_trial_table(args, rows)
            return EXIT_OK

        return _with_server(args, remote, lambda: _cmd_sweep_local(args))
    return _cmd_sweep_local(args)


def _cmd_sweep_local(args: argparse.Namespace) -> int:
    if args.sweep_dir is not None:
        return _cmd_sweep_frontier(args)
    if args.resume or args.budget_s is not None:
        print(
            "error: --resume/--budget-s need a disk-backed frontier; "
            "pass --sweep-dir DIR",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    if args.manifest is not None:
        from .sweeps import SweepManifest, execute_trial

        from .analysis.complexity import Trial

        manifest = SweepManifest.load(args.manifest)
        rows = [
            Trial(**execute_trial(spec.plan, spec.seed)["row"])
            for spec in manifest
        ]
        _print_trial_table(args, rows)
        return 0
    rows = sweep(
        sizes=args.sizes, plan=plan_from_args(args),
        trials=args.trials, seed0=args.seed,
    )
    summary = summarize(rows, args.measure)
    table = Table(
        title=f"{args.measure} of {args.algorithm} on {args.family}",
        headers=["n", "mean", "min", "max", "stdev"],
    )
    for n, row in summary.items():
        table.add_row(
            n, f"{row['mean']:.2f}", f"{row['min']:.2f}",
            f"{row['max']:.2f}", f"{row['stdev']:.2f}",
        )
    print(table.to_text())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    plan = plan_from_args(args)

    def local() -> int:
        table = build_table1(
            sizes=args.sizes, plan=plan,
            trials=args.trials, seed0=args.seed,
        )
        print(table.to_markdown() if args.markdown else table.to_text())
        return EXIT_OK

    def remote(client) -> int:
        response = client.table1(
            plan.to_dict(), sizes=args.sizes,
            trials=args.trials, seed0=args.seed,
        )
        table = Table(
            title=response.title,
            headers=list(response.headers),
            rows=[list(row) for row in response.rows],
        )
        print(table.to_markdown() if args.markdown else table.to_text())
        return EXIT_OK

    return _with_server(args, remote, local)


def _cmd_tree(args: argparse.Namespace) -> int:
    # The tree needs result.protocols, so the plan stays on the
    # generator engine (plan_from_args' fallback for flagless commands).
    plan = plan_from_args(args)
    graph = make_family_graph(args.family, args.n, seed=args.seed)
    result, _ = run_trial(graph, plan=plan, family=args.family)
    root = build_tree(result)
    print(render_tree(root, max_depth=args.max_depth))
    stats = tree_stats(root)
    print()
    print(
        f"calls={stats['calls']} max_depth={stats['max_depth']} "
        f"leaves={stats['leaves']} base_calls={stats['base_calls']}"
    )
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    graph = make_family_graph(args.family, args.n, seed=args.seed)
    table = Table(
        title=f"Energy on {args.family} n={args.n} "
        f"(tx={DEFAULT_MODEL.tx}, rx={DEFAULT_MODEL.rx}, "
        f"idle={DEFAULT_MODEL.idle}, sleep={DEFAULT_MODEL.sleep})",
        headers=["algorithm", "total energy", "avg awake", "valid"],
    )
    plan = plan_from_args(args)
    for algorithm in ("luby", "sleeping", "fast-sleeping"):
        _, trial = run_trial(
            graph, plan=plan.replace(algorithm=algorithm), family=args.family
        )
        table.add_row(
            algorithm,
            f"{trial.total_energy:.1f}",
            f"{trial.node_averaged_awake:.2f}",
            trial.valid,
        )
    print(table.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import build_report

    report = build_report(
        sizes=args.sizes,
        family=args.family,
        trials=args.trials,
        seed0=args.seed,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        cache_size=args.cache_size,
        default_deadline_s=args.deadline_s,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "table1": _cmd_table1,
        "tree": _cmd_tree,
        "energy": _cmd_energy,
        "serve": _cmd_serve,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except ValueError as exc:
        # e.g. --engine vectorized with an algorithm it cannot run.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG


if __name__ == "__main__":
    sys.exit(main())

"""Resumable fleet-scale sweep orchestration.

The paper's statistical claims want 10^3..10^4 trials per configuration;
at that scale the unit of scheduling must be one *trial*, not one
``sweep()`` call.  This package provides the three layers:

* :mod:`~repro.sweeps.manifest` -- the declarative trial list
  (:class:`SweepManifest` of :class:`TrialSpec`, canonically serialized);
* :mod:`~repro.sweeps.frontier` -- the disk-backed
  ``pending -> claimed -> done/failed`` state machine
  (:class:`TrialFrontier`) with atomic claims, append-only artifacts,
  expiring leases, and crash-resume;
* :mod:`~repro.sweeps.runner` -- the claim/execute/record driver loop
  (:func:`run_sweep`) riding the same measurement path as
  :func:`repro.analysis.complexity.sweep`, plus
  :mod:`~repro.sweeps.merge` to merge-verify partial result shards into
  one canonical (bit-comparable) result set.

See ``docs/sweeps.md`` for the full design and the crash-consistency
invariants.
"""

from .frontier import (
    CLAIMED,
    DEFAULT_CLAIM_TTL,
    DONE,
    FAILED,
    PENDING,
    STATES,
    FrontierCorruption,
    TrialFrontier,
)
from .manifest import (
    MANIFEST_VERSION,
    SweepManifest,
    TrialSpec,
    trial_key,
)
from .merge import (
    TrialConflict,
    merge_shard_dirs,
    merge_trial_artifacts,
    merged_json,
    strip_volatile,
)
from .runner import (
    FAULT_ENV,
    SweepFaultInjected,
    SweepReport,
    execute_trial,
    merged_result_json,
    merged_rows,
    run_sweep,
    write_merged,
)

__all__ = [
    "CLAIMED",
    "DEFAULT_CLAIM_TTL",
    "DONE",
    "FAILED",
    "FAULT_ENV",
    "FrontierCorruption",
    "MANIFEST_VERSION",
    "PENDING",
    "STATES",
    "SweepFaultInjected",
    "SweepManifest",
    "SweepReport",
    "TrialConflict",
    "TrialFrontier",
    "TrialSpec",
    "execute_trial",
    "merge_shard_dirs",
    "merge_trial_artifacts",
    "merged_json",
    "merged_result_json",
    "merged_rows",
    "run_sweep",
    "strip_volatile",
    "trial_key",
    "write_merged",
]

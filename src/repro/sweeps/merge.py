"""Merge-verify partial sweep artifacts into one canonical result set.

Sweep workers land one artifact per trial (``results/<key>.json`` under
the sweep directory -- see :mod:`repro.sweeps.frontier`), and interrupted
or distributed sweeps can additionally produce overlapping *shards*
(directories or files covering subsets of the same manifest, e.g. a CI
frontier restored from cache next to a locally-run copy).  This module
merges any number of such partial result sets with the same discipline
``benchmarks/check_artifacts.py`` applies to committed ``BENCH_*.json``
artifacts:

* **wall-clock keys are ignored** -- any key ending in ``_s`` plus the
  per-artifact ``worker``/``at`` provenance fields move between machines
  even when the measured series are identical, so they are stripped
  before comparison and absent from the merged output;
* **overlap must agree** -- the same trial appearing in several shards is
  fine exactly when the stripped payloads are byte-identical
  (deterministic trials re-run anywhere produce the same series); a
  conflict raises :class:`TrialConflict` loudly instead of picking a
  winner;
* the merged output is **canonical**: trials sorted by key, compact
  sorted-key JSON, so "a resumed sweep equals an uninterrupted one" is a
  byte comparison (:func:`merged_json`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Tuple, Union


class TrialConflict(ValueError):
    """Two shards carry *different* series for one ``(cache_key, seed)``."""


#: Exact artifact keys that are provenance, not series (stripped alongside
#: the ``_s``-suffixed wall-clock keys).
VOLATILE_KEYS = {"worker", "at", "pid", "hostname"}


def strip_volatile(value: Any) -> Any:
    """Drop wall-clock (``*_s``) and provenance keys, recursively.

    Everything else -- plans, seeds, measured rows -- is kept verbatim;
    this mirrors ``check_artifacts._strip_timing`` so "identical modulo
    timing" means the same thing for sweep artifacts as for committed
    benchmark artifacts.
    """
    if isinstance(value, dict):
        return {
            k: strip_volatile(v)
            for k, v in value.items()
            if not (k.endswith("_s") or k in VOLATILE_KEYS)
        }
    if isinstance(value, list):
        return [strip_volatile(v) for v in value]
    return value


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def merge_trial_artifacts(
    shards: Iterable[Tuple[str, Mapping[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge ``(trial_key, artifact)`` pairs from any number of shards.

    Returns ``key -> stripped payload`` with overlapping entries
    verified: duplicates whose stripped payloads match merge silently;
    a mismatch raises :class:`TrialConflict` naming the trial and the
    first divergent field.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for key, payload in shards:
        stripped = strip_volatile(dict(payload))
        existing = merged.get(key)
        if existing is None:
            merged[key] = stripped
            continue
        if _canonical(existing) != _canonical(stripped):
            divergent = sorted(
                name
                for name in set(existing) | set(stripped)
                if existing.get(name) != stripped.get(name)
            )
            raise TrialConflict(
                f"conflicting series for trial {key!r} across shards "
                f"(first divergent field(s): {divergent[:3]}); "
                f"deterministic trials must agree bit-for-bit modulo "
                f"wall clocks -- this is an engine or environment bug"
            )
    return merged


def iter_shard_dir(
    directory: Union[str, Path],
) -> Iterable[Tuple[str, Dict[str, Any]]]:
    """``(key, artifact)`` pairs from a sweep ``results/`` directory.

    Accepts either the sweep directory itself (reads its ``results/``
    subdirectory) or a bare directory of ``<key>.json`` files.
    """
    directory = Path(directory)
    if (directory / "results").is_dir():
        directory = directory / "results"
    for path in sorted(directory.glob("*.json")):
        yield path.stem, json.loads(path.read_text())


def merge_shard_dirs(
    directories: Iterable[Union[str, Path]],
) -> Dict[str, Dict[str, Any]]:
    """Merge-verify several sweep result directories (see module docstring)."""
    def _pairs():
        for directory in directories:
            yield from iter_shard_dir(directory)

    return merge_trial_artifacts(_pairs())


def merged_json(merged: Mapping[str, Mapping[str, Any]]) -> str:
    """The canonical merged result set: trials sorted by key, compact JSON.

    This string is the bit-identical comparison surface: an interrupted
    sweep resumed to completion and the same sweep run uninterrupted
    produce byte-equal output here (wall clocks are already stripped).
    """
    return _canonical({key: merged[key] for key in sorted(merged)})

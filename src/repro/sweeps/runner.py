"""Drain a trial frontier: claim, execute, record -- resumably.

:func:`run_sweep` is the worker/driver loop over a
:class:`~repro.sweeps.frontier.TrialFrontier`: expire stale claims,
re-issue failures, then claim -> execute -> ``done``/``fail`` until the
frontier is drained, the time budget is spent, or ``max_trials`` is hit.
Execution rides the exact measurement path of
:func:`repro.analysis.complexity.sweep` -- the same
:func:`~repro.graphs.arrays.make_family` graph factory, the same
:func:`~repro.sim.batch.run_trials` batch runner, the same
:func:`~repro.analysis.complexity.trial_from_result` flattening -- so a
manifest sweep's merged rows are bit-identical to a plain ``sweep()``
call over the same grid.

Parallel execution (``n_jobs > 1``) fans claimed trials over a
``concurrent.futures`` process pool with a bounded in-flight window, the
same degrade-to-sequential story as :mod:`repro.sim.batch`: a pool that
cannot start (sandboxes) or dies mid-flight (a SIGKILLed worker breaks
the whole ``ProcessPoolExecutor``) releases the in-flight claims and
falls back to in-process execution -- nothing is lost either way,
because un-recorded claims simply expire and re-issue.

Fault injection (for the crash-resume test harness and the CI
kill/resume step) is driven by the ``REPRO_SWEEP_FAULT`` environment
variable -- ``raise:<key substring>`` raises inside the matching trial,
``sigkill:<key substring>`` SIGKILLs the executing process (a pool
worker under ``n_jobs > 1``, the driver itself otherwise), and
``driver-sigkill:<k>`` SIGKILLs the driver after ``k`` completions --
plus an in-process ``fault_hook`` callable for tests that want a spy or
a one-shot exception without touching the environment.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time
import warnings
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..plan import RunPlan
from .frontier import TrialFrontier
from .manifest import TrialSpec, trial_key
from .merge import (
    merge_trial_artifacts,
    merged_json as _merged_json,
)

#: Environment hook for fault injection (see module docstring).
FAULT_ENV = "REPRO_SWEEP_FAULT"


class SweepFaultInjected(RuntimeError):
    """The error raised by ``REPRO_SWEEP_FAULT=raise:...`` injection."""


def _maybe_inject_fault(key: str) -> None:
    """Apply the ``REPRO_SWEEP_FAULT`` trial-level hook, if armed."""
    spec = os.environ.get(FAULT_ENV, "")
    action, _, match = spec.partition(":")
    if action not in ("raise", "sigkill") or match not in key:
        return
    if action == "raise":
        raise SweepFaultInjected(
            f"injected fault for trial {key!r} ({FAULT_ENV}={spec!r})"
        )
    os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here


def execute_trial(plan: RunPlan, seed: int) -> Dict[str, Any]:
    """Run one manifest trial; returns its result artifact payload.

    The payload embeds the serialized plan and seed (so artifacts are
    self-describing and ``check_artifacts.py`` can re-validate them),
    the flattened :class:`~repro.analysis.complexity.Trial` row (the
    measured series -- deterministic given ``(plan, seed)``), and the
    wall clock (stripped from every comparison).
    """
    from ..analysis.complexity import trial_from_result
    from ..graphs.arrays import make_family
    from ..sim.batch import run_trials

    key = trial_key(plan, seed)
    _maybe_inject_fault(key)
    exec_plan = plan if plan.n_jobs is None else plan.replace(n_jobs=None)
    family, n = plan.family, plan.n
    source = plan.resolved_graph_source
    start = time.perf_counter()
    [result] = run_trials(
        lambda s: make_family(
            family, n, seed=s, graph_source=source,
            graph_rng=plan.graph_rng,
        ),
        seeds=[seed],
        plan=exec_plan,
    )
    row = trial_from_result(result, plan.algorithm, family=family, seed=seed)
    return {
        "trial_key": key,
        "plan": plan.to_dict(),
        "seed": seed,
        "row": asdict(row),
        "wall_clock_s": time.perf_counter() - start,
    }


def _pool_execute(payload: Tuple[str, str, int]) -> Dict[str, Any]:
    """Process-pool task: ``(key, plan_json, seed)`` -> result payload."""
    _, plan_json, seed = payload
    return execute_trial(RunPlan.from_json(plan_json), seed)


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call did (and what remains).

    ``executed`` counts trials this call actually computed (the
    zero-recompute guarantee: re-running a completed manifest reports
    ``executed == 0``); ``skipped_done`` counts trials already done when
    the call started.
    """

    total: int = 0
    executed: int = 0
    completed: int = 0
    failed: int = 0
    skipped_done: int = 0
    reissued_failed: int = 0
    expired_claims: int = 0
    remaining: int = 0
    budget_exhausted: bool = False
    wall_clock_s: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def all_done(self) -> bool:
        return self.remaining == 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _driver_kill_threshold() -> Optional[int]:
    spec = os.environ.get(FAULT_ENV, "")
    action, _, arg = spec.partition(":")
    if action == "driver-sigkill":
        try:
            return int(arg)
        except ValueError:
            raise ValueError(
                f"{FAULT_ENV}={spec!r}: driver-sigkill needs an integer "
                f"completion count, e.g. driver-sigkill:3"
            ) from None
    return None


def run_sweep(
    frontier: TrialFrontier,
    *,
    n_jobs: Optional[int] = None,
    budget_s: Optional[float] = None,
    max_trials: Optional[int] = None,
    worker: Optional[str] = None,
    retry_failed: bool = True,
    fault_hook: Optional[Callable[[TrialSpec], None]] = None,
) -> SweepReport:
    """Drain ``frontier`` until done, out of budget, or out of trials.

    Safe to call repeatedly and concurrently (several drivers on one
    directory): claims are atomic, completions idempotent.  ``budget_s``
    bounds *claiming*, not execution -- in-flight trials finish, so a
    budgeted CI run leaves no dangling claims behind on a clean exit.
    ``fault_hook`` runs in-process before each execution (tests use it
    as a spy counter or a one-shot exception injector).
    """
    start = time.monotonic()
    if worker is None:
        worker = f"{socket.gethostname()}:{os.getpid()}"
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(
            f"n_jobs={n_jobs} is not a valid worker count: pass "
            f"n_jobs=None (or 1) for in-process execution, or an "
            f"explicit positive worker count"
        )
    report = SweepReport(total=len(frontier.manifest))
    report.expired_claims = len(frontier.expire_stale())
    if retry_failed:
        report.reissued_failed = len(frontier.reissue_failed())
    report.skipped_done = sum(
        1 for key in frontier.manifest.keys()
        if frontier._recorded.get(key) == "done"
    )
    kill_after = _driver_kill_threshold()

    def out_of_budget() -> bool:
        return (
            budget_s is not None
            and time.monotonic() - start >= budget_s
        )

    def out_of_trials() -> bool:
        return max_trials is not None and report.executed >= max_trials

    def record(key: str, payload: Dict[str, Any]) -> None:
        frontier.done(key, payload, worker=worker)
        report.completed += 1
        if kill_after is not None and report.completed >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def record_failure(key: str, exc: BaseException) -> None:
        message = f"{type(exc).__name__}: {exc}"
        frontier.fail(key, message, worker=worker)
        report.failed += 1
        report.errors.append(f"{key}: {message}")

    jobs = 1 if n_jobs is None else n_jobs
    degraded = False
    if jobs > 1:
        degraded = not _run_parallel(
            frontier, worker, jobs, report, fault_hook,
            out_of_budget, out_of_trials, record, record_failure,
        )
    if jobs == 1 or degraded:
        while not out_of_budget() and not out_of_trials():
            spec = frontier.claim(worker)
            if spec is None:
                break
            report.executed += 1
            try:
                if fault_hook is not None:
                    fault_hook(spec)
                payload = execute_trial(spec.plan, spec.seed)
            except Exception as exc:
                record_failure(spec.key, exc)
            else:
                record(spec.key, payload)
    report.budget_exhausted = out_of_budget()
    report.remaining = sum(
        1 for key in frontier.manifest.keys()
        if frontier._recorded.get(key) != "done"
    )
    report.wall_clock_s = time.monotonic() - start
    return report


#: In-flight claims per worker in the bounded submission window.  Each
#: pending entry is a *claimed* trial, so the window also bounds how many
#: leases a dying driver can leave behind.  Sized from the
#: ``BENCH_sweep_scaling.json`` measurement: trial execution dominates
#: claim/submit latency (a claim cycle is ~0.3 ms of disk bookkeeping),
#: so two per worker -- one running, one queued -- already keeps every
#: worker fed, and deeper windows only add orphanable leases.
CLAIM_WINDOW_PER_WORKER = 2


def _run_parallel(
    frontier: TrialFrontier,
    worker: str,
    jobs: int,
    report: SweepReport,
    fault_hook: Optional[Callable[[TrialSpec], None]],
    out_of_budget: Callable[[], bool],
    out_of_trials: Callable[[], bool],
    record: Callable[[str, Dict[str, Any]], None],
    record_failure: Callable[[str, BaseException], None],
) -> bool:
    """The bounded-window pool loop; ``False`` means "degrade to
    sequential for whatever is still pending" (claims released)."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError as exc:  # pragma: no cover - stdlib always has it
        warnings.warn(
            f"process pool unavailable ({exc}); running sequentially",
            RuntimeWarning,
            stacklevel=3,
        )
        return False
    pending: deque = deque()  # (key, future)

    def drain_one() -> None:
        key, future = pending.popleft()
        try:
            payload = future.result()
        except BrokenProcessPool:
            # Put the popped entry back so the outer handler releases
            # this trial's claim along with the rest of the window.
            pending.appendleft((key, future))
            raise
        except Exception as exc:
            record_failure(key, exc)
        else:
            record(key, payload)

    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            while True:
                spec = None
                if not out_of_budget() and not out_of_trials():
                    spec = frontier.claim(worker)
                if spec is None:
                    if not pending:
                        return True
                    drain_one()
                    continue
                report.executed += 1
                try:
                    if fault_hook is not None:
                        fault_hook(spec)
                except Exception as exc:
                    record_failure(spec.key, exc)
                    continue
                pending.append(
                    (
                        spec.key,
                        pool.submit(
                            _pool_execute,
                            (spec.key, spec.plan.to_json(), spec.seed),
                        ),
                    )
                )
                while len(pending) >= jobs * CLAIM_WINDOW_PER_WORKER:
                    drain_one()
    except (OSError, BrokenProcessPool) as exc:
        # Pool could not start, or a worker was killed mid-trial (which
        # breaks the whole executor).  Release the in-flight claims --
        # their trials were not recorded, so they simply re-pend -- and
        # let the caller fall back to in-process execution.
        for key, _ in pending:
            frontier.release(key)
            report.executed -= 1
        warnings.warn(
            f"process pool died ({type(exc).__name__}: {exc}); released "
            f"{len(pending)} in-flight claim(s) and degrading to "
            f"sequential execution",
            RuntimeWarning,
            stacklevel=3,
        )
        return False


def merged_rows(frontier: TrialFrontier) -> Dict[str, Dict[str, Any]]:
    """Merge-verify every landed artifact: ``key -> stripped payload``."""
    return merge_trial_artifacts(frontier.iter_results())


def merged_result_json(frontier: TrialFrontier) -> str:
    """The canonical merged result set (see :func:`repro.sweeps.merge.merged_json`).

    Byte-identical between an interrupted-then-resumed sweep and an
    uninterrupted one -- the comparison surface of the crash-resume
    guarantee.
    """
    return _merged_json(merged_rows(frontier))


def write_merged(frontier: TrialFrontier, path: Optional[str] = None) -> str:
    """Write the canonical merged result set next to the frontier.

    Returns the path written (default: ``<sweep_dir>/MERGED.json``).
    Only meaningful once :attr:`~TrialFrontier.is_complete` for
    publication, but callable any time for partial snapshots.
    """
    target = path or str(frontier.directory / "MERGED.json")
    merged = merged_rows(frontier)
    with open(target, "w") as handle:
        json.dump(
            {
                "manifest_key": frontier.manifest.manifest_key(),
                "name": frontier.manifest.name,
                "done": len(merged),
                "total": len(frontier.manifest),
                "trials": {key: merged[key] for key in sorted(merged)},
            },
            handle,
            sort_keys=True,
            indent=1,
        )
        handle.write("\n")
    return target

"""Sweep manifests: a declarative, expanded list of trials.

The paper's statistical claims (node-averaged awake complexity, Table 1)
want 10^3..10^4 ``(graph, seed)`` trials per configuration.  At that
scale the unit of scheduling can no longer be "one ``sweep()`` call" --
a killed process must not restart from zero, and several workers must be
able to share one trial pool without re-running each other's work.  The
first ingredient is making the trial pool *declarative*: a
:class:`SweepManifest` is the canonically-serialized, exhaustive list of
trials a sweep consists of, expanded once from a compact spec
(plans x sizes x trial indices) and then immutable.

Each trial is a :class:`TrialSpec`: one validated
:class:`repro.plan.RunPlan` (carrying algorithm, family, ``n``, and every
execution knob) plus one master ``seed`` (seeding both the family graph
and the run, exactly like :func:`repro.analysis.complexity.sweep`, via
the shared :func:`repro.analysis.complexity.trial_seeds` grid).  Its
:attr:`~TrialSpec.key` -- a prefix of ``plan.cache_key()`` plus the seed
-- names the trial everywhere downstream: frontier states, claim files,
and per-trial result artifacts (:mod:`repro.sweeps.frontier`).

The JSON form is canonical (sorted keys, compact separators,
``manifest_version``-stamped) and deduplicates plans: ``plans`` is the
list of serialized :class:`RunPlan` dicts, ``trials`` a list of
``{"plan": <index>, "seed": <int>}`` pairs.  Loading re-validates every
plan against the *current* registries, so a manifest whose recorded
configuration is no longer constructible fails at load instead of
mid-sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from ..plan import RunPlan

#: Version of the serialized manifest format; :meth:`SweepManifest.from_dict`
#: rejects unknown versions instead of guessing.
MANIFEST_VERSION = 1

#: Hex digits of ``plan.cache_key()`` kept in a trial key -- 80 bits,
#: collision-free in practice and short enough for readable filenames
#: (uniqueness over the whole manifest is verified at construction).
KEY_PREFIX_LEN = 20


def trial_key(plan: RunPlan, seed: int) -> str:
    """The trial's stable identity: ``plan.cache_key()`` prefix + seed.

    Keys name frontier states, claim files, and result artifacts, so two
    sweeps of the same manifest -- on different machines, days apart --
    agree on which trial is which.
    """
    return f"{plan.cache_key()[:KEY_PREFIX_LEN]}-{seed}"


@dataclass(frozen=True)
class TrialSpec:
    """One unit of sweep work: a full :class:`RunPlan` plus a master seed.

    ``seed`` seeds both the family graph build and the run, mirroring
    :func:`repro.analysis.complexity.sweep`; the plan's own ``seed``
    field is the spec-level ``seed0`` and does not drive execution.
    """

    plan: RunPlan
    seed: int

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                f"trial seed must be an int, got {self.seed!r}"
            )
        if self.plan.family is None or self.plan.n is None:
            raise ValueError(
                "a sweep trial's plan must carry family= and n= (the "
                "trial builds its own graph); got "
                f"family={self.plan.family!r}, n={self.plan.n!r}"
            )

    @property
    def key(self) -> str:
        """Stable trial identity (see :func:`trial_key`)."""
        return trial_key(self.plan, self.seed)


class SweepManifest:
    """The immutable, canonically-serialized trial list of one sweep.

    Construct with :meth:`expand` (compact spec -> trials) or
    :meth:`from_dict`/:meth:`load` (deserialization, re-validating every
    plan).  Iterating yields :class:`TrialSpec` in manifest order -- the
    deterministic order workers claim trials in.
    """

    def __init__(
        self, trials: Iterable[TrialSpec], *, name: str = "sweep",
        spec: Mapping[str, Any] = (),
    ) -> None:
        self.name = str(name)
        self.spec: Dict[str, Any] = dict(spec)
        self.trials: Tuple[TrialSpec, ...] = tuple(trials)
        if not self.trials:
            raise ValueError("a sweep manifest must contain >= 1 trial")
        seen: Dict[str, TrialSpec] = {}
        for trial in self.trials:
            other = seen.get(trial.key)
            if other is not None:
                raise ValueError(
                    f"duplicate trial {trial.key!r} in manifest "
                    f"(plan cache_key collision or repeated (plan, seed): "
                    f"seed={trial.seed}, algorithm="
                    f"{trial.plan.algorithm!r}, n={trial.plan.n})"
                )
            seen[trial.key] = trial
        self._by_key = seen

    # -- construction ---------------------------------------------------

    @classmethod
    def expand(
        cls,
        plans: Union[RunPlan, Iterable[RunPlan]],
        *,
        sizes: Sequence[int],
        trials: int,
        seed0: int = 0,
        name: str = "sweep",
    ) -> "SweepManifest":
        """Expand a compact spec into the exhaustive trial list.

        For every base plan, every ``n`` in ``sizes`` gets ``trials``
        trials seeded by the shared
        :func:`repro.analysis.complexity.trial_seeds` grid -- the same
        seeds :func:`repro.analysis.complexity.sweep` would use, so a
        manifest sweep and a plain ``sweep()`` call measure identical
        seeded (graph, run) pairs.
        """
        from ..analysis.complexity import trial_seeds

        if isinstance(plans, RunPlan):
            plans = (plans,)
        base_plans = tuple(plans)
        if not base_plans:
            raise ValueError("expand() needs >= 1 base plan")
        if not sizes:
            raise ValueError("expand() needs >= 1 size")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        expanded: List[TrialSpec] = []
        for base in base_plans:
            for n in sizes:
                sized = base.replace(n=int(n), seed=seed0)
                for seed in trial_seeds(seed0, int(n), trials):
                    expanded.append(TrialSpec(sized, seed))
        spec = {
            "sizes": [int(n) for n in sizes],
            "trials": int(trials),
            "seed0": int(seed0),
        }
        return cls(expanded, name=name, spec=spec)

    # -- lookup ---------------------------------------------------------

    def __iter__(self):
        return iter(self.trials)

    def __len__(self) -> int:
        return len(self.trials)

    def keys(self) -> List[str]:
        """All trial keys, in manifest (= claim) order."""
        return [trial.key for trial in self.trials]

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def trial(self, key: str) -> TrialSpec:
        """The :class:`TrialSpec` named by ``key``."""
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(
                f"trial {key!r} is not in this manifest "
                f"({len(self.trials)} trials, name={self.name!r})"
            ) from None

    # -- canonical serialization ----------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict: deduplicated plans + (plan index, seed) trials."""
        plan_index: Dict[str, int] = {}
        plans: List[Dict[str, Any]] = []
        trial_rows: List[Dict[str, int]] = []
        for trial in self.trials:
            cache_key = trial.plan.cache_key()
            if cache_key not in plan_index:
                plan_index[cache_key] = len(plans)
                plans.append(trial.plan.to_dict())
            trial_rows.append(
                {"plan": plan_index[cache_key], "seed": trial.seed}
            )
        return {
            "manifest_version": MANIFEST_VERSION,
            "name": self.name,
            "spec": dict(self.spec),
            "plans": plans,
            "trials": trial_rows,
        }

    def to_json(self) -> str:
        """Canonical form: compact, sorted-key JSON (stable across runs)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def manifest_key(self) -> str:
        """SHA-256 of the canonical JSON -- the sweep's identity.

        The frontier records it at init and refuses to resume a
        directory against a *different* manifest.
        """
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepManifest":
        """Rebuild (re-validating every plan) from :meth:`to_dict` output."""
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest_version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        plans = [RunPlan.from_dict(entry) for entry in data.get("plans", ())]
        trials: List[TrialSpec] = []
        for row in data.get("trials", ()):
            index = row["plan"]
            if not isinstance(index, int) or not 0 <= index < len(plans):
                raise ValueError(
                    f"trial references unknown plan index {index!r} "
                    f"(manifest carries {len(plans)} plans)"
                )
            trials.append(TrialSpec(plans[index], row["seed"]))
        return cls(
            trials,
            name=data.get("name", "sweep"),
            spec=data.get("spec", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepManifest":
        """Rebuild (and re-validate) from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the canonical JSON to ``path`` (pretty-printed variant
        kept byte-stable by sorted keys + fixed indent)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        """Read (and re-validate) a manifest written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

"""The disk-backed trial frontier: ``pending -> claimed -> done/failed``.

A :class:`TrialFrontier` tracks every trial of one
:class:`~repro.sweeps.manifest.SweepManifest` through its lifecycle on
disk, so a killed sweep resumes from where it died instead of from zero,
and several workers (processes, machines sharing a filesystem) can drain
one trial pool without duplicating work.  The design follows execo's
``ParamSweeper`` (get_next/done/skip states persisted on disk) with one
hardening twist: **the per-trial artifacts are the ground truth**, and
everything else is reconstructible from them.

Directory layout::

    <sweep_dir>/
        manifest.json        the immutable trial list (canonical JSON)
        frontier.log         append-only JSONL event journal / fast index
        claims/<key>.json    live claims (O_EXCL-created; mtime = lease)
        results/<key>.json   done trials (atomic rename; append-only set)
        failed/<key>.json    failure records
        frontier.log.corrupt-<N>   quarantined journals (see below)

Crash-consistency invariants
----------------------------
* Every state transition is **one atomic filesystem operation**: a claim
  is an ``O_CREAT | O_EXCL`` create (two workers can never both win), a
  completion is a write-to-temp + ``os.replace`` into ``results/`` (a
  truncated artifact can never exist under its final name), a failure is
  an atomic write into ``failed/``.
* The journal is an **index, not the truth**.  ``frontier.log`` exists so
  a resume does not have to parse 10^4 artifacts; it is reconciled
  against the ``results/`` directory listing on every load.  A torn tail
  line (the crash left a partial append) is detected and repaired in
  place; any deeper corruption (truncation mid-file, garbage bytes, an
  event naming an unknown trial) quarantines the journal to
  ``frontier.log.corrupt-<N>`` and rebuilds it from the artifacts.
* **Claims expire.**  A claim is a lease: a worker that died mid-trial
  leaves its claim file behind, and once the file is older than the TTL
  any other worker may break it and re-issue the trial.  Completion
  stays idempotent under the inevitable double-execution race: a re-run
  of an already-done trial verifies the existing artifact byte-for-byte
  (modulo wall-clock keys) and becomes a no-op; a *conflicting* result
  for the same ``(plan.cache_key(), seed)`` raises loudly, because a
  deterministic trial producing two different series is a bug worth a
  crash.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .manifest import SweepManifest, TrialSpec
from .merge import TrialConflict, strip_volatile

#: Frontier states.  ``done`` and ``failed`` are recorded on disk;
#: ``claimed`` is a lease (a live claim file); everything else is pending.
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, CLAIMED, DONE, FAILED)

#: How long a claim lives before any worker may break it (seconds).
#: Generous by default: expiring a *live* worker's claim costs only a
#: duplicated (idempotent) trial, but thrashing claims costs throughput.
#: The ``BENCH_sweep_scaling.json`` measurement sizes the margin: the
#: lease machinery itself is ~0.3 ms per claim cycle, so at 15 minutes
#: expiry can only ever fire on a worker that is genuinely gone (or on
#: a single trial running >= 6 orders of magnitude longer than the
#: bookkeeping) -- never on the frontier's own latency.
DEFAULT_CLAIM_TTL = 15 * 60.0

#: Journal event types.  ``done``/``failed``/``reissue`` rebuild state;
#: ``claim``/``expired`` are observability breadcrumbs only (claims are
#: always re-derived from the ``claims/`` directory, never the journal).
EVENTS = ("claim", "done", "failed", "expired", "reissue")


class FrontierCorruption(RuntimeError):
    """An unrecoverable on-disk inconsistency (e.g. manifest mismatch)."""


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file + atomic rename."""
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    tmp.write_text(text)
    os.replace(tmp, path)


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TrialFrontier:
    """Disk-backed claim/complete state over one manifest's trials.

    Create a fresh frontier with :meth:`create`, reattach to an existing
    one with :meth:`open` (the crash-resume path), or call
    :meth:`attach` to do whichever applies.  All methods are safe to
    call from several driver processes sharing the directory; a single
    in-process instance is not thread-safe (drive it from one thread).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        manifest: SweepManifest,
        *,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.claim_ttl = float(claim_ttl)
        self._log_path = self.directory / "frontier.log"
        self._claims_dir = self.directory / "claims"
        self._results_dir = self.directory / "results"
        self._failed_dir = self.directory / "failed"
        #: key -> DONE/FAILED (pending/claimed are derived, not stored).
        self._recorded: Dict[str, str] = {}
        self.reload()

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        manifest: SweepManifest,
        *,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ) -> "TrialFrontier":
        """Initialize a fresh sweep directory for ``manifest``.

        Refuses a directory that already carries a frontier (resume those
        with :meth:`open` -- an accidental re-init must never clobber
        partial results).
        """
        directory = Path(directory)
        if (directory / "manifest.json").exists():
            raise FrontierCorruption(
                f"{directory} already contains a sweep frontier; resume "
                f"it with TrialFrontier.open(...) (or repro-mis sweep "
                f"--resume), or point --sweep-dir at a fresh directory"
            )
        directory.mkdir(parents=True, exist_ok=True)
        for sub in ("claims", "results", "failed"):
            (directory / sub).mkdir(exist_ok=True)
        _write_atomic(
            directory / "manifest.json",
            json.dumps(manifest.to_dict(), sort_keys=True, indent=1) + "\n",
        )
        return cls(directory, manifest, claim_ttl=claim_ttl)

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        manifest: Optional[SweepManifest] = None,
        *,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ) -> "TrialFrontier":
        """Reattach to an existing sweep directory (the resume path).

        Loads (and re-validates) the directory's own ``manifest.json``;
        when ``manifest`` is also given, their
        :meth:`~repro.sweeps.manifest.SweepManifest.manifest_key` must
        match -- resuming a frontier against a different trial list is
        an error, not a merge.
        """
        directory = Path(directory)
        path = directory / "manifest.json"
        if not path.exists():
            raise FrontierCorruption(
                f"{directory} is not a sweep frontier (no manifest.json); "
                f"initialize one with TrialFrontier.create(...)"
            )
        recorded = SweepManifest.load(path)
        if manifest is not None and (
            manifest.manifest_key() != recorded.manifest_key()
        ):
            raise FrontierCorruption(
                f"manifest mismatch: {directory} was initialized for "
                f"manifest {recorded.manifest_key()[:12]} "
                f"({len(recorded)} trials, name={recorded.name!r}), not "
                f"{manifest.manifest_key()[:12]} ({len(manifest)} trials, "
                f"name={manifest.name!r}); use a fresh --sweep-dir for a "
                f"new manifest"
            )
        for sub in ("claims", "results", "failed"):
            (directory / sub).mkdir(exist_ok=True)
        return cls(directory, recorded, claim_ttl=claim_ttl)

    @classmethod
    def attach(
        cls,
        directory: Union[str, Path],
        manifest: SweepManifest,
        *,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ) -> "TrialFrontier":
        """:meth:`open` if ``directory`` holds a frontier, else :meth:`create`."""
        if (Path(directory) / "manifest.json").exists():
            return cls.open(directory, manifest, claim_ttl=claim_ttl)
        return cls.create(directory, manifest, claim_ttl=claim_ttl)

    # -- journal --------------------------------------------------------

    def _append_event(self, event: str, key: str, **extra: Any) -> None:
        record = {"event": event, "trial": key, "at": time.time(), **extra}
        with open(self._log_path, "a") as handle:
            handle.write(_canonical(record) + "\n")

    def _parse_journal(
        self, text: str
    ) -> Tuple[List[Dict[str, Any]], Optional[int], Optional[str]]:
        """``(events, repair_offset, corrupt_reason)`` for the journal text.

        ``repair_offset`` is set when only the *final* line is damaged (a
        torn append from a crash): the byte offset to truncate back to.
        ``corrupt_reason`` is set for anything deeper -- the caller
        quarantines and rebuilds.
        """
        events: List[Dict[str, Any]] = []
        offset = 0
        lines = text.split("\n")
        for index, line in enumerate(lines):
            if not line:
                offset += 1  # the split newline
                continue
            is_last = index == len(lines) - 1
            try:
                record = json.loads(line)
                if (
                    not isinstance(record, dict)
                    or record.get("event") not in EVENTS
                    or not isinstance(record.get("trial"), str)
                ):
                    raise ValueError("malformed event record")
            except ValueError:
                if is_last:
                    # Torn tail: the crash interrupted the final append.
                    return events, offset, None
                return events, None, (
                    f"undecodable journal line {index + 1}"
                )
            if record["trial"] not in self.manifest:
                return events, None, (
                    f"journal line {index + 1} names unknown trial "
                    f"{record['trial']!r}"
                )
            events.append(record)
            offset += len(line) + 1
        return events, None, None

    def _quarantine_journal(self, reason: str) -> Path:
        n = 0
        while True:
            target = self.directory / f"frontier.log.corrupt-{n}"
            if not target.exists():
                break
            n += 1
        os.replace(self._log_path, target)
        warnings.warn(
            f"sweep journal {self._log_path} is corrupt ({reason}); "
            f"quarantined to {target.name} and rebuilding the index from "
            f"the per-trial artifacts",
            RuntimeWarning,
            stacklevel=3,
        )
        return target

    def _rebuild_journal(self) -> None:
        """Regenerate ``frontier.log`` from the artifact directories."""
        lines = []
        now = time.time()
        for key in self.manifest.keys():
            state = self._recorded.get(key)
            if state in (DONE, FAILED):
                lines.append(
                    _canonical(
                        {"event": state, "trial": key, "at": now,
                         "rebuilt": True}
                    )
                )
        _write_atomic(
            self._log_path, "".join(line + "\n" for line in lines)
        )

    # -- state ----------------------------------------------------------

    def reload(self) -> None:
        """Re-derive trial states from disk (journal + artifact dirs).

        The journal is the fast path; the ``results/``/``failed/``
        directory listings are the truth it is reconciled against:

        * artifact on disk but absent from the journal (crash between
          the atomic artifact rename and the journal append) -- the
          trial is done; the journal is repaired.
        * journal says done but the artifact is gone (manual deletion,
          partial restore) -- the trial is **re-issued**, because a
          "done" we cannot produce bytes for is not done.
        """
        text = ""
        if self._log_path.exists():
            text = self._log_path.read_text()
        events, repair_offset, corrupt = self._parse_journal(text)
        if corrupt is not None:
            self._quarantine_journal(corrupt)
            events = []
        elif repair_offset is not None:
            _write_atomic(self._log_path, text[:repair_offset])
            warnings.warn(
                f"sweep journal {self._log_path} ended in a torn "
                f"partial line (interrupted append); dropped it and "
                f"kept the {len(events)} complete event(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        elif text and not text.endswith("\n"):
            # The final line parsed but its newline is missing (the crash
            # cut exactly between the line and its terminator); restore it
            # so the next append starts a fresh line instead of
            # concatenating onto -- and corrupting -- this one.
            _write_atomic(self._log_path, text + "\n")
        recorded: Dict[str, str] = {}
        for record in events:
            event, key = record["event"], record["trial"]
            if event == "done":
                recorded[key] = DONE
            elif event == "failed":
                # An artifact in results/ outranks a failure record.
                if recorded.get(key) != DONE:
                    recorded[key] = FAILED
            elif event == "reissue":
                recorded.pop(key, None)
        # Reconcile against the artifact directories (the ground truth).
        done_on_disk = {
            path.stem for path in self._results_dir.glob("*.json")
        }
        unknown = sorted(k for k in done_on_disk if k not in self.manifest)
        if unknown:
            raise FrontierCorruption(
                f"results/ contains artifact(s) for trial(s) not in this "
                f"manifest: {unknown[:5]}{'...' if len(unknown) > 5 else ''}"
                f"; the sweep directory was mixed with another manifest"
            )
        journal_done = {k for k, s in recorded.items() if s == DONE}
        dirty = False
        for key in sorted(done_on_disk - journal_done):
            recorded[key] = DONE
            dirty = True
        for key in sorted(journal_done - done_on_disk):
            recorded.pop(key, None)  # lost artifact: re-issue
            dirty = True
        for path in self._failed_dir.glob("*.json"):
            key = path.stem
            if key in self.manifest and key not in recorded:
                recorded[key] = FAILED
                dirty = True
        self._recorded = recorded
        if corrupt is not None or dirty:
            self._rebuild_journal()

    def _claim_meta(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._claims_dir / f"{key}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except ValueError:
            # A torn claim write: treat as an expired (breakable) claim.
            return {"worker": "<corrupt>", "claimed_at": 0.0}

    def state(self, key: str, now: Optional[float] = None) -> str:
        """The trial's current state (claims re-checked against disk)."""
        self.manifest.trial(key)  # KeyError on unknown trials
        recorded = self._recorded.get(key)
        if recorded is not None:
            return recorded
        meta = self._claim_meta(key)
        if meta is None:
            return PENDING
        now = time.time() if now is None else now
        if now - float(meta.get("claimed_at", 0.0)) > self.claim_ttl:
            return PENDING  # stale lease; claimable
        return CLAIMED

    def states(self, now: Optional[float] = None) -> Dict[str, str]:
        """``key -> state`` for every manifest trial."""
        now = time.time() if now is None else now
        return {
            key: self.state(key, now=now) for key in self.manifest.keys()
        }

    def status(self, now: Optional[float] = None) -> Dict[str, int]:
        """State counts; ``done + failed + claimed + pending == len(manifest)``."""
        counts = {state: 0 for state in STATES}
        for state in self.states(now=now).values():
            counts[state] += 1
        counts["total"] = len(self.manifest)
        return counts

    @property
    def is_complete(self) -> bool:
        """Every manifest trial has a result artifact."""
        return all(
            self._recorded.get(key) == DONE for key in self.manifest.keys()
        )

    def pending_keys(self, now: Optional[float] = None) -> List[str]:
        """Claimable trials, in manifest order (stale claims count)."""
        now = time.time() if now is None else now
        return [
            key
            for key in self.manifest.keys()
            if self.state(key, now=now) == PENDING
        ]

    # -- transitions ----------------------------------------------------

    def claim(
        self, worker: str = "worker", now: Optional[float] = None
    ) -> Optional[TrialSpec]:
        """Atomically claim the next pending trial; ``None`` when none left.

        The claim file is created with ``O_CREAT | O_EXCL``, so two
        workers racing for the same trial cannot both win; the loser
        simply moves on to the next pending trial.  A stale claim (older
        than ``claim_ttl``) is broken -- unlinked and re-created -- which
        re-issues a crashed worker's trial.
        """
        now = time.time() if now is None else now
        for key in self.manifest.keys():
            if self._recorded.get(key) is not None:
                continue
            if self._try_claim(key, worker, now):
                return self.manifest.trial(key)
        return None

    def _try_claim(self, key: str, worker: str, now: float) -> bool:
        path = self._claims_dir / f"{key}.json"
        payload = _canonical(
            {"worker": worker, "pid": os.getpid(), "claimed_at": now}
        )
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                meta = self._claim_meta(key)
                if meta is None:
                    continue  # vanished under us; retry once
                if now - float(meta.get("claimed_at", 0.0)) <= self.claim_ttl:
                    return False  # live claim held elsewhere
                if attempt:
                    return False  # lost the break-stale race
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
                self._append_event(
                    "expired", key, worker=worker,
                    stale_worker=meta.get("worker"),
                )
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            self._append_event("claim", key, worker=worker)
            return True
        return False

    def release(self, key: str) -> None:
        """Drop a claim without recording an outcome (trial re-pends)."""
        try:
            os.unlink(self._claims_dir / f"{key}.json")
        except FileNotFoundError:
            pass

    def done(
        self, key: str, payload: Dict[str, Any], *, worker: str = "worker"
    ) -> bool:
        """Record a completed trial's result artifact; idempotent.

        Returns ``True`` when this call landed the artifact, ``False``
        when an identical artifact already existed (the double-claim
        no-op).  A *different* existing artifact raises
        :class:`~repro.sweeps.merge.TrialConflict`: deterministic trials
        must never produce two series for one ``(cache_key, seed)``.
        """
        self.manifest.trial(key)
        path = self._results_dir / f"{key}.json"
        text = _canonical(payload)
        landed = False
        if path.exists():
            existing = json.loads(path.read_text())
            if _canonical(strip_volatile(existing)) != _canonical(
                strip_volatile(payload)
            ):
                raise TrialConflict(
                    f"conflicting result for trial {key!r}: an artifact "
                    f"with different measured series already exists at "
                    f"{path} (deterministic trials must agree; this is "
                    f"an engine or environment bug, not a merge case)"
                )
        else:
            _write_atomic(path, text + "\n")
            landed = True
        if self._recorded.get(key) != DONE:
            self._recorded[key] = DONE
            self._append_event("done", key, worker=worker)
        self.release(key)
        return landed

    def fail(
        self, key: str, error: str, *, worker: str = "worker"
    ) -> None:
        """Record a failed trial (kept failed until :meth:`reissue_failed`)."""
        self.manifest.trial(key)
        if self._recorded.get(key) == DONE:
            self.release(key)
            return
        _write_atomic(
            self._failed_dir / f"{key}.json",
            _canonical(
                {"trial": key, "error": str(error), "worker": worker,
                 "at": time.time()}
            ) + "\n",
        )
        self._recorded[key] = FAILED
        self._append_event("failed", key, worker=worker, error=str(error))
        self.release(key)

    def expire_stale(self, now: Optional[float] = None) -> List[str]:
        """Break every stale claim; returns the re-issued trial keys."""
        now = time.time() if now is None else now
        expired: List[str] = []
        for path in sorted(self._claims_dir.glob("*.json")):
            key = path.stem
            if key not in self.manifest:
                continue
            if self._recorded.get(key) is not None:
                self.release(key)
                continue
            meta = self._claim_meta(key)
            if meta is None:
                continue
            if now - float(meta.get("claimed_at", 0.0)) > self.claim_ttl:
                self.release(key)
                self._append_event(
                    "expired", key, stale_worker=meta.get("worker")
                )
                expired.append(key)
        return expired

    def reissue_failed(self) -> List[str]:
        """Move every failed trial back to pending (the resume retry)."""
        reissued: List[str] = []
        for key, state in sorted(self._recorded.items()):
            if state != FAILED:
                continue
            try:
                os.unlink(self._failed_dir / f"{key}.json")
            except FileNotFoundError:
                pass
            del self._recorded[key]
            self._append_event("reissue", key)
            reissued.append(key)
        return reissued

    # -- results --------------------------------------------------------

    def result(self, key: str) -> Dict[str, Any]:
        """The stored result artifact of a done trial."""
        path = self._results_dir / f"{key}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise KeyError(
                f"trial {key!r} has no result artifact (state: "
                f"{self.state(key)})"
            ) from None

    def iter_results(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """``(key, artifact)`` for every done trial, in manifest order."""
        for key in self.manifest.keys():
            if self._recorded.get(key) == DONE:
                yield key, self.result(key)

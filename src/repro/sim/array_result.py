"""Array-backed run results: the struct-of-arrays view of one execution.

:class:`repro.sim.metrics.RunResult` materializes one
:class:`~repro.sim.metrics.NodeStats` dataclass per node.  That per-node
view is what analyses of *individual* nodes want, but a 10^5-node sweep
that only aggregates (mean awake rounds, total bits, MIS validity) pays
for ~10^5 Python objects per trial just to sum a few columns and throw
them away -- at n = 10^5 the dict build alone is a third of a vectorized
trial.  :class:`ArrayRunResult` is the opt-in alternative
(``result="arrays"``): the same statistics kept as the numpy columns the
vectorized engines already hold, with

* the paper's four complexity measures (and the message/bit/energy
  totals) computed by whole-array reductions -- integer-exact, so they
  equal the legacy properties bit for bit;
* MIS validity checkable in O(m) numpy passes against the attached
  :class:`~repro.sim.fast_engine.GraphArrays` (no adjacency dict);
* a **lazy legacy view**: ``result.node_stats`` / ``result.outputs`` /
  ``result.adjacency`` materialize the classic dictionaries on first
  access (cached), so code written against :class:`RunResult` keeps
  working -- it just pays the materialization cost only when it actually
  inspects per-node state.

``RESULT_KINDS`` names the choices accepted by ``result=`` everywhere
(:func:`repro.api.solve_mis`, the batch runner, sweeps, the CLI):
``"legacy"`` (the default for single runs), ``"arrays"``, and ``"auto"``
(arrays exactly when the trial runs on a vectorized engine -- what sweeps
use, since they only consume aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

import numpy as np

from .metrics import RunResult

#: Result-type choices accepted by ``result=`` throughout the package.
RESULT_KINDS = ("auto", "legacy", "arrays")

#: Column-dtype choices accepted by ``dtype=`` throughout the package.
#: ``"default"`` keeps the engines' native int64/float64 columns --
#: bit-for-bit identical to every earlier release.  ``"narrow"`` stores
#: each result column in the smallest dtype that represents its values
#: *exactly* (int64 -> int32 when the range fits; float64 -> float32 only
#: inside float32's exact-integer range), halving result memory at 10^8
#: nodes.
DTYPE_KINDS = ("default", "narrow")


def exact_sum(arr: np.ndarray) -> int:
    """Arbitrary-precision integer sum of an int column.

    Algorithm 1's :math:`\\Theta(n^3)` schedule puts ~2^51 in every
    finish/sleep cell at n = 10^5, so a straight int64 ``.sum()`` silently
    wraps past 2^63 -- the legacy view never hits this because Python ints
    are unbounded.  The guard costs one cheap ``max`` pass; only columns
    that can actually overflow fall back to exact Python summation.
    """
    if arr.size == 0:
        return 0
    bound = int(np.abs(arr).max()) * arr.size
    if bound < (1 << 62):
        return int(arr.sum())
    return sum(arr.tolist())


def validate_result_kind(result: str) -> str:
    """Return ``result`` if it names a known result kind, else raise."""
    if result not in RESULT_KINDS:
        raise ValueError(
            f"unknown result kind {result!r}; known: {RESULT_KINDS}"
        )
    return result


def resolve_dtype_kind(dtype: str) -> str:
    """Return ``dtype`` if it names a known dtype kind, else raise."""
    if dtype not in DTYPE_KINDS:
        raise ValueError(
            f"unknown result dtype {dtype!r}; known: {DTYPE_KINDS}"
        )
    return dtype


def narrow_column(column: np.ndarray) -> np.ndarray:
    """A copy of ``column`` in the smallest dtype holding it exactly.

    The narrowing ladder mirrors the promotion ladder the engines climb
    (int64 round labels promote to float64 past 2^63-1, see
    ``tests/test_array_result.py``): an int64 column narrows to int32 when
    its value range fits, and a float64 column narrows to float32 only
    when every value survives the round trip *and* lies inside float32's
    contiguous exact-integer range (|v| <= 2^24).  The range clause keeps
    the rule deterministic: overflow-promoted round labels can land on
    values like 3*2^62 that happen to round-trip through float32, but
    whether they do depends on per-run values, so promoted columns
    always stay float64.  Never lossy: when no narrower exact
    representation exists the column is returned as a plain copy.
    """
    dt = column.dtype
    if dt == np.int64:
        info = np.iinfo(np.int32)
        if column.size == 0 or (
            info.min <= int(column.min()) and int(column.max()) <= info.max
        ):
            return column.astype(np.int32)
        return column.copy()
    if dt == np.float64:
        cast = column.astype(np.float32)
        if np.array_equal(cast.astype(np.float64), column) and (
            column.size == 0 or float(np.abs(column).max()) <= float(1 << 24)
        ):
            return cast
        return column.copy()
    return column.copy()


def result_column(column: np.ndarray, *, narrow: bool = False) -> np.ndarray:
    """A caller-owned copy of an engine state column.

    The engines' columns live in pooled :class:`EngineScratch` buffers
    that the next run will overwrite, so result assembly always copies;
    ``narrow=True`` additionally applies :func:`narrow_column`'s exact
    narrowing while it does.
    """
    if not narrow:
        return column.copy()
    return narrow_column(column)


def resolve_result_kind(result: str, resolved_engine: str) -> str:
    """Map a ``result=`` request to the concrete kind that will be built.

    ``"auto"`` picks ``"arrays"`` exactly when the trial runs on a
    vectorized engine (whose state already *is* the arrays) and
    ``"legacy"`` on the generator engine, where the per-node stats exist
    anyway and a conversion would only add work.
    """
    validate_result_kind(result)
    if result != "auto":
        return result
    return "arrays" if resolved_engine == "vectorized" else "legacy"


@dataclass(eq=False)
class ArrayRunResult:
    """Struct-of-arrays result of one execution (see module docstring).

    Column semantics match :class:`~repro.sim.metrics.NodeStats` field for
    field; positions follow ``node_ids`` (sorted node order, the engines'
    node indexing).  Sentinels: ``decision_round``/``awake_at_decision``
    use ``-1`` for "never decided" (``None`` in the legacy view),
    ``finish_round`` uses ``-1`` for "never finished", and ``in_mis`` is
    the engines' tri-state ``-1``/``0``/``1`` (undecided / out / in).
    """

    n: int
    rounds: int
    seed: Optional[int]
    #: node ids in sorted order; column position i belongs to node_ids[i].
    node_ids: List[Any]
    #: tri-state MIS membership (-1 undecided, 0 out, 1 in).
    in_mis: np.ndarray
    awake_rounds: np.ndarray
    sleep_rounds: np.ndarray
    tx_rounds: np.ndarray
    rx_rounds: np.ndarray
    idle_rounds: np.ndarray
    messages_sent: np.ndarray
    bits_sent: np.ndarray
    messages_received: np.ndarray
    decision_round: np.ndarray
    awake_at_decision: np.ndarray
    finish_round: np.ndarray
    #: the graph's array view, when the trial ran on one (enables O(m)
    #: numpy validation and the lazy adjacency view); ``None`` for results
    #: converted from a generator-engine run, which carry the dict instead.
    arrays: Optional[Any] = field(repr=False, default=None)
    _adjacency: Optional[Dict[Any, tuple]] = field(repr=False, default=None)
    _legacy: Optional[RunResult] = field(repr=False, default=None)

    # ------------------------------------------------------------------
    # The paper's four complexity measures -- integer-exact reductions,
    # bit-identical to the legacy RunResult properties.
    # ------------------------------------------------------------------

    @property
    def node_averaged_awake_complexity(self) -> float:
        """Mean awake rounds per node -- the paper's headline measure."""
        if not self.n:
            return 0.0
        return exact_sum(self.awake_rounds) / self.n

    @property
    def worst_case_awake_complexity(self) -> int:
        """Max awake rounds over all nodes."""
        if not self.n:
            return 0
        return int(self.awake_rounds.max())

    @property
    def worst_case_round_complexity(self) -> int:
        """Wall-clock rounds until the last node finished."""
        return self.rounds

    @property
    def node_averaged_round_complexity(self) -> float:
        """Mean wall-clock finish round over all nodes."""
        if not self.n:
            return 0.0
        finish = np.where(self.finish_round >= 0, self.finish_round, self.rounds)
        return exact_sum(finish) / self.n

    # ------------------------------------------------------------------
    # Message and decision statistics.
    # ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Total messages sent across all nodes."""
        return exact_sum(self.messages_sent)

    @property
    def total_bits(self) -> int:
        """Total payload bits sent across all nodes."""
        return exact_sum(self.bits_sent)

    @property
    def total_awake_rounds(self) -> int:
        """Sum of awake rounds over all nodes (the paper's total cost C)."""
        return exact_sum(self.awake_rounds)

    @property
    def node_averaged_decision_round(self) -> float:
        """Mean wall-clock round at which nodes decided their output."""
        if not self.n:
            return 0.0
        decided = np.where(
            self.decision_round >= 0, self.decision_round, self.rounds
        )
        return exact_sum(decided) / self.n

    @property
    def all_finished(self) -> bool:
        """Whether every node terminated."""
        return bool((self.finish_round >= 0).all()) if self.n else True

    # ------------------------------------------------------------------
    # MIS accessors.
    # ------------------------------------------------------------------

    @property
    def mis_mask(self) -> np.ndarray:
        """Boolean MIS-membership column, aligned with ``node_ids``."""
        return self.in_mis == 1

    @property
    def mis(self) -> FrozenSet[Any]:
        """The set of nodes whose output is ``True`` (MIS membership)."""
        ids = self.node_ids
        return frozenset(ids[i] for i in np.flatnonzero(self.in_mis == 1))

    @property
    def undecided(self) -> FrozenSet[Any]:
        """Nodes whose output is ``None`` (Monte Carlo failures)."""
        ids = self.node_ids
        return frozenset(ids[i] for i in np.flatnonzero(self.in_mis == -1))

    def is_valid_mis(self) -> bool:
        """Whether the output is a maximal independent set.

        Vectorized (two O(m) passes over the edge arrays) when the graph's
        :class:`~repro.sim.fast_engine.GraphArrays` rode along; falls back
        to the dict-based oracle otherwise.  Same verdict either way.
        Raises if no graph representation is attached at all -- an empty
        adjacency would validate any output vacuously.
        """
        if self.arrays is not None:
            from ..graphs.validation import is_maximal_independent_set_arrays

            return is_maximal_independent_set_arrays(self.arrays, self.mis_mask)
        if self._adjacency is None:
            raise ValueError(
                "cannot validate: this ArrayRunResult carries neither a "
                "GraphArrays view nor an adjacency mapping"
            )
        from ..graphs.validation import is_maximal_independent_set

        return is_maximal_independent_set(self.adjacency, self.mis)

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline measures, handy for tables and CSVs."""
        return {
            "n": self.n,
            "node_averaged_awake": self.node_averaged_awake_complexity,
            "worst_case_awake": self.worst_case_awake_complexity,
            "node_averaged_rounds": self.node_averaged_round_complexity,
            "worst_case_rounds": self.worst_case_round_complexity,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
        }

    # ------------------------------------------------------------------
    # The lazy legacy view.
    # ------------------------------------------------------------------

    def to_run_result(self) -> RunResult:
        """The legacy :class:`RunResult` view (materialized once, cached)."""
        if self._legacy is None:
            from .fast_engine import assemble_result

            self._legacy = assemble_result(
                n=self.n,
                rounds=self.rounds,
                seed=self.seed,
                adjacency=self.adjacency,
                node_ids=self.node_ids,
                awake=self.awake_rounds.tolist(),
                sleep=self.sleep_rounds.tolist(),
                tx=self.tx_rounds.tolist(),
                rx=self.rx_rounds.tolist(),
                idle=self.idle_rounds.tolist(),
                msent=self.messages_sent.tolist(),
                bits=self.bits_sent.tolist(),
                mrecv=self.messages_received.tolist(),
                decision_round=self.decision_round.tolist(),
                awake_at_decision=self.awake_at_decision.tolist(),
                finish=(
                    None if f < 0 else f for f in self.finish_round.tolist()
                ),
                in_mis=self.in_mis.tolist(),
            )
        return self._legacy

    @property
    def adjacency(self) -> Dict[Any, tuple]:
        """The graph as an adjacency mapping (lazy when arrays-backed)."""
        if self._adjacency is not None:
            return self._adjacency
        if self.arrays is not None:
            return self.arrays.adjacency
        return {}

    @property
    def node_stats(self) -> Dict[Any, Any]:
        """Per-node :class:`NodeStats`, materialized on first access."""
        return self.to_run_result().node_stats

    @property
    def outputs(self) -> Dict[Any, Optional[bool]]:
        """Per-node protocol outputs, materialized on first access."""
        return self.to_run_result().outputs

    @property
    def protocols(self) -> Dict[Any, Any]:
        """Protocol instances, when the trial actually produced them.

        Engine-built array results have none (the vectorized engines keep
        no per-call instrumentation); results converted from a
        generator-engine run delegate to the cached legacy view, so the
        conversion stays lossless.
        """
        if self._legacy is not None:
            return self._legacy.protocols
        return {}

    # ------------------------------------------------------------------

    @classmethod
    def from_run_result(
        cls, result: RunResult, dtype: str = "default"
    ) -> "ArrayRunResult":
        """Pack a legacy :class:`RunResult` into the array view.

        Used when ``result="arrays"`` is requested but the trial ran on
        the generator engine.  The original result is kept as the cached
        legacy view, so converting is lossless and round-trip free.
        ``dtype="narrow"`` applies the same exact column narrowing the
        vectorized engines apply (:func:`narrow_column`).
        """
        narrow = resolve_dtype_kind(dtype) == "narrow"
        node_ids = sorted(result.node_stats)
        cols: Dict[str, list] = {name: [] for name in _STAT_COLUMNS}
        in_mis = []
        for v in node_ids:
            s = result.node_stats[v]
            cols["awake_rounds"].append(s.awake_rounds)
            cols["sleep_rounds"].append(s.sleep_rounds)
            cols["tx_rounds"].append(s.tx_rounds)
            cols["rx_rounds"].append(s.rx_rounds)
            cols["idle_rounds"].append(s.idle_rounds)
            cols["messages_sent"].append(s.messages_sent)
            cols["bits_sent"].append(s.bits_sent)
            cols["messages_received"].append(s.messages_received)
            cols["decision_round"].append(
                s.decision_round if s.decision_round is not None else -1
            )
            cols["awake_at_decision"].append(
                s.awake_at_decision if s.awake_at_decision is not None else -1
            )
            cols["finish_round"].append(
                s.finish_round if s.finish_round is not None else -1
            )
            out = result.outputs.get(v)
            in_mis.append(-1 if out is None else int(bool(out)))
        return cls(
            n=result.n,
            rounds=result.rounds,
            seed=result.seed,
            node_ids=node_ids,
            in_mis=np.asarray(in_mis, dtype=np.int8),
            arrays=None,
            _adjacency=result.adjacency,
            _legacy=result,
            **{
                name: (
                    narrow_column(np.asarray(col, dtype=np.int64))
                    if narrow
                    else np.asarray(col, dtype=np.int64)
                )
                for name, col in cols.items()
            },
        )


_STAT_COLUMNS = (
    "awake_rounds",
    "sleep_rounds",
    "tx_rounds",
    "rx_rounds",
    "idle_rounds",
    "messages_sent",
    "bits_sent",
    "messages_received",
    "decision_round",
    "awake_at_decision",
    "finish_round",
)

"""Array-backed execution engine for the sleeping MIS algorithms.

The generator engine (:mod:`repro.sim.network`) steps one Python generator
per node and is fully general.  For the paper's two algorithms that
generality is unnecessary: the recursion schedule is *deterministic* --
every participant of a level-``k`` call wakes, exchanges, and sleeps at
rounds computed entirely by :mod:`repro.core.schedule` -- so an execution
can be replayed as a walk over the recursion tree with one numpy pass over
the participant set per communication step.  That is what this module does:

* the participant set of each call is an index array; adjacency is a pair
  of directed-edge arrays (CSR-flavoured), filtered down the tree so a
  sub-call only ever touches edges inside its own ``G[U]``;
* awake/``inMIS``/coin state are per-node int arrays; the base case of
  Algorithm 2 additionally keeps a per-directed-edge ``live`` bit array;
* the wall clock is never stepped at all -- round numbers are computed from
  the schedule formulas, which is the generator engine's fast-forward trick
  taken to its limit.  Algorithm 1's :math:`\\Theta(n^3)` wall-clock
  schedule therefore costs only the awake work.

Equivalence contract
--------------------
For identical ``(graph, seed)`` the engine reproduces the generator
engine's execution **exactly**: the same per-node random streams
(:func:`repro.sim.network.node_rng`, consumed in the same order), hence the
same decisions, MIS, round numbers, and per-node :class:`NodeStats` down to
message, bit, and tx/rx/idle counters.  ``tests/test_engine_equivalence.py``
enforces this over every corner-case graph, both algorithms, several seeds.

What it does *not* do: tracing, fault injection (``loss_rate``), CONGEST
bit-budget enforcement, and per-call :class:`CallRecord` instrumentation
(``RunResult.protocols`` is empty).  Workloads needing those stay on the
generator engine; ``engine="auto"`` in :func:`repro.api.solve_mis` makes
that fallback automatic.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core import schedule
from .errors import MaxRoundsExceededError
from .messages import payload_bits
from .metrics import NodeStats, RunResult
from .network import normalize_graph
from .rng import (
    DEFAULT_STREAM,
    bit_length_u64,
    draw_u64_array,
    node_rng,  # noqa: F401  (re-exported; historical import site)
    node_rng_bulk,
    randbelow,
    stream_key,
    u64_mod_bound,
    u64_to_unit_float,
    validate_stream,
)

#: Protocol keyword arguments the sleeping engine understands.
#: ``record_calls`` is accepted for signature compatibility but ignored: the
#: engine keeps no per-call instrumentation (use the generator engine for
#: recursion trees).
SUPPORTED_PROTOCOL_KWARGS = frozenset(
    {"depth", "coin_bias", "greedy_constant", "record_calls"}
)

#: Protocol keyword arguments of the phased baselines.
PHASED_PROTOCOL_KWARGS = frozenset({"max_phases"})


@dataclass(frozen=True)
class EngineCapability:
    """One row of the vectorized-engine capability registry.

    ``engine`` is the dotted class implementing the algorithm (relative to
    :mod:`repro.sim`), ``protocol_kwargs`` the protocol knobs that engine
    replays exactly, and ``note`` the short description shown in the
    ``docs/performance.md`` support matrix (which ``tests/test_docs.py``
    asserts stays in sync with this registry).
    """

    engine: str
    protocol_kwargs: frozenset
    note: str


#: Capability registry: THE single source of truth for which algorithms
#: have a vectorized engine.  Engine dispatch (:func:`unsupported_reason`,
#: :func:`repro.sim.batch.resolve_engine`), the error messages, and the
#: ``docs/performance.md`` support matrix are all derived from this table,
#: so adding an engine here is what makes ``engine="auto"`` pick it up --
#: and a stale "generator-only" story elsewhere is a test failure, not a
#: silent lie.
ENGINE_CAPABILITIES: Dict[str, EngineCapability] = {
    "sleeping": EngineCapability(
        "fast_engine.VectorizedEngine",
        SUPPORTED_PROTOCOL_KWARGS,
        "recursion-schedule replay; the Θ(n³) wall clock is computed, "
        "never stepped",
    ),
    "fast-sleeping": EngineCapability(
        "fast_engine.VectorizedEngine",
        SUPPORTED_PROTOCOL_KWARGS,
        "greedy base cases over per-edge live bits",
    ),
    "luby": EngineCapability(
        "fast_phased.PhasedVectorizedEngine",
        PHASED_PROTOCOL_KWARGS,
        "phase-lockstep replay, fresh ranks each phase",
    ),
    "greedy": EngineCapability(
        "fast_phased.PhasedVectorizedEngine",
        PHASED_PROTOCOL_KWARGS,
        "phase-lockstep replay, one permanent rank",
    ),
    "ghaffari": EngineCapability(
        "fast_phased.PhasedVectorizedEngine",
        PHASED_PROTOCOL_KWARGS,
        "marking coins vs 2^-exponent, exact integer desire-level updates",
    ),
    "abi": EngineCapability(
        "fast_phased.PhasedVectorizedEngine",
        PHASED_PROTOCOL_KWARGS,
        "degree-weighted marking, conflicts resolved toward (degree, id)",
    ),
}

#: The recursion-schedule algorithms run by :class:`VectorizedEngine`.
SLEEPING_ALGORITHMS = tuple(
    a for a, cap in ENGINE_CAPABILITIES.items()
    if cap.engine == "fast_engine.VectorizedEngine"
)

#: The round-synchronous phase baselines run by
#: :class:`repro.sim.fast_phased.PhasedVectorizedEngine`.
PHASED_ALGORITHMS = tuple(
    a for a, cap in ENGINE_CAPABILITIES.items()
    if cap.engine == "fast_phased.PhasedVectorizedEngine"
)

#: Everything some vectorized engine implements.
SUPPORTED_ALGORITHMS = tuple(ENGINE_CAPABILITIES)

#: Bit cost of the tri-state announcements (``None``/``True``/``False`` all
#: encode to 2 bits under :func:`repro.sim.messages.payload_bits`).
_FLAG_BITS = 2


def assemble_result(
    *,
    n: int,
    rounds: int,
    seed: Optional[int],
    adjacency: Dict[Any, Tuple[Any, ...]],
    node_ids: List[Any],
    awake: List[int],
    sleep: Any,
    tx: List[int],
    rx: List[int],
    idle: List[int],
    msent: List[int],
    bits: List[int],
    mrecv: List[int],
    decision_round: List[int],
    awake_at_decision: List[int],
    finish: Any,
    in_mis: List[int],
) -> RunResult:
    """Build the :class:`RunResult` from per-node stat columns.

    Shared by both vectorized engines.  Columns are plain-int lists
    (callers use ``.tolist()`` -- one C pass) except ``sleep`` and
    ``finish``, which may be any per-node iterable, e.g.
    ``itertools.repeat`` for a constant.  Building the (plain, non-slots)
    dataclasses through ``__dict__`` skips 13-kwarg ``__init__`` calls --
    together with ``.tolist()`` this is the difference between the result
    build being noise and being ~30% of a small-graph run.  A ``-1``
    decision round means undecided (``None`` in :class:`NodeStats`);
    ``in_mis`` uses the engines' tri-state ``-1``/``0``/``1`` encoding.
    """
    node_stats: Dict[Any, NodeStats] = {}
    outputs: Dict[Any, Optional[bool]] = {}
    cols = zip(
        node_ids, awake, sleep, tx, rx, idle, msent, bits, mrecv,
        decision_round, awake_at_decision, finish, in_mis,
    )
    for v, aw, slp, txr, rxr, idl, ms, bt, mr, dr, ad, fin, mis in cols:
        stats = NodeStats.__new__(NodeStats)
        stats.__dict__.update(
            node_id=v,
            awake_rounds=aw,
            sleep_rounds=slp,
            tx_rounds=txr,
            rx_rounds=rxr,
            idle_rounds=idl,
            messages_sent=ms,
            bits_sent=bt,
            messages_received=mr,
            decision_round=dr if dr >= 0 else None,
            awake_at_decision=ad if dr >= 0 else None,
            finish_round=fin,
            awake_at_finish=aw,
        )
        node_stats[v] = stats
        outputs[v] = None if mis == -1 else bool(mis)
    return RunResult(
        n=n,
        rounds=rounds,
        seed=seed,
        node_stats=node_stats,
        outputs=outputs,
        protocols={},
        adjacency=adjacency,
    )


def draw_dense_ranks(
    rngs: Optional[List[Any]],
    key: Optional[int],
    ctr: Optional[np.ndarray],
    U: np.ndarray,
    bound: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One rank draw from ``[0, bound)`` per node of ``U``, on either stream.

    Returns ``(dense, raw_bits)`` aligned with ``U``: ``dense`` are dense
    ranks (value order preserved, so comparisons stay in int64 even when
    raw draws exceed 2**63), ``raw_bits`` is ``max(bit_length, 1)`` of
    each raw value.  The full CONGEST cost of a ``(value, id)`` rank
    payload is ``raw_bits + payload_bits(id) + 10`` (int tag+sign = 2,
    tuple framing = 4 per element).

    v1 (``rngs`` given): one ``randrange`` per node, in ``U`` order --
    the generator engine's stream positions.  v2 (``key``/``ctr`` given):
    whole-array draws at each node's counter, which is then advanced.
    """
    if rngs is not None:
        values = [randbelow(rngs[i], bound) for i in U.tolist()]
        order = {v: j for j, v in enumerate(sorted(set(values)))}
        dense = np.fromiter(
            (order[v] for v in values), dtype=np.int64, count=len(values)
        )
        raw_bits = np.fromiter(
            (max(v.bit_length(), 1) for v in values),
            dtype=np.int64,
            count=len(values),
        )
        return dense, raw_bits
    u64 = draw_u64_array(key, U, ctr[U])
    ctr[U] += 1
    vals = u64_mod_bound(u64, bound)
    _, inverse = np.unique(vals, return_inverse=True)
    return inverse.astype(np.int64), np.maximum(bit_length_u64(vals), 1)


def unsupported_reason(
    algorithm: str,
    *,
    trace: Any = None,
    congest_bit_limit: Optional[int] = None,
    loss_rate: float = 0.0,
    **protocol_kwargs: Any,
) -> Optional[str]:
    """Why this configuration is generator-only, or ``None`` if vectorizable.

    The returned string names the *reason* the vectorized engines cannot
    run the configuration -- either the algorithm has no entry in
    :data:`ENGINE_CAPABILITIES` (the capability registry every MIS
    algorithm currently has a row in) or a generator-only instrumentation
    feature was requested.  ``engine="auto"`` falls back silently; a hard
    ``engine="vectorized"`` request surfaces this reason in its error
    (see :func:`repro.sim.batch.resolve_engine`).  The support matrix in
    ``docs/performance.md`` renders the same registry and is kept in sync
    by ``tests/test_docs.py``.
    """
    capability = ENGINE_CAPABILITIES.get(algorithm)
    if capability is None:
        return (
            f"algorithm {algorithm!r} has no vectorized implementation "
            f"(vectorized: {', '.join(ENGINE_CAPABILITIES)}) and always "
            f"runs on the generator engine, whatever the graph size"
        )
    if trace is not None and getattr(trace, "enabled", False):
        return "tracing (trace=) is generator-engine-only instrumentation"
    if congest_bit_limit is not None:
        return (
            "CONGEST bit-budget enforcement (congest_bit_limit=) is "
            "generator-engine-only"
        )
    if loss_rate:
        return "fault injection (loss_rate=) is generator-engine-only"
    extra = set(protocol_kwargs) - capability.protocol_kwargs
    if extra:
        return (
            f"protocol kwargs {sorted(extra)} have no vectorized path for "
            f"{algorithm!r} (vectorized kwargs: "
            f"{sorted(capability.protocol_kwargs)})"
        )
    return None


def supports(algorithm: str, **constraints: Any) -> bool:
    """Whether a vectorized engine can run this configuration exactly."""
    return unsupported_reason(algorithm, **constraints) is None


class GraphArrays:
    """The seed-independent array view of one graph.

    Building these (normalization, directed-edge arrays, reverse-edge
    permutation) is the engine's fixed cost per graph; the batch runner
    reuses one instance across every seed run on the same graph.

    Two construction paths exist.  ``GraphArrays(graph)`` converts an
    existing ``networkx.Graph`` or adjacency mapping (normalizing it
    first).  :meth:`from_edges` builds the arrays straight from edge-index
    arrays -- the **array-native** path used by
    :mod:`repro.graphs.arrays`, which never materializes a networkx object
    or a Python adjacency dict at all.  For array-native instances the
    ``adjacency`` dict is a *lazy* view: it is only built (and cached) if
    something dict-shaped asks for it (the generator engine, legacy
    ``RunResult.adjacency``, :meth:`to_networkx`).

    Memory audit (the CSR-shaped buffers that bound sweep scale): with
    ``m`` directed edges, the persistent footprint is ``src``/``dst``/
    ``grev`` at 4 bytes each (int32 -- node indices fit comfortably, and
    int32 halves the edge memory that dominates at n = 10^4..10^5) plus
    ``deg`` at 8 bytes per node (kept int64 because it feeds straight into
    the int64 message/bit accumulators).  A gnp(10^5, 10/n) graph is
    m ~ 2x10^6 directed edges ~ 24 MB of edge arrays; per-run engine state
    adds ~13 int64/int8 node arrays and one bool per edge.
    """

    __slots__ = (
        "_adjacency", "_node_ids", "n", "src", "dst", "grev", "deg",
        "_id_bits", "_ids_are_range",
    )

    def __init__(self, graph: Any):
        self._adjacency = normalize_graph(graph)
        self._node_ids: Optional[List[Any]] = sorted(self._adjacency)
        self.n = len(self._node_ids)
        self._ids_are_range = False
        adjacency = self._adjacency
        index = {v: i for i, v in enumerate(self._node_ids)}
        # Directed edge arrays, sorted by (src, dst): each undirected edge
        # appears once per direction.
        self.dst = np.fromiter(
            (index[u] for v in self._node_ids for u in adjacency[v]),
            dtype=np.int32,
        )
        self.deg = np.fromiter(
            (len(adjacency[v]) for v in self._node_ids),
            dtype=np.int64,
            count=self.n,
        )
        self.src = np.repeat(np.arange(self.n, dtype=np.int32), self.deg)
        # Sorting the edges by (dst, src) enumerates exactly the reversed
        # pairs in (src, dst) order, so the permutation IS the reverse-edge
        # index: grev[e] = index of e's reverse.
        self.grev = np.lexsort((self.src, self.dst)).astype(np.int32)
        self._id_bits: Optional[np.ndarray] = None

    @classmethod
    def from_edges(cls, n: int, u: Any, v: Any) -> "GraphArrays":
        """Array-native constructor: ``n`` nodes ``0..n-1`` and undirected
        edges ``(u[i], v[i])`` given as integer arrays.

        Self-loops are dropped and duplicate edges (in either orientation)
        collapse, mirroring :func:`repro.sim.network.normalize_graph` --
        but no Python dict is ever built; the adjacency view stays lazy.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("edge endpoint arrays must have equal length")
        if len(u) and (
            u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n
        ):
            raise ValueError(f"edge endpoints must lie in [0, {n})")
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keep = lo != hi  # drop self-loops
        lo, hi = lo[keep], hi[keep]
        if len(lo):
            key = np.unique(lo * np.int64(n) + hi)  # dedupe + sort
            lo, hi = key // n, key % n
        return cls.from_distinct_pairs(n, lo, hi)

    @classmethod
    def _pair_shell(cls, n: int) -> "GraphArrays":
        """The empty array-native instance the pair builders fill in."""
        self = cls.__new__(cls)
        self._adjacency = None
        self._node_ids = None  # ids are 0..n-1; node_ids serves a range
        self.n = n
        self._ids_are_range = True
        self._id_bits = None
        return self

    @property
    def node_ids(self) -> Any:
        """Node labels in sorted order (column order of every engine).

        Array-native graphs (``_ids_are_range``) never materialize the
        list: their labels are exactly ``0..n-1``, so this serves a
        ``range`` -- same iteration, indexing, and ``len`` behavior, zero
        allocation (a materialized list is ~400 MB at n = 10^7, pinned by
        ``tests/test_engine_memory.py``).  Graphs built from arbitrary
        labels keep the real sorted list.
        """
        if self._node_ids is None:
            return range(self.n)
        return self._node_ids

    @classmethod
    def from_distinct_pairs(cls, n: int, lo: Any, hi: Any) -> "GraphArrays":
        """Trusted array-native constructor: edges as **distinct**
        undirected pairs with ``lo[i] < hi[i]``.

        The fast exit shared by :meth:`from_edges` and the v2 gnp sampler
        (whose strictly increasing flat positions guarantee distinctness
        for free, skipping the dedup sort).  Both callers hand over pairs
        that are already lex-sorted -- ``from_edges`` by ``(lo, hi)``
        (``np.unique`` output), the sampler by ``(hi, lo)`` (ascending
        flat positions) -- and a strictly increasing composite key
        certifies either order in one vectorized compare, so the common
        case takes the **direct O(m) build**: the sorted direction's CSR
        slots are pure prefix-sum arithmetic and only the other direction
        pays an argsort, of ``m`` keys instead of the historical ``2m``
        (see :meth:`_from_sorted_pairs`).  Unsorted input falls back to
        the ``2m``-key argsort build (:meth:`_from_pairs_argsort`).
        Duplicate pairs or ``lo >= hi`` entries violate the contract;
        bounds are still checked.
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        m = len(lo)
        if m and (lo.min() < 0 or hi.max() >= n):
            raise ValueError(f"edge endpoints must lie in [0, {n})")
        if m and not (lo < hi).all():
            raise ValueError("pairs must satisfy lo < hi")
        if not m:
            self = cls._pair_shell(n)
            self.src = np.empty(0, dtype=np.int32)
            self.dst = np.empty(0, dtype=np.int32)
            self.grev = np.empty(0, dtype=np.int32)
            self.deg = np.zeros(n, dtype=np.int64)
            return self
        # A strictly increasing composite key both certifies the lex
        # order and re-verifies pair distinctness for free.
        nn = np.int64(n)
        key = hi * nn + lo
        if m == 1 or bool((key[1:] > key[:-1]).all()):
            return cls._from_sorted_pairs(n, lo, hi, hi_major=True)
        key = lo * nn + hi
        if bool((key[1:] > key[:-1]).all()):
            return cls._from_sorted_pairs(n, lo, hi, hi_major=False)
        return cls._from_pairs_argsort(n, lo, hi)

    @classmethod
    def _from_sorted_pairs(
        cls, n: int, lo: Any, hi: Any, *, hi_major: bool
    ) -> "GraphArrays":
        """Direct O(m) CSR build for lex-sorted distinct pairs.

        Row ``s`` of the (src, dst)-sorted directed edge list is the
        backward block (reverses ``(s, w)`` of pairs ``(w, s)``, ``w``
        ascending) followed by the forward block (pairs ``(s, w)``, ``w``
        ascending).  Whichever direction matches the input's lex order
        needs no sort at all: its within-block rank is ``input position -
        exclusive prefix count of its block's node``, because the groups
        arrive contiguous and in order.  The other direction's ranks come
        from one argsort of the ``m`` opposite-order composite keys
        (unique, so the non-stable default sort is exact).  ``grev`` is
        the cross-link between the two slot arrays -- no extra sort.
        Slot arithmetic runs in int32: ``2m`` already must fit int32 for
        the ``grev`` format, and halving the index temporaries is what
        keeps the 1e7 build in bounded memory.
        """
        m = len(lo)
        self = cls._pair_shell(n)
        degF = np.bincount(lo, minlength=n)  # forward  (lo -> hi) counts
        degB = np.bincount(hi, minlength=n)  # backward (hi -> lo) counts
        deg = degF + degB
        csum = np.cumsum(deg)
        startB = (csum - deg).astype(np.int32)  # row start = backward block
        startF = (csum - degF).astype(np.int32)  # forward block start
        idx = np.arange(m, dtype=np.int32)
        nn = np.int64(n)
        if hi_major:
            cumB = (np.cumsum(degB) - degB).astype(np.int32)
            back = startB[hi] + (idx - cumB[hi])
            order = np.argsort(lo * nn + hi)
            cumF = (np.cumsum(degF) - degF).astype(np.int32)
            lo_s = lo[order]
            fwd = np.empty(m, dtype=np.int32)
            fwd[order] = startF[lo_s] + (idx - cumF[lo_s])
        else:
            cumF = (np.cumsum(degF) - degF).astype(np.int32)
            fwd = startF[lo] + (idx - cumF[lo])
            order = np.argsort(hi * nn + lo)
            cumB = (np.cumsum(degB) - degB).astype(np.int32)
            hi_s = hi[order]
            back = np.empty(m, dtype=np.int32)
            back[order] = startB[hi_s] + (idx - cumB[hi_s])
        # src never needs a scatter: row s holds deg[s] copies of s.
        src = np.repeat(np.arange(n, dtype=np.int32), deg)
        dst = np.empty(2 * m, dtype=np.int32)
        grev = np.empty(2 * m, dtype=np.int32)
        dst[back] = lo
        dst[fwd] = hi
        grev[back] = fwd
        grev[fwd] = back
        self.src, self.dst, self.grev, self.deg = src, dst, grev, deg
        return self

    @classmethod
    def _from_pairs_argsort(cls, n: int, lo: Any, hi: Any) -> "GraphArrays":
        """The order-agnostic fallback: one int64 argsort of all ``2m``
        directed keys.  Kept as the reference build the sorted fast path
        is pinned against, and the path unsorted (but distinct) pairs
        still take.
        """
        m = len(lo)
        self = cls._pair_shell(n)
        nn = np.int64(n)
        keys = np.concatenate([lo * nn + hi, hi * nn + lo])
        order = np.argsort(keys)  # (src, dst) ascending == key ascending
        src_pre = np.empty(2 * m, dtype=np.int32)
        src_pre[:m] = lo
        src_pre[m:] = hi
        dst_pre = np.empty(2 * m, dtype=np.int32)
        dst_pre[:m] = hi
        dst_pre[m:] = lo
        self.src = src_pre[order]
        self.dst = dst_pre[order]
        # Pre-sort slot i's reverse partner is slot i +- m; mapping both
        # through the sort permutation yields grev without another sort.
        pos = np.empty(2 * m, dtype=np.int32)
        pos[order] = np.arange(2 * m, dtype=np.int32)
        partner = np.concatenate([pos[m:], pos[:m]])
        self.grev = partner[order]
        self.deg = np.bincount(self.src, minlength=n).astype(np.int64)
        return self

    @classmethod
    def from_distinct_pair_chunks(
        cls, n: int, chunks: Any
    ) -> "GraphArrays":
        """Streaming CSR build: two passes over re-iterable pair chunks.

        ``chunks`` is a zero-argument callable returning a fresh iterable
        of ``(lo, hi)`` array pairs whose concatenation is the edge list
        in strictly increasing ``(hi, lo)``-lex order (the v2 gnp
        sampler's native order) -- distinct pairs with ``lo < hi``, both
        validated chunk by chunk.  Pass 1 only accumulates the per-node
        degree counts; pass 2 re-pulls the chunks and scatters each
        straight into its final CSR slots, so peak transient memory is
        O(n) node arrays plus a few index temporaries per *chunk*, never
        per graph -- the whole point for dense families at 1e7 (see
        ``docs/performance.md``).  The factory must replay the identical
        chunk stream twice (counter-based samplers re-sample for free);
        a length mismatch between passes is detected and raised.

        Slot math: the backward (``hi``-major) direction's rank is pure
        arithmetic off the global input position, exactly as in
        :meth:`_from_sorted_pairs`; the forward direction's global rank
        splits into a per-node carry (``occF``, pairs seen in earlier
        chunks) plus a within-chunk cumcount from one bounded argsort.
        The int64 pass-1 accumulators are freed before pass 2, so the
        pass-2 peak is the persistent CSR plus four int32 node arrays --
        at 10^8 nodes that is ~2.4 GB less than keeping them alive (see
        ``docs/performance.md``, "Scaling to 10^8").
        """
        from ..profiling import phase, profiled_pulls

        degF = np.zeros(n, dtype=np.int64)
        degB = np.zeros(n, dtype=np.int64)
        m = 0
        last_key = np.int64(-1)
        nn = np.int64(n)
        first_pass = chunks()
        with phase("csr_build"):
            for lo, hi in profiled_pulls("sample", first_pass):
                lo = np.asarray(lo, dtype=np.int64)
                hi = np.asarray(hi, dtype=np.int64)
                c = len(lo)
                if not c:
                    continue
                if lo.min() < 0 or hi.max() >= n:
                    raise ValueError(
                        f"edge endpoints must lie in [0, {n})"
                    )
                if not (lo < hi).all():
                    raise ValueError("pairs must satisfy lo < hi")
                key = hi * nn + lo
                if key[0] <= last_key or not bool(
                    (key[1:] > key[:-1]).all()
                ):
                    raise ValueError(
                        "chunked pairs must arrive distinct and in "
                        "strictly increasing (hi, lo)-lex order"
                    )
                last_key = key[-1]
                degF += np.bincount(lo, minlength=n)
                degB += np.bincount(hi, minlength=n)
                m += c
        self = cls._pair_shell(n)
        deg = degF + degB
        if not m:
            self.src = np.empty(0, dtype=np.int32)
            self.dst = np.empty(0, dtype=np.int32)
            self.grev = np.empty(0, dtype=np.int32)
            self.deg = deg
            return self
        second_pass = chunks()
        if second_pass is first_pass and iter(second_pass) is second_pass:
            # A re-iterable (a list of chunks) may legitimately be the
            # same object twice; the same *iterator* object cannot -- it
            # was consumed by pass 1 and pass 2 would silently see an
            # empty stream.
            raise ValueError(
                "chunk factory is not replayable: it returned the same "
                "(already consumed) iterator for both passes -- the "
                "factory must build a fresh chunk iterable per call "
                "(e.g. `lambda: make_chunks(...)`), not close over one "
                "generator object"
            )
        with phase("csr_build"):
            csum = np.cumsum(deg)
            startB = (csum - deg).astype(np.int32)
            startF = (csum - degF).astype(np.int32)
            cumB = (np.cumsum(degB) - degB).astype(np.int32)
            # Pass 2 needs only the int32 start/carry arrays built above:
            # drop the int64 accumulators (3 x 8n bytes) before the big
            # CSR allocations so they never coexist with the edge arrays.
            del csum, degF, degB
            occF = np.zeros(n, dtype=np.int32)  # forward pairs in prior chunks
            # src never needs a scatter: row s holds deg[s] copies of s.
            src = np.repeat(np.arange(n, dtype=np.int32), deg)
            dst = np.empty(2 * m, dtype=np.int32)
            grev = np.empty(2 * m, dtype=np.int32)
        base = 0
        with phase("csr_build"):
            for lo, hi in profiled_pulls("sample", second_pass):
                lo = np.asarray(lo, dtype=np.int64)
                hi = np.asarray(hi, dtype=np.int64)
                c = len(lo)
                if not c:
                    continue
                idx = np.arange(c, dtype=np.int32)
                back = startB[hi] + (base + idx - cumB[hi])
                # Within a chunk, equal-lo pairs are already hi-ascending
                # (a consequence of the global (hi, lo) order), so a
                # (lo, hi) sort groups them without reordering inside
                # groups.
                order = np.argsort(lo * nn + hi)
                lo_s = lo[order]
                run = np.empty(c, dtype=bool)
                run[0] = True
                np.not_equal(lo_s[1:], lo_s[:-1], out=run[1:])
                starts = np.flatnonzero(run).astype(np.int32)
                lens = np.diff(np.append(starts, np.int32(c)))
                fwd = np.empty(c, dtype=np.int32)
                fwd[order] = (
                    startF[lo_s] + occF[lo_s]
                    + (idx - np.repeat(starts, lens))
                )
                occF[lo_s[starts]] += lens  # run heads are unique node ids
                dst[back] = lo
                dst[fwd] = hi
                grev[back] = fwd
                grev[fwd] = back
                base += c
        if not base:
            # An empty second pass is the signature of a factory that
            # hands back fresh-but-drained generators (it consumed its
            # underlying source on pass 1): name the fix instead of
            # reporting a bare count mismatch.
            raise ValueError(
                f"chunk factory is not replayable: pass 2 yielded no "
                f"pairs where pass 1 saw {m} -- the factory consumed its "
                f"underlying stream on the first pass; it must re-produce "
                f"the identical chunks on every call (counter-based "
                f"samplers re-sample for free)"
            )
        if base != m:
            raise ValueError(
                f"chunk factory is not replayable: pass 1 saw {m} pairs, "
                f"pass 2 saw {base}"
            )
        self.src, self.dst, self.grev, self.deg = src, dst, grev, deg
        return self

    @property
    def adjacency(self) -> Dict[Any, Tuple[Any, ...]]:
        """The ``{node: sorted neighbor tuple}`` view, built lazily.

        Instances constructed from a graph object carry the normalized
        dict from day one; array-native instances (:meth:`from_edges`)
        reconstruct it from the CSR arrays on first access and cache it.
        """
        if self._adjacency is None:
            from .network import NormalizedAdjacency

            ids = self.node_ids
            dst = self.dst.tolist()
            bounds = np.concatenate(
                ([0], np.cumsum(self.deg))
            ).tolist()
            # dst is sorted within each src block, so tuples come out in
            # normalize_graph's sorted order.
            self._adjacency = NormalizedAdjacency(
                (v, tuple(ids[j] for j in dst[bounds[i]:bounds[i + 1]]))
                for i, v in enumerate(ids)
            )
        return self._adjacency

    def __getstate__(self) -> Dict[str, Any]:
        # Never pickle the adjacency dict: receivers rebuild the identical
        # view lazily from the CSR arrays if (and only if) they need it,
        # so the wire carries int32 edge arrays instead of a dict that can
        # dwarf them at n = 10^4..10^5 (the batch runner ships GraphArrays
        # to pool workers).
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_adjacency"
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot in self.__slots__:
            setattr(self, slot, state.get(slot))

    def to_networkx(self) -> Any:
        """Escape hatch: the same graph as a ``networkx.Graph``.

        Node labels are ``node_ids``; the edge set round-trips exactly
        (``GraphArrays(ga.to_networkx())`` rebuilds identical arrays).
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.node_ids)
        ids = self.node_ids
        half = self.src < self.dst  # one orientation per undirected edge
        graph.add_edges_from(
            (ids[a], ids[b])
            for a, b in zip(self.src[half].tolist(), self.dst[half].tolist())
        )
        return graph

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return len(self.src)

    @property
    def id_bits(self) -> np.ndarray:
        """Per-node ``payload_bits(node_id)``, computed once per graph.

        The phased baselines and the batched-RNG base case account message
        bits for ``(rank, id)`` payloads; hashing the id part out to an
        array once keeps that accounting vectorized.  Array-native graphs
        (whose ids are always ``0..n-1``) take a pure-numpy path --
        ``payload_bits(int) = max(bit_length, 1) + 2`` -- instead of a
        10^6-call Python loop.
        """
        if self._id_bits is None:
            if self._ids_are_range:
                idx = np.arange(self.n, dtype=np.uint64)
                self._id_bits = np.maximum(bit_length_u64(idx), 1) + 2
            else:
                self._id_bits = np.fromiter(
                    (payload_bits(v) for v in self.node_ids),
                    dtype=np.int64,
                    count=self.n,
                )
        return self._id_bits

    def nbytes(self) -> int:
        """Bytes held by the persistent edge/degree buffers."""
        return (
            self.src.nbytes + self.dst.nbytes + self.grev.nbytes
            + self.deg.nbytes
        )


class EngineScratch:
    """A pool of reusable numpy buffers for running many trials.

    Engines allocate a dozen node-sized state arrays plus an edge-sized
    mask per run; over a 10^4-trial sweep that allocation/zeroing churn is
    measurable.  A scratch passed to consecutive engine constructions hands
    the same buffers back (re-filled) whenever name, shape, and dtype
    match.  Not thread-safe, and an engine borrowing from a scratch must
    finish its run before the next engine reuses the pool -- exactly the
    batch runner's sequential per-graph loop.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(
        self,
        name: str,
        shape: Union[int, Tuple[int, ...]],
        dtype: Any,
        fill: Any = None,
    ) -> np.ndarray:
        """A buffer of this name/shape/dtype, re-filled if ``fill`` given."""
        if isinstance(shape, int):
            shape = (shape,)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        if fill is not None:
            buf.fill(fill)
        return buf


class VectorizedEngine:
    """Vectorized replay of Algorithm 1 / Algorithm 2 over one graph.

    Parameters mirror :class:`repro.sim.network.Simulator` plus the
    protocol knobs of the two sleeping algorithms.  ``graph`` may be a
    prebuilt :class:`GraphArrays` to amortize graph preparation across
    many seeds.
    """

    def __init__(
        self,
        graph: Any,
        algorithm: str = "fast-sleeping",
        *,
        seed: Optional[int] = 0,
        depth: Optional[int] = None,
        coin_bias: float = 0.5,
        greedy_constant: int = schedule.DEFAULT_GREEDY_CONSTANT,
        record_calls: bool = True,  # accepted, ignored (no CallRecords)
        max_rounds: Optional[int] = None,
        rng: str = DEFAULT_STREAM,
        scratch: Optional[EngineScratch] = None,
        result: str = "legacy",
        dtype: str = "default",
    ):
        from .array_result import resolve_dtype_kind, resolve_result_kind

        if algorithm not in SLEEPING_ALGORITHMS:
            raise ValueError(
                f"vectorized sleeping engine supports {SLEEPING_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
        if not 0.0 < coin_bias < 1.0:
            raise ValueError(f"coin bias must be in (0, 1), got {coin_bias}")
        validate_stream(rng)
        self.algorithm = algorithm
        self.seed = seed
        self.coin_bias = coin_bias
        self.max_rounds = max_rounds
        self.rng_stream = rng
        self.result_kind = resolve_result_kind(result, "vectorized")
        self.dtype_kind = resolve_dtype_kind(dtype)

        arrays = graph if isinstance(graph, GraphArrays) else GraphArrays(graph)
        self.arrays = arrays
        self.node_ids = arrays.node_ids
        self.n = arrays.n
        self.src = arrays.src
        self.dst = arrays.dst
        self.grev = arrays.grev
        self.deg = arrays.deg
        self._no_isolated = bool(self.deg.all()) if self.n else True

        n = self.n
        if algorithm == "sleeping":
            self.base_rounds = 0
            self.depth = (
                depth if depth is not None
                else (schedule.recursion_depth(n) if n else 0)
            )
            self._duration = schedule.call_duration
        else:
            self.base_rounds = (
                schedule.greedy_rounds(n, greedy_constant) if n else 0
            )
            self.depth = (
                depth if depth is not None
                else (schedule.truncated_depth(n) if n else 0)
            )
            self._duration = lambda k: schedule.fast_call_duration(
                k, self.base_rounds
            )

        # Per-node randomness, consumed in the generator engine's order:
        # ``depth`` coin flips up front, then one rank draw per
        # greedy-base-case entry (Algorithm 2 only).  Under the v1 stream
        # that means one random.Random per node, and all coins really are
        # drawn eagerly (later rank draws sit after them in each node's
        # stream).  Under the v2 batched stream a coin is a pure function
        # of ``(key, node, level)``, so no matrix is materialized at all:
        # ``_coin_heads`` draws each call's coins on demand -- identical
        # values, without the n x depth draw (~0.5 GB and several seconds
        # of construction at n = 10^6, where depth = 60).
        depth = self.depth
        scratch = scratch if scratch is not None else EngineScratch()
        self._scratch = scratch
        if rng == "pernode":
            self._rngs: Optional[List[Any]] = node_rng_bulk(
                seed, self.node_ids
            )
            self._key = None
            self._ctr = None
            if n and depth:
                # One flat C pass (row-major: node i's coins are
                # consecutive, matching each stream's draw order) instead
                # of n Python lists plus an np.array conversion.
                self.coins: Optional[np.ndarray] = np.fromiter(
                    (
                        r.random() < coin_bias
                        for r in self._rngs
                        for _ in range(depth)
                    ),
                    dtype=np.int8,
                    count=n * depth,
                ).reshape(n, depth)
            else:
                self.coins = np.zeros((n, 1), dtype=np.int8)
        else:
            self._rngs = None
            self._key = stream_key(seed)
            self._ctr = scratch.take("rng_ctr", n, np.int64, fill=depth)
            self.coins = None  # drawn lazily per call by _coin_heads
        self._rank_bound = n**6 + 1

        # Per-node state and statistics (the NodeStats fields, as arrays),
        # borrowed from the scratch pool so batch runs recycle them.
        self.in_mis = scratch.take("in_mis", n, np.int8, fill=-1)
        self.awake = scratch.take("awake", n, np.int64, fill=0)
        # Round *labels* grow like T(K) = 3(2^K - 1), which leaves int64
        # range once K = ceil(3 log2 n) passes 62 (n beyond ~1.3x10^6):
        # there the round-valued columns (sleep spans, decision rounds)
        # switch to float64 -- approximate at the far tail of the clock,
        # while every *count* column (awake, tx, messages, bits) stays
        # exact int64.  The node-averaged awake complexity -- the paper's
        # claim -- is therefore exact at every n; only the astronomically
        # large round labels round.  Below that depth nothing changes:
        # int64 exactness is what the cross-engine equivalence suite pins.
        round_dtype: Any = (
            np.int64
            if self._duration(self.depth) <= np.iinfo(np.int64).max
            else np.float64
        )
        self.sleep = scratch.take("sleep", n, round_dtype, fill=0)
        self.tx = scratch.take("tx", n, np.int64, fill=0)
        self.rx = scratch.take("rx", n, np.int64, fill=0)
        self.idle = scratch.take("idle", n, np.int64, fill=0)
        self.msent = scratch.take("msent", n, np.int64, fill=0)
        self.bits = scratch.take("bits", n, np.int64, fill=0)
        self.mrecv = scratch.take("mrecv", n, np.int64, fill=0)
        self.decision_round = scratch.take(
            "decision_round", n, round_dtype, fill=-1
        )
        self.awake_at_decision = scratch.take(
            "awake_at_decision", n, np.int64, fill=-1
        )
        self.base_truncated = scratch.take("base_truncated", n, bool, fill=False)
        # Set-use-clear masks shared by every call of the recursion (saves
        # two O(n) zero-fills per call; see _subedges and Parts 4/5).
        self._sub_mask = scratch.take("sub_mask", n, bool, fill=False)
        self._nbr_mask = scratch.take("nbr_mask", n, bool, fill=False)
        # Per-directed-edge live bits for the greedy base cases; each base
        # call touches only its own in-call edge subset, so one zeroed
        # buffer per run serves every call (set at entry, cleared at exit).
        self._live_edges = scratch.take("live_edges", arrays.m, bool, fill=False)
        # Per-edge broadcast participation, accumulated by _broadcast and
        # flattened into ``mrecv`` once at result build.  Replacing the
        # historical per-call ``bincount(minlength=n)`` + O(n) ``mrecv``
        # add with an O(in-call edges) counter bump is what makes a
        # deep-recursion broadcast cost the call's size, not the graph's.
        self._edge_rounds = scratch.take(
            "edge_rounds", arrays.m, np.int64, fill=0
        )
        # Global-to-local node index map for the greedy base cases
        # (set-before-use only: each base call writes its own participants
        # before reading, so stale entries are never observed).
        self._local_index = scratch.take("local_index", n, np.int32)

    # ------------------------------------------------------------------

    @property
    def adjacency(self) -> Dict[Any, Tuple[Any, ...]]:
        """The adjacency dict view (lazy for array-native graphs)."""
        return self.arrays.adjacency

    def run(self) -> RunResult:
        """Replay the full execution and return the generator-equal result.

        The recursion is attributed to the ``engine`` profiling phase and
        the result assembly to ``result_build`` (self-time: the nested
        build span pauses the engine span) -- see :mod:`repro.profiling`.
        """
        from ..profiling import phase

        with phase("engine"):
            if self.n == 0:
                return self._build_result(0)
            total_rounds = self._duration(self.depth)
            if self.max_rounds is not None and total_rounds > self.max_rounds:
                raise MaxRoundsExceededError(self.max_rounds, self.n)

            everyone = np.arange(self.n, dtype=np.int64)
            all_edges = np.arange(len(self.src), dtype=np.int64)
            self._recurse(everyone, all_edges, self.depth, 0)
            return self._build_result(total_rounds)

    # ------------------------------------------------------------------
    # The recursion (SleepingMISRecursive, Parts 2-6).
    # ------------------------------------------------------------------

    def _recurse(self, U: np.ndarray, E: np.ndarray, k: int, r: int) -> None:
        """One call over participant indices ``U`` starting at round ``r``.

        ``E`` holds the indices of the directed edges with *both* endpoints
        in ``U`` -- exactly the message deliveries of this call's rounds.
        """
        if k == 0:
            if self.algorithm == "sleeping":
                self._decide(U, True, r)
            else:
                self._greedy_base(U, E, r)
            return

        if len(U) == 1:
            self._singleton_call(int(U[0]), k, r)
            return

        d_sub = self._duration(k - 1)
        se, de = self.src[E], self.dst[E]

        # Part 2 -- first isolated node detection.  A node is isolated in
        # G[U] exactly when no in-call edge points at it; the shared mask
        # (set-use-clear) keeps this O(|U| + |E|) instead of counting
        # deliveries into an O(n) array.
        self._broadcast(U, E, de, r)
        has_nbr = self._nbr_mask
        has_nbr[de] = True
        iso = U[~has_nbr[U]]
        has_nbr[de] = False
        if len(iso):
            self._decide(iso, True, r + 1)

        # Part 3 -- left recursion; everyone else sleeps through it.
        left = (self.in_mis[U] == -1) & self._coin_heads(U, k)
        L = U[left]
        if d_sub > 0:
            self.sleep[U[~left]] += d_sub
        if len(L):
            self._recurse(L, self._subedges(L, E, se, de), k - 1, r + 1)

        # Part 4 -- synchronization and elimination.  The neighbor-flag
        # masks borrow one shared buffer (set, read, clear by the same
        # indices) instead of zeroing a fresh O(n) array per call.
        r1 = r + 1 + d_sub
        self._broadcast(U, E, de, r1)
        has_mis_nbr = self._nbr_mask
        mis_heads = de[self.in_mis[se] == 1]
        has_mis_nbr[mis_heads] = True
        elim = U[(self.in_mis[U] == -1) & has_mis_nbr[U]]
        has_mis_nbr[mis_heads] = False
        if len(elim):
            self._decide(elim, False, r1 + 1)

        # Part 5 -- second isolated node detection.
        r2 = r1 + 1
        self._broadcast(U, E, de, r2)
        has_undecided_or_mis_nbr = self._nbr_mask
        loud_heads = de[self.in_mis[se] != 0]
        has_undecided_or_mis_nbr[loud_heads] = True
        join = U[(self.in_mis[U] == -1) & ~has_undecided_or_mis_nbr[U]]
        has_undecided_or_mis_nbr[loud_heads] = False
        if len(join):
            self._decide(join, True, r2 + 1)

        # Part 6 -- right recursion; everyone else sleeps through it.
        right = self.in_mis[U] == -1
        R = U[right]
        if d_sub > 0:
            self.sleep[U[~right]] += d_sub
        if len(R):
            self._recurse(R, self._subedges(R, E, se, de), k - 1, r2 + 1)

    def _singleton_call(self, u: int, k: int, r: int) -> None:
        """Closed form for a call whose participant set is one node.

        With nobody else awake the node hears nothing in Part 2, decides
        ``isolated`` immediately, then (already decided) sleeps through
        both sub-calls and broadcasts its announcements alone in Parts 4
        and 5 -- three awake rounds total, no recursion.  Near the leaves
        most calls are singletons, so bypassing the array machinery here
        is a real constant-factor win.
        """
        assert self.in_mis[u] == -1
        deg = int(self.deg[u])
        self.awake[u] += 3
        if deg > 0:
            self.tx[u] += 3
            self.msent[u] += 3 * deg
            self.bits[u] += 3 * _FLAG_BITS * deg
        else:
            self.idle[u] += 3
        d_sub = self._duration(k - 1)
        if d_sub > 0:
            self.sleep[u] += 2 * d_sub
        self.in_mis[u] = 1
        self.decision_round[u] = r + 1
        self.awake_at_decision[u] = self.awake[u] - 2  # after Part 2 only

    def _coin_heads(self, U: np.ndarray, k: int) -> np.ndarray:
        """The level-``k`` coins of participants ``U`` (True = recurse left).

        v1 reads the eagerly drawn per-node coin matrix; v2 computes the
        same pure function of ``(key, node, level)`` on demand -- only the
        nodes that actually reach a level-``k`` call ever cost a draw.
        """
        if self.coins is not None:
            return self.coins[U, k - 1] == 1
        u = draw_u64_array(self._key, U, np.int64(k - 1))
        return u64_to_unit_float(u) < self.coin_bias

    def _subedges(
        self, S: np.ndarray, E: np.ndarray, se: np.ndarray, de: np.ndarray
    ) -> np.ndarray:
        """Edges of ``E`` (endpoints ``se``/``de``) inside sub-set ``S``."""
        inS = self._sub_mask
        inS[S] = True
        both = inS[se]
        both &= inS[de]  # in place: one |E|-sized temporary, not two
        sub = E[both]
        inS[S] = False
        return sub

    def _broadcast(
        self, U: np.ndarray, E: np.ndarray, de: np.ndarray, r: int
    ) -> None:
        """One awake round in which every node of ``U`` sends a 2-bit flag
        to *all* its graph neighbors (presence or ``inMIS`` announcement).

        ``E``/``de`` are the in-call edges and their receiver endpoints
        (deliveries only happen between awake nodes).  Received-message
        accounting is *deferred*: each in-call edge bumps its
        ``_edge_rounds`` counter, and ``_build_result`` flattens the
        counters into ``mrecv`` with one weighted bincount -- so a
        broadcast costs O(|U| + |E|), never O(n).  Classification matches
        the generator engine: senders with at least one port are tx
        rounds; port-less nodes are awake-and-silent, hence idle.
        """
        deg = self.deg[U]
        self.awake[U] += 1
        if self._no_isolated:
            self.tx[U] += 1
        else:
            self.tx[U[deg > 0]] += 1
            self.idle[U[deg == 0]] += 1
        self.msent[U] += deg
        self.bits[U] += _FLAG_BITS * deg
        self._edge_rounds[E] += 1

    def _decide(self, nodes: np.ndarray, value: bool, clock: int) -> None:
        """Fix ``inMIS`` for ``nodes`` at wall-clock ``clock``, exactly once."""
        assert (self.in_mis[nodes] == -1).all(), "re-deciding a node"
        self.in_mis[nodes] = 1 if value else 0
        self.decision_round[nodes] = clock
        self.awake_at_decision[nodes] = self.awake[nodes]

    # ------------------------------------------------------------------
    # Algorithm 2's greedy base case, in a fixed window of W rounds.
    # ------------------------------------------------------------------

    def _greedy_base(self, U: np.ndarray, E: np.ndarray, r: int) -> None:
        """The base case, computed in the call's **local index space**.

        Every per-node array here has length ``|U|`` (slot ``i`` is global
        node ``U[i]``), edge endpoints are mapped through the shared
        ``_local_index`` scatter buffer, and received-message counts
        accumulate locally until one ``mrecv[U] +=`` at exit.  Deep in the
        recursion most base calls are tiny, so the historical full-``n``
        masks and ``bincount(minlength=n)`` passes made every phase cost
        the graph's size; compaction makes them cost the call's size.
        Global state (``in_mis``, stats, the ``live`` edge bits) is
        updated through ``U[...]`` fancy indexing -- same values, same
        order, bit-for-bit the generator engine's execution.
        """
        W = self.base_rounds

        if len(U) == 1:
            # Lone participant: discovery hears nothing, the rank is still
            # drawn (stream alignment!), and the loop head immediately
            # decides isolated-among-survivors.
            u = int(U[0])
            deg = int(self.deg[u])
            self.awake[u] += 1
            if deg > 0:
                self.tx[u] += 1
                self.msent[u] += deg
                self.bits[u] += _FLAG_BITS * deg
            else:
                self.idle[u] += 1
            if self._rngs is not None:
                randbelow(self._rngs[u], self._rank_bound)
            else:
                self._ctr[u] += 1
            assert self.in_mis[u] == -1
            self.in_mis[u] = 1
            self.decision_round[u] = r + 1
            self.awake_at_decision[u] = self.awake[u]
            if W > 1:
                self.sleep[u] += W - 1
            return

        nu = len(U)
        es_g, ed_g, erev = self.src[E], self.dst[E], self.grev[E]
        local = self._local_index
        local[U] = np.arange(nu, dtype=np.int32)
        es, ed = local[es_g], local[ed_g]

        # Neighbor discovery inside G[U]: live sets start as the in-call
        # neighborhoods, kept as per-directed-edge bits over E (borrowing
        # the run-level buffer; cleared again at the loop's exit).
        self._broadcast(U, E, ed_g, r)
        live_cnt = np.bincount(ed, minlength=nu)
        live = self._live_edges
        live[E] = True
        mrecv = np.zeros(nu, dtype=np.int64)

        # Ranks: one draw per participant, same stream position as the
        # generator engine (see draw_dense_ranks for the stream and
        # payload-bit contract).  ``gid`` carries the global indices for
        # the (rank, id) tie-break.
        rank, raw_bits = draw_dense_ranks(
            self._rngs, self._key, self._ctr, U, self._rank_bound
        )
        rank_bits = raw_bits + self.arrays.id_bits[U] + 10
        gid = U

        inloop = np.ones(nu, dtype=bool)
        undecided = np.ones(nu, dtype=bool)  # local mirror of in_mis == -1

        p = 0
        while True:
            used = 1 + 3 * p

            # Loop head: isolated-among-survivors nodes join; then decided
            # nodes and everyone out of window leave the loop.
            iso = inloop & undecided & (live_cnt == 0)
            if iso.any():
                self._decide(U[iso], True, r + used)
                undecided &= ~iso
            leaving = inloop & (~undecided | (used + 3 > W))
            if leaving.any():
                truncated = leaving & undecided
                if truncated.any():
                    self.base_truncated[U[truncated]] = True
                if W - used > 0:
                    self.sleep[U[leaving]] += W - used
                inloop &= ~leaving
            if not inloop.any():
                live[E] = False  # hand the edge buffer back clean
                self.mrecv[U] += mrecv
                return

            # Round A -- rank exchange over the live sets.
            rA = r + used
            act = U[inloop]
            self.awake[act] += 1
            self.tx[act] += 1  # every in-loop node has a nonempty live set
            self.msent[act] += live_cnt[inloop]
            self.bits[act] += rank_bits[inloop] * live_cnt[inloop]
            delivered = inloop[es] & live[E] & inloop[ed]
            mrecv += np.bincount(ed[delivered], minlength=nu)
            # rank_keys: senders that are also in the receiver's live set.
            keyed = delivered & live[erev]
            key_cnt = np.bincount(ed[keyed], minlength=nu)
            best_rank = np.full(nu, -1, dtype=np.int64)
            np.maximum.at(best_rank, ed[keyed], rank[es[keyed]])
            top = keyed & (rank[es] == best_rank[ed])
            best_id = np.full(nu, -1, dtype=np.int64)
            np.maximum.at(best_id, ed[top], es_g[top])
            joined = (
                inloop
                & (key_cnt == live_cnt)
                & ((rank > best_rank) | ((rank == best_rank) & (gid > best_id)))
            )
            jact = U[joined]
            if len(jact):
                self._decide(jact, True, rA + 1)
                undecided &= ~joined

            # Round B -- JOIN announcements; live neighbors are eliminated.
            rB = rA + 1
            self.awake[act] += 1
            self.tx[jact] += 1
            self.msent[jact] += live_cnt[joined]
            self.bits[jact] += _FLAG_BITS * live_cnt[joined]
            delivered = joined[es] & live[E] & inloop[ed]
            got_join = np.bincount(ed[delivered], minlength=nu)
            mrecv += got_join
            silent = inloop & ~joined
            self.rx[U[silent & (got_join > 0)]] += 1
            self.idle[U[silent & (got_join == 0)]] += 1
            hit = np.zeros(nu, dtype=bool)
            hit[ed[delivered & live[erev]]] = True
            elim = inloop & undecided & hit
            eact = U[elim]
            if len(eact):
                self._decide(eact, False, rB + 1)
                undecided &= ~elim
            if len(jact):
                if W - (used + 2) > 0:
                    self.sleep[jact] += W - (used + 2)
                inloop &= ~joined

            # Round C -- OUT announcements from the newly eliminated;
            # survivors prune their live sets.
            self.awake[U[inloop]] += 1
            self.tx[eact] += 1
            self.msent[eact] += live_cnt[elim]
            self.bits[eact] += _FLAG_BITS * live_cnt[elim]
            delivered = elim[es] & live[E] & inloop[ed]
            got_out = np.bincount(ed[delivered], minlength=nu)
            mrecv += got_out
            survivor = inloop & ~elim
            self.rx[U[survivor & (got_out > 0)]] += 1
            self.idle[U[survivor & (got_out == 0)]] += 1
            live[erev[delivered & survivor[ed]]] = False
            if len(eact):
                if W - (used + 3) > 0:
                    self.sleep[eact] += W - (used + 3)
                inloop &= ~elim
            live_cnt = np.bincount(es[live[E]], minlength=nu)
            p += 1

    # ------------------------------------------------------------------

    def _build_result(self, rounds: int) -> RunResult:
        # Every node of the sleeping algorithms finishes at the schedule's
        # final round, hence the constant ``finish`` column.  The arrays
        # result copies the stat columns out of the (scratch-recycled)
        # engine state -- a handful of C passes instead of the 10^5
        # NodeStats dataclasses of the legacy view.
        #
        # First flatten the deferred per-edge broadcast counters into the
        # received-message column: edge e delivered one message to dst[e]
        # per broadcast round it participated in.  float64 weights are
        # exact here (per-node totals stay far below 2^53).
        from ..profiling import phase

        with phase("result_build"):
            if self.arrays.m:
                self.mrecv += np.bincount(
                    self.dst, weights=self._edge_rounds, minlength=self.n
                ).astype(np.int64)
            if self.result_kind == "arrays":
                from .array_result import ArrayRunResult, result_column

                n = self.n
                narrow = self.dtype_kind == "narrow"
                if rounds <= np.iinfo(np.int64).max:
                    finish_dtype: Any = (
                        np.int32
                        if narrow and rounds <= np.iinfo(np.int32).max
                        else np.int64
                    )
                else:
                    finish_dtype = np.float64

                def col(column: np.ndarray) -> np.ndarray:
                    return result_column(column, narrow=narrow)

                return ArrayRunResult(
                    n=n,
                    rounds=rounds,
                    seed=self.seed,
                    node_ids=self.node_ids,
                    in_mis=self.in_mis.copy(),
                    awake_rounds=col(self.awake),
                    sleep_rounds=col(self.sleep),
                    tx_rounds=col(self.tx),
                    rx_rounds=col(self.rx),
                    idle_rounds=col(self.idle),
                    messages_sent=col(self.msent),
                    bits_sent=col(self.bits),
                    messages_received=col(self.mrecv),
                    decision_round=col(self.decision_round),
                    awake_at_decision=col(self.awake_at_decision),
                    finish_round=np.full(n, rounds, dtype=finish_dtype),
                    arrays=self.arrays,
                )
            if self.n == 0:
                return RunResult(
                    n=0, rounds=0, seed=self.seed, node_stats={}, outputs={},
                    protocols={}, adjacency=self.adjacency,
                )
            return assemble_result(
                n=self.n,
                rounds=rounds,
                seed=self.seed,
                adjacency=self.adjacency,
                node_ids=self.node_ids,
                awake=self.awake.tolist(),
                sleep=self.sleep.tolist(),
                tx=self.tx.tolist(),
                rx=self.rx.tolist(),
                idle=self.idle.tolist(),
                msent=self.msent.tolist(),
                bits=self.bits.tolist(),
                mrecv=self.mrecv.tolist(),
                decision_round=self.decision_round.tolist(),
                awake_at_decision=self.awake_at_decision.tolist(),
                finish=repeat(rounds),
                in_mis=self.in_mis.tolist(),
            )


def simulate_vectorized(
    graph: Any, algorithm: str = "fast-sleeping", **kwargs: Any
) -> RunResult:
    """One-shot convenience wrapper around :class:`VectorizedEngine`."""
    return VectorizedEngine(graph, algorithm, **kwargs).run()

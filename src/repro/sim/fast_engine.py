"""Array-backed execution engine for the sleeping MIS algorithms.

The generator engine (:mod:`repro.sim.network`) steps one Python generator
per node and is fully general.  For the paper's two algorithms that
generality is unnecessary: the recursion schedule is *deterministic* --
every participant of a level-``k`` call wakes, exchanges, and sleeps at
rounds computed entirely by :mod:`repro.core.schedule` -- so an execution
can be replayed as a walk over the recursion tree with one numpy pass over
the participant set per communication step.  That is what this module does:

* the participant set of each call is an index array; adjacency is a pair
  of directed-edge arrays (CSR-flavoured), filtered down the tree so a
  sub-call only ever touches edges inside its own ``G[U]``;
* awake/``inMIS``/coin state are per-node int arrays; the base case of
  Algorithm 2 additionally keeps a per-directed-edge ``live`` bit array;
* the wall clock is never stepped at all -- round numbers are computed from
  the schedule formulas, which is the generator engine's fast-forward trick
  taken to its limit.  Algorithm 1's :math:`\\Theta(n^3)` wall-clock
  schedule therefore costs only the awake work.

Equivalence contract
--------------------
For identical ``(graph, seed)`` the engine reproduces the generator
engine's execution **exactly**: the same per-node random streams
(:func:`repro.sim.network.node_rng`, consumed in the same order), hence the
same decisions, MIS, round numbers, and per-node :class:`NodeStats` down to
message, bit, and tx/rx/idle counters.  ``tests/test_engine_equivalence.py``
enforces this over every corner-case graph, both algorithms, several seeds.

What it does *not* do: tracing, fault injection (``loss_rate``), CONGEST
bit-budget enforcement, and per-call :class:`CallRecord` instrumentation
(``RunResult.protocols`` is empty).  Workloads needing those stay on the
generator engine; ``engine="auto"`` in :func:`repro.api.solve_mis` makes
that fallback automatic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core import schedule
from .errors import MaxRoundsExceededError
from .messages import payload_bits
from .metrics import NodeStats, RunResult
from .network import node_rng, normalize_graph

#: Algorithms this engine implements.
SUPPORTED_ALGORITHMS = ("sleeping", "fast-sleeping")

#: Protocol keyword arguments the engine understands.  ``record_calls`` is
#: accepted for signature compatibility but ignored: the engine keeps no
#: per-call instrumentation (use the generator engine for recursion trees).
SUPPORTED_PROTOCOL_KWARGS = frozenset(
    {"depth", "coin_bias", "greedy_constant", "record_calls"}
)

#: Bit cost of the tri-state announcements (``None``/``True``/``False`` all
#: encode to 2 bits under :func:`repro.sim.messages.payload_bits`).
_FLAG_BITS = 2


def supports(
    algorithm: str,
    *,
    trace: Any = None,
    congest_bit_limit: Optional[int] = None,
    loss_rate: float = 0.0,
    **protocol_kwargs: Any,
) -> bool:
    """Whether the vectorized engine can run this configuration exactly."""
    if algorithm not in SUPPORTED_ALGORITHMS:
        return False
    if trace is not None and getattr(trace, "enabled", False):
        return False
    if congest_bit_limit is not None or loss_rate:
        return False
    return set(protocol_kwargs) <= SUPPORTED_PROTOCOL_KWARGS


class GraphArrays:
    """The seed-independent array view of one graph.

    Building these (normalization, directed-edge arrays, reverse-edge
    permutation) is the engine's fixed cost per graph; the batch runner
    reuses one instance across every seed run on the same graph.
    """

    __slots__ = ("adjacency", "node_ids", "n", "src", "dst", "grev", "deg")

    def __init__(self, graph: Any):
        self.adjacency = normalize_graph(graph)
        self.node_ids: List[Any] = sorted(self.adjacency)
        self.n = len(self.node_ids)
        index = {v: i for i, v in enumerate(self.node_ids)}
        # Directed edge arrays, sorted by (src, dst): each undirected edge
        # appears once per direction.
        self.dst = np.fromiter(
            (index[u] for v in self.node_ids for u in self.adjacency[v]),
            dtype=np.int64,
        )
        self.deg = np.fromiter(
            (len(self.adjacency[v]) for v in self.node_ids),
            dtype=np.int64,
            count=self.n,
        )
        self.src = np.repeat(np.arange(self.n, dtype=np.int64), self.deg)
        # Sorting the edges by (dst, src) enumerates exactly the reversed
        # pairs in (src, dst) order, so the permutation IS the reverse-edge
        # index: grev[e] = index of e's reverse.
        self.grev = np.lexsort((self.src, self.dst))


class VectorizedEngine:
    """Vectorized replay of Algorithm 1 / Algorithm 2 over one graph.

    Parameters mirror :class:`repro.sim.network.Simulator` plus the
    protocol knobs of the two sleeping algorithms.  ``graph`` may be a
    prebuilt :class:`GraphArrays` to amortize graph preparation across
    many seeds.
    """

    def __init__(
        self,
        graph: Any,
        algorithm: str = "fast-sleeping",
        *,
        seed: Optional[int] = 0,
        depth: Optional[int] = None,
        coin_bias: float = 0.5,
        greedy_constant: int = schedule.DEFAULT_GREEDY_CONSTANT,
        record_calls: bool = True,  # accepted, ignored (no CallRecords)
        max_rounds: Optional[int] = None,
    ):
        if algorithm not in SUPPORTED_ALGORITHMS:
            raise ValueError(
                f"vectorized engine supports {SUPPORTED_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
        if not 0.0 < coin_bias < 1.0:
            raise ValueError(f"coin bias must be in (0, 1), got {coin_bias}")
        self.algorithm = algorithm
        self.seed = seed
        self.coin_bias = coin_bias
        self.max_rounds = max_rounds

        arrays = graph if isinstance(graph, GraphArrays) else GraphArrays(graph)
        self.arrays = arrays
        self.adjacency = arrays.adjacency
        self.node_ids = arrays.node_ids
        self.n = arrays.n
        self.src = arrays.src
        self.dst = arrays.dst
        self.grev = arrays.grev
        self.deg = arrays.deg
        self._no_isolated = bool(self.deg.all()) if self.n else True

        n = self.n
        if algorithm == "sleeping":
            self.base_rounds = 0
            self.depth = (
                depth if depth is not None
                else (schedule.recursion_depth(n) if n else 0)
            )
            self._duration = schedule.call_duration
        else:
            self.base_rounds = (
                schedule.greedy_rounds(n, greedy_constant) if n else 0
            )
            self.depth = (
                depth if depth is not None
                else (schedule.truncated_depth(n) if n else 0)
            )
            self._duration = lambda k: schedule.fast_call_duration(
                k, self.base_rounds
            )

        # Per-node random streams, identical to the generator engine's, and
        # consumed in the same order: ``depth`` coin flips up front, then
        # one ``randrange`` per greedy-base-case entry (Algorithm 2 only).
        self._rngs = [node_rng(seed, v) for v in self.node_ids]
        depth = self.depth
        if n and depth:
            self.coins = np.array(
                [
                    [rng.random() < coin_bias for _ in range(depth)]
                    for rng in self._rngs
                ],
                dtype=np.int8,
            )
        else:
            self.coins = np.zeros((n, 1), dtype=np.int8)
        self._rank_bound = n**6 + 1

        # Per-node state and statistics (the NodeStats fields, as arrays).
        self.in_mis = np.full(n, -1, dtype=np.int8)  # -1 unknown / 0 / 1
        self.awake = np.zeros(n, dtype=np.int64)
        self.sleep = np.zeros(n, dtype=np.int64)
        self.tx = np.zeros(n, dtype=np.int64)
        self.rx = np.zeros(n, dtype=np.int64)
        self.idle = np.zeros(n, dtype=np.int64)
        self.msent = np.zeros(n, dtype=np.int64)
        self.bits = np.zeros(n, dtype=np.int64)
        self.mrecv = np.zeros(n, dtype=np.int64)
        self.decision_round = np.full(n, -1, dtype=np.int64)
        self.awake_at_decision = np.full(n, -1, dtype=np.int64)
        self.base_truncated = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Replay the full execution and return the generator-equal result."""
        if self.n == 0:
            return RunResult(
                n=0, rounds=0, seed=self.seed, node_stats={}, outputs={},
                protocols={}, adjacency=self.adjacency,
            )
        total_rounds = self._duration(self.depth)
        if self.max_rounds is not None and total_rounds > self.max_rounds:
            raise MaxRoundsExceededError(self.max_rounds, self.n)

        everyone = np.arange(self.n, dtype=np.int64)
        all_edges = np.arange(len(self.src), dtype=np.int64)
        self._recurse(everyone, all_edges, self.depth, 0)
        return self._build_result(total_rounds)

    # ------------------------------------------------------------------
    # The recursion (SleepingMISRecursive, Parts 2-6).
    # ------------------------------------------------------------------

    def _recurse(self, U: np.ndarray, E: np.ndarray, k: int, r: int) -> None:
        """One call over participant indices ``U`` starting at round ``r``.

        ``E`` holds the indices of the directed edges with *both* endpoints
        in ``U`` -- exactly the message deliveries of this call's rounds.
        """
        if k == 0:
            if self.algorithm == "sleeping":
                self._decide(U, True, r)
            else:
                self._greedy_base(U, E, r)
            return

        if len(U) == 1:
            self._singleton_call(int(U[0]), k, r)
            return

        d_sub = self._duration(k - 1)
        se, de = self.src[E], self.dst[E]

        # Part 2 -- first isolated node detection.
        recv = self._broadcast(U, de, r)
        iso = U[recv[U] == 0]
        if len(iso):
            self._decide(iso, True, r + 1)

        # Part 3 -- left recursion; everyone else sleeps through it.
        left = (self.in_mis[U] == -1) & (self.coins[U, k - 1] == 1)
        L = U[left]
        if d_sub > 0:
            self.sleep[U[~left]] += d_sub
        if len(L):
            self._recurse(L, self._subedges(L, E, se, de), k - 1, r + 1)

        # Part 4 -- synchronization and elimination.
        r1 = r + 1 + d_sub
        self._broadcast(U, de, r1)
        has_mis_nbr = np.zeros(self.n, dtype=bool)
        has_mis_nbr[de[self.in_mis[se] == 1]] = True
        elim = U[(self.in_mis[U] == -1) & has_mis_nbr[U]]
        if len(elim):
            self._decide(elim, False, r1 + 1)

        # Part 5 -- second isolated node detection.
        r2 = r1 + 1
        self._broadcast(U, de, r2)
        has_undecided_or_mis_nbr = np.zeros(self.n, dtype=bool)
        has_undecided_or_mis_nbr[de[self.in_mis[se] != 0]] = True
        join = U[(self.in_mis[U] == -1) & ~has_undecided_or_mis_nbr[U]]
        if len(join):
            self._decide(join, True, r2 + 1)

        # Part 6 -- right recursion; everyone else sleeps through it.
        right = self.in_mis[U] == -1
        R = U[right]
        if d_sub > 0:
            self.sleep[U[~right]] += d_sub
        if len(R):
            self._recurse(R, self._subedges(R, E, se, de), k - 1, r2 + 1)

    def _singleton_call(self, u: int, k: int, r: int) -> None:
        """Closed form for a call whose participant set is one node.

        With nobody else awake the node hears nothing in Part 2, decides
        ``isolated`` immediately, then (already decided) sleeps through
        both sub-calls and broadcasts its announcements alone in Parts 4
        and 5 -- three awake rounds total, no recursion.  Near the leaves
        most calls are singletons, so bypassing the array machinery here
        is a real constant-factor win.
        """
        assert self.in_mis[u] == -1
        deg = int(self.deg[u])
        self.awake[u] += 3
        if deg > 0:
            self.tx[u] += 3
            self.msent[u] += 3 * deg
            self.bits[u] += 3 * _FLAG_BITS * deg
        else:
            self.idle[u] += 3
        d_sub = self._duration(k - 1)
        if d_sub > 0:
            self.sleep[u] += 2 * d_sub
        self.in_mis[u] = 1
        self.decision_round[u] = r + 1
        self.awake_at_decision[u] = self.awake[u] - 2  # after Part 2 only

    def _subedges(
        self, S: np.ndarray, E: np.ndarray, se: np.ndarray, de: np.ndarray
    ) -> np.ndarray:
        """Edges of ``E`` (endpoints ``se``/``de``) inside sub-set ``S``."""
        inS = np.zeros(self.n, dtype=bool)
        inS[S] = True
        return E[inS[se] & inS[de]]

    def _broadcast(self, U: np.ndarray, de: np.ndarray, r: int) -> np.ndarray:
        """One awake round in which every node of ``U`` sends a 2-bit flag
        to *all* its graph neighbors (presence or ``inMIS`` announcement).

        ``de`` are the receiver endpoints of the in-call edges (deliveries
        only happen between awake nodes).  Returns the per-node delivery
        counts.  Classification matches the generator engine: senders with
        at least one port are tx rounds; port-less nodes are
        awake-and-silent, hence idle.
        """
        deg = self.deg[U]
        self.awake[U] += 1
        if self._no_isolated:
            self.tx[U] += 1
        else:
            self.tx[U[deg > 0]] += 1
            self.idle[U[deg == 0]] += 1
        self.msent[U] += deg
        self.bits[U] += _FLAG_BITS * deg
        recv = np.bincount(de, minlength=self.n)
        self.mrecv += recv  # nonzero only on in-call endpoints, i.e. in U
        return recv

    def _decide(self, nodes: np.ndarray, value: bool, clock: int) -> None:
        """Fix ``inMIS`` for ``nodes`` at wall-clock ``clock``, exactly once."""
        assert (self.in_mis[nodes] == -1).all(), "re-deciding a node"
        self.in_mis[nodes] = 1 if value else 0
        self.decision_round[nodes] = clock
        self.awake_at_decision[nodes] = self.awake[nodes]

    # ------------------------------------------------------------------
    # Algorithm 2's greedy base case, in a fixed window of W rounds.
    # ------------------------------------------------------------------

    def _greedy_base(self, U: np.ndarray, E: np.ndarray, r: int) -> None:
        n = self.n
        W = self.base_rounds

        if len(U) == 1:
            # Lone participant: discovery hears nothing, the rank is still
            # drawn (stream alignment!), and the loop head immediately
            # decides isolated-among-survivors.
            u = int(U[0])
            deg = int(self.deg[u])
            self.awake[u] += 1
            if deg > 0:
                self.tx[u] += 1
                self.msent[u] += deg
                self.bits[u] += _FLAG_BITS * deg
            else:
                self.idle[u] += 1
            self._rngs[u].randrange(self._rank_bound)
            assert self.in_mis[u] == -1
            self.in_mis[u] = 1
            self.decision_round[u] = r + 1
            self.awake_at_decision[u] = self.awake[u]
            if W > 1:
                self.sleep[u] += W - 1
            return

        es, ed, erev = self.src[E], self.dst[E], self.grev[E]

        # Neighbor discovery inside G[U]: live sets start as the in-call
        # neighborhoods, kept as per-directed-edge bits over E.
        recv = self._broadcast(U, ed, r)
        live_cnt = np.zeros(n, dtype=np.int64)
        live_cnt[U] = recv[U]
        live = np.zeros(len(self.src), dtype=bool)
        live[E] = True

        # Ranks: one randrange per participant, same stream position as the
        # generator engine.  Comparisons only need the order among
        # participants, so dense ranks keep numpy in int64 even though the
        # raw values can exceed 2**63 on large n.
        raw = {int(i): self._rngs[i].randrange(self._rank_bound) for i in U}
        order = {val: j for j, val in enumerate(sorted(set(raw.values())))}
        rank = np.full(n, -1, dtype=np.int64)
        rank_bits = np.zeros(n, dtype=np.int64)
        for i, val in raw.items():
            rank[i] = order[val]
            rank_bits[i] = payload_bits((val, self.node_ids[i]))

        inloop = np.zeros(n, dtype=bool)
        inloop[U] = True

        p = 0
        while True:
            used = 1 + 3 * p

            # Loop head: isolated-among-survivors nodes join; then decided
            # nodes and everyone out of window leave the loop.
            iso = inloop & (self.in_mis == -1) & (live_cnt == 0)
            if iso.any():
                self._decide(np.flatnonzero(iso), True, r + used)
            leaving = inloop & ((self.in_mis != -1) | (used + 3 > W))
            if leaving.any():
                self.base_truncated |= leaving & (self.in_mis == -1)
                if W - used > 0:
                    self.sleep[leaving] += W - used
                inloop &= ~leaving
            if not inloop.any():
                return

            # Round A -- rank exchange over the live sets.
            rA = r + used
            self.awake[inloop] += 1
            self.tx[inloop] += 1  # every in-loop node has a nonempty live set
            self.msent[inloop] += live_cnt[inloop]
            self.bits[inloop] += rank_bits[inloop] * live_cnt[inloop]
            delivered = inloop[es] & live[E] & inloop[ed]
            self.mrecv += np.bincount(ed[delivered], minlength=n)
            # rank_keys: senders that are also in the receiver's live set.
            keyed = delivered & live[erev]
            key_cnt = np.bincount(ed[keyed], minlength=n)
            best_rank = np.full(n, -1, dtype=np.int64)
            np.maximum.at(best_rank, ed[keyed], rank[es[keyed]])
            top = keyed & (rank[es] == best_rank[ed])
            best_id = np.full(n, -1, dtype=np.int64)
            np.maximum.at(best_id, ed[top], es[top])
            me = np.arange(n)
            joined = (
                inloop
                & (key_cnt == live_cnt)
                & ((rank > best_rank) | ((rank == best_rank) & (me > best_id)))
            )
            if joined.any():
                self._decide(np.flatnonzero(joined), True, rA + 1)

            # Round B -- JOIN announcements; live neighbors are eliminated.
            rB = rA + 1
            self.awake[inloop] += 1
            self.tx[joined] += 1
            self.msent[joined] += live_cnt[joined]
            self.bits[joined] += _FLAG_BITS * live_cnt[joined]
            delivered = joined[es] & live[E] & inloop[ed]
            got_join = np.bincount(ed[delivered], minlength=n)
            self.mrecv += got_join
            silent = inloop & ~joined
            self.rx[silent & (got_join > 0)] += 1
            self.idle[silent & (got_join == 0)] += 1
            hit = np.zeros(n, dtype=bool)
            hit[ed[delivered & live[erev]]] = True
            elim = inloop & (self.in_mis == -1) & hit
            if elim.any():
                self._decide(np.flatnonzero(elim), False, rB + 1)
            if joined.any():
                if W - (used + 2) > 0:
                    self.sleep[joined] += W - (used + 2)
                inloop &= ~joined

            # Round C -- OUT announcements from the newly eliminated;
            # survivors prune their live sets.
            self.awake[inloop] += 1
            self.tx[elim] += 1
            self.msent[elim] += live_cnt[elim]
            self.bits[elim] += _FLAG_BITS * live_cnt[elim]
            delivered = elim[es] & live[E] & inloop[ed]
            got_out = np.bincount(ed[delivered], minlength=n)
            self.mrecv += got_out
            survivor = inloop & ~elim
            self.rx[survivor & (got_out > 0)] += 1
            self.idle[survivor & (got_out == 0)] += 1
            live[erev[delivered & survivor[ed]]] = False
            if elim.any():
                if W - (used + 3) > 0:
                    self.sleep[elim] += W - (used + 3)
                inloop &= ~elim
            live_cnt = np.bincount(es[live[E]], minlength=n)
            p += 1

    # ------------------------------------------------------------------

    def _build_result(self, rounds: int) -> RunResult:
        node_stats: Dict[Any, NodeStats] = {}
        outputs: Dict[Any, Optional[bool]] = {}
        # .tolist() converts to plain Python ints in one C pass; building
        # the (plain, non-slots) dataclasses through __dict__ skips 13-kwarg
        # __init__ calls -- together this is the difference between the
        # result build being noise and being ~30% of a small-graph run.
        cols = zip(
            self.node_ids,
            self.awake.tolist(),
            self.sleep.tolist(),
            self.tx.tolist(),
            self.rx.tolist(),
            self.idle.tolist(),
            self.msent.tolist(),
            self.bits.tolist(),
            self.mrecv.tolist(),
            self.decision_round.tolist(),
            self.awake_at_decision.tolist(),
            self.in_mis.tolist(),
        )
        for v, awake, slp, tx, rx, idle, ms, bits, mr, dr, ad, mis in cols:
            stats = NodeStats.__new__(NodeStats)
            stats.__dict__.update(
                node_id=v,
                awake_rounds=awake,
                sleep_rounds=slp,
                tx_rounds=tx,
                rx_rounds=rx,
                idle_rounds=idle,
                messages_sent=ms,
                bits_sent=bits,
                messages_received=mr,
                decision_round=dr if dr >= 0 else None,
                awake_at_decision=ad if dr >= 0 else None,
                finish_round=rounds,
                awake_at_finish=awake,
            )
            node_stats[v] = stats
            outputs[v] = None if mis == -1 else bool(mis)
        return RunResult(
            n=self.n,
            rounds=rounds,
            seed=self.seed,
            node_stats=node_stats,
            outputs=outputs,
            protocols={},
            adjacency=self.adjacency,
        )


def simulate_vectorized(
    graph: Any, algorithm: str = "fast-sleeping", **kwargs: Any
) -> RunResult:
    """One-shot convenience wrapper around :class:`VectorizedEngine`."""
    return VectorizedEngine(graph, algorithm, **kwargs).run()

"""Versioned per-node random streams shared by both execution engines.

Every node draws from a private, reproducible stream derived from the
master seed.  Two stream formats exist, selected by the ``rng=`` argument
that :class:`repro.sim.network.Simulator`, the vectorized engines, and
every layer above them accept:

``"pernode"`` (v1, the default)
    One :class:`random.Random` per node, string-seeded with
    ``f"repro|{seed}|{node_id}"`` (SHA-512 under the hood -- stable across
    processes and platforms).  This is the original stream format; every
    seed recorded before the ``batched`` stream existed replays under it.
    Constructing the per-node ``Random`` objects is the format's cost:
    one SHA-512 of a fresh string per node, which profiles at ~40% of a
    vectorized run on mid-size graphs.

``"batched"`` (v2)
    A counter-based stream: draw ``j`` of node index ``i`` is
    ``mix64(key + (i << 32) + j)`` where ``key`` is derived from the master
    seed once per run and ``mix64`` is the splitmix64 finalizer.  Because a
    draw is a pure function of ``(key, node index, counter)``, whole arrays
    of randomness come out of a handful of numpy passes -- no per-node
    object construction at all -- and the generator engine consumes the
    *same* values through the :class:`CounterRNG` facade, so cross-engine
    bit-for-bit equivalence holds under v2 exactly as it does under v1.

The two formats are **deliberately incompatible**: the same master seed
produces different executions under v1 and v2.  That break is the point --
a seed-compatible batched stream would have to replay SHA-512 string
seeding and the Mersenne Twister, forfeiting the vectorization win.  The
format is versioned (:data:`STREAM_VERSIONS`) so results can always be
pinned: record ``rng="pernode"`` or ``rng="batched"`` next to the seed.

v2 stream definition (normative)
--------------------------------
* node index = the node's position in the sorted node-id order (both
  engines sort node ids identically);
* ``key = sha256(f"repro|rng-v2|{seed}")[:8]`` as a little-endian uint64;
* draw ``j`` of node ``i``: ``u = mix64((key + (i << 32) + j) mod 2^64)``
  -- distinct ``(i, j)`` give distinct inputs (``i, j < 2^32``), and the
  finalizer is a bijection, so draws never collide for one key;
* ``random()  = (u >> 11) * 2^-53``  (53-bit mantissa, uniform in [0, 1));
* ``randrange(b) = u mod b``  (for ``b >= 2^64`` this is ``u`` itself;
  the modulo bias is < 2^-11 for every bound the algorithms use);
* ``getrandbits(k)`` takes the top ``k`` of one draw (``k <= 64``), or
  little-endian-concatenates ``ceil(k/64)`` draws.
"""

from __future__ import annotations

import gc
import hashlib
import random
from _random import Random as _CoreRandom
from typing import Any, Callable, List, Optional

import numpy as np

#: Known stream formats, in version order.
RNG_STREAMS = ("pernode", "batched")

#: Stream name -> format version number.
STREAM_VERSIONS = {"pernode": 1, "batched": 2}

#: The default stream: v1, the original per-node format.
DEFAULT_STREAM = "pernode"

_MASK64 = (1 << 64) - 1
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB


def validate_stream(rng: str) -> str:
    """Return ``rng`` if it names a known stream format, else raise."""
    if rng not in RNG_STREAMS:
        raise ValueError(f"unknown rng stream {rng!r}; known: {RNG_STREAMS}")
    return rng


# ----------------------------------------------------------------------
# v1 -- "pernode": string-seeded random.Random per node.
# ----------------------------------------------------------------------


def node_rng(seed: Optional[int], node_id: Any) -> random.Random:
    """A private, reproducible v1 random stream for one node.

    Streams are derived from ``(seed, node_id)`` via string seeding, which
    Python hashes with SHA-512 -- stable across processes and platforms.
    """
    return random.Random(f"repro|{seed}|{node_id}")


def node_rng_factory(seed: Optional[int]) -> Callable[[Any], random.Random]:
    """A ``node_id -> Random`` factory with the seed prefix prebuilt.

    ``node_rng`` formats the full ``f"repro|{seed}|{node_id}"`` string per
    node; when one run constructs thousands of streams, re-rendering the
    identical ``repro|{seed}|`` prefix each time is measurable.  The
    returned closure concatenates the prefix instead, producing exactly
    the same seed strings (and therefore identical streams).
    """
    prefix = f"repro|{seed}|"
    return lambda node_id: random.Random(prefix + str(node_id))


#: Upper bound on the node count :func:`node_rng_bulk` will seed.  The v1
#: ``"pernode"`` format is inherently per-node Python work -- one SHA-512
#: and one Mersenne--Twister init each, ~2.5 us/node even bulk-seeded --
#: so seeding alone would cost minutes at 10^8 nodes and the stream list
#: would hold ~10^8 live objects (~25 GB).  Past this threshold the run
#: belongs on the v2 counter-based stream (``rng="batched"``), whose
#: coins are drawn as whole arrays with no per-node state at all; the
#: bound refuses the footgun loudly instead of hanging.  Sized one decade
#: above the largest measured pernode run (10^7, ``BENCH_scale_1e7``) and
#: below the 10^8 decade that motivated it.
PERNODE_SEED_MAX_NODES = 50_000_000


def node_rng_bulk(seed: Optional[int], node_ids: Any) -> List[Any]:
    """Every node's v1 stream at once, bit-for-bit equal to :func:`node_rng`.

    The closure of :func:`node_rng_factory` already amortizes the prefix
    *string*; what it cannot amortize is everything CPython layers on top
    of each ``random.Random(str)`` construction.  Profiled at n = 10^6,
    the SHA-512 itself is a sideshow (~1.5 us of ~27 us per node) -- the
    real costs are (a) every ``random.Random`` instance being tracked by
    the cyclic garbage collector, whose generational scans re-walk the
    whole growing list of streams several times during construction, and
    (b) the Python-level ``Random.__init__``/``seed`` plumbing.

    This constructor removes both while keeping the *values* frozen:

    * it builds ``_random.Random`` (the untracked C base class) instances,
      seeded with the exact integer CPython's string seeding derives --
      ``int.from_bytes(s + sha512(s).digest(), "big")`` for the UTF-8
      seed string ``s`` -- so every stream is bit-for-bit the v1 stream;
    * garbage collection is paused across the construction loop (the
      instances are acyclic; nothing is lost by not scanning them).

    The returned objects expose the C primitives (``random``,
    ``getrandbits``, ``getstate``/``setstate``) but **not** the derived
    Python methods (``randrange``, ``choice``, ...); vectorized-engine
    call sites draw ranks through :func:`randbelow`, which replays
    ``Random.randrange(bound)`` exactly.  Consumers needing the full
    interface (the generator engine) keep :func:`make_node_rng`.
    """
    try:
        count = len(node_ids)
    except TypeError:
        count = None
    if count is not None and count > PERNODE_SEED_MAX_NODES:
        raise ValueError(
            f"rng='pernode' (v1) cannot scale to n={count}: bulk-seeding "
            f"one stream per node is bounded at "
            f"PERNODE_SEED_MAX_NODES={PERNODE_SEED_MAX_NODES} nodes "
            f"(per-node SHA-512 seeding time and ~250 bytes of stream "
            f"state per node) -- run this size on the v2 counter-based "
            f"stream with rng='batched', which draws coins as whole "
            f"arrays with no per-node state"
        )
    prefix = f"repro|{seed}|".encode()
    sha512 = hashlib.sha512
    from_bytes = int.from_bytes
    out: List[Any] = []
    append = out.append
    enabled = gc.isenabled()
    gc.disable()
    try:
        for node_id in node_ids:
            # UTF-8 is concatenative, so prefix + str(node_id).encode()
            # equals f"repro|{seed}|{node_id}".encode(); %d short-cuts the
            # dominant int-id case (bool is an int subclass that must
            # render as "True"/"False", so it takes the str path).
            if type(node_id) is int:
                s = prefix + b"%d" % node_id
            else:
                s = prefix + str(node_id).encode()
            append(_CoreRandom(from_bytes(s + sha512(s).digest(), "big")))
    finally:
        if enabled:
            gc.enable()
    return out


def randbelow(rng: Any, bound: int) -> int:
    """``rng.randrange(bound)`` via ``getrandbits``, for the bulk streams.

    Replays CPython's ``Random._randbelow_with_getrandbits`` exactly --
    draw ``bit_length(bound)`` bits, retry while the draw reaches
    ``bound`` -- so a ``_random.Random`` from :func:`node_rng_bulk`
    consumes the same underlying Mersenne--Twister words, and lands at
    the same stream position, as ``random.Random.randrange`` would.
    """
    if bound <= 0:
        raise ValueError(f"empty range for randbelow({bound})")
    k = bound.bit_length()
    getrandbits = rng.getrandbits
    r = getrandbits(k)
    while r >= bound:
        r = getrandbits(k)
    return r


# ----------------------------------------------------------------------
# v2 -- "batched": counter-based splitmix64 substreams.
# ----------------------------------------------------------------------


def stream_key(seed: Optional[int]) -> int:
    """The run-level uint64 key of the v2 stream for ``seed``.

    Derived by hashing once per *run* (not per node); accepts anything
    ``str()``-able, mirroring v1's handling of arbitrary seeds.
    """
    digest = hashlib.sha256(f"repro|rng-v2|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def graph_stream_key(seed: Optional[int]) -> int:
    """The uint64 key of the v2 *graph-sampling* stream for ``seed``.

    Domain-separated from the node streams (``repro|graph-v2|`` vs
    ``repro|rng-v2|``), so a graph sampled and a protocol run under the
    same master seed never share draws.  Graph-sampling draw ``j`` is
    ``mix64((key + j) mod 2^64)`` -- one flat counter stream, no per-node
    substreams; see :func:`repro.graphs.arrays.gnp_arrays_v2` for the
    normative skip-sampling format built on it.
    """
    digest = hashlib.sha256(f"repro|graph-v2|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def mix64(x: int) -> int:
    """The splitmix64 finalizer on a Python int (mod 2^64)."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX_A) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_B) & _MASK64
    x ^= x >> 31
    return x


def draw_u64(key: int, node_index: int, counter: int) -> int:
    """Scalar v2 draw: uint64 for ``(key, node index, counter)``."""
    return mix64(key + (node_index << 32) + counter)


def mix64_array(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (in place, returned)."""
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_A)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_B)
    x ^= x >> np.uint64(31)
    return x


def draw_u64_array(
    key: int, node_index: np.ndarray, counter: np.ndarray
) -> np.ndarray:
    """Vectorized v2 draws; broadcasts ``node_index`` against ``counter``.

    Computes exactly :func:`draw_u64` element-wise: both sides form
    ``key + (i << 32) + j`` in wrapping uint64 arithmetic and apply the
    same finalizer.  Either operand may be a scalar (e.g. one shared
    counter for a whole index array, the lazy per-level coin draw).
    """
    x = (
        np.uint64(key & _MASK64)
        + (np.asarray(node_index).astype(np.uint64) << np.uint64(32))
        + np.asarray(counter).astype(np.uint64)
    )
    return mix64_array(x)


def u64_to_unit_float(u: np.ndarray) -> np.ndarray:
    """Map uint64 draws to floats in [0, 1) exactly as ``random()`` does."""
    return (u >> np.uint64(11)) * 2.0**-53


def u64_mod_bound(u: np.ndarray, bound: int) -> np.ndarray:
    """``u mod bound`` over a uint64 array, matching Python's ``u % bound``.

    For ``bound >= 2^64`` every uint64 is already below the bound, so the
    modulo is the identity (which is also what Python int arithmetic
    yields).  Returns uint64.
    """
    if bound >= 1 << 64:
        return u
    return u % np.uint64(bound)


def bit_length_u64(u: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length()`` over a uint64 array (no float detours).

    ``floor(log2)`` via float64 misrounds above 2^53; this binary-search
    shift loop is exact for the full 64-bit range.
    """
    v = u.copy()
    length = np.zeros(u.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >= np.uint64(1) << np.uint64(shift)
        length[big] += shift
        v[big] >>= np.uint64(shift)
    length[v > 0] += 1
    return length


class CounterRNG(random.Random):
    """v2 stream facade with the :class:`random.Random` interface.

    The generator engine hands one of these to each node as ``ctx.rng``;
    every ``random()`` / ``randrange()`` / ``getrandbits()`` call consumes
    one (or, for wide ``getrandbits``, several) counter draws.  The
    vectorized engines compute the same draws in arrays, which is what
    keeps the two engines bit-for-bit equivalent under ``rng="batched"``.

    Derived methods inherited from :class:`random.Random` (``shuffle``,
    ``choice``, ``randint``, ...) work through the overridden primitives
    and are deterministic, but only ``random``, single-argument
    ``randrange``, and ``getrandbits`` are part of the pinned v2 format.
    """

    def __init__(self, key: int, node_index: int):
        super().__init__(0)
        self._key = key
        self._node_index = node_index
        self._counter = 0

    def _next_u64(self) -> int:
        u = draw_u64(self._key, self._node_index, self._counter)
        self._counter += 1
        return u

    def random(self) -> float:
        return (self._next_u64() >> 11) * 2.0**-53

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k <= 64:
            return self._next_u64() >> (64 - k) if k else 0
        out = 0
        for word in range((k + 63) // 64):
            out |= self._next_u64() << (64 * word)
        return out & ((1 << k) - 1)

    def randrange(self, start, stop=None, step=1):
        if stop is None and step == 1:
            bound = int(start)
            if bound <= 0:
                raise ValueError(f"empty range for randrange({start})")
            return self._next_u64() % bound
        return super().randrange(start, stop, step)

    def seed(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        # The counter stream has no reseedable state; random.Random.__init__
        # calls this once during construction, which is a no-op beyond the
        # (unused) Mersenne Twister state it initializes.
        super().seed(0)

    def getstate(self):
        return (self._key, self._node_index, self._counter)

    def setstate(self, state) -> None:
        self._key, self._node_index, self._counter = state


def make_node_rng(
    rng: str, seed: Optional[int]
) -> Callable[[Any, int], random.Random]:
    """A ``(node_id, node_index) -> Random`` factory for either stream."""
    validate_stream(rng)
    if rng == "pernode":
        v1 = node_rng_factory(seed)
        return lambda node_id, node_index: v1(node_id)
    key = stream_key(seed)
    return lambda node_id, node_index: CounterRNG(key, node_index)

"""Node runtime: drives one protocol generator through its lifecycle.

A node is in exactly one of three states (the paper's sleeping model,
Section 1.2):

* ``AWAKE``    -- it has a pending :class:`SendAndReceive` for some round;
* ``SLEEPING`` -- it yielded :class:`Sleep` and wakes at ``wake_round``;
* ``TERMINATED`` -- its generator returned.

Timing convention: ``advance(value, next_round)`` resumes the generator and
interprets the next yielded action as applying *from* ``next_round``.  A node
that yields ``Sleep(d)`` after acting in round ``r`` is asleep during rounds
``r+1 .. r+d`` and performs its next action in round ``r+d+1``.  ``Sleep(0)``
consumes no rounds.  ``finish_round`` is the number of rounds that had fully
elapsed when the generator returned.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Generator, Optional

from .actions import Action, SendAndReceive, Sleep
from .context import NodeContext
from .errors import ProtocolError
from .metrics import NodeStats
from .protocol import Protocol
from .trace import Trace


class NodeState(Enum):
    """Lifecycle state of a node runtime."""

    AWAKE = "awake"
    SLEEPING = "sleeping"
    TERMINATED = "terminated"


class NodeRuntime:
    """Owns one node's generator, state, and statistics."""

    __slots__ = (
        "node_id",
        "protocol",
        "ctx",
        "stats",
        "state",
        "pending",
        "wake_round",
        "_gen",
        "_trace",
    )

    def __init__(
        self,
        node_id: int,
        protocol: Protocol,
        ctx: NodeContext,
        stats: NodeStats,
        trace: Trace,
    ):
        self.node_id = node_id
        self.protocol = protocol
        self.ctx = ctx
        self.stats = stats
        self.state = NodeState.AWAKE
        #: the SendAndReceive to execute at the current/next round (if AWAKE).
        self.pending: Optional[SendAndReceive] = None
        #: the round at which the next action executes (if SLEEPING).
        self.wake_round: int = 0
        self._gen: Optional[Generator[Action, Any, None]] = None
        self._trace = trace

    def start(self) -> None:
        """Create the generator and obtain the action for round 0."""
        self._gen = self.protocol.run(self.ctx)
        self.advance(None, 0)

    def advance(self, value: Any, next_round: int) -> None:
        """Resume the generator; its next action applies from ``next_round``.

        Zero-length sleeps are resolved immediately so that a chain of
        ``Sleep(0)`` yields (the recursion's ``T(0) = 0`` base case) costs
        nothing.
        """
        assert self._gen is not None, "advance() before start()"
        while True:
            try:
                action = self._gen.send(value)
            except StopIteration:
                self._terminate(next_round)
                return
            value = None
            if isinstance(action, SendAndReceive):
                self.state = NodeState.AWAKE
                self.pending = action
                return
            if isinstance(action, Sleep):
                duration = action.duration
                if not isinstance(duration, int):
                    raise ProtocolError(
                        f"node {self.node_id} slept for non-integer "
                        f"duration {duration!r}"
                    )
                if duration < 0:
                    raise ProtocolError(
                        f"node {self.node_id} slept for negative "
                        f"duration {duration}"
                    )
                if duration == 0:
                    continue
                self.state = NodeState.SLEEPING
                self.pending = None
                self.wake_round = next_round + duration
                self.stats.sleep_rounds += duration
                self._trace.record(
                    next_round, self.node_id, "sleep", until=self.wake_round
                )
                return
            raise ProtocolError(
                f"node {self.node_id} yielded unknown action {action!r}"
            )

    def _terminate(self, at_round: int) -> None:
        self.state = NodeState.TERMINATED
        self.pending = None
        self._gen = None
        self.stats.finish_round = at_round
        self.stats.awake_at_finish = self.stats.awake_rounds
        self._trace.record(at_round, self.node_id, "terminate")

"""The synchronous sleeping-model network simulator.

This is the paper's model (Section 1.2) made executable:

* time proceeds in synchronous rounds ``0, 1, 2, ...``;
* in each round every **awake** node sends (possibly distinct) messages to
  its neighbors and receives the messages sent to it this round by awake
  neighbors;
* messages addressed to **sleeping** or **terminated** nodes are dropped --
  the algorithms rely on this to detect which neighbors participate in the
  current recursive call;
* a sleeping node pays no cost; the wall clock still advances.

Fast-forwarding: when *no* node is awake (which happens whenever an entire
subtree of the recursion is empty and everyone sleeps through its time
window), the simulator jumps the clock straight to the earliest wake-up.
This makes simulating Algorithm 1's :math:`\\Theta(n^3)` wall-clock schedule
cost only ``O(total awake work + wake events)`` real compute while keeping
every reported round count exact.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from .actions import SendAndReceive
from .context import NodeContext
from .errors import (
    CongestViolationError,
    MaxRoundsExceededError,
    ProtocolError,
)
from .messages import payload_bits
from .metrics import NodeStats, RunResult
from .node import NodeRuntime, NodeState
from .protocol import Protocol
from .rng import (
    DEFAULT_STREAM,
    make_node_rng,
    node_rng,  # noqa: F401 (re-exported)
)
from .trace import NULL_TRACE, Trace


class NormalizedAdjacency(dict):
    """Marker type for :func:`normalize_graph` output.

    A plain ``{node: sorted tuple of neighbors}`` dict, tagged so that
    re-normalizing is a no-op: the batch runner normalizes once and every
    downstream consumer (``Simulator``, ``GraphArrays``) recognizes the
    result instead of re-walking the edge set.
    """

    __slots__ = ()


def normalize_graph(graph: Any) -> Dict[int, Tuple[int, ...]]:
    """Return a ``{node: sorted tuple of neighbors}`` adjacency mapping.

    Accepts a ``networkx.Graph``, any mapping from node to an iterable of
    neighbors, or an object exposing an already-normalized ``adjacency``
    view (a :class:`repro.sim.fast_engine.GraphArrays`, whose lazy dict is
    materialized here exactly when a dict consumer needs it).  Self-loops
    are dropped; the neighbor relation is symmetrized.  Output that is
    already normalized (a :class:`NormalizedAdjacency`) passes through
    unchanged.
    """
    if isinstance(graph, NormalizedAdjacency):
        return graph
    attr = getattr(graph, "adjacency", None)
    if isinstance(attr, NormalizedAdjacency):  # GraphArrays and friends
        return attr
    if hasattr(graph, "adj") and hasattr(graph, "nodes"):
        raw: Mapping[Any, Iterable[Any]] = {
            v: list(graph.adj[v]) for v in graph.nodes()
        }
    elif isinstance(graph, Mapping):
        raw = graph
    else:
        raise TypeError(
            f"graph must be a networkx.Graph or adjacency mapping, "
            f"got {type(graph).__name__}"
        )
    adjacency: Dict[Any, set] = {v: set() for v in raw}
    for v, neighbors in raw.items():
        for u in neighbors:
            if u == v:
                continue
            if u not in adjacency:
                raise ValueError(f"neighbor {u!r} of {v!r} is not a node")
            adjacency[v].add(u)
            adjacency[u].add(v)
    return NormalizedAdjacency(
        (v, tuple(sorted(nbrs))) for v, nbrs in adjacency.items()
    )


class Simulator:
    """Run one protocol instance per node over a graph.

    Parameters
    ----------
    graph:
        ``networkx.Graph`` or adjacency mapping.
    protocol_factory:
        Callable ``node_id -> Protocol`` building each node's protocol.
    seed:
        Master seed; node ``v`` gets an independent stream derived from
        ``(seed, v)``.
    congest_bit_limit:
        If set, every message payload is size-checked against this bit
        budget and :class:`CongestViolationError` is raised on violation.
    trace:
        A :class:`repro.sim.trace.Trace` to record events into (default:
        disabled).
    max_rounds:
        Optional wall-clock bound; exceeding it raises
        :class:`MaxRoundsExceededError`.
    max_iterations:
        Bound on simulator loop iterations (a safety net against protocols
        that listen forever); roughly one iteration per round in which at
        least one node is awake.
    loss_rate:
        Fault-injection knob for robustness testing: each message is
        independently dropped with this probability *in addition to* the
        model's drops to sleeping/terminated nodes.  The paper's model
        assumes reliable delivery (loss_rate = 0, the default); non-zero
        rates let tests demonstrate how the algorithms fail and how the
        validators catch it.
    rng:
        Stream format for the per-node random streams: ``"pernode"`` (v1,
        the default) or ``"batched"`` (v2, the counter-based stream shared
        with the vectorized engines).  See :mod:`repro.sim.rng`; the two
        formats deliberately produce different executions for the same
        seed.
    """

    def __init__(
        self,
        graph: Any,
        protocol_factory: Callable[[Any], Protocol],
        *,
        seed: Optional[int] = 0,
        congest_bit_limit: Optional[int] = None,
        trace: Optional[Trace] = None,
        max_rounds: Optional[int] = None,
        max_iterations: int = 10_000_000,
        loss_rate: float = 0.0,
        rng: str = DEFAULT_STREAM,
    ):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {loss_rate}")
        self.adjacency = normalize_graph(graph)
        self.n = len(self.adjacency)
        self.seed = seed
        self.congest_bit_limit = congest_bit_limit
        self.trace = trace if trace is not None else NULL_TRACE
        self.max_rounds = max_rounds
        self.max_iterations = max_iterations
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(f"repro-loss|{seed}")
        self.messages_lost = 0
        self._round = 0

        self.rng_stream = rng
        make_rng = make_node_rng(rng, seed)

        self.runtimes: Dict[Any, NodeRuntime] = {}
        # Frozen neighbor sets give O(1) membership checks in the send
        # loop (the tuples in ctx.neighbors would make it O(degree)).
        self._neighbor_sets: Dict[Any, frozenset] = {
            v: frozenset(nbrs) for v, nbrs in self.adjacency.items()
        }
        for index, v in enumerate(sorted(self.adjacency)):
            stats = NodeStats(node_id=v)
            ctx = NodeContext(
                node_id=v,
                neighbors=self.adjacency[v],
                n=self.n,
                rng=make_rng(v, index),
                stats=stats,
                trace=self.trace,
                clock=lambda: self._round,
            )
            protocol = protocol_factory(v)
            if not isinstance(protocol, Protocol):
                raise TypeError(
                    f"protocol_factory({v!r}) returned "
                    f"{type(protocol).__name__}, expected a Protocol"
                )
            self.runtimes[v] = NodeRuntime(v, protocol, ctx, stats, self.trace)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute until every node terminates and return the result."""
        awake: set = set()
        sleep_heap: list = []  # (wake_round, node_id)
        live = 0

        for v, rt in self.runtimes.items():
            rt.start()
            live += self._register(rt, awake, sleep_heap)

        iterations = 0
        while live > 0:
            iterations += 1
            if iterations > self.max_iterations:
                raise MaxRoundsExceededError(self._round, live)
            current = self._round
            if self.max_rounds is not None and current > self.max_rounds:
                raise MaxRoundsExceededError(self.max_rounds, live)

            # Wake sleepers scheduled for this round.
            while sleep_heap and sleep_heap[0][0] <= current:
                _, v = heapq.heappop(sleep_heap)
                rt = self.runtimes[v]
                if rt.state is not NodeState.SLEEPING:
                    continue
                live -= 1
                rt.advance(None, current)
                live += self._register(rt, awake, sleep_heap)

            if not awake:
                if not sleep_heap:
                    break  # everyone terminated on wake-up
                # Fast-forward: nobody is awake until the next wake-up.
                self._round = sleep_heap[0][0]
                continue

            inboxes = self._exchange(awake, current)

            # Hand inboxes to the awake nodes; their next action applies
            # from round current + 1.
            self._round = current + 1
            acting = sorted(awake)
            awake.clear()
            for v in acting:
                rt = self.runtimes[v]
                live -= 1
                rt.advance(inboxes.get(v, {}), current + 1)
                live += self._register(rt, awake, sleep_heap)

        return self._build_result()

    # ------------------------------------------------------------------

    @staticmethod
    def _register(rt: NodeRuntime, awake: set, sleep_heap: list) -> int:
        """File the runtime under its new state; return 1 if still live."""
        if rt.state is NodeState.AWAKE:
            awake.add(rt.node_id)
            return 1
        if rt.state is NodeState.SLEEPING:
            heapq.heappush(sleep_heap, (rt.wake_round, rt.node_id))
            return 1
        return 0  # terminated

    def _exchange(self, awake: set, current: int) -> Dict[Any, Dict[Any, Any]]:
        """Collect sends from awake nodes, deliver to awake nodes, account."""
        inboxes: Dict[Any, Dict[Any, Any]] = {}
        trace_on = self.trace.enabled
        limit = self.congest_bit_limit
        senders: set = set()
        for v in awake:
            rt = self.runtimes[v]
            action = rt.pending
            assert isinstance(action, SendAndReceive)
            stats = rt.stats
            stats.awake_rounds += 1
            neighbor_set = self._neighbor_sets[v]
            for u, payload in action.messages.items():
                if u not in neighbor_set:
                    raise ProtocolError(
                        f"node {v!r} sent to {u!r}, which is not a neighbor"
                    )
                bits = payload_bits(payload)
                if limit is not None and bits > limit:
                    raise CongestViolationError(v, u, bits, limit)
                stats.messages_sent += 1
                stats.bits_sent += bits
                senders.add(v)
                if trace_on:
                    self.trace.record(
                        current, v, "send", to=u, payload=payload
                    )
                if self.loss_rate and self._loss_rng.random() < self.loss_rate:
                    self.messages_lost += 1
                    continue
                if u in awake:
                    inboxes.setdefault(u, {})[v] = payload
        # Classify every awake round exactly once, from a single source of
        # truth: tx if the node sent at least one message this round
        # (whether or not it also received, and even if every copy was
        # lost); otherwise rx if anything was delivered to it; otherwise
        # idle.  ``awake_rounds == tx + rx + idle`` always.  The spec is
        # pinned by tests/test_metrics.py::TestExchangeAccounting, which
        # the vectorized engine's counters are checked against.
        for v in awake:
            stats = self.runtimes[v].stats
            inbox = inboxes.get(v)
            if inbox:
                stats.messages_received += len(inbox)
            if v in senders:
                stats.tx_rounds += 1
            elif inbox:
                stats.rx_rounds += 1
            else:
                stats.idle_rounds += 1
        return inboxes

    def _build_result(self) -> RunResult:
        rounds = 0
        for rt in self.runtimes.values():
            if rt.stats.finish_round is not None:
                rounds = max(rounds, rt.stats.finish_round)
        return RunResult(
            n=self.n,
            rounds=rounds,
            seed=self.seed,
            node_stats={v: rt.stats for v, rt in self.runtimes.items()},
            outputs={
                v: rt.protocol.output() for v, rt in self.runtimes.items()
            },
            protocols={v: rt.protocol for v, rt in self.runtimes.items()},
            adjacency=self.adjacency,
        )


def simulate(
    graph: Any,
    protocol_factory: Callable[[Any], Protocol],
    **kwargs: Any,
) -> RunResult:
    """One-shot convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(graph, protocol_factory, **kwargs).run()

"""Per-node statistics and run-level results with the paper's four measures.

The paper (Section 1.2) defines four complexity measures for an execution:

* **node-averaged awake complexity** -- mean over nodes of the number of
  rounds spent in the awake state before finishing;
* **worst-case awake complexity** -- max over nodes of awake rounds;
* **worst-case round complexity** -- wall-clock rounds (sleeping included)
  until the last node finishes;
* **node-averaged round complexity** -- mean over nodes of the wall-clock
  round at which each node finishes.

:class:`RunResult` exposes all four as properties computed from the
:class:`NodeStats` collected by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional


@dataclass
class NodeStats:
    """Counters for a single node across one execution."""

    node_id: int
    #: rounds in which the node was awake (sent/received/listened).
    awake_rounds: int = 0
    #: rounds in which the node was asleep.
    sleep_rounds: int = 0
    #: awake rounds in which the node sent at least one message.
    tx_rounds: int = 0
    #: awake rounds in which the node sent nothing but received something.
    rx_rounds: int = 0
    #: awake rounds in which the node neither sent nor received (idle listen).
    idle_rounds: int = 0
    #: total messages sent.
    messages_sent: int = 0
    #: total payload bits sent.
    bits_sent: int = 0
    #: total messages received (only deliveries while awake).
    messages_received: int = 0
    #: wall-clock round count when the node first reported a decision.
    decision_round: Optional[int] = None
    #: awake rounds spent when the node first reported a decision.
    awake_at_decision: Optional[int] = None
    #: wall-clock round count when the node's generator returned.
    finish_round: Optional[int] = None
    #: awake rounds spent when the node's generator returned.
    awake_at_finish: Optional[int] = None

    @property
    def finished(self) -> bool:
        """Whether the node terminated during the run."""
        return self.finish_round is not None


@dataclass
class RunResult:
    """Everything measured about one simulated execution."""

    n: int
    #: wall-clock rounds elapsed when the last node finished.
    rounds: int
    seed: Optional[int]
    node_stats: Dict[int, NodeStats]
    #: per-node protocol outputs (``protocol.output()``).
    outputs: Dict[int, Any]
    #: the protocol instances, for white-box inspection in analyses/tests.
    protocols: Dict[int, Any] = field(repr=False, default_factory=dict)
    #: the simulated graph (adjacency mapping), for validation convenience.
    adjacency: Dict[int, tuple] = field(repr=False, default_factory=dict)

    # ------------------------------------------------------------------
    # The paper's four complexity measures (Section 1.2).
    # ------------------------------------------------------------------

    @property
    def node_averaged_awake_complexity(self) -> float:
        """Mean awake rounds per node -- the paper's headline measure."""
        if not self.node_stats:
            return 0.0
        return sum(s.awake_rounds for s in self.node_stats.values()) / len(
            self.node_stats
        )

    @property
    def worst_case_awake_complexity(self) -> int:
        """Max awake rounds over all nodes."""
        if not self.node_stats:
            return 0
        return max(s.awake_rounds for s in self.node_stats.values())

    @property
    def worst_case_round_complexity(self) -> int:
        """Wall-clock rounds until the last node finished."""
        return self.rounds

    @property
    def node_averaged_round_complexity(self) -> float:
        """Mean wall-clock finish round over all nodes."""
        if not self.node_stats:
            return 0.0
        total = 0
        for stats in self.node_stats.values():
            finish = stats.finish_round
            total += finish if finish is not None else self.rounds
        return total / len(self.node_stats)

    # ------------------------------------------------------------------
    # Message and decision statistics.
    # ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Total messages sent across all nodes."""
        return sum(s.messages_sent for s in self.node_stats.values())

    @property
    def total_bits(self) -> int:
        """Total payload bits sent across all nodes."""
        return sum(s.bits_sent for s in self.node_stats.values())

    @property
    def total_awake_rounds(self) -> int:
        """Sum of awake rounds over all nodes (the paper's total cost C)."""
        return sum(s.awake_rounds for s in self.node_stats.values())

    @property
    def node_averaged_decision_round(self) -> float:
        """Mean wall-clock round at which nodes decided their output.

        This is Feuilloley's notion of average running time: time until a
        node *commits* its output, even if it participates afterwards.
        Nodes that never reported a decision count as deciding at the end.
        """
        if not self.node_stats:
            return 0.0
        total = 0
        for stats in self.node_stats.values():
            round_ = stats.decision_round
            total += round_ if round_ is not None else self.rounds
        return total / len(self.node_stats)

    @property
    def all_finished(self) -> bool:
        """Whether every node terminated."""
        return all(s.finished for s in self.node_stats.values())

    # ------------------------------------------------------------------
    # MIS convenience accessors.
    # ------------------------------------------------------------------

    @property
    def mis(self) -> FrozenSet[int]:
        """The set of nodes whose output is ``True`` (MIS membership)."""
        return frozenset(v for v, out in self.outputs.items() if out is True)

    @property
    def undecided(self) -> FrozenSet[int]:
        """Nodes whose output is ``None`` (Monte Carlo failures)."""
        return frozenset(v for v, out in self.outputs.items() if out is None)

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline measures, handy for tables and CSVs."""
        return {
            "n": self.n,
            "node_averaged_awake": self.node_averaged_awake_complexity,
            "worst_case_awake": self.worst_case_awake_complexity,
            "node_averaged_rounds": self.node_averaged_round_complexity,
            "worst_case_rounds": self.worst_case_round_complexity,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
        }

"""Actions a protocol generator may yield to the simulator.

A protocol is a Python generator (see :class:`repro.sim.protocol.Protocol`).
Each ``yield`` hands control to the simulator together with an *action*:

* :class:`SendAndReceive` -- the node is **awake** for exactly one round.  It
  sends the given messages and the ``yield`` expression evaluates to the
  inbox for that round: a ``dict`` mapping sender id to payload, containing
  exactly the messages sent to this node this round by *awake* neighbors.
* :class:`Sleep` -- the node is **asleep** for ``duration`` rounds.  It sends
  nothing, receives nothing (messages addressed to it are dropped), and pays
  no awake cost.  ``Sleep(0)`` is a no-op that consumes no rounds, which the
  recursive algorithms rely on for their ``T(0) = 0`` base case.

Returning from the generator **terminates** the node: it takes no further
part in the computation and messages sent to it are dropped, matching the
Barenboim--Tzur termination convention used by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Union


@dataclass(frozen=True)
class SendAndReceive:
    """Be awake for one round; send ``messages`` and receive the round's inbox.

    ``messages`` maps neighbor id to an arbitrary (CONGEST-encodable) payload.
    An empty mapping means the node is awake but silent -- i.e. *idle
    listening*, which the paper's energy motivation treats as nearly as
    expensive as transmitting.
    """

    messages: Dict[int, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Sleep:
    """Sleep for ``duration`` rounds (``duration >= 0``)."""

    duration: int


Action = Union[SendAndReceive, Sleep]

#: Convenience instance: awake and silent for one round.
LISTEN = SendAndReceive({})

"""Vectorized lockstep engine for the phase-based MIS baselines.

All four traditional-model baselines -- Luby, distributed randomized
greedy (:mod:`repro.baselines.luby` / :mod:`repro.baselines.dist_greedy`,
built on :class:`repro.baselines._phased.PhasedMISProtocol`), Ghaffari's
desire-level algorithm (:mod:`repro.baselines.ghaffari`), and
Alon--Babai--Itai (:mod:`repro.baselines.abi`) -- are round-synchronous:
nodes never sleep, every live node is in the same three-round phase at the
same time, and termination is the only way out.  That lockstep structure
is what this engine exploits -- one numpy pass over the edge set per
round, instead of one Python generator step per node:

* phase ``p`` occupies rounds ``3p`` (rank/mark exchange), ``3p + 1``
  (``JOIN`` announcements), ``3p + 2`` (``OUT`` announcements);
* per-node live sets are per-directed-edge bits, pruned exactly when the
  generator engine's ``live -= set(inbox)`` fires;
* priorities are compared through dense ranks (``(value, id)`` tuple order
  == ``rank * n + index`` order, because node index order is node id
  order), so numpy stays in int64 even though raw draws reach ``n^6``.

The four baselines differ only in how a phase's winners are chosen:

* ``luby`` redraws a rank from ``[0, n^4]`` every phase; ``greedy`` draws
  one permanent rank from ``[0, n^6]``.  The highest ``(rank, id)`` in a
  closed neighborhood wins.
* ``ghaffari`` marks with probability ``2^-exponent`` (the desire level);
  a marked node with **no** marked live neighbor wins, and exponents
  update from the exact effective degree of the surviving neighborhood.
* ``abi`` marks with probability ``1 / (2 deg)``; a marked node wins
  unless a marked live neighbor beats it on ``(degree, id)``.

Equivalence contract
--------------------
Identical to the sleeping engine's: for the same ``(graph, seed, rng)``
this engine reproduces the generator engine's execution exactly -- the
same per-node random draws in the same order, hence the same priorities,
decisions, phase counts, round numbers, and per-node :class:`NodeStats`
down to message, bit, and tx/rx/idle counters.
``tests/test_engine_equivalence.py`` enforces this over every corner-case
graph, all four baselines, several seeds, and both RNG stream formats.
Ghaffari's desire-level comparison is computed in *exact integer
arithmetic* on both engines (see :meth:`_update_desire`), so equivalence
does not hinge on floating-point summation order.

Progress guarantee: for ``luby``/``greedy``, in every phase the live node
holding the globally highest ``(priority, id)`` key beats all of its live
neighbors and joins, so at most ``n`` phases run even without
``max_phases``.  The marking baselines (``ghaffari``/``abi``) only make
progress with probability (a phase where nobody marks, or two adjacent
nodes contest a mark, removes nothing), exactly like their generator
counterparts -- bound them with ``max_phases``/``max_rounds`` when an
adversarial input could stall.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, List, Optional

import numpy as np

from .errors import MaxRoundsExceededError
from .fast_engine import (
    _FLAG_BITS,
    EngineScratch,
    GraphArrays,
    PHASED_ALGORITHMS,
    assemble_result,
    draw_dense_ranks,
)
from .metrics import RunResult
from .rng import (
    DEFAULT_STREAM,
    bit_length_u64,
    draw_u64_array,
    node_rng_bulk,
    stream_key,
    u64_to_unit_float,
    validate_stream,
)

#: The phased baselines whose phase draws a marking *coin* (compared
#: against an algorithm-specific probability) instead of a rank.
MARKING_ALGORITHMS = ("ghaffari", "abi")

#: Payload framing bits of a ``(flag, small-int)`` round-A message:
#: bool tag (2) + int tag/sign (2) + tuple framing (4 per element).
_MARK_FRAME_BITS = 12


class PhasedVectorizedEngine:
    """Vectorized replay of a phased baseline over one graph.

    Parameters mirror :func:`repro.api.solve_mis` for the four baselines:
    ``algorithm`` is ``"luby"``, ``"greedy"``, ``"ghaffari"``, or
    ``"abi"``.  ``graph`` may be a prebuilt :class:`GraphArrays`, and
    ``scratch`` an :class:`EngineScratch` shared across trials.
    """

    def __init__(
        self,
        graph: Any,
        algorithm: str = "luby",
        *,
        seed: Optional[int] = 0,
        max_phases: Optional[int] = None,
        max_rounds: Optional[int] = None,
        rng: str = DEFAULT_STREAM,
        scratch: Optional[EngineScratch] = None,
        result: str = "legacy",
        dtype: str = "default",
    ):
        from .array_result import resolve_dtype_kind, resolve_result_kind

        if algorithm not in PHASED_ALGORITHMS:
            raise ValueError(
                f"vectorized phased engine supports {PHASED_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        validate_stream(rng)
        self.algorithm = algorithm
        self.seed = seed
        self.max_phases = max_phases
        self.max_rounds = max_rounds
        self.rng_stream = rng
        self.result_kind = resolve_result_kind(result, "vectorized")
        self.dtype_kind = resolve_dtype_kind(dtype)

        arrays = graph if isinstance(graph, GraphArrays) else GraphArrays(graph)
        self.arrays = arrays
        self.node_ids = arrays.node_ids
        self.n = arrays.n
        n = self.n

        # Luby redraws from [0, n^4] every phase; greedy draws one
        # permanent rank from [0, n^6] (matching the protocol classes).
        # The marking baselines draw unit floats, not ranks.
        self._bound = n**4 + 1 if algorithm == "luby" else n**6 + 1

        scratch = scratch if scratch is not None else EngineScratch()
        self._scratch = scratch
        if rng == "pernode":
            self._rngs: Optional[List[Any]] = node_rng_bulk(
                seed, self.node_ids
            )
            self._key = None
            self._ctr = None
        else:
            self._rngs = None
            self._key = stream_key(seed)
            self._ctr = scratch.take("rng_ctr", n, np.int64, fill=0)

        # Per-node state and statistics (the NodeStats fields, as arrays).
        self.in_mis = scratch.take("in_mis", n, np.int8, fill=-1)
        self.awake = scratch.take("awake", n, np.int64, fill=0)
        self.tx = scratch.take("tx", n, np.int64, fill=0)
        self.rx = scratch.take("rx", n, np.int64, fill=0)
        self.idle = scratch.take("idle", n, np.int64, fill=0)
        self.msent = scratch.take("msent", n, np.int64, fill=0)
        self.bits = scratch.take("bits", n, np.int64, fill=0)
        self.mrecv = scratch.take("mrecv", n, np.int64, fill=0)
        self.decision_round = scratch.take(
            "decision_round", n, np.int64, fill=-1
        )
        self.awake_at_decision = scratch.take(
            "awake_at_decision", n, np.int64, fill=-1
        )
        self.finish = scratch.take("finish", n, np.int64, fill=-1)
        # Priority state: combined keys (dense rank * n + index for the
        # rank baselines, degree * n + index for abi, constant 0 for
        # ghaffari -- any marked neighbor vetoes a ghaffari win, which is
        # exactly "never strictly above another contender's key") and
        # per-message payload bit costs.
        self._combined = scratch.take(
            "combined", n, np.int64,
            fill=0 if algorithm == "ghaffari" else -1,
        )
        self._prio_bits = scratch.take("prio_bits", n, np.int64, fill=0)
        if algorithm in MARKING_ALGORITHMS:
            self._marked = scratch.take("marked", n, bool, fill=False)
        if algorithm == "ghaffari":
            # Desire level p_v = 2 ** -exponent, initially 1/2.
            self._exponent = scratch.take("exponent", n, np.int64, fill=1)
        # Per-edge round-A participation, accumulated by the phase loop
        # and flattened into ``mrecv`` once at result build (the sleeping
        # engine's deferred-mrecv pattern): bumping the frontier edges'
        # counters is O(frontier), where the historical
        # ``bincount(minlength=n)`` + full-length ``mrecv +=`` cost O(n)
        # per phase.
        self._edge_rounds = scratch.take(
            "edge_rounds", arrays.m, np.int64, fill=0
        )
        # Global-to-local map for the phase loop's node frontier
        # (set-before-use only: each phase writes its own frontier
        # before reading, so stale entries are never observed).
        self._local_index = scratch.take("local_index", n, np.int32)

    # ------------------------------------------------------------------

    def _check_clock(self, round_: int, live: int) -> None:
        if self.max_rounds is not None and round_ > self.max_rounds and live:
            raise MaxRoundsExceededError(self.max_rounds, live)

    def _draw_priorities(self, U: np.ndarray) -> None:
        """Fill combined keys + payload bits for the in-loop nodes ``U``.

        One draw per node, at the same stream position the generator
        engine's protocol would use (see
        :func:`repro.sim.fast_engine.draw_dense_ranks`).  ``(value, id)``
        tuple order equals ``rank * n + index`` order because dense ranks
        preserve value order and index order is id order.
        """
        n = self.n
        dense, raw_bits = draw_dense_ranks(
            self._rngs, self._key, self._ctr, U, self._bound
        )
        self._combined[U] = dense * n + U
        self._prio_bits[U] = raw_bits + self.arrays.id_bits[U] + 10

    def _draw_unit_floats(self, U: np.ndarray) -> np.ndarray:
        """One ``random()`` draw per node of ``U``, on either stream.

        v1: one ``Random.random()`` per node, in ``U`` order -- the
        generator engine's stream positions.  v2: a whole-array draw at
        each node's counter (then advanced), mapped to [0, 1) exactly as
        :meth:`repro.sim.rng.CounterRNG.random` does.
        """
        if self._rngs is not None:
            return np.fromiter(
                (self._rngs[i].random() for i in U.tolist()),
                dtype=np.float64,
                count=len(U),
            )
        u = draw_u64_array(self._key, U, self._ctr[U])
        self._ctr[U] += 1
        return u64_to_unit_float(u)

    def _draw_marks(
        self, U: np.ndarray, live_cnt_l: np.ndarray, marked_l: np.ndarray
    ) -> None:
        """Mark the in-loop nodes ``U`` and fill their payload bit costs.

        ``ghaffari`` marks with probability ``2^-exponent`` and sends
        ``(marked, exponent)``; ``abi`` marks with probability
        ``1 / (2 deg)`` (``deg`` = current live degree, always >= 1 here)
        and sends ``(marked, deg)`` -- its combined key ``deg * n + index``
        reproduces the protocol's ``(degree, id)`` tuple order.  Both
        thresholds are single IEEE operations, so the numpy comparison
        reproduces the scalar protocol's coin exactly.  ``live_cnt_l``
        and ``marked_l`` are frontier-local (slot ``i`` is node ``U[i]``):
        the coins land in ``marked_l`` without an O(n) clear.
        """
        n = self.n
        if self.algorithm == "ghaffari":
            payload_val = self._exponent[U]
            # ldexp(1, -e) is the exact IEEE value of python's 2.0**-e
            # (ldexp's exponent operand is int32 on every platform).
            threshold = np.ldexp(
                1.0, -np.minimum(payload_val, 2000).astype(np.int32)
            )
        else:
            payload_val = live_cnt_l
            threshold = 1.0 / (2.0 * payload_val.astype(np.float64))
            self._combined[U] = payload_val * n + U
        self._prio_bits[U] = (
            bit_length_u64(payload_val.astype(np.uint64)) + _MARK_FRAME_BITS
        )
        marked_l[:] = self._draw_unit_floats(U) < threshold

    def _update_desire(
        self,
        U: np.ndarray,
        sf: np.ndarray,
        ld: np.ndarray,
        gf: np.ndarray,
        keyed: np.ndarray,
        live: np.ndarray,
        survivor_l: np.ndarray,
    ) -> None:
        """Ghaffari's end-of-phase desire-level update for the survivors.

        A survivor's *effective degree* is ``sum(2^-e_u)`` over the
        neighbors ``u`` whose round-A report it kept (``keyed``) and that
        are still in its live set after the round-C pruning; the exponent
        rises when that sum reaches 2 and falls (floored at 1) otherwise.
        ``sf``/``ld``/``gf`` are the phase's frontier sender endpoints,
        *local* receiver ids, and reverse-edge ids, with ``keyed`` aligned
        to the frontier and ``survivor_l`` local to ``U`` -- the whole
        update is O(frontier), never O(n).  The comparison is computed in
        exact integer arithmetic -- ``sum(2^(E - e_u)) >= 2^(E+1)`` with
        ``E`` the largest exponent -- matching the protocol's exact-shift
        implementation independent of any summation order.  The int64
        fast path covers every exponent range a real run produces;
        pathological spreads (possible only after ~50+ adversarial
        phases) fall back to per-receiver Python big-int sums, still
        exact.
        """
        nu = len(U)
        high_l = np.zeros(nu, dtype=bool)
        rep = keyed & live[gf] & survivor_l[ld]
        if rep.any():
            exps = self._exponent[sf[rep]]
            cap = int(exps.max())
            spread = cap - int(exps.min())
            if cap + 1 <= 62 and spread + self.n.bit_length() <= 62:
                contrib = np.int64(1) << (np.int64(cap) - exps)
                acc = np.zeros(nu, dtype=np.int64)
                np.add.at(acc, ld[rep], contrib)
                high_l = acc >= np.int64(1) << np.int64(cap + 1)
            else:  # pragma: no cover - adversarial exponent spreads
                grouped: dict = {}
                for v, e in zip(ld[rep].tolist(), exps.tolist()):
                    grouped.setdefault(v, []).append(e)
                for v, group in grouped.items():
                    top = max(group)
                    total = sum(1 << (top - e) for e in group)
                    high_l[v] = total >= 1 << (top + 1)
        self._exponent[U[survivor_l & high_l]] += 1
        lowered = U[survivor_l & ~high_l]
        self._exponent[lowered] = np.maximum(
            1, self._exponent[lowered] - 1
        )

    def _decide(self, idx: np.ndarray, value: bool, clock: int) -> None:
        assert (self.in_mis[idx] == -1).all(), "re-deciding a node"
        self.in_mis[idx] = 1 if value else 0
        self.decision_round[idx] = clock
        self.awake_at_decision[idx] = self.awake[idx]

    # ------------------------------------------------------------------

    @property
    def adjacency(self):
        """The adjacency dict view (lazy for array-native graphs)."""
        return self.arrays.adjacency

    def run(self) -> RunResult:
        """Replay the full execution and return the generator-equal result.

        The phase loop walks a **shrinking edge frontier** and a matching
        **node frontier**: ``EF`` holds the (int32) indices of the live
        edges between in-loop nodes, ``U`` the (ascending) indices of the
        in-loop nodes themselves, so a late phase with a handful of
        survivors touches a handful of edges and nodes, not all ``m`` or
        ``n`` -- the historical full-length masks, ``flatnonzero`` scans,
        and ``bincount(minlength=n)`` passes made every phase cost the
        whole graph.  All per-phase aggregation happens in ``U``'s local
        index space (slot ``i`` is node ``U[i]``, mapped through the
        ``_local_index`` scatch scatter), ``live_cnt`` is maintained
        incrementally as edges are pruned, round-A message receipt is
        deferred to per-edge counters flattened once at result build, and
        the per-phase ``best``/``hit``/``marked`` arrays are frontier-
        sized slices of scratch buffers.  Because ``U`` stays ascending,
        every draw happens at exactly the stream position the historical
        full-scan loop used -- bit-for-bit equivalence is preserved.

        Under active phase profiling the replay is attributed to the
        ``engine`` phase and result assembly to ``result_build``
        (self-time: the nested build span pauses the engine span).
        """
        from ..profiling import phase

        with phase("engine"):
            return self._run()

    def _run(self) -> RunResult:
        n = self.n
        if n == 0:
            return self._build_result()
        src, dst, grev = self.arrays.src, self.arrays.dst, self.arrays.grev
        marking = self.algorithm in MARKING_ALGORITHMS

        inloop = np.ones(n, dtype=bool)
        # live[e] for directed e = (u, v): v is in u's live set (u still
        # sends to v).  Symmetric among live nodes, exactly as the
        # protocol's set-based live sets are.
        live = self._scratch.take("live_edges", self.arrays.m, bool, fill=True)
        live_cnt = self.arrays.deg.copy()
        EF = np.arange(self.arrays.m, dtype=np.int32)
        U = np.arange(n, dtype=np.int64)
        local = self._local_index
        best = self._scratch.take("phase_best", n, np.int64)
        hit = self._scratch.take("phase_hit", n, bool, fill=False)

        p = 0
        while True:
            r0 = 3 * p

            # Loop head: isolated-among-survivors nodes join and terminate;
            # then the phase budget is checked (everyone still in the loop
            # shares the same phase count, so a ``max_phases`` exit empties
            # the loop in one step, matching the per-node protocol).
            iso_l = live_cnt[U] == 0
            if iso_l.any():
                idx = U[iso_l]
                self._decide(idx, True, r0)
                self.finish[idx] = r0
                inloop[idx] = False
                U = U[~iso_l]
            if self.max_phases is not None and p >= self.max_phases:
                self.finish[U] = r0  # gives up undecided
                inloop[U] = False
                U = U[:0]
            if not len(U):
                break
            # The rank baselines retire at least one node per phase (the
            # global top key always wins); the marking baselines make
            # progress only in probability, so their phase count is
            # unbounded, as in the generator engine.
            assert marking or p <= n, "rank baseline failed to make progress"

            nu = len(U)
            live_cnt_l = live_cnt[U]
            if marking:
                marked_l = self._marked[:nu]
                self._draw_marks(U, live_cnt_l, marked_l)
            else:
                if self.algorithm == "luby" or p == 0:
                    self._draw_priorities(U)

            # Compact the frontier: the deliveries of this phase are
            # exactly the live edges between in-loop nodes.  Endpoints
            # are mapped to the local index space once per phase.
            keep = live[EF]
            keep &= inloop[src[EF]]
            keep &= inloop[dst[EF]]
            EF = EF[keep]
            sf, df, gf = src[EF], dst[EF], grev[EF]
            local[U] = np.arange(nu, dtype=np.int32)
            ls, ld = local[sf], local[df]

            # Round A (3p) -- rank/mark exchange over the live sets.  Every
            # in-loop node has a nonempty live set, so all are tx.
            self._check_clock(r0, nu)
            self.awake[U] += 1
            self.tx[U] += 1
            self.msent[U] += live_cnt_l
            self.bits[U] += self._prio_bits[U] * live_cnt_l
            self._edge_rounds[EF] += 1  # mrecv, flattened at result build
            # Keys kept by receivers: senders that are in the receiver's
            # own live set (the protocol's ``if u in live`` filter).
            keyed = live[gf]
            key_cnt = np.bincount(ld[keyed], minlength=nu)
            # Contenders: kept reports that can veto a win -- every kept
            # report for the rank baselines, marked ones for the others.
            contender = keyed & marked_l[ls] if marking else keyed
            best_l = best[:nu]
            best_l.fill(-1)
            np.maximum.at(best_l, ld[contender], self._combined[sf[contender]])
            joined_l = (key_cnt == live_cnt_l) & (self._combined[U] > best_l)
            if marking:
                joined_l &= marked_l
            jidx = U[joined_l]
            if len(jidx):
                self._decide(jidx, True, r0 + 1)

            # Round B (3p + 1) -- JOIN announcements; winners terminate
            # after sending (they are still awake and receiving this round).
            self._check_clock(r0 + 1, nu)
            self.awake[U] += 1
            self.tx[jidx] += 1
            self.msent[jidx] += live_cnt_l[joined_l]
            self.bits[jidx] += _FLAG_BITS * live_cnt_l[joined_l]
            delivered = joined_l[ls]
            got_join = np.bincount(ld[delivered], minlength=nu)
            self.mrecv[U] += got_join
            silent_l = ~joined_l
            self.rx[U[silent_l & (got_join > 0)]] += 1
            self.idle[U[silent_l & (got_join == 0)]] += 1
            hit_l = hit[:nu]
            hitidx = ld[delivered & keyed]
            hit_l[hitidx] = True
            elim_l = silent_l & hit_l
            hit_l[hitidx] = False  # hand the scratch buffer back clean
            eidx = U[elim_l]
            if len(eidx):
                self._decide(eidx, False, r0 + 2)
            self.finish[jidx] = r0 + 2
            inloop[jidx] = False

            # Round C (3p + 2) -- OUT announcements from the newly
            # eliminated; survivors prune their live sets, announcers
            # terminate.  ``silent_l`` is exactly the in-loop set now.
            stillidx = U[silent_l]
            self._check_clock(r0 + 2, len(stillidx))
            self.awake[stillidx] += 1
            self.tx[eidx] += 1
            self.msent[eidx] += live_cnt_l[elim_l]
            self.bits[eidx] += _FLAG_BITS * live_cnt_l[elim_l]
            delivered = elim_l[ls] & silent_l[ld]
            got_out = np.bincount(ld[delivered], minlength=nu)
            self.mrecv[U] += got_out
            survivor_l = silent_l & ~elim_l
            self.rx[U[survivor_l & (got_out > 0)]] += 1
            self.idle[U[survivor_l & (got_out == 0)]] += 1
            # Prune: only reverse edges that were still live decrement the
            # sender-side live counts (live sets prune asymmetrically, so
            # a reverse edge may already be dead).
            recv_live = delivered & survivor_l[ld]
            fresh = recv_live & live[gf]
            live[gf[recv_live]] = False
            live_cnt[U] -= np.bincount(ld[fresh], minlength=nu)
            self.finish[eidx] = r0 + 3
            inloop[eidx] = False
            if self.algorithm == "ghaffari":
                # Survivors re-rate their desire level from the round-A
                # reports of neighbors still live after the pruning.
                self._update_desire(U, sf, ld, gf, keyed, live, survivor_l)
            # The node frontier shrinks in place; masking preserves the
            # ascending order the draw positions depend on.
            U = U[survivor_l]
            p += 1

        live[:] = False  # hand the edge buffer back clean
        return self._build_result()

    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        from ..profiling import phase

        with phase("result_build"):
            return self._build_result_inner()

    def _build_result_inner(self) -> RunResult:
        # Phased nodes never sleep (constant ``sleep`` column) but finish
        # at per-node rounds as they terminate phase by phase.
        if self.arrays.m:
            # Round-A receipt was deferred to per-edge phase counters;
            # flatten them into per-node counts in one weighted pass.
            self.mrecv += np.bincount(
                self.arrays.dst, weights=self._edge_rounds, minlength=self.n
            ).astype(np.int64)
        if self.result_kind == "arrays":
            from .array_result import ArrayRunResult, result_column

            n = self.n
            narrow = self.dtype_kind == "narrow"

            def col(column: np.ndarray) -> np.ndarray:
                return result_column(column, narrow=narrow)

            return ArrayRunResult(
                n=n,
                rounds=int(self.finish.max()) if n else 0,
                seed=self.seed,
                node_ids=self.node_ids,
                in_mis=self.in_mis.copy(),
                awake_rounds=col(self.awake),
                sleep_rounds=np.zeros(
                    n, dtype=np.int32 if narrow else np.int64
                ),
                tx_rounds=col(self.tx),
                rx_rounds=col(self.rx),
                idle_rounds=col(self.idle),
                messages_sent=col(self.msent),
                bits_sent=col(self.bits),
                messages_received=col(self.mrecv),
                decision_round=col(self.decision_round),
                awake_at_decision=col(self.awake_at_decision),
                finish_round=col(self.finish),
                arrays=self.arrays,
            )
        if self.n == 0:
            return RunResult(
                n=0, rounds=0, seed=self.seed, node_stats={}, outputs={},
                protocols={}, adjacency=self.adjacency,
            )
        return assemble_result(
            n=self.n,
            rounds=int(self.finish.max()) if self.n else 0,
            seed=self.seed,
            adjacency=self.adjacency,
            node_ids=self.node_ids,
            awake=self.awake.tolist(),
            sleep=repeat(0),
            tx=self.tx.tolist(),
            rx=self.rx.tolist(),
            idle=self.idle.tolist(),
            msent=self.msent.tolist(),
            bits=self.bits.tolist(),
            mrecv=self.mrecv.tolist(),
            decision_round=self.decision_round.tolist(),
            awake_at_decision=self.awake_at_decision.tolist(),
            finish=self.finish.tolist(),
            in_mis=self.in_mis.tolist(),
        )

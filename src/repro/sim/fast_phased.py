"""Vectorized lockstep engine for the phase-based MIS baselines.

Luby's algorithm and the distributed randomized greedy
(:mod:`repro.baselines.luby` / :mod:`repro.baselines.dist_greedy`, both
built on :class:`repro.baselines._phased.PhasedMISProtocol`) are
round-synchronous: nodes never sleep, every live node is in the same
three-round phase at the same time, and termination is the only way out.
That lockstep structure is what this engine exploits -- one numpy pass over
the edge set per round, instead of one Python generator step per node:

* phase ``p`` occupies rounds ``3p`` (rank exchange), ``3p + 1`` (``JOIN``
  announcements), ``3p + 2`` (``OUT`` announcements);
* per-node live sets are per-directed-edge bits, pruned exactly when the
  generator engine's ``live -= set(inbox)`` fires;
* priorities are compared through dense ranks (``(value, id)`` tuple order
  == ``rank * n + index`` order, because node index order is node id
  order), so numpy stays in int64 even though raw draws reach ``n^6``.

Equivalence contract
--------------------
Identical to the sleeping engine's: for the same ``(graph, seed, rng)``
this engine reproduces the generator engine's execution exactly -- the
same per-node random draws in the same order, hence the same priorities,
decisions, phase counts, round numbers, and per-node :class:`NodeStats`
down to message, bit, and tx/rx/idle counters.
``tests/test_engine_equivalence.py`` enforces this over every corner-case
graph, both baselines, several seeds, and both RNG stream formats.

Progress guarantee: in every phase the live node holding the globally
highest ``(priority, id)`` key beats all of its live neighbors and joins,
so at most ``n`` phases run even without ``max_phases``.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, List, Optional

import numpy as np

from .errors import MaxRoundsExceededError
from .fast_engine import (
    _FLAG_BITS,
    EngineScratch,
    GraphArrays,
    PHASED_ALGORITHMS,
    assemble_result,
    draw_dense_ranks,
)
from .metrics import RunResult
from .rng import (
    DEFAULT_STREAM,
    node_rng_factory,
    stream_key,
    validate_stream,
)


class PhasedVectorizedEngine:
    """Vectorized replay of a phased baseline over one graph.

    Parameters mirror :func:`repro.api.solve_mis` for the two baselines:
    ``algorithm`` is ``"luby"`` (fresh priority every phase, drawn from
    ``[0, n^4]``) or ``"greedy"`` (one permanent rank from ``[0, n^6]``).
    ``graph`` may be a prebuilt :class:`GraphArrays`, and ``scratch`` an
    :class:`EngineScratch` shared across trials.
    """

    def __init__(
        self,
        graph: Any,
        algorithm: str = "luby",
        *,
        seed: Optional[int] = 0,
        max_phases: Optional[int] = None,
        max_rounds: Optional[int] = None,
        rng: str = DEFAULT_STREAM,
        scratch: Optional[EngineScratch] = None,
        result: str = "legacy",
    ):
        from .array_result import resolve_result_kind

        if algorithm not in PHASED_ALGORITHMS:
            raise ValueError(
                f"vectorized phased engine supports {PHASED_ALGORITHMS}, "
                f"got {algorithm!r}"
            )
        if max_phases is not None and max_phases < 1:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        validate_stream(rng)
        self.algorithm = algorithm
        self.seed = seed
        self.max_phases = max_phases
        self.max_rounds = max_rounds
        self.rng_stream = rng
        self.result_kind = resolve_result_kind(result, "vectorized")

        arrays = graph if isinstance(graph, GraphArrays) else GraphArrays(graph)
        self.arrays = arrays
        self.node_ids = arrays.node_ids
        self.n = arrays.n
        n = self.n

        # Luby redraws from [0, n^4] every phase; greedy draws one
        # permanent rank from [0, n^6] (matching the protocol classes).
        self._bound = n**4 + 1 if algorithm == "luby" else n**6 + 1

        scratch = scratch if scratch is not None else EngineScratch()
        self._scratch = scratch
        if rng == "pernode":
            make_rng = node_rng_factory(seed)
            self._rngs: Optional[List[Any]] = [
                make_rng(v) for v in self.node_ids
            ]
            self._key = None
            self._ctr = None
        else:
            self._rngs = None
            self._key = stream_key(seed)
            self._ctr = scratch.take("rng_ctr", n, np.int64, fill=0)

        # Per-node state and statistics (the NodeStats fields, as arrays).
        self.in_mis = scratch.take("in_mis", n, np.int8, fill=-1)
        self.awake = scratch.take("awake", n, np.int64, fill=0)
        self.tx = scratch.take("tx", n, np.int64, fill=0)
        self.rx = scratch.take("rx", n, np.int64, fill=0)
        self.idle = scratch.take("idle", n, np.int64, fill=0)
        self.msent = scratch.take("msent", n, np.int64, fill=0)
        self.bits = scratch.take("bits", n, np.int64, fill=0)
        self.mrecv = scratch.take("mrecv", n, np.int64, fill=0)
        self.decision_round = scratch.take(
            "decision_round", n, np.int64, fill=-1
        )
        self.awake_at_decision = scratch.take(
            "awake_at_decision", n, np.int64, fill=-1
        )
        self.finish = scratch.take("finish", n, np.int64, fill=-1)
        # Priority state: dense-rank combined keys and payload bit costs.
        self._combined = scratch.take("combined", n, np.int64, fill=-1)
        self._prio_bits = scratch.take("prio_bits", n, np.int64, fill=0)

    # ------------------------------------------------------------------

    def _check_clock(self, round_: int, live: int) -> None:
        if self.max_rounds is not None and round_ > self.max_rounds and live:
            raise MaxRoundsExceededError(self.max_rounds, live)

    def _draw_priorities(self, U: np.ndarray) -> None:
        """Fill combined keys + payload bits for the in-loop nodes ``U``.

        One draw per node, at the same stream position the generator
        engine's protocol would use (see
        :func:`repro.sim.fast_engine.draw_dense_ranks`).  ``(value, id)``
        tuple order equals ``rank * n + index`` order because dense ranks
        preserve value order and index order is id order.
        """
        n = self.n
        dense, raw_bits = draw_dense_ranks(
            self._rngs, self._key, self._ctr, U, self._bound
        )
        self._combined[U] = dense * n + U
        self._prio_bits[U] = raw_bits + self.arrays.id_bits[U] + 10

    def _decide(self, idx: np.ndarray, value: bool, clock: int) -> None:
        assert (self.in_mis[idx] == -1).all(), "re-deciding a node"
        self.in_mis[idx] = 1 if value else 0
        self.decision_round[idx] = clock
        self.awake_at_decision[idx] = self.awake[idx]

    # ------------------------------------------------------------------

    @property
    def adjacency(self):
        """The adjacency dict view (lazy for array-native graphs)."""
        return self.arrays.adjacency

    def run(self) -> RunResult:
        """Replay the full execution and return the generator-equal result."""
        n = self.n
        if n == 0:
            return self._build_result()
        src, dst, grev = self.arrays.src, self.arrays.dst, self.arrays.grev

        inloop = np.ones(n, dtype=bool)
        # live[e] for directed e = (u, v): v is in u's live set (u still
        # sends to v).  Symmetric among live nodes, exactly as the
        # protocol's set-based live sets are.
        live = self._scratch.take("live_edges", self.arrays.m, bool, fill=True)
        live_cnt = self.arrays.deg.copy()

        p = 0
        while True:
            r0 = 3 * p

            # Loop head: isolated-among-survivors nodes join and terminate;
            # then the phase budget is checked (everyone still in the loop
            # shares the same phase count, so a ``max_phases`` exit empties
            # the loop in one step, matching the per-node protocol).
            iso = inloop & (live_cnt == 0)
            if iso.any():
                idx = np.flatnonzero(iso)
                self._decide(idx, True, r0)
                self.finish[idx] = r0
                inloop &= ~iso
            if self.max_phases is not None and p >= self.max_phases:
                idx = np.flatnonzero(inloop)
                self.finish[idx] = r0  # gives up undecided
                inloop[idx] = False
            if not inloop.any():
                break
            assert p <= n, "phased baseline failed to make progress"

            U = np.flatnonzero(inloop)
            if self.algorithm == "luby" or p == 0:
                self._draw_priorities(U)
            combined = self._combined

            # Round A (3p) -- rank exchange over the live sets.  Every
            # in-loop node has a nonempty live set, so all are tx.
            self._check_clock(r0, len(U))
            self.awake[U] += 1
            self.tx[U] += 1
            self.msent[U] += live_cnt[U]
            self.bits[U] += self._prio_bits[U] * live_cnt[U]
            delivered = live & inloop[src] & inloop[dst]
            self.mrecv += np.bincount(dst[delivered], minlength=n)
            # Keys kept by receivers: senders that are in the receiver's
            # own live set (the protocol's ``if u in live`` filter).
            keyed = delivered & live[grev]
            key_cnt = np.bincount(dst[keyed], minlength=n)
            best = np.full(n, -1, dtype=np.int64)
            np.maximum.at(best, dst[keyed], combined[src[keyed]])
            joined = inloop & (key_cnt == live_cnt) & (combined > best)
            jidx = np.flatnonzero(joined)
            if len(jidx):
                self._decide(jidx, True, r0 + 1)

            # Round B (3p + 1) -- JOIN announcements; winners terminate
            # after sending (they are still awake and receiving this round).
            self._check_clock(r0 + 1, len(U))
            self.awake[U] += 1
            self.tx[jidx] += 1
            self.msent[jidx] += live_cnt[jidx]
            self.bits[jidx] += _FLAG_BITS * live_cnt[jidx]
            delivered = live & joined[src] & inloop[dst]
            got_join = np.bincount(dst[delivered], minlength=n)
            self.mrecv += got_join
            silent = inloop & ~joined
            self.rx[silent & (got_join > 0)] += 1
            self.idle[silent & (got_join == 0)] += 1
            hit = np.zeros(n, dtype=bool)
            hit[dst[delivered & live[grev]]] = True
            elim = silent & hit
            eidx = np.flatnonzero(elim)
            if len(eidx):
                self._decide(eidx, False, r0 + 2)
            self.finish[jidx] = r0 + 2
            inloop &= ~joined

            # Round C (3p + 2) -- OUT announcements from the newly
            # eliminated; survivors prune their live sets, announcers
            # terminate.
            still = np.flatnonzero(inloop)
            self._check_clock(r0 + 2, len(still))
            self.awake[still] += 1
            self.tx[eidx] += 1
            self.msent[eidx] += live_cnt[eidx]
            self.bits[eidx] += _FLAG_BITS * live_cnt[eidx]
            delivered = live & elim[src] & inloop[dst]
            got_out = np.bincount(dst[delivered], minlength=n)
            self.mrecv += got_out
            survivor = inloop & ~elim
            self.rx[survivor & (got_out > 0)] += 1
            self.idle[survivor & (got_out == 0)] += 1
            live[grev[delivered & survivor[dst]]] = False
            self.finish[eidx] = r0 + 3
            inloop &= ~elim
            live_cnt = np.bincount(src[live], minlength=n)
            p += 1

        live[:] = False  # hand the edge buffer back clean
        return self._build_result()

    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        # Phased nodes never sleep (constant ``sleep`` column) but finish
        # at per-node rounds as they terminate phase by phase.
        if self.result_kind == "arrays":
            from .array_result import ArrayRunResult

            n = self.n
            return ArrayRunResult(
                n=n,
                rounds=int(self.finish.max()) if n else 0,
                seed=self.seed,
                node_ids=self.node_ids,
                in_mis=self.in_mis.copy(),
                awake_rounds=self.awake.copy(),
                sleep_rounds=np.zeros(n, dtype=np.int64),
                tx_rounds=self.tx.copy(),
                rx_rounds=self.rx.copy(),
                idle_rounds=self.idle.copy(),
                messages_sent=self.msent.copy(),
                bits_sent=self.bits.copy(),
                messages_received=self.mrecv.copy(),
                decision_round=self.decision_round.copy(),
                awake_at_decision=self.awake_at_decision.copy(),
                finish_round=self.finish.copy(),
                arrays=self.arrays,
            )
        if self.n == 0:
            return RunResult(
                n=0, rounds=0, seed=self.seed, node_stats={}, outputs={},
                protocols={}, adjacency=self.adjacency,
            )
        return assemble_result(
            n=self.n,
            rounds=int(self.finish.max()) if self.n else 0,
            seed=self.seed,
            adjacency=self.adjacency,
            node_ids=self.node_ids,
            awake=self.awake.tolist(),
            sleep=repeat(0),
            tx=self.tx.tolist(),
            rx=self.rx.tolist(),
            idle=self.idle.tolist(),
            msent=self.msent.tolist(),
            bits=self.bits.tolist(),
            mrecv=self.mrecv.tolist(),
            decision_round=self.decision_round.tolist(),
            awake_at_decision=self.awake_at_decision.tolist(),
            finish=self.finish.tolist(),
            in_mis=self.in_mis.tolist(),
        )

"""Energy accounting for the sleeping model.

The paper's motivation (Section 1.1) is that in ad hoc wireless and sensor
networks the *idle listening* state costs almost as much energy as actively
transmitting or receiving, while the *sleeping* state costs orders of
magnitude less.  The default weights below follow the shape of the
Feeney--Nilsson (INFOCOM 2001) measurements for an 802.11 interface,
normalized so that receiving costs 1 unit per round:

* transmit  : 1.33
* receive   : 1.00
* idle      : 0.84
* sleep     : 0.05

Under these weights the paper's "total energy is proportional to total awake
time" abstraction holds up to small constants, and the examples can report
concrete energy savings of the sleeping algorithms over always-awake
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .array_result import ArrayRunResult, exact_sum
from .metrics import NodeStats, RunResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-round energy weights by radio state."""

    tx: float = 1.33
    rx: float = 1.00
    idle: float = 0.84
    sleep: float = 0.05

    def node_energy(self, stats: NodeStats) -> float:
        """Energy spent by one node over the whole execution."""
        return (
            self.tx * stats.tx_rounds
            + self.rx * stats.rx_rounds
            + self.idle * stats.idle_rounds
            + self.sleep * stats.sleep_rounds
        )

    def total_energy(self, result: RunResult) -> float:
        """Total energy across all nodes.

        Array-backed results tally from the integer stat columns directly
        (four exact integer sums, no per-node Python objects); the value
        agrees with the legacy per-node accumulation up to float
        summation order.
        """
        if isinstance(result, ArrayRunResult):
            # exact_sum: Algorithm 1's sleep columns hold ~2^51 per node
            # at n = 10^5, overflowing a plain int64 reduction.
            return (
                self.tx * exact_sum(result.tx_rounds)
                + self.rx * exact_sum(result.rx_rounds)
                + self.idle * exact_sum(result.idle_rounds)
                + self.sleep * exact_sum(result.sleep_rounds)
            )
        return sum(self.node_energy(s) for s in result.node_stats.values())

    def average_energy(self, result: RunResult) -> float:
        """Mean per-node energy (no per-node materialization needed)."""
        if not result.n:
            return 0.0
        return self.total_energy(result) / result.n

    def per_node_energy(self, result: RunResult) -> Dict[int, float]:
        """Energy of each node, keyed by node id.

        Array-backed results compute the whole vector in four numpy
        passes instead of materializing the legacy per-node view.
        """
        if isinstance(result, ArrayRunResult):
            energies = (
                self.tx * result.tx_rounds
                + self.rx * result.rx_rounds
                + self.idle * result.idle_rounds
                + self.sleep * result.sleep_rounds.astype(float)
            )
            return dict(zip(result.node_ids, energies.tolist()))
        return {
            v: self.node_energy(s) for v, s in result.node_stats.items()
        }


#: Weights matching the paper's idealized model: sleeping is free.
IDEAL_MODEL = EnergyModel(tx=1.0, rx=1.0, idle=1.0, sleep=0.0)

#: Default, measurement-shaped weights.
DEFAULT_MODEL = EnergyModel()

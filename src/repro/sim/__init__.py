"""Sleeping-model CONGEST simulator (the paper's model, executable).

Public surface:

* :class:`Simulator` / :func:`simulate` -- run a protocol over a graph;
* :class:`Protocol` / :class:`MISProtocol` -- per-node behaviour as
  generators;
* :class:`SendAndReceive`, :class:`Sleep`, :data:`LISTEN` -- the action
  vocabulary;
* :class:`RunResult`, :class:`NodeStats` -- the paper's complexity measures;
* :class:`EnergyModel` -- energy accounting for the sensor-network story;
* :class:`Trace` / :func:`make_trace` -- optional execution tracing.

Two execution engines produce the same :class:`RunResult`:

* the **generator engine** (:class:`Simulator`) runs any
  :class:`Protocol` -- one generator per node -- and is the semantics
  reference; tracing, CONGEST bit budgets, and fault injection
  (``loss_rate``) live here exclusively;
* the **vectorized engines** (:class:`VectorizedEngine` /
  :func:`simulate_vectorized` for the sleeping algorithms,
  :class:`PhasedVectorizedEngine` for the Luby/greedy baselines) replay
  the algorithms over numpy arrays, bit-for-bit equal to the generator
  engine for the same ``(graph, seed, rng)`` and far faster;
  configurations they cannot run exactly (tracing, congest checks, other
  algorithms, per-call instrumentation) fall back to the generator path
  via ``engine="auto"``.

Per-node randomness comes in two versioned stream formats
(:mod:`repro.sim.rng`): ``rng="pernode"`` (v1, one seeded
``random.Random`` per node, the default) and ``rng="batched"`` (v2,
counter-based whole-array draws, the format that scales sweeps to
n = 10^4..10^5).

:func:`run_trials` / :func:`iter_trials` (in :mod:`repro.sim.batch`) fan
many ``(graph, seed)`` trials across both engines and, optionally, worker
processes.
"""

from .actions import LISTEN, Action, SendAndReceive, Sleep
from .array_result import RESULT_KINDS, ArrayRunResult
from .context import NodeContext
from .energy import DEFAULT_MODEL, IDEAL_MODEL, EnergyModel
from .errors import (
    CongestViolationError,
    MaxRoundsExceededError,
    ProtocolError,
    SimulationError,
)
from .fast_engine import (
    EngineScratch,
    GraphArrays,
    VectorizedEngine,
    simulate_vectorized,
)
from .fast_phased import PhasedVectorizedEngine
from .batch import iter_trials, run_trials
from .messages import Message, payload_bits
from .metrics import NodeStats, RunResult
from .node import NodeRuntime, NodeState
from .network import Simulator, node_rng, normalize_graph, simulate
from .protocol import MISProtocol, Protocol
from .rng import RNG_STREAMS, STREAM_VERSIONS, CounterRNG, node_rng_factory
from .trace import NULL_TRACE, Trace, TraceEvent, make_trace

__all__ = [
    "Action",
    "ArrayRunResult",
    "CongestViolationError",
    "CounterRNG",
    "DEFAULT_MODEL",
    "EngineScratch",
    "EnergyModel",
    "GraphArrays",
    "IDEAL_MODEL",
    "LISTEN",
    "MaxRoundsExceededError",
    "Message",
    "MISProtocol",
    "NULL_TRACE",
    "NodeContext",
    "NodeRuntime",
    "NodeState",
    "NodeStats",
    "PhasedVectorizedEngine",
    "Protocol",
    "ProtocolError",
    "RESULT_KINDS",
    "RNG_STREAMS",
    "RunResult",
    "STREAM_VERSIONS",
    "SendAndReceive",
    "SimulationError",
    "Simulator",
    "Sleep",
    "Trace",
    "TraceEvent",
    "VectorizedEngine",
    "iter_trials",
    "make_trace",
    "node_rng",
    "node_rng_factory",
    "normalize_graph",
    "payload_bits",
    "run_trials",
    "simulate",
    "simulate_vectorized",
]

"""Sleeping-model CONGEST simulator (the paper's model, executable).

Public surface:

* :class:`Simulator` / :func:`simulate` -- run a protocol over a graph;
* :class:`Protocol` / :class:`MISProtocol` -- per-node behaviour as
  generators;
* :class:`SendAndReceive`, :class:`Sleep`, :data:`LISTEN` -- the action
  vocabulary;
* :class:`RunResult`, :class:`NodeStats` -- the paper's complexity measures;
* :class:`EnergyModel` -- energy accounting for the sensor-network story;
* :class:`Trace` / :func:`make_trace` -- optional execution tracing.
"""

from .actions import LISTEN, Action, SendAndReceive, Sleep
from .context import NodeContext
from .energy import DEFAULT_MODEL, IDEAL_MODEL, EnergyModel
from .errors import (
    CongestViolationError,
    MaxRoundsExceededError,
    ProtocolError,
    SimulationError,
)
from .messages import Message, payload_bits
from .metrics import NodeStats, RunResult
from .node import NodeRuntime, NodeState
from .network import Simulator, node_rng, normalize_graph, simulate
from .protocol import MISProtocol, Protocol
from .trace import NULL_TRACE, Trace, TraceEvent, make_trace

__all__ = [
    "Action",
    "CongestViolationError",
    "DEFAULT_MODEL",
    "EnergyModel",
    "IDEAL_MODEL",
    "LISTEN",
    "MaxRoundsExceededError",
    "Message",
    "MISProtocol",
    "NULL_TRACE",
    "NodeContext",
    "NodeRuntime",
    "NodeState",
    "NodeStats",
    "Protocol",
    "ProtocolError",
    "RunResult",
    "SendAndReceive",
    "SimulationError",
    "Simulator",
    "Sleep",
    "Trace",
    "TraceEvent",
    "make_trace",
    "node_rng",
    "normalize_graph",
    "payload_bits",
    "simulate",
]

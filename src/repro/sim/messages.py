"""Message representation and CONGEST bit accounting.

The CONGEST model allows ``O(log n)``-bit messages per edge per round.  To
make that budget checkable, payloads are restricted to a small set of plainly
encodable Python values and their size is estimated by a deterministic bit
cost model:

==============  =======================================================
payload type    bit cost
==============  =======================================================
``None``        2   (a tag saying "nothing")
``bool``        2   (tag + 1 bit)
``int``         ``bit_length + 2`` (sign bit + tag), minimum 3
``float``       66  (IEEE 754 double + tag)
``str``         ``8 * len + 8``  (bytes + length framing)
``bytes``       ``8 * len + 8``
``tuple/list``  sum of elements + 4 per element framing
==============  =======================================================

The constants are not meant to model a real wire format exactly; they exist
so that "this payload is :math:`O(\\log n)` bits" is a machine-checkable
statement in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .errors import ProtocolError


def payload_bits(payload: Any) -> int:
    """Return the estimated encoded size of ``payload`` in bits.

    Raises :class:`ProtocolError` for payload types that have no CONGEST
    encoding (arbitrary objects, dicts, sets, ...).
    """
    if payload is None:
        return 2
    if isinstance(payload, bool):
        return 2
    if isinstance(payload, int):
        return max(payload.bit_length(), 1) + 2
    if isinstance(payload, float):
        return 66
    if isinstance(payload, str):
        return 8 * len(payload) + 8
    if isinstance(payload, bytes):
        return 8 * len(payload) + 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_bits(item) + 4 for item in payload)
    raise ProtocolError(
        f"payload of type {type(payload).__name__!r} has no CONGEST encoding"
    )


@dataclass(frozen=True)
class Message:
    """A single message as recorded in an execution trace."""

    round: int
    sender: int
    recipient: int
    payload: Any

    @property
    def bits(self) -> int:
        """Encoded size of this message's payload in bits."""
        return payload_bits(self.payload)

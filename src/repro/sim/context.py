"""The per-node view of the network handed to protocols.

A :class:`NodeContext` gives a protocol exactly the local knowledge the
paper's model allows (Section 1.2): its own id, its ports/neighbors, the
network size ``n``, a private source of randomness, and the current round
number (nodes know the round whenever they are awake).  It also carries the
bookkeeping hooks (`report_decision`, `trace`) that feed the metrics without
letting protocols see global state.
"""

from __future__ import annotations

import random
from typing import Tuple

from .metrics import NodeStats
from .trace import Trace


class NodeContext:
    """Local knowledge and bookkeeping hooks for one node."""

    __slots__ = ("node_id", "neighbors", "n", "rng", "_stats", "_trace", "_clock")

    def __init__(
        self,
        node_id: int,
        neighbors: Tuple[int, ...],
        n: int,
        rng: random.Random,
        stats: NodeStats,
        trace: Trace,
        clock,
    ):
        self.node_id = node_id
        self.neighbors = neighbors
        self.n = n
        self.rng = rng
        self._stats = stats
        self._trace = trace
        self._clock = clock

    @property
    def degree(self) -> int:
        """Number of ports (incident edges) of this node."""
        return len(self.neighbors)

    def current_round(self) -> int:
        """The round number of the node's next awake action.

        Inside a protocol this behaves like reading the synchronized clock:
        after processing the inbox of round ``r`` it reads ``r + 1``.
        """
        return self._clock()

    def report_decision(self, value: object) -> None:
        """Record that this node has committed its output.

        Only the first call is recorded; the paper's node-averaged measures
        count rounds until a node's status is fixed, and status is never
        changed once set.
        """
        if self._stats.decision_round is None:
            self._stats.decision_round = self._clock()
            self._stats.awake_at_decision = self._stats.awake_rounds
            self._trace.record(
                self._clock(), self.node_id, "decide", value=value
            )

    @property
    def decided(self) -> bool:
        """Whether this node has already reported a decision."""
        return self._stats.decision_round is not None

    def trace(self, kind: str, **data) -> None:
        """Record a protocol-defined trace event (no-op when disabled)."""
        if self._trace.enabled:
            self._trace.record(self._clock(), self.node_id, kind, **data)

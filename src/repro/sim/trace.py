"""Optional execution tracing.

Tracing is off by default (the :class:`NullTrace` singleton) because the
recursive algorithms generate a lot of events.  Enable it by passing a
:class:`Trace` to :class:`repro.sim.network.Simulator` when you want to
inspect an execution -- e.g. to reconstruct the recursion tree of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: ``(round, node, kind, data)``."""

    round: int
    node: int
    kind: str
    data: Dict[str, Any]


class Trace:
    """A bounded in-memory event log.

    ``max_events`` guards against runaway memory use; once the bound is hit
    further events are silently dropped and :attr:`truncated` is set.
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def record(self, round_: int, node: int, kind: str, **data: Any) -> None:
        """Append an event unless the bound has been reached."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(round_, node, kind, data))

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All events of the given kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def by_node(self, node: int) -> List[TraceEvent]:
        """All events for the given node, in order."""
        return [e for e in self.events if e.node == node]

    def __len__(self) -> int:
        return len(self.events)


class NullTrace(Trace):
    """A no-op trace used when tracing is disabled."""

    enabled = False

    def __init__(self):
        super().__init__(max_events=0)

    def record(self, round_: int, node: int, kind: str, **data: Any) -> None:
        pass


#: Shared disabled-trace instance.
NULL_TRACE = NullTrace()


def make_trace(enabled: bool, max_events: int = 1_000_000) -> Trace:
    """Return a :class:`Trace` if ``enabled`` else the shared null trace."""
    return Trace(max_events=max_events) if enabled else NULL_TRACE

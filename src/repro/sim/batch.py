"""Batch trial runner: many ``(graph, seed)`` executions, optionally parallel.

The paper's results are statistical -- every figure and table averages over
many trials -- so the measurement loop, not any single run, is the hot
path.  :func:`run_trials` runs one simulation per seed and returns the
:class:`RunResult` objects in seed order.  It layers three optimizations
over naive sequential calls:

* **engine dispatch** -- trials run on the vectorized engine
  (:mod:`repro.sim.fast_engine`) whenever it supports the configuration,
  falling back to the generator engine otherwise (``engine="auto"``);
* **graph-structure reuse** -- when many seeds share one graph object, its
  normalized adjacency and edge arrays are built once
  (:class:`repro.sim.fast_engine.GraphArrays`), not per seed;
* **process parallelism** -- with ``n_jobs`` workers, seed chunks fan out
  over a :class:`concurrent.futures.ProcessPoolExecutor`.  Graphs are
  normalized in the parent, so ``graph_factory`` may be a lambda; only
  plain adjacency dicts and results cross process boundaries.  If a pool
  cannot be started (restricted sandboxes), the runner degrades to
  sequential execution instead of failing.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import fast_engine
from .fast_engine import GraphArrays, VectorizedEngine
from .metrics import RunResult
from .network import Simulator, normalize_graph

#: Engine names accepted throughout the package.
ENGINES = ("auto", "generators", "vectorized")


def resolve_engine(
    engine: str, algorithm: str, **constraints: Any
) -> str:
    """Map an engine request to the concrete engine that will run.

    ``"auto"`` selects ``"vectorized"`` exactly when
    :func:`repro.sim.fast_engine.supports` certifies the configuration;
    requesting ``"vectorized"`` for an unsupported configuration is an
    error rather than a silent behaviour change.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if engine == "generators":
        return "generators"
    eligible = fast_engine.supports(algorithm, **constraints)
    if engine == "vectorized" and not eligible:
        active = {k: v for k, v in constraints.items() if v}
        detail = f" with {active}" if active else ""
        raise ValueError(
            f"vectorized engine cannot run algorithm={algorithm!r}{detail}; "
            f"use engine='generators' or engine='auto'"
        )
    return "vectorized" if eligible else "generators"


def _run_one(
    adjacency: Dict[Any, Tuple[Any, ...]],
    arrays: Optional[GraphArrays],
    algorithm: str,
    seed: Optional[int],
    engine: str,
    max_rounds: Optional[int],
    congest_bit_limit: Optional[int],
    protocol_kwargs: Dict[str, Any],
) -> RunResult:
    if engine == "vectorized":
        return VectorizedEngine(
            arrays if arrays is not None else GraphArrays(adjacency),
            algorithm,
            seed=seed,
            max_rounds=max_rounds,
            **protocol_kwargs,
        ).run()
    from ..api import make_protocol_factory  # local: avoid import cycle

    return Simulator(
        adjacency,
        make_protocol_factory(algorithm, **protocol_kwargs),
        seed=seed,
        max_rounds=max_rounds,
        congest_bit_limit=congest_bit_limit,
    ).run()


def _run_chunk(payload: Tuple) -> List[RunResult]:
    """Process-pool task: one graph, a chunk of seeds."""
    (
        adjacency, algorithm, seeds, engine, max_rounds,
        congest_bit_limit, protocol_kwargs,
    ) = payload
    arrays = GraphArrays(adjacency) if engine == "vectorized" else None
    return [
        _run_one(
            adjacency, arrays, algorithm, seed, engine, max_rounds,
            congest_bit_limit, protocol_kwargs,
        )
        for seed in seeds
    ]


def run_trials(
    graph_factory: Any,
    algorithm: str = "fast-sleeping",
    seeds: Iterable[Optional[int]] = range(10),
    *,
    n_jobs: Optional[int] = None,
    engine: str = "auto",
    max_rounds: Optional[int] = None,
    congest_bit_limit: Optional[int] = None,
    **protocol_kwargs: Any,
) -> List[RunResult]:
    """Run ``algorithm`` once per seed; results come back in seed order.

    Parameters
    ----------
    graph_factory:
        Either a callable ``seed -> graph`` (fresh graph per trial) or a
        single graph object shared by every trial.
    algorithm:
        Name from :func:`repro.api.algorithm_names`.
    seeds:
        Master seeds, one trial each.
    n_jobs:
        ``None`` or ``1`` runs sequentially in-process; ``> 1`` uses that
        many worker processes; ``<= 0`` means one worker per CPU.
    engine:
        ``"auto"`` (default), ``"generators"``, or ``"vectorized"``.
    protocol_kwargs:
        Forwarded to the protocol (``coin_bias=``, ``greedy_constant=``,
        ``depth=``).
    """
    seed_list = list(seeds)
    if not seed_list:
        return []
    resolved = resolve_engine(
        engine, algorithm,
        congest_bit_limit=congest_bit_limit, **protocol_kwargs,
    )

    # Build every graph in the parent and normalize once per distinct
    # graph object, so factories may be closures and workers only ever see
    # plain dicts.
    factory: Callable[[Optional[int]], Any] = (
        graph_factory if callable(graph_factory) else lambda seed: graph_factory
    )
    adjacencies: List[Dict[Any, Tuple[Any, ...]]] = []
    norm_cache: Dict[int, Dict[Any, Tuple[Any, ...]]] = {}
    keep_alive: List[Any] = []  # pin graph objects so id() keys stay valid
    for seed in seed_list:
        graph = factory(seed)
        key = id(graph)
        if key not in norm_cache:
            norm_cache[key] = normalize_graph(graph)
            keep_alive.append(graph)
        adjacencies.append(norm_cache[key])

    jobs = _effective_jobs(n_jobs, len(seed_list))
    if jobs > 1:
        from concurrent.futures.process import BrokenProcessPool

        try:
            return _run_parallel(
                adjacencies, algorithm, seed_list, resolved, max_rounds,
                congest_bit_limit, protocol_kwargs, jobs,
            )
        except (OSError, ImportError, BrokenProcessPool) as exc:
            # Pool could not start, or its workers were killed before
            # producing results (sandboxes commonly allow the former and
            # forbid the latter) -- degrade to sequential either way.
            warnings.warn(
                f"process pool unavailable ({exc}); running sequentially",
                RuntimeWarning,
                stacklevel=2,
            )

    arrays_cache: Dict[int, GraphArrays] = {}
    results: List[RunResult] = []
    for adjacency, seed in zip(adjacencies, seed_list):
        arrays = None
        if resolved == "vectorized":
            key = id(adjacency)
            if key not in arrays_cache:
                arrays_cache[key] = GraphArrays(adjacency)
            arrays = arrays_cache[key]
        results.append(
            _run_one(
                adjacency, arrays, algorithm, seed, resolved, max_rounds,
                congest_bit_limit, protocol_kwargs,
            )
        )
    return results


def _effective_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    if n_jobs is None or n_jobs == 1:
        return 1
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, min(n_jobs, n_tasks))


def _run_parallel(
    adjacencies: Sequence[Dict[Any, Tuple[Any, ...]]],
    algorithm: str,
    seed_list: Sequence[Optional[int]],
    engine: str,
    max_rounds: Optional[int],
    congest_bit_limit: Optional[int],
    protocol_kwargs: Dict[str, Any],
    jobs: int,
) -> List[RunResult]:
    from concurrent.futures import ProcessPoolExecutor

    # Chunk runs of consecutive seeds that share an adjacency, so workers
    # amortize GraphArrays construction; aim for a few chunks per worker.
    target = max(1, len(seed_list) // (jobs * 4) or 1)
    chunks: List[Tuple] = []
    start = 0
    while start < len(seed_list):
        end = start
        while (
            end < len(seed_list)
            and end - start < target
            and adjacencies[end] is adjacencies[start]
        ):
            end += 1
        chunks.append(
            (
                adjacencies[start], algorithm, list(seed_list[start:end]),
                engine, max_rounds, congest_bit_limit, protocol_kwargs,
            )
        )
        start = end

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        nested = list(pool.map(_run_chunk, chunks))
    return [result for chunk in nested for result in chunk]
